#include <gtest/gtest.h>

#include <sstream>

#include "src/util/cli.h"
#include "src/util/csv.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/string_utils.h"

namespace t2m {
namespace {

TEST(StringUtils, Split) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split_ws("  a\t b \n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringUtils, TrimAndAffixes) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_TRUE(ends_with("abcdef", "def"));
  EXPECT_FALSE(ends_with("ef", "def"));
}

TEST(StringUtils, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.1234, 2), "0.12");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a2.next() != c2.next());
  EXPECT_TRUE(differ);
}

TEST(Rng, RangeAndUnitBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Deadline, NeverAndFinite) {
  const Deadline never = Deadline::never();
  EXPECT_FALSE(never.expired());
  EXPECT_FALSE(never.is_finite());
  const Deadline past = Deadline::after_seconds(-1.0);
  EXPECT_TRUE(past.expired());
  const Deadline future = Deadline::after_seconds(60.0);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 0.0);
}

TEST(Stopwatch, MonotoneElapsed) {
  Stopwatch watch;
  const double t1 = watch.elapsed_seconds();
  const double t2 = watch.elapsed_seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
  watch.restart();
  EXPECT_GE(watch.elapsed_ms(), 0);
}

TEST(TableWriter, AsciiAndCsv) {
  TableWriter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream ascii;
  table.write_ascii(ascii);
  EXPECT_NE(ascii.str().find("| alpha | 1     |"), std::string::npos);
  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,22\n");
}

TEST(TableWriter, CsvQuotesSpecialCharacters) {
  // Regression: fields containing ',', '"' or newlines were emitted
  // unquoted, producing corrupt CSV. RFC 4180: quote such fields and double
  // embedded quotes.
  TableWriter table({"name", "value"});
  table.add_row({"a,b", "plain"});
  table.add_row({"say \"hi\"", "line\nbreak"});
  table.add_row({"cr\rhere", "both\",\n"});
  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "name,value\n"
            "\"a,b\",plain\n"
            "\"say \"\"hi\"\"\",\"line\nbreak\"\n"
            "\"cr\rhere\",\"both\"\",\n\"\n");
}

TEST(TableWriter, RejectsBadRows) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(CliArgs, FlagsAndPositionals) {
  const char* argv[] = {"prog", "learn", "--trace", "t.txt", "--window=5",
                        "--verbose", "--timeout", "2.5"};
  const CliArgs args(8, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"learn"}));
  EXPECT_EQ(args.get_or("trace", ""), "t.txt");
  EXPECT_EQ(args.get_int_or("window", 3), 5);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_DOUBLE_EQ(args.get_double_or("timeout", 0.0), 2.5);
  EXPECT_EQ(args.get_int_or("absent", 9), 9);
  EXPECT_FALSE(args.get("absent").has_value());
}

TEST(CliArgs, MalformedNumbersThrowDiagnosticsInsteadOfCrashing) {
  // Regression: get_int_or/get_double_or called std::stoll/std::stod on the
  // raw flag value; `--window banana` crashed with an uncaught exception.
  // The examples and the t2m tool catch std::exception at main and print
  // the message, so a clean invalid_argument naming the flag is the
  // user-visible error path.
  const char* argv[] = {"prog",        "--window",  "banana", "--timeout", "fast",
                        "--trailing",  "12x",       "--huge", "99999999999999999999"};
  const CliArgs args(9, argv);
  EXPECT_THROW(args.get_int_or("window", 3), std::invalid_argument);
  EXPECT_THROW(args.get_double_or("timeout", 0.0), std::invalid_argument);
  // Trailing garbage is rejected, not truncated.
  EXPECT_THROW(args.get_int_or("trailing", 0), std::invalid_argument);
  // Out-of-range is a diagnostic too, not UB or std::out_of_range.
  EXPECT_THROW(args.get_int_or("huge", 0), std::invalid_argument);
  // Explicit '+' signs, which the old stoll/stod parsers accepted, still do.
  const char* signed_argv[] = {"prog", "--window", "+5", "--timeout", "+2.5",
                               "--plus", "+",      "--plusminus", "+-3"};
  const CliArgs signed_args(9, signed_argv);
  EXPECT_EQ(signed_args.get_int_or("window", 0), 5);
  EXPECT_DOUBLE_EQ(signed_args.get_double_or("timeout", 0.0), 2.5);
  EXPECT_THROW(signed_args.get_int_or("plus", 0), std::invalid_argument);
  EXPECT_THROW(signed_args.get_int_or("plusminus", 0), std::invalid_argument);
  try {
    args.get_int_or("window", 3);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("window"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
}

}  // namespace
}  // namespace t2m
