#include <gtest/gtest.h>

#include "src/automaton/coverage.h"
#include "src/automaton/monitor.h"
#include "src/automaton/ops.h"
#include "src/core/learner.h"
#include "src/sim/basic/counter.h"
#include "src/sim/references.h"
#include "src/trace/recorder.h"

namespace t2m {
namespace {

/// Learns the counter model once for the monitor tests.
const LearnResult& counter_model() {
  static const LearnResult result = [] {
    const Trace t = sim::generate_counter_trace({8, 60, 1});
    LearnResult r = ModelLearner().learn(t);
    EXPECT_TRUE(r.success);
    return r;
  }();
  return result;
}

Valuation x_obs(std::int64_t v) { return {Value::of_int(v)}; }

TEST(Monitor, AcceptsHealthyBehaviour) {
  const LearnResult& r = counter_model();
  Monitor monitor(r.model, r.preds.vocab);
  for (std::int64_t x = 1; x <= 8; ++x) EXPECT_TRUE(monitor.feed(x_obs(x)));
  for (std::int64_t x = 7; x >= 1; --x) EXPECT_TRUE(monitor.feed(x_obs(x)));
  EXPECT_FALSE(monitor.violated());
  EXPECT_EQ(monitor.observations(), 15u);
}

TEST(Monitor, FlagsIllegalJump) {
  const LearnResult& r = counter_model();
  Monitor monitor(r.model, r.preds.vocab);
  EXPECT_TRUE(monitor.feed(x_obs(1)));
  EXPECT_TRUE(monitor.feed(x_obs(2)));
  EXPECT_FALSE(monitor.feed(x_obs(7)));  // jump by 5: no predicate matches
  EXPECT_TRUE(monitor.violated());
  EXPECT_EQ(monitor.violation_index(), 2u);
  // Stays violated until reset.
  EXPECT_FALSE(monitor.feed(x_obs(8)));
  monitor.reset();
  EXPECT_TRUE(monitor.feed(x_obs(3)));
  EXPECT_FALSE(monitor.violated());
}

TEST(Monitor, FlagsWrongDirectionAtStart) {
  const LearnResult& r = counter_model();
  Monitor monitor(r.model, r.preds.vocab);
  EXPECT_TRUE(monitor.feed(x_obs(5)));
  // The initial state expects ascending behaviour; x' = x - 1 from the
  // initial state is not part of the learned language start.
  const bool second = monitor.feed(x_obs(4));
  EXPECT_FALSE(second);
  EXPECT_TRUE(monitor.violated());
}

TEST(Monitor, FrontierTracksNondeterminism) {
  const LearnResult& r = counter_model();
  Monitor monitor(r.model, r.preds.vocab);
  monitor.feed(x_obs(1));
  monitor.feed(x_obs(2));
  EXPECT_GE(monitor.frontier().size(), 1u);
}

TEST(Coverage, FullCoverageReport) {
  const Nfa ref = sim::reference_counter_model(8);
  const CoverageReport report = compare_coverage(ref, ref);
  EXPECT_TRUE(report.uncovered_labels.empty());
  EXPECT_TRUE(report.extra_labels.empty());
  EXPECT_DOUBLE_EQ(report.label_coverage(), 1.0);
}

TEST(Coverage, DetectsUncoveredAndExtra) {
  const Nfa datasheet = sim::reference_usb_slot_datasheet();
  const Nfa learned = sim::reference_usb_slot_expected();
  const CoverageReport report = compare_coverage(datasheet, learned);
  EXPECT_FALSE(report.uncovered_labels.empty());
  const auto& unc = report.uncovered_labels;
  EXPECT_TRUE(std::find(unc.begin(), unc.end(), "CR_ADDR_DEV_BSR1") != unc.end());
  EXPECT_TRUE(std::find(unc.begin(), unc.end(), "CR_DECONFIG_END") != unc.end());
  EXPECT_LT(report.label_coverage(), 1.0);
  EXPECT_GT(report.label_coverage(), 0.5);
}

TEST(Coverage, FormatMentionsLabels) {
  const CoverageReport report = compare_coverage(sim::reference_usb_slot_datasheet(),
                                                 sim::reference_usb_slot_expected());
  const std::string text = format_report(report);
  EXPECT_NE(text.find("CR_ADDR_DEV_BSR1"), std::string::npos);
  EXPECT_NE(text.find("label coverage"), std::string::npos);
}

TEST(Replay, TraceAgainstLearnedModel) {
  const LearnResult& r = counter_model();
  const Trace healthy = sim::generate_counter_trace({8, 40, 1});
  const ReplayResult ok = replay_trace(r.model, r.preds.vocab, healthy);
  EXPECT_TRUE(ok.accepted);
  EXPECT_EQ(ok.steps, healthy.num_steps());

  // A buggy system that skips a value mid-ascent: no predicate explains the
  // jump 4 -> 6, so the replay must die exactly there.
  Trace buggy(healthy.schema());
  for (const std::int64_t v : {1, 2, 3, 4, 6, 7}) buggy.append({Value::of_int(v)});
  const ReplayResult bad = replay_trace(r.model, r.preds.vocab, buggy);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.failed_step, 3u);
}

TEST(Replay, AnywhereStartRelaxesPrefix) {
  const LearnResult& r = counter_model();
  // A fragment starting mid-descent is rejected from the initial state but
  // accepted from some state.
  TraceRecorder rec;
  rec.declare_int("x", 0);
  Trace fragment(rec.take().schema());
  for (const std::int64_t v : {6, 5, 4, 3}) fragment.append({Value::of_int(v)});
  EXPECT_FALSE(replay_trace(r.model, r.preds.vocab, fragment).accepted);
  EXPECT_TRUE(replay_trace_anywhere(r.model, r.preds.vocab, fragment).accepted);
}

}  // namespace
}  // namespace t2m
