// Differential tests of the SatELite-style preprocessor: preprocessing may
// reshape the clause database arbitrarily, but the solver's verdict and any
// model's validity against the ORIGINAL clauses are invariants — checked on
// hundreds of random CNFs and on real learn runs (rtlinux scheduler and USB
// attach traces), plus the clause-count reduction the star compression and
// preprocessing are responsible for on the rtlinux encoding.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "src/abstraction/abstraction.h"
#include "src/core/compliance.h"
#include "src/core/csp_encoder.h"
#include "src/core/learner.h"
#include "src/core/segmentation.h"
#include "src/sat/drat_check.h"
#include "src/sat/preprocessor.h"
#include "src/sat/proof_log.h"
#include "src/sat/solver.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/xhci/ring_interface.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

using sat::Lit;
using sat::SolveResult;

struct RandomCnf {
  std::size_t num_vars = 0;
  std::vector<sat::Clause> clauses;
};

RandomCnf random_cnf(std::uint64_t seed) {
  Rng rng(seed);
  RandomCnf cnf;
  cnf.num_vars = 5 + rng.below(21);  // 5..25
  // Around the ~4.3 clause/var satisfiability threshold half the time, well
  // under it otherwise, so both verdicts occur frequently.
  const std::size_t num_clauses =
      rng.chance(0.5) ? cnf.num_vars * 4 + rng.below(cnf.num_vars)
                      : 2 + rng.below(cnf.num_vars * 2);
  for (std::size_t i = 0; i < num_clauses; ++i) {
    sat::Clause c;
    const std::size_t len = 1 + rng.below(4);  // 1..4, units included
    for (std::size_t j = 0; j < len; ++j) {
      const auto v = static_cast<sat::Var>(rng.below(cnf.num_vars));
      c.push_back(rng.chance(0.5) ? sat::pos(v) : sat::neg(v));
    }
    cnf.clauses.push_back(std::move(c));
  }
  return cnf;
}

/// Solves `cnf`, optionally preprocessing first (freezing the given vars),
/// with DRAT proof logging on. Returns the verdict; on Unsat the emitted
/// proof must pass the independent forward checker (empty clause included);
/// on Sat the model must satisfy every ORIGINAL clause — via the solver's
/// own verify_model() audit (exercising the BVE stash replay) and a direct
/// walk over the input clauses.
SolveResult solve_cnf(const RandomCnf& cnf, bool preprocess,
                      const std::vector<sat::Var>& frozen,
                      std::uint64_t seed) {
  std::ostringstream trace;
  sat::ProofLog log(trace);
  sat::Solver s;
  sat::SolverConfig config;
  config.proof_log = &log;
  config.keep_originals = true;
  s.set_config(config);
  s.new_vars(static_cast<sat::Var>(cnf.num_vars));
  for (const sat::Clause& c : cnf.clauses) s.add_clause(c);
  for (const sat::Var v : frozen) s.freeze(v);
  bool pre_ok = true;
  if (preprocess) pre_ok = s.preprocess(sat::PreprocessOptions{});
  const SolveResult r = pre_ok ? s.solve() : SolveResult::Unsat;
  if (r == SolveResult::Sat) {
    const Status audit = s.verify_model();
    EXPECT_TRUE(audit.ok()) << "seed=" << seed << ": " << audit.message();
    for (const sat::Clause& c : cnf.clauses) {
      bool satisfied = false;
      for (const Lit l : c) {
        if (s.model_value(l.var()) != l.negated()) {
          satisfied = true;
          break;
        }
      }
      EXPECT_TRUE(satisfied) << "model violates an original clause";
    }
  } else {
    std::istringstream proof(trace.str());
    sat::DratCheckOptions options;
    options.require_empty_clause = true;
    const sat::DratCheckResult check = sat::check_drat(sat::CnfFormula{}, proof, options);
    EXPECT_TRUE(check.ok) << "seed=" << seed << " preprocess=" << preprocess
                          << ": " << check.error;
  }
  EXPECT_TRUE(s.check_invariants().ok()) << "seed=" << seed;
  return r;
}

class PreprocessorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessorDifferential, VerdictAndModelValidityPreserved) {
  // 130 CNFs per shard x 4 shards = 520 random instances.
  const std::uint64_t base = static_cast<std::uint64_t>(GetParam()) * 1000;
  for (std::uint64_t i = 0; i < 130; ++i) {
    const RandomCnf cnf = random_cnf(base + i);
    // Freeze a few variables — the learner freezes everything it reads back,
    // so the differential must hold with and without frozen vars present.
    std::vector<sat::Var> frozen;
    if (i % 3 == 0) {
      for (sat::Var v = 0; v < static_cast<sat::Var>(cnf.num_vars); v += 4) {
        frozen.push_back(v);
      }
    }
    const SolveResult plain = solve_cnf(cnf, false, frozen, base + i);
    const SolveResult preprocessed = solve_cnf(cnf, true, frozen, base + i);
    ASSERT_EQ(plain, preprocessed) << "seed=" << base + i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PreprocessorDifferential, ::testing::Range(0, 4));

TEST(Preprocessor, EliminatesVariablesOnEasyStructure) {
  // A variable chain a -> b -> c -> ... with nothing frozen: BVE must
  // actually fire (this guards against the pass silently doing nothing).
  sat::Solver s;
  const sat::Var base = s.new_vars(16);
  for (sat::Var v = 0; v + 1 < 16; ++v) {
    s.add_clause(std::vector<Lit>{sat::neg(base + v), sat::pos(base + v + 1)});
  }
  s.freeze(base);
  s.freeze(base + 15);
  ASSERT_TRUE(s.preprocess(sat::PreprocessOptions{}));
  EXPECT_GT(s.num_eliminated(), 0u);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  // Reconstructed values must respect the chain when the endpoints force it.
  EXPECT_EQ(s.stats().eliminated_vars, s.num_eliminated());
}

TEST(Preprocessor, FrozenVariablesSurvive) {
  sat::Solver s;
  const sat::Var base = s.new_vars(8);
  for (sat::Var v = 0; v + 1 < 8; ++v) {
    s.add_clause(std::vector<Lit>{sat::neg(base + v), sat::pos(base + v + 1)});
  }
  for (sat::Var v = 0; v < 8; ++v) s.freeze(base + v);
  ASSERT_TRUE(s.preprocess(sat::PreprocessOptions{}));
  EXPECT_EQ(s.num_eliminated(), 0u);
  for (sat::Var v = 0; v < 8; ++v) EXPECT_FALSE(s.is_eliminated(base + v));
}

TEST(Preprocessor, SubsumptionRemovesImpliedClauses) {
  sat::Solver s;
  const sat::Var v = s.new_vars(4);
  for (sat::Var x = 0; x < 4; ++x) s.freeze(v + x);  // isolate subsumption
  s.add_clause(std::vector<Lit>{sat::pos(v), sat::pos(v + 1)});
  s.add_clause(std::vector<Lit>{sat::pos(v), sat::pos(v + 1), sat::pos(v + 2)});
  s.add_clause(std::vector<Lit>{sat::pos(v), sat::pos(v + 1), sat::neg(v + 3)});
  const std::size_t before = s.num_clauses();
  ASSERT_TRUE(s.preprocess(sat::PreprocessOptions{}));
  EXPECT_LT(s.num_clauses(), before);
  EXPECT_GT(s.stats().subsumed_clauses, 0u);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Preprocessor, DetectsRootUnsat) {
  sat::Solver s;
  const sat::Var v = s.new_vars(2);
  s.add_clause(std::vector<Lit>{sat::pos(v), sat::pos(v + 1)});
  s.add_clause(std::vector<Lit>{sat::pos(v), sat::neg(v + 1)});
  s.add_clause(std::vector<Lit>{sat::neg(v), sat::pos(v + 1)});
  s.add_clause(std::vector<Lit>{sat::neg(v), sat::neg(v + 1)});
  s.preprocess(sat::PreprocessOptions{});
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

// ---------------------------------------------------------------------------
// Real learn runs: preprocessing must not change the learner-visible outcome.
// Different (equally valid) sibling models are permitted — what is invariant
// is the verdict and the minimal compliant state count (the philosophy of
// tests/test_persistent_diff.cpp).

void expect_same_learn_outcome(const Trace& trace, const char* what) {
  LearnerConfig config;
  config.persistent_solver = false;  // preprocessing runs per fresh CSP
  LearnerConfig with = config;
  with.preprocess = true;
  const LearnResult plain = ModelLearner(config).learn(trace);
  const LearnResult preprocessed = ModelLearner(with).learn(trace);
  ASSERT_EQ(plain.success, preprocessed.success) << what;
  ASSERT_TRUE(plain.success) << what;
  EXPECT_EQ(plain.states, preprocessed.states) << what;
  EXPECT_TRUE(preprocessed.model.deterministic_per_predicate()) << what;
  // Both models must satisfy the same compliance window set.
  ComplianceChecker checker(plain.preds.seq, config.compliance_length);
  EXPECT_TRUE(checker.check(plain.model).compliant) << what;
  EXPECT_TRUE(checker.check(preprocessed.model).compliant) << what;
  EXPECT_TRUE(preprocessed.model.accepts(preprocessed.preds.seq)) << what;
}

TEST(PreprocessorLearnDifferential, RtlinuxScheduler) {
  expect_same_learn_outcome(sim::generate_full_coverage_sched_trace(4000), "rtlinux");
}

TEST(PreprocessorLearnDifferential, UsbAttach) {
  expect_same_learn_outcome(sim::generate_usb_attach_trace(), "usb-attach");
}

// ---------------------------------------------------------------------------
// End-to-end proof-carrying learn runs: every solver verdict the CEGIS loop
// consumes is independently re-derived by the forward DRAT checker from the
// emitted trace — "i" axioms for the encoding, checked lemmas for every
// conflict, `c restart` across CSP rebuilds, and per-epoch conclusions for
// the guarded incremental grow_to path.

void expect_checked_learn_run(const Trace& trace, bool persistent,
                              const char* what) {
  std::ostringstream proof_stream;
  sat::ProofLog log(proof_stream);
  LearnerConfig config;
  config.persistent_solver = persistent;
  config.preprocess = true;  // preprocessor derivations must be in the proof
  config.solver.proof_log = &log;
  const LearnResult result = ModelLearner(config).learn(trace);
  ASSERT_TRUE(result.success) << what;
  std::istringstream proof(proof_stream.str());
  const sat::DratCheckResult check =
      sat::check_drat(sat::CnfFormula{}, proof, {});
  ASSERT_TRUE(check.ok) << what << ": line " << check.error_line << ": "
                        << check.error;
  // Every learn ends by accepting a model, so at least one epoch concluded
  // SAT; growing past the initial state count concludes UNSAT epochs first.
  EXPECT_GE(check.epochs_concluded_sat, 1u) << what;
  if (result.states > config.initial_states) {
    EXPECT_GE(check.epochs_concluded_unsat, 1u) << what;
  }
}

TEST(ProofCarryingLearnRun, RtlinuxSchedulerPersistent) {
  expect_checked_learn_run(sim::generate_full_coverage_sched_trace(4000), true,
                           "rtlinux-persistent");
}

TEST(ProofCarryingLearnRun, UsbAttachFreshPerN) {
  expect_checked_learn_run(sim::generate_usb_attach_trace(), false,
                           "usb-attach-fresh");
}

// ---------------------------------------------------------------------------
// The Table-1 lever, measured: on the rtlinux (Linux scheduler) encoding
// with its CEGIS-discovered forbidden words, star compression plus
// preprocessing must shrink the clause count by >= 30% relative to the
// direct encoding — with the verdict unchanged.

TEST(PreprocessorReduction, RtlinuxEncodingShrinksAtLeast30Percent) {
  const Trace trace = sim::generate_full_coverage_sched_trace(20165);
  AbstractionConfig abs_config;
  const PredicateSequence preds = abstract_trace(trace, abs_config);
  const std::vector<Segment> segments = segment_sequence(preds.seq, 3);
  const ComplianceChecker checker(preds.seq, 2);

  // Collect the forbidden words a CEGIS run discovers, using the compressed
  // configuration to drive the loop.
  std::set<std::vector<PredId>> forbidden;
  Nfa model(1, 0);
  {
    CspOptions options;
    AutomatonCsp csp(segments, preds.vocab.size(), 8, options);
    for (;;) {
      ASSERT_EQ(csp.solve(), SolveResult::Sat);
      model = csp.extract_model();
      const ComplianceResult compliance = checker.check(model);
      if (compliance.compliant) break;
      std::size_t added = 0;
      for (const auto& word : compliance.invalid_sequences) {
        if (forbidden.insert(word).second) {
          csp.add_forbidden_sequence(word);
          ++added;
        }
      }
      ASSERT_GT(added, 0u) << "refinement stalled";
      ASSERT_LT(forbidden.size(), 4096u) << "runaway refinement";
    }
  }
  ASSERT_GT(forbidden.size(), 0u) << "no forbidden words: reduction unmeasurable";

  // Direct reference: no star compression, no preprocessing.
  CspOptions direct_options;
  direct_options.compress_forbidden = false;
  AutomatonCsp direct(segments, preds.vocab.size(), 8, direct_options);
  for (const auto& word : forbidden) direct.add_forbidden_sequence(word);
  ASSERT_EQ(direct.solve(), SolveResult::Sat);
  const std::size_t direct_clauses = direct.num_clauses();

  // Production: star compression + preprocessing (solve() triggers it).
  CspOptions production_options;
  production_options.preprocess = true;
  AutomatonCsp production(segments, preds.vocab.size(), 8, production_options);
  for (const auto& word : forbidden) production.add_forbidden_sequence(word);
  ASSERT_EQ(production.solve(), SolveResult::Sat);
  const std::size_t production_clauses = production.num_clauses();

  EXPECT_LE(production_clauses, direct_clauses - direct_clauses * 3 / 10)
      << "direct=" << direct_clauses << " production=" << production_clauses;

  // Both models are valid for the same instance.
  const Nfa direct_model = direct.extract_model();
  const Nfa production_model = production.extract_model();
  EXPECT_TRUE(direct_model.deterministic_per_predicate());
  EXPECT_TRUE(production_model.deterministic_per_predicate());
  EXPECT_TRUE(checker.check(direct_model).compliant);
  EXPECT_TRUE(checker.check(production_model).compliant);
}

}  // namespace
}  // namespace t2m
