#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/expr/printer.h"
#include "src/synth/guard_synth.h"

namespace t2m {
namespace {

Schema counter_schema() {
  Schema s;
  s.add_int("x");
  return s;
}

Schema integrator_schema() {
  Schema s;
  s.add_int("ip");
  s.add_int("op");
  return s;
}

std::vector<GuardExample> counter_examples(std::int64_t positive,
                                           std::initializer_list<std::int64_t> negatives) {
  std::vector<GuardExample> out;
  out.push_back({{Value::of_int(positive)}, true});
  for (const std::int64_t n : negatives) out.push_back({{Value::of_int(n)}, false});
  return out;
}

TEST(GuardSynth, PeakThresholdGuard) {
  // The counter's peak: separate 128 from everything below (Fig. 5).
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = counter_examples(128, {});
  for (std::int64_t v = 2; v <= 127; ++v) {
    examples.push_back({{Value::of_int(v)}, false});
  }
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  EXPECT_EQ(to_string(*g, s), "x >= 128");
}

TEST(GuardSynth, TroughThresholdGuard) {
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = counter_examples(1, {});
  for (std::int64_t v = 2; v <= 128; ++v) {
    examples.push_back({{Value::of_int(v)}, false});
  }
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  EXPECT_EQ(to_string(*g, s), "x <= 1");
}

TEST(GuardSynth, ConjunctionWhenOneAtomInsufficient) {
  // Integrator saturation: (ip, op) = (1, 5) vs (0, 5), (1, 4), ...
  const Schema s = integrator_schema();
  std::vector<GuardExample> examples;
  examples.push_back({{Value::of_int(1), Value::of_int(5)}, true});
  examples.push_back({{Value::of_int(0), Value::of_int(5)}, false});
  examples.push_back({{Value::of_int(-1), Value::of_int(5)}, false});
  examples.push_back({{Value::of_int(1), Value::of_int(4)}, false});
  examples.push_back({{Value::of_int(0), Value::of_int(0)}, false});
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  // Must hold on the positive, fail on all negatives.
  for (const GuardExample& ex : examples) {
    EXPECT_EQ(eval_guard(*g, ex.obs), ex.positive);
  }
  EXPECT_EQ(g->op(), ExprOp::And);
}

TEST(GuardSynth, DisjunctionAcrossClusters) {
  // Two positive clusters (both saturations) need an OR of conjunctions.
  const Schema s = integrator_schema();
  std::vector<GuardExample> examples;
  examples.push_back({{Value::of_int(1), Value::of_int(5)}, true});
  examples.push_back({{Value::of_int(-1), Value::of_int(-5)}, true});
  for (std::int64_t ip = -1; ip <= 1; ++ip) {
    for (std::int64_t op = -4; op <= 4; ++op) {
      examples.push_back({{Value::of_int(ip), Value::of_int(op)}, false});
    }
  }
  examples.push_back({{Value::of_int(0), Value::of_int(5)}, false});
  examples.push_back({{Value::of_int(0), Value::of_int(-5)}, false});
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  EXPECT_EQ(g->op(), ExprOp::Or);
  for (const GuardExample& ex : examples) {
    EXPECT_EQ(eval_guard(*g, ex.obs), ex.positive) << to_string(*g, s);
  }
}

TEST(GuardSynth, CategoricalAtom) {
  Schema s;
  s.add_cat("ev", {"idle", "read", "write"}, "idle");
  std::vector<GuardExample> examples;
  examples.push_back({{Value::of_sym(1)}, true});
  examples.push_back({{Value::of_sym(0)}, false});
  examples.push_back({{Value::of_sym(2)}, false});
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  EXPECT_EQ(to_string(*g, s), "ev = read");
}

TEST(GuardSynth, ConflictingLabelsFail) {
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = {
      {{Value::of_int(5)}, true},
      {{Value::of_int(5)}, false},
  };
  EXPECT_FALSE(GuardSynth(s).synthesize(examples));
}

TEST(GuardSynth, NoPositivesFail) {
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = {{{Value::of_int(5)}, false}};
  EXPECT_FALSE(GuardSynth(s).synthesize(examples));
}

TEST(GuardSynth, NoNegativesGivesTrue) {
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = {{{Value::of_int(5)}, true}};
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  EXPECT_TRUE(eval_guard(*g, {Value::of_int(99)}));
}

/// Property sweep: the guard always separates for threshold-style data.
class GuardThreshold : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GuardThreshold, SeparatesTopValue) {
  const std::int64_t top = GetParam();
  const Schema s = counter_schema();
  std::vector<GuardExample> examples = counter_examples(top, {});
  for (std::int64_t v = 1; v < top; ++v) {
    examples.push_back({{Value::of_int(v)}, false});
  }
  const ExprPtr g = GuardSynth(s).synthesize(examples);
  ASSERT_TRUE(g);
  for (const GuardExample& ex : examples) {
    EXPECT_EQ(eval_guard(*g, ex.obs), ex.positive);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, GuardThreshold,
                         ::testing::Values(2, 8, 16, 64, 128, 1000));

}  // namespace
}  // namespace t2m
