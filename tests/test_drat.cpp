// Unit tests of the forward DRAT checker (src/sat/drat_check.h) against
// handcrafted proofs — the semantics of every line kind in the extended
// format (lemma, deletion, "i" axiom, restart, solve/assume/conclude
// markers) — plus solver round trips: every proof the solver emits must
// verify, and verification must be meaningful (tampered proofs rejected).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/sat/dimacs.h"
#include "src/sat/drat_check.h"
#include "src/sat/preprocessor.h"
#include "src/sat/proof_log.h"
#include "src/sat/solver.h"
#include "src/util/rng.h"

namespace t2m::sat {
namespace {

DratCheckResult check(const std::string& proof_text,
                      const CnfFormula& cnf = CnfFormula{},
                      const DratCheckOptions& options = {}) {
  std::istringstream proof(proof_text);
  return check_drat(cnf, proof, options);
}

CnfFormula cnf_of(std::size_t num_vars, std::vector<Clause> clauses) {
  CnfFormula f;
  f.num_vars = num_vars;
  f.clauses = std::move(clauses);
  return f;
}

TEST(DratCheck, AcceptsRupDerivationToEmptyClause) {
  // x1 xor-like square: {2} is RUP, and adding it propagates to a root
  // conflict, so the empty clause is then trivially accepted.
  const CnfFormula f = cnf_of(2, {{pos(0), pos(1)},
                                  {neg(0), pos(1)},
                                  {pos(0), neg(1)},
                                  {neg(0), neg(1)}});
  DratCheckOptions options;
  options.require_empty_clause = true;
  const DratCheckResult r = check("2 0\n0\n", f, options);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lemmas_checked, 2u);
  EXPECT_EQ(r.rat_lemmas, 0u);
  EXPECT_EQ(r.axioms, 4u);
  EXPECT_TRUE(r.empty_clause_derived);
}

TEST(DratCheck, RejectsLemmaThatIsNeitherRupNorRat) {
  const CnfFormula f = cnf_of(2, {{pos(0), pos(1)}, {neg(0), neg(1)}});
  const DratCheckResult r = check("1 0\n", f);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_line, 1u);
  EXPECT_NE(r.error.find("neither RUP nor RAT"), std::string::npos) << r.error;
}

TEST(DratCheck, RatFallbackAcceptsNonRupLemma) {
  // Against {-1 2}, the lemma {1 -2} is not RUP (assuming -1, 2 satisfies
  // the only clause) but is RAT on pivot 1: the sole resolvent {-2, 2} is a
  // tautology.
  const CnfFormula f = cnf_of(2, {{neg(0), pos(1)}});
  const DratCheckResult r = check("1 -2 0\n", f);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lemmas_checked, 1u);
  EXPECT_EQ(r.rat_lemmas, 1u);
}

TEST(DratCheck, RequireEmptyClauseRejectsIncompleteProof) {
  const CnfFormula f = cnf_of(2, {{pos(0), pos(1)}, {neg(0), pos(1)}});
  DratCheckOptions options;
  options.require_empty_clause = true;
  const DratCheckResult r = check("2 0\n", f, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("empty clause"), std::string::npos) << r.error;
}

TEST(DratCheck, DeletionsMatchedSkippedAndUnitPreserving) {
  // A matched deletion retires the clause; unit and unmatched deletions are
  // advisory no-ops (drat-trim convention).
  const CnfFormula f = cnf_of(3, {{pos(0), pos(1)}, {pos(2)}});
  const DratCheckResult r = check("d 1 2 0\nd 3 0\nd 1 9 0\n", f);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.deletions, 1u);
  EXPECT_EQ(r.skipped_deletions, 2u);
}

TEST(DratCheck, DeletedClauseNoLongerSupportsLemmas) {
  // {2} is RUP via {1 2} + {-1 2}. After deleting {1 2} it is not RUP, and
  // the {-2 ...} clauses keep the RAT check non-vacuous: the resolvent {3}
  // fails RUP against the remaining database, so the lemma is rejected.
  const CnfFormula f = cnf_of(3, {{pos(0), pos(1)},
                                  {neg(0), pos(1)},
                                  {neg(1), pos(2)},
                                  {neg(1), neg(2)}});
  EXPECT_TRUE(check("2 0\n", f).ok);
  const DratCheckResult r = check("d 1 2 0\n2 0\n", f);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_line, 2u);
}

TEST(DratCheck, IncrementalAxiomsMakeProofSelfContained) {
  // The same refutation as AcceptsRupDerivation, but the formula arrives via
  // "i" lines in the proof stream instead of a DIMACS file.
  const std::string proof =
      "i 1 2 0\ni -1 2 0\ni 1 -2 0\ni -1 -2 0\n2 0\n0\n";
  DratCheckOptions options;
  options.require_empty_clause = true;
  const DratCheckResult r = check(proof, CnfFormula{}, options);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.axioms, 4u);
  EXPECT_TRUE(r.empty_clause_derived);
}

TEST(DratCheck, RestartClearsTheDatabase) {
  // Before the restart the units 1, -1 conflict, so the empty clause is
  // derivable; after the restart the database is empty and it must not be.
  EXPECT_TRUE(check("i 1 0\ni -1 0\n0\n").ok);
  const DratCheckResult r = check("i 1 0\ni -1 0\n0\nc restart 0\n0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_line, 5u);
  EXPECT_EQ(r.restarts, 1u);
}

TEST(DratCheck, EpochMarkersValidateAssumptionCores) {
  // Under assumption 1 the formula {-1 2, -2 -1} is UNSAT with core {-1};
  // without assumptions it is SAT. The conclusion lines must check against
  // the declared assumptions and the verified database.
  const std::string proof =
      "i -1 2 0\n"
      "i -2 -1 0\n"
      "c solve 0 0\n"
      "c assume 1 0\n"
      "-1 0\n"
      "c conclude unsat -1 0\n"
      "c solve 1 0\n"
      "c conclude sat 0\n";
  const DratCheckResult r = check(proof);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.epochs_concluded_unsat, 1u);
  EXPECT_EQ(r.epochs_concluded_sat, 1u);
  EXPECT_EQ(r.lemmas_checked, 1u);
}

TEST(DratCheck, RejectsCoreNotNegatingAssumptions) {
  // {-2} is a perfectly valid lemma here, but concluding unsat with it is
  // wrong: -2 does not negate the declared assumption 1.
  const std::string proof =
      "i -1 2 0\n"
      "i -2 0\n"
      "c assume 1 0\n"
      "c conclude unsat -2 0\n";
  const DratCheckResult r = check(proof);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("does not negate"), std::string::npos) << r.error;
}

TEST(DratCheck, RejectsUnsatConclusionClauseOutsideDatabase) {
  const std::string proof =
      "i -1 2 0\n"
      "c assume 1 0\n"
      "c conclude unsat -1 0\n";
  const DratCheckResult r = check(proof);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not in the verified database"), std::string::npos)
      << r.error;
}

TEST(DratCheck, RejectsSatConclusionAfterRootConflict) {
  const DratCheckResult r = check("i 1 0\ni -1 0\nc conclude sat 0\n");
  EXPECT_FALSE(r.ok);
}

TEST(DratCheck, UnknownConclusionAndCommentsAreBenign) {
  const DratCheckResult r =
      check("c just a comment\nc conclude unknown 0\ni 1 0\n");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.epochs_concluded_unknown, 1u);
}

TEST(DratCheck, RejectsUnterminatedProofLine) {
  const DratCheckResult r = check("1 2\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing 0 terminator"), std::string::npos) << r.error;
}

// ---------------------------------------------------------------------------
// Solver round trips: randomized CNFs near the satisfiability threshold,
// solved with proof logging and preprocessing on — every emitted proof must
// verify, UNSAT runs must certify unconditionally, and SAT runs must pass
// the model audit (including reconstruction over BVE-eliminated variables).

TEST(DratCheckSolverRoundTrip, RandomCnfsWithPreprocessing) {
  std::size_t unsat_seen = 0;
  std::size_t sat_seen = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const std::size_t num_vars = 5 + rng.below(16);
    // Around the satisfiability threshold half the time, well under it
    // otherwise, so both verdicts occur (asserted below).
    const std::size_t num_clauses =
        rng.chance(0.5) ? num_vars * 4 + rng.below(num_vars)
                        : 2 + rng.below(num_vars * 2);
    std::ostringstream trace;
    ProofLog log(trace);
    Solver s;
    SolverConfig config;
    config.proof_log = &log;
    config.keep_originals = true;
    s.set_config(config);
    s.new_vars(static_cast<Var>(num_vars));
    for (std::size_t i = 0; i < num_clauses; ++i) {
      Clause c;
      const std::size_t len = 1 + rng.below(4);
      for (std::size_t j = 0; j < len; ++j) {
        const auto v = static_cast<Var>(rng.below(num_vars));
        c.push_back(rng.chance(0.5) ? pos(v) : neg(v));
      }
      s.add_clause(c);
    }
    const bool pre_ok = s.preprocess(PreprocessOptions{});
    const SolveResult res = pre_ok ? s.solve() : SolveResult::Unsat;
    std::istringstream proof(trace.str());
    DratCheckOptions options;
    options.require_empty_clause = (res == SolveResult::Unsat);
    const DratCheckResult r = check_drat(CnfFormula{}, proof, options);
    ASSERT_TRUE(r.ok) << "seed=" << seed << ": " << r.error;
    if (res == SolveResult::Unsat) {
      ++unsat_seen;
      EXPECT_TRUE(r.empty_clause_derived) << "seed=" << seed;
    } else {
      ++sat_seen;
      const Status audit = s.verify_model();
      EXPECT_TRUE(audit.ok()) << "seed=" << seed << ": " << audit.message();
    }
    EXPECT_TRUE(s.check_invariants().ok()) << "seed=" << seed;
  }
  // The threshold mix must actually exercise both verdicts.
  EXPECT_GT(unsat_seen, 0u);
  EXPECT_GT(sat_seen, 0u);
}

TEST(DratCheckSolverRoundTrip, IncrementalEpochsOverSharedClauses) {
  // One solver, several assumption epochs: chain x0 -> x1 -> ... -> x7 plus
  // ~x0 | ~x7. Assuming x0 is UNSAT; assuming ~x0 or nothing is SAT. Learned
  // clause reduction and restarts happen naturally across epochs.
  std::ostringstream trace;
  ProofLog log(trace);
  Solver s;
  SolverConfig config;
  config.proof_log = &log;
  config.keep_originals = true;
  s.set_config(config);
  const Var base = s.new_vars(8);
  for (Var v = 0; v + 1 < 8; ++v) {
    s.add_clause({neg(base + v), pos(base + v + 1)});
  }
  s.add_clause({neg(base), neg(base + 7)});
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(base)}), SolveResult::Unsat);
  EXPECT_EQ(s.solve(std::vector<Lit>{neg(base)}), SolveResult::Sat);
  EXPECT_TRUE(s.verify_model().ok());
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  const DratCheckResult r = check(trace.str());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.epochs_concluded_unsat, 1u);
  EXPECT_EQ(r.epochs_concluded_sat, 2u);
}

TEST(DratCheckSolverRoundTrip, TamperedProofIsRejected) {
  // Truncate a genuine UNSAT proof before its conclusion and splice in a
  // foreign lemma: verification must fail rather than wave it through.
  std::ostringstream trace;
  ProofLog log(trace);
  Solver s;
  SolverConfig config;
  config.proof_log = &log;
  s.set_config(config);
  const Var base = s.new_vars(2);
  s.add_clause({pos(base), pos(base + 1)});
  s.add_clause({neg(base), neg(base + 1)});
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  // {1} fails RUP against {1 2, -1 -2}, and its sole RAT resolvent {-2}
  // fails RUP too (a merely satisfiability-preserving lemma would NOT be
  // rejected — DRAT admits any RAT addition).
  const DratCheckResult r = check(trace.str() + "1 0\n");
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace t2m::sat
