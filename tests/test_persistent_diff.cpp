// Differential test of the persistent-solver learn path (one guarded SAT
// instance across the whole N-increment loop) against the fresh-CSP-per-N
// reference, in the style of tests/test_compliance_diff.cpp.
//
// The two paths may find different (equally valid) intermediate models, so
// their refinement trajectories can differ; what is invariant is the final
// verdict: the minimal compliant state count N. Both returned models must
// additionally be deterministic, embed every segment, and pass the same
// compliance check.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/core/segmentation.h"
#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

Trace event_trace(const std::vector<std::string>& events,
                  const std::vector<std::string>& alphabet) {
  TraceRecorder rec;
  std::vector<std::string> symbols = alphabet;
  symbols.insert(symbols.begin(), "__start");
  const VarIndex ev = rec.declare_cat("ev", std::move(symbols), "__start");
  rec.commit();
  for (const auto& e : events) {
    rec.set_sym(ev, e);
    rec.commit();
  }
  return rec.take();
}

Trace random_trace(Rng& rng, std::size_t min_len, std::size_t max_len,
                   std::size_t alphabet_size) {
  static const std::vector<std::string> kSymbols = {"a", "b", "c", "d", "e"};
  const std::vector<std::string> alphabet(kSymbols.begin(),
                                          kSymbols.begin() + alphabet_size);
  const std::size_t len = min_len + rng.below(max_len - min_len + 1);
  std::vector<std::string> events;
  events.reserve(len);
  // Mix of structured repetition (so small automata exist and refinement has
  // something to converge to) and noise (so compliance counterexamples and
  // state growth actually occur).
  std::vector<std::string> motif;
  const std::size_t motif_len = 2 + rng.below(4);
  for (std::size_t i = 0; i < motif_len; ++i) {
    motif.push_back(alphabet[rng.below(alphabet.size())]);
  }
  std::size_t at = 0;
  while (events.size() < len) {
    if (rng.chance(0.8)) {
      events.push_back(motif[at++ % motif.size()]);
    } else {
      events.push_back(alphabet[rng.below(alphabet.size())]);
    }
  }
  return event_trace(events, alphabet);
}

void expect_equivalent(const LearnResult& persistent, const LearnResult& fresh,
                       const LearnerConfig& config, const std::string& what) {
  ASSERT_EQ(persistent.success, fresh.success) << what;
  ASSERT_EQ(persistent.timed_out, fresh.timed_out) << what;
  if (!persistent.success) return;
  EXPECT_EQ(persistent.states, fresh.states) << what;
  for (const LearnResult* r : {&persistent, &fresh}) {
    EXPECT_TRUE(r->model.deterministic_per_predicate()) << what;
    const ComplianceResult c =
        check_compliance(r->model, r->preds.seq, config.compliance_length);
    EXPECT_TRUE(c.compliant) << what;
    const std::vector<Segment> segments =
        segment_sequence(r->preds.seq, config.window);
    for (const Segment& seg : segments) {
      std::set<StateId> all;
      for (StateId s = 0; s < r->model.num_states(); ++s) all.insert(s);
      EXPECT_TRUE(r->model.accepts_from(all, seg)) << what << " segment not embedded";
    }
  }
}

TEST(PersistentDiff, RandomisedAgainstFreshPerN) {
  // >= 500 randomised predicate sequences through both learn paths,
  // including runs that exercise acceptance blocking (the default config
  // blocks non-accepting siblings) and state growth from N = 2.
  Rng rng(4242);
  int cases = 0;
  for (int round = 0; round < 500; ++round) {
    const std::size_t alphabet_size = 2 + rng.below(3);
    const Trace t = random_trace(rng, 6, 28, alphabet_size);
    LearnerConfig config;
    config.max_states = 12;
    config.window = 2 + rng.below(2);
    LearnerConfig fresh_config = config;
    fresh_config.persistent_solver = false;
    config.persistent_solver = true;
    // Tight headroom on some rounds forces the mid-run capacity rebuild.
    config.state_headroom = rng.chance(0.3) ? 1 : 6;
    const LearnResult persistent = ModelLearner(config).learn(t);
    const LearnResult fresh = ModelLearner(fresh_config).learn(t);
    expect_equivalent(persistent, fresh, config,
                      "round=" + std::to_string(round));
    if (persistent.success) {
      // Every state increment was served by an in-place grow or (beyond the
      // headroom) by one capacity rebuild — never by a per-N reconstruction.
      EXPECT_EQ(persistent.stats.csp_grows + persistent.stats.csp_builds - 1,
                persistent.stats.state_increments)
          << "round=" << round;
    }
    ++cases;
  }
  EXPECT_GE(cases, 500);
}

TEST(PersistentDiff, AcceptanceBlockingPathAgrees) {
  // A tiny block budget exercises both the blocking and the relaxation
  // branches; final N must still agree.
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const Trace t = random_trace(rng, 8, 24, 3);
    LearnerConfig config;
    config.max_states = 10;
    config.max_acceptance_blocks = 1 + rng.below(3);
    LearnerConfig fresh_config = config;
    fresh_config.persistent_solver = false;
    const LearnResult persistent = ModelLearner(config).learn(t);
    const LearnResult fresh = ModelLearner(fresh_config).learn(t);
    expect_equivalent(persistent, fresh, config,
                      "blocks round=" + std::to_string(round));
  }
}

TEST(PersistentDiff, TimeoutPathReportsCleanly) {
  // Both paths must degrade to a clean timed_out result under an
  // effectively-zero budget — no crash, no stale model.
  Rng rng(11);
  const Trace t = random_trace(rng, 400, 600, 4);
  for (const bool persistent : {true, false}) {
    LearnerConfig config;
    config.persistent_solver = persistent;
    config.timeout_seconds = 1e-9;
    const LearnResult r = ModelLearner(config).learn(t);
    EXPECT_FALSE(r.success) << "persistent=" << persistent;
    EXPECT_TRUE(r.timed_out) << "persistent=" << persistent;
  }
}

TEST(PersistentDiff, PersistentReusesOneSolver) {
  // A growth-heavy input must report one CSP build and N-1 grows (no
  // capacity rebuilds at default headroom), while the fresh path builds one
  // CSP per state count.
  const Trace t = event_trace({"a", "b", "c", "d", "a", "b", "c", "d"},
                              {"a", "b", "c", "d"});
  LearnerConfig config;
  const LearnResult persistent = ModelLearner(config).learn(t);
  ASSERT_TRUE(persistent.success);
  EXPECT_EQ(persistent.stats.csp_builds, 1u);
  EXPECT_EQ(persistent.stats.csp_grows, persistent.stats.state_increments);
  config.persistent_solver = false;
  const LearnResult fresh = ModelLearner(config).learn(t);
  ASSERT_TRUE(fresh.success);
  EXPECT_EQ(fresh.stats.csp_grows, 0u);
  EXPECT_EQ(fresh.stats.csp_builds, fresh.stats.state_increments + 1);
}

}  // namespace
}  // namespace t2m
