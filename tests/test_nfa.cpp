#include <gtest/gtest.h>

#include "src/automaton/dot.h"
#include "src/automaton/isomorphism.h"
#include "src/automaton/nfa.h"
#include "src/automaton/ops.h"

namespace t2m {
namespace {

/// The counter-shaped 4-state model used across these tests:
/// 0 -p0-> 0, 0 -p1-> 1, 1 -p2-> 2, 2 -p2-> 2, 2 -p3-> 3, 3 -p0-> 0.
Nfa counter_like() {
  Nfa m(4, 0);
  m.add_transition(0, 0, 0);
  m.add_transition(0, 1, 1);
  m.add_transition(1, 2, 2);
  m.add_transition(2, 2, 2);
  m.add_transition(2, 3, 3);
  m.add_transition(3, 0, 0);
  m.set_pred_names({"up", "peak", "down", "trough"});
  return m;
}

TEST(Nfa, BasicShape) {
  const Nfa m = counter_like();
  EXPECT_EQ(m.num_states(), 4u);
  EXPECT_EQ(m.num_transitions(), 6u);
  EXPECT_EQ(m.successors(0, 0), std::vector<StateId>{0});
  EXPECT_EQ(m.successors(0, 1), std::vector<StateId>{1});
  EXPECT_TRUE(m.successors(1, 0).empty());
  EXPECT_EQ(m.transitions_from(2).size(), 2u);
}

TEST(Nfa, DuplicateTransitionsIgnored) {
  Nfa m(2, 0);
  m.add_transition(0, 0, 1);
  m.add_transition(0, 0, 1);
  EXPECT_EQ(m.num_transitions(), 1u);
}

TEST(Nfa, GrowsStatesOnDemand) {
  Nfa m(1, 0);
  m.add_transition(0, 0, 5);
  EXPECT_EQ(m.num_states(), 6u);
}

TEST(Nfa, DeterminismCheck) {
  Nfa m = counter_like();
  EXPECT_TRUE(m.deterministic_per_predicate());
  m.add_transition(0, 0, 2);  // second target for (0, up)
  EXPECT_FALSE(m.deterministic_per_predicate());
}

TEST(Nfa, AcceptsByDeadEndSemantics) {
  const Nfa m = counter_like();
  const PredId word_ok[] = {0, 0, 1, 2, 2, 3, 0};
  EXPECT_TRUE(m.accepts(word_ok));
  const PredId word_bad[] = {0, 2};  // down directly after up
  EXPECT_FALSE(m.accepts(word_bad));
  EXPECT_TRUE(m.accepts({}));  // empty word: all states accepting
}

TEST(Nfa, AcceptsFromAnyState) {
  const Nfa m = counter_like();
  const PredId word[] = {2, 3};
  EXPECT_FALSE(m.accepts(word));  // not from the initial state
  std::set<StateId> everywhere = {0, 1, 2, 3};
  EXPECT_TRUE(m.accepts_from(everywhere, word));
}

TEST(Nfa, Reachability) {
  Nfa m(4, 0);
  m.add_transition(0, 0, 1);
  m.add_transition(1, 1, 0);
  m.add_transition(3, 0, 2);  // island
  const auto reach = m.reachable_states();
  EXPECT_EQ(reach, (std::set<StateId>{0, 1}));
}

TEST(Ops, TransitionSequences) {
  const Nfa m = counter_like();
  const auto paths = transition_sequences(m, 2);
  EXPECT_TRUE(paths.count({0, 0}));
  EXPECT_TRUE(paths.count({0, 1}));
  EXPECT_TRUE(paths.count({1, 2}));
  EXPECT_TRUE(paths.count({3, 0}));
  EXPECT_FALSE(paths.count({0, 2}));
  EXPECT_FALSE(paths.count({1, 1}));
  // Length-1 sequences are just the used predicates on edges.
  EXPECT_EQ(transition_sequences(m, 1).size(), 4u);
}

TEST(Ops, Subsequences) {
  const std::vector<PredId> seq = {0, 0, 1, 2, 2, 3};
  const auto subs = subsequences(seq, 2);
  EXPECT_EQ(subs.size(), 5u);  // {(0,0), (0,1), (1,2), (2,2), (2,3)}
  EXPECT_TRUE(subs.count({0, 0}));
  EXPECT_TRUE(subs.count({2, 3}));
  EXPECT_TRUE(subsequences(seq, 7).empty());
  EXPECT_TRUE(subsequences(seq, 0).empty());
}

TEST(Ops, CanonicalizeDropsUnreachableAndRenumbers) {
  Nfa m(5, 3);
  m.add_transition(3, 0, 4);
  m.add_transition(4, 1, 3);
  m.add_transition(1, 0, 2);  // unreachable island
  m.set_pred_names({"a", "b"});
  const Nfa canon = canonicalize(m);
  EXPECT_EQ(canon.num_states(), 2u);
  EXPECT_EQ(canon.initial(), 0u);
  EXPECT_EQ(canon.num_transitions(), 2u);
}

TEST(Isomorphism, DetectsRenaming) {
  const Nfa a = counter_like();
  // Same structure, states permuted.
  Nfa b(4, 2);
  b.add_transition(2, 0, 2);
  b.add_transition(2, 1, 0);
  b.add_transition(0, 2, 3);
  b.add_transition(3, 2, 3);
  b.add_transition(3, 3, 1);
  b.add_transition(1, 0, 2);
  b.set_pred_names({"up", "peak", "down", "trough"});
  EXPECT_TRUE(isomorphic(a, b));
  EXPECT_TRUE(isomorphic_by_pred_id(a, b));
}

TEST(Isomorphism, RejectsDifferentStructure) {
  const Nfa a = counter_like();
  Nfa c = counter_like();
  c.add_transition(1, 3, 0);  // extra edge
  EXPECT_FALSE(isomorphic(a, c));

  Nfa d(4, 0);  // same sizes, different wiring
  d.add_transition(0, 0, 1);
  d.add_transition(1, 1, 2);
  d.add_transition(2, 2, 3);
  d.add_transition(3, 3, 0);
  d.add_transition(0, 2, 0);
  d.add_transition(2, 0, 2);
  d.set_pred_names({"up", "peak", "down", "trough"});
  EXPECT_FALSE(isomorphic(a, d));
}

TEST(Isomorphism, MatchesByNameAcrossVocabularies) {
  Nfa a(2, 0);
  a.add_transition(0, 0, 1);
  a.set_pred_names({"go"});
  Nfa b(2, 0);
  b.add_transition(0, 5, 1);
  std::vector<std::string> names(6);
  names[5] = "go";
  b.set_pred_names(names);
  EXPECT_TRUE(isomorphic(a, b));
  EXPECT_FALSE(isomorphic_by_pred_id(a, b));
}

TEST(Dot, ContainsStatesAndMergedLabels) {
  Nfa m(2, 0);
  m.add_transition(0, 0, 1);
  m.add_transition(0, 1, 1);
  m.set_pred_names({"a", "b"});
  const std::string dot = to_dot(m, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("q1 -> q2"), std::string::npos);
  EXPECT_NE(dot.find("a\\nb"), std::string::npos);  // parallel edges merged
  EXPECT_NE(dot.find("__start -> q1"), std::string::npos);
}

TEST(Dot, TextRendering) {
  const std::string text = to_text(counter_like());
  EXPECT_NE(text.find("states: 4"), std::string::npos);
  EXPECT_NE(text.find("q1 --[up]--> q1"), std::string::npos);
}

}  // namespace
}  // namespace t2m
