#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/ftrace_io.h"
#include "src/trace/recorder.h"
#include "src/trace/text_io.h"
#include "src/trace/trace.h"

namespace t2m {
namespace {

TEST(Trace, AppendAndAccess) {
  Schema s;
  s.add_int("x");
  Trace trace(std::move(s));
  trace.append({Value::of_int(1)});
  trace.append({Value::of_int(2)});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.num_steps(), 1u);
  EXPECT_EQ(trace.step_cur(0)[0], Value::of_int(1));
  EXPECT_EQ(trace.step_next(0)[0], Value::of_int(2));
  EXPECT_EQ(trace.format_obs(0), "x=1");
}

TEST(Trace, WidthMismatchThrows) {
  Schema s;
  s.add_int("x");
  s.add_int("y");
  Trace trace(std::move(s));
  EXPECT_THROW(trace.append({Value::of_int(1)}), std::invalid_argument);
}

TEST(Trace, Prefix) {
  Schema s;
  s.add_int("x");
  Trace trace(std::move(s));
  for (int i = 0; i < 10; ++i) trace.append({Value::of_int(i)});
  const Trace p = trace.prefix(4);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.obs(3)[0], Value::of_int(3));
  EXPECT_EQ(trace.prefix(100).size(), 10u);
}

TEST(Recorder, KeepsValuesAcrossCommits) {
  TraceRecorder rec;
  const VarIndex x = rec.declare_int("x", 5);
  const VarIndex ev = rec.declare_cat("ev", {"a", "b"}, "a");
  rec.commit();
  rec.set_sym(ev, "b");
  rec.commit();  // x carries over
  const Trace t = rec.take();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.obs(0)[x], Value::of_int(5));
  EXPECT_EQ(t.obs(1)[x], Value::of_int(5));
  EXPECT_EQ(t.obs(0)[ev], Value::of_sym(0));
  EXPECT_EQ(t.obs(1)[ev], Value::of_sym(1));
}

TEST(Recorder, DeclareAfterCommitThrows) {
  TraceRecorder rec;
  rec.declare_int("x");
  rec.commit();
  EXPECT_THROW(rec.declare_int("y"), std::logic_error);
}

TEST(TextIo, RoundTrip) {
  TraceRecorder rec;
  const VarIndex x = rec.declare_int("x");
  const VarIndex b = rec.declare_bool("busy");
  const VarIndex ev = rec.declare_cat("ev", {"idle", "go"}, "idle");
  for (int i = 0; i < 5; ++i) {
    rec.set_int(x, i);
    rec.set_bool(b, i % 2 == 0);
    rec.set_sym(ev, i % 2 == 0 ? "go" : "idle");
    rec.commit();
  }
  const Trace original = rec.take();

  std::stringstream ss;
  write_trace_text(ss, original);
  const Trace back = read_trace_text(ss);

  ASSERT_EQ(back.size(), original.size());
  ASSERT_EQ(back.schema().size(), 3u);
  EXPECT_EQ(back.schema().var(0).name, "x");
  EXPECT_EQ(back.schema().var(1).type, VarType::Bool);
  EXPECT_EQ(back.schema().var(2).type, VarType::Cat);
  EXPECT_EQ(back.schema().var(2).default_sym, std::optional<std::int64_t>(0));
  for (std::size_t t = 0; t < original.size(); ++t) {
    EXPECT_EQ(back.obs(t), original.obs(t)) << "row " << t;
  }
}

TEST(TextIo, InternsUndeclaredSymbols) {
  std::stringstream ss("# var ev cat\nfoo\nbar\nfoo\n");
  const Trace t = read_trace_text(ss);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.obs(0)[0], t.obs(2)[0]);
  EXPECT_NE(t.obs(0)[0], t.obs(1)[0]);
}

TEST(TextIo, RejectsBadRows) {
  std::stringstream ss("# var x int\n1 2\n");
  EXPECT_THROW(read_trace_text(ss), std::invalid_argument);
  std::stringstream late("# var x int\n1\n# var y int\n");
  EXPECT_THROW(read_trace_text(late), std::invalid_argument);
}

TEST(FtraceIo, ParsesFullShape) {
  std::stringstream ss(
      "# tracer: nop\n"
      "pi_stress-1234 [000] d..2 100.000001: sched_waking: comm=x pid=9\n"
      "pi_stress-1234 [000] d..2 100.000002: sched_switch_in: prev=y\n"
      "other-77 [000] d..2 100.000003: sched_entry: cpu=0\n");
  const Trace all = read_ftrace(ss);
  EXPECT_EQ(all.size(), 3u);

  std::stringstream again(
      "pi_stress-1234 [000] d..2 100.000001: sched_waking: comm=x\n"
      "other-77 [000] d..2 100.000003: sched_entry: cpu=0\n");
  const Trace filtered = read_ftrace(again, "pi_stress");
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.schema().format_value(0, filtered.obs(0)[0]), "sched_waking");
}

TEST(FtraceIo, ParsesSimplifiedShapeAndRoundTrips) {
  std::stringstream ss("0.1 sched_waking\n0.2 sched_switch_in extra detail\n");
  const Trace t = read_ftrace(ss);
  ASSERT_EQ(t.size(), 2u);
  std::stringstream out;
  write_ftrace(out, t);
  const Trace back = read_ftrace(out);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.schema().format_value(0, back.obs(1)[0]), "sched_switch_in");
}

TEST(FtraceIo, RejectsDigitFreeTimestamps) {
  // Regression: the simplified-shape "numeric timestamp" check used to
  // accept digit-free tokens, turning data rows like ". foo" into events.
  std::string task, event;
  EXPECT_FALSE(parse_ftrace_line(". foo", task, event));
  EXPECT_FALSE(parse_ftrace_line("... foo", task, event));
  EXPECT_FALSE(parse_ftrace_line(".. sched_waking detail", task, event));
  ASSERT_TRUE(parse_ftrace_line("0.5 sched_waking", task, event));
  EXPECT_EQ(event, "sched_waking");
  ASSERT_TRUE(parse_ftrace_line("12 sched_waking", task, event));
  EXPECT_EQ(event, "sched_waking");
}

TEST(FtraceIo, SimplifiedLineWithColonDetailsIsNotFullShape) {
  // Regression: a simplified line whose details contain both '[' and ": "
  // used to be misparsed as the full ftrace shape (task "1.5", event
  // "retry]"). Full-shape detection is now anchored on the [cpu] field.
  std::string task, event;
  ASSERT_TRUE(parse_ftrace_line("1.5 myevent [note: retry]", task, event));
  EXPECT_TRUE(task.empty());
  EXPECT_EQ(event, "myevent");

  // The genuine full shape still parses, [cpu] anchor and all.
  ASSERT_TRUE(
      parse_ftrace_line("pi_stress-1234 [000] d..2 100.000001: sched_waking: c=x",
                        task, event));
  EXPECT_EQ(task, "pi_stress");
  EXPECT_EQ(event, "sched_waking");

  // A non-numeric bracket field before the colon is not a cpu anchor.
  ASSERT_TRUE(parse_ftrace_line("2.0 evt [k=v] more: detail", task, event));
  EXPECT_EQ(event, "evt");

  // A bracketed number in the details is still not a full-shape anchor: the
  // last pre-colon field must be the timestamp.
  ASSERT_TRUE(parse_ftrace_line("3.0 evt [12] note: detail", task, event));
  EXPECT_EQ(event, "evt");

  // Even "[N] <number>:" in the details does not fake the full shape — the
  // comm head would need a -pid suffix, which a timestamp-led simplified
  // line cannot have.
  ASSERT_TRUE(parse_ftrace_line("1.5 myevent [0] 2.0: detail", task, event));
  EXPECT_TRUE(task.empty());
  EXPECT_EQ(event, "myevent");
  ASSERT_TRUE(parse_ftrace_line("1.5 ev [0] d..2 2.0: note", task, event));
  EXPECT_TRUE(task.empty());
  EXPECT_EQ(event, "ev");
}

TEST(FtraceIo, ParsesFlaglessFullShape) {
  // `trace-cmd report` output omits the flags column; both full shapes
  // must parse.
  std::string task, event;
  ASSERT_TRUE(parse_ftrace_line("pi_stress-1325 [001] 123.456789: sched_switch: x",
                                task, event));
  EXPECT_EQ(task, "pi_stress");
  EXPECT_EQ(event, "sched_switch");
}

TEST(FtraceIo, FullShapeTaskCommMayContainSpaces) {
  // Real sched traces carry comms like "Web Content"; the [cpu] anchor may
  // sit past a multi-word comm and the events must not be dropped.
  std::string task, event;
  ASSERT_TRUE(parse_ftrace_line(
      "Web Content-1234 [000] d..2 1.000000: sched_waking: comm=x", task, event));
  EXPECT_EQ(task, "Web Content");
  EXPECT_EQ(event, "sched_waking");
}

TEST(FtraceIo, RoundTripsHostileSymbolNames) {
  // Regression: symbols containing whitespace or ':' were written verbatim
  // and re-read as different (or dropped) events.
  Schema s;
  s.add_cat("event",
            {"plain", "with space", "colon:name", "a:b c", "tab\tname",
             "line\nbreak", "50%done", "%20", "trail "},
            std::nullopt);
  Trace trace(std::move(s));
  for (std::int64_t i = 0; i < 9; ++i) trace.append({Value::of_sym(i)});

  std::stringstream out;
  write_ftrace(out, trace);
  const Trace back = read_ftrace(out);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(back.schema().format_value(0, back.obs(t)[0]),
              trace.schema().format_value(0, trace.obs(t)[0]))
        << "row " << t;
  }
}

TEST(FtraceIo, EmptySymbolIsRejectedWithClearError) {
  Schema s;
  s.add_cat("event", {""}, std::nullopt);
  Trace trace(std::move(s));
  trace.append({Value::of_sym(0)});
  std::stringstream out;
  EXPECT_THROW(write_ftrace(out, trace), std::invalid_argument);
}

TEST(FtraceIo, EscapeHelpersRoundTrip) {
  EXPECT_EQ(escape_ftrace_symbol("a b:c"), "a%20b%3Ac");
  EXPECT_EQ(unescape_ftrace_symbol("a%20b%3Ac"), "a b:c");
  // A bare '%' that is not a valid escape stays verbatim (legacy files).
  EXPECT_EQ(unescape_ftrace_symbol("95%"), "95%");
  EXPECT_EQ(unescape_ftrace_symbol("%zz"), "%zz");
}

TEST(FtraceIo, SkipsGarbageAndKeepsLaterRows) {
  // Rows after a rejected line must still be read.
  std::stringstream ss(
      "0.1 first\n"
      "not a trace line at all\n"
      "#comment\n"
      ". broken_timestamp\n"
      "0.2 second\n");
  const Trace t = read_ftrace(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.schema().format_value(0, t.obs(1)[0]), "second");
}

TEST(FtraceIo, EmptyInputYieldsEmptyTrace) {
  std::stringstream ss("");
  const Trace t = read_ftrace(ss);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.schema().size(), 1u);
}

TEST(TextIo, EmptyAndHeaderOnlyFiles) {
  std::stringstream empty("");
  const Trace none = read_trace_text(empty);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.schema().size(), 0u);

  std::stringstream header_only("# t2m-trace v1\n# var x int\n# var ev cat A B\n");
  const Trace declared = read_trace_text(header_only);
  EXPECT_TRUE(declared.empty());
  ASSERT_EQ(declared.schema().size(), 2u);
  EXPECT_EQ(declared.schema().var(1).symbols, (std::vector<std::string>{"A", "B"}));
}

}  // namespace
}  // namespace t2m
