// The parallel runtime: thread pool scheduling, fork-join groups, chunked
// parallel-for determinism, per-thread scratch arenas — and the mergeable
// stats the sharded/portfolio drivers aggregate with.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/core/learner.h"
#include "src/parallel/scratch_arena.h"
#include "src/parallel/thread_pool.h"
#include "src/sat/solver.h"
#include "src/util/sync.h"

namespace t2m {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  par::ThreadPool pool(4);
  EXPECT_GE(pool.size(), 4u);
  std::atomic<int> count{0};
  par::TaskGroup group(pool);
  for (int i = 0; i < 1000; ++i) {
    // order: relaxed — counter only; wait() is the synchronisation point.
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, GroupIsReusableAfterWait) {
  par::ThreadPool pool(2);
  par::TaskGroup group(pool);
  std::atomic<int> count{0};
  group.run([&count] { ++count; });
  group.wait();
  group.run([&count] { ++count; });
  group.run([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  par::ThreadPool pool(2);
  par::TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&completed, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ++completed;
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);
  // The group is clean again afterwards.
  group.run([&completed] { ++completed; });
  group.wait();
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, NestedGroupsOnTinyPoolDoNotDeadlock) {
  // A worker blocked in an inner wait() must help drain the pool, or a
  // one-worker pool would deadlock on nesting.
  par::ThreadPool pool(1);
  std::atomic<int> inner_done{0};
  par::TaskGroup outer(pool);
  outer.run([&] {
    par::TaskGroup inner(pool);
    for (int i = 0; i < 4; ++i) {
      inner.run([&inner_done] { ++inner_done; });
    }
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_done.load(), 4);
}

TEST(ThreadPool, EnsureSizeOnlyGrows) {
  par::ThreadPool pool(2);
  const std::size_t before = pool.size();
  pool.ensure_size(1);
  EXPECT_EQ(pool.size(), before);
  pool.ensure_size(before + 2);
  EXPECT_EQ(pool.size(), before + 2);
}

TEST(ForChunks, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{100}}) {
      for (const std::size_t chunks : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
        std::vector<std::atomic<int>> hits(n);
        // order: relaxed — counters only; for_chunks joins before the reads.
        par::for_chunks(threads, n, chunks,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                          }
                        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " n=" << n << " chunks=" << chunks
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ForChunks, ChunkIndicesAreDeterministicRanges) {
  // Results keyed by chunk index must be placement-independent: the ranges
  // are a pure function of (n, chunks).
  std::vector<std::pair<std::size_t, std::size_t>> ranges(5);
  par::for_chunks(4, 103, 5, [&](std::size_t c, std::size_t b, std::size_t e) {
    ranges[c] = {b, e};
  });
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(ranges[c].first, expect_begin);
    EXPECT_GT(ranges[c].second, ranges[c].first);
    expect_begin = ranges[c].second;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ForChunks, ZeroItemsIsANoop) {
  bool called = false;
  par::for_chunks(4, 0, 4, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ScratchArena, BumpAllocatesAndReuses) {
  par::ScratchArena arena;
  int* a = arena.alloc_array<int>(100);
  for (int i = 0; i < 100; ++i) a[i] = i;
  double* b = arena.alloc_array<double>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a[i], i);  // distinct storage
  const std::size_t grown = arena.capacity();
  arena.reset();
  // After reset the same demand fits the retained block: capacity stable.
  arena.alloc_array<int>(100);
  arena.alloc_array<double>(10);
  EXPECT_EQ(arena.capacity(), grown);
}

TEST(ScratchArena, PerThreadInstancesAreDistinct) {
  par::ScratchArena* main_arena = &par::local_scratch();
  par::ScratchArena* other_arena = nullptr;
  Thread t([&other_arena] { other_arena = &par::local_scratch(); });
  t.join();
  EXPECT_NE(main_arena, other_arena);
}

TEST(SolverStatsMerge, CountersAddPeaksMax) {
  sat::SolverStats a;
  a.conflicts = 10;
  a.propagations = 100;
  a.solves = 2;
  a.peak_arena_bytes = 500;
  sat::SolverStats b;
  b.conflicts = 5;
  b.propagations = 50;
  b.solves = 1;
  b.peak_arena_bytes = 900;
  a += b;
  EXPECT_EQ(a.conflicts, 15u);
  EXPECT_EQ(a.propagations, 150u);
  EXPECT_EQ(a.solves, 3u);
  EXPECT_EQ(a.peak_arena_bytes, 900u);
}

TEST(LearnStatsMerge, WorkAddsShapeMaxesFlagsOr) {
  LearnStats a;
  a.sequence_length = 1000;
  a.segments = 20;
  a.sat_calls = 3;
  a.sat_conflicts = 40;
  a.csp_builds = 1;
  a.total_seconds = 2.0;
  LearnStats b;
  b.sequence_length = 1000;  // same shared input
  b.segments = 20;
  b.sat_calls = 5;
  b.sat_conflicts = 60;
  b.csp_builds = 2;
  b.acceptance_relaxed = true;
  b.total_seconds = 3.5;
  a += b;
  EXPECT_EQ(a.sequence_length, 1000u);
  EXPECT_EQ(a.segments, 20u);
  EXPECT_EQ(a.sat_calls, 8u);
  EXPECT_EQ(a.sat_conflicts, 100u);
  EXPECT_EQ(a.csp_builds, 3u);
  EXPECT_TRUE(a.acceptance_relaxed);
  EXPECT_DOUBLE_EQ(a.total_seconds, 3.5);  // parallel overlap: max, not sum
}

}  // namespace
}  // namespace t2m
