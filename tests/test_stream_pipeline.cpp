// Differential tests for the streaming trace pipeline: LineReader (mmap and
// istream fallback), streaming event abstraction, StreamingSegmenter,
// ComplianceWindowBuilder and ModelLearner::learn_from_stream must be
// byte-for-byte interchangeable with the in-memory reference path.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/abstraction/abstraction.h"
#include "src/abstraction/event_stream.h"
#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/core/segmentation.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/synthetic/pattern_events.h"
#include "src/trace/ftrace_io.h"
#include "src/trace/mmap_io.h"
#include "src/trace/text_io.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

/// RAII temp file seeded with `content`.
class TempFile {
public:
  explicit TempFile(const std::string& content, const char* tag = "t2m_stream_test") {
    path_ = std::string("/tmp/") + tag + "_" + std::to_string(counter_++) + ".txt";
    std::ofstream os(path_, std::ios::binary);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

private:
  static inline int counter_ = 0;
  std::string path_;
};

std::vector<std::string> read_all_lines(LineReader& reader) {
  std::vector<std::string> lines;
  std::string_view line;
  while (reader.next(line)) lines.emplace_back(line);
  return lines;
}

TEST(LineReader, MmapAndIstreamAgree) {
  const std::string content = "first\nsecond line\n\nlast without newline";
  const TempFile file(content);
  LineReader mapped(file.path());
  EXPECT_TRUE(mapped.mapped());
  std::istringstream is(content);
  LineReader streamed(is);
  EXPECT_FALSE(streamed.mapped());
  const auto a = read_all_lines(mapped);
  const auto b = read_all_lines(streamed);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], "first");
  EXPECT_EQ(a[2], "");
  EXPECT_EQ(a[3], "last without newline");
}

TEST(LineReader, StripsCrlf) {
  const TempFile file("a\r\nb\r\nplain\n");
  LineReader reader(file.path());
  EXPECT_EQ(read_all_lines(reader), (std::vector<std::string>{"a", "b", "plain"}));
}

TEST(LineReader, EmptyFile) {
  const TempFile file("");
  LineReader reader(file.path());
  std::string_view line;
  EXPECT_FALSE(reader.next(line));
}

TEST(LineReader, MissingFileThrows) {
  EXPECT_THROW(LineReader("/tmp/definitely_missing_t2m_file.txt"), std::runtime_error);
}

TEST(LineReader, LargeFileCrossesReleaseStride) {
  // > 8 MB so the mmap cursor releases consumed pages mid-stream; every
  // line must still come back intact.
  std::string content;
  content.reserve(10u << 20);
  for (int i = 0; i < 400000; ++i) {
    content += "line_" + std::to_string(i) + "_padding_padding\n";
  }
  const TempFile file(content);
  LineReader reader(file.path());
  std::string_view line;
  int count = 0;
  while (reader.next(line)) {
    ASSERT_TRUE(line.rfind("line_", 0) == 0) << "line " << count;
    ++count;
  }
  EXPECT_EQ(count, 400000);
  EXPECT_EQ(reader.bytes_read(), content.size());
}

std::vector<PredId> random_sequence(Rng& rng, std::size_t length, std::size_t alphabet) {
  std::vector<PredId> seq(length);
  for (auto& p : seq) p = static_cast<PredId>(rng.below(alphabet));
  return seq;
}

TEST(StreamingSegmenter, MatchesBatchOnRandomSequences) {
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    const std::size_t w = 1 + rng.below(5);
    const std::size_t length = rng.below(60);
    const std::size_t alphabet = 1 + rng.below(4);
    const auto seq = random_sequence(rng, length, alphabet);
    StreamingSegmenter segmenter(w);
    for (const PredId p : seq) segmenter.push(p);
    EXPECT_EQ(segmenter.take(), segment_sequence(seq, w))
        << "w=" << w << " length=" << length << " alphabet=" << alphabet;
  }
}

TEST(StreamingSegmenter, EdgeCases) {
  StreamingSegmenter empty(3);
  EXPECT_TRUE(empty.take().empty());

  // Shorter than w: the whole sequence is one segment, as in batch mode.
  StreamingSegmenter shorter(5);
  for (const PredId p : {1, 2, 3}) shorter.push(p);
  EXPECT_EQ(shorter.take(), (std::vector<Segment>{{1, 2, 3}}));

  // Exactly w.
  StreamingSegmenter exact(3);
  for (const PredId p : {7, 8, 9}) exact.push(p);
  EXPECT_EQ(exact.take(), (std::vector<Segment>{{7, 8, 9}}));

  EXPECT_THROW(StreamingSegmenter(0), std::invalid_argument);
}

TEST(ComplianceWindowBuilder, MatchesBatchChecker) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    const std::size_t l = rng.below(4);  // includes l == 0
    const std::size_t length = rng.below(40);
    const std::size_t alphabet = 1 + rng.below(5);
    const auto seq = random_sequence(rng, length, alphabet);

    const ComplianceChecker batch(seq, l);
    ComplianceWindowBuilder builder(l);
    for (const PredId p : seq) builder.push(p);
    const ComplianceChecker streamed = builder.finish();

    ASSERT_EQ(streamed.trace_sequences(), batch.trace_sequences());
    ASSERT_EQ(streamed.window_length(), batch.window_length());

    // Probe both checkers with a random model; verdicts and missing-word
    // sets must coincide.
    Nfa model(1 + rng.below(3));
    const std::size_t edges = rng.below(6);
    for (std::size_t e = 0; e < edges; ++e) {
      model.add_transition(rng.below(model.num_states()),
                           static_cast<PredId>(rng.below(alphabet + 1)),
                           rng.below(model.num_states()));
    }
    const ComplianceResult a = batch.check(model);
    const ComplianceResult b = streamed.check(model);
    EXPECT_EQ(a.compliant, b.compliant);
    EXPECT_EQ(a.invalid_sequences, b.invalid_sequences);
    EXPECT_EQ(a.model_sequences, b.model_sequences);
    EXPECT_EQ(a.trace_sequences, b.trace_sequences);
  }
}

TEST(ComplianceWindowBuilder, WidePredicatesFallBackToVectorSet) {
  // Predicate ids too wide to pack into 64 bits force the hashed-vector
  // representation in both construction paths.
  std::vector<PredId> seq = {1ull << 40, 2, 1ull << 40, 3, 2, 1ull << 40};
  const std::size_t l = 3;
  const ComplianceChecker batch(seq, l);
  ComplianceWindowBuilder builder(l);
  for (const PredId p : seq) builder.push(p);
  const ComplianceChecker streamed = builder.finish();
  EXPECT_EQ(streamed.trace_sequences(), batch.trace_sequences());
  Nfa model(2);
  model.add_transition(0, 1ull << 40, 1);
  model.add_transition(1, 2, 0);
  model.add_transition(0, 3, 0);
  const ComplianceResult a = batch.check(model);
  const ComplianceResult b = streamed.check(model);
  EXPECT_EQ(a.compliant, b.compliant);
  EXPECT_EQ(a.invalid_sequences, b.invalid_sequences);
}

/// Writes `trace` as an ftrace log and drives both learn paths over it; the
/// learned artefacts must match byte for byte.
void expect_stream_matches_in_memory(const Trace& trace, const LearnerConfig& config) {
  std::ostringstream os;
  write_ftrace(os, trace);
  const TempFile file(os.str());

  // In-memory reference: read the whole file back, abstract, learn.
  std::ifstream is(file.path());
  const Trace read_back = read_ftrace(is);
  const ModelLearner learner(config);
  const LearnResult reference = learner.learn(read_back);

  // Streaming path: mmap line cursor + one-pass abstraction.
  LineReader lines(file.path());
  ASSERT_TRUE(lines.mapped());
  FtracePredStream stream(lines);
  const LearnResult streamed = learner.learn_from_stream(stream);

  ASSERT_EQ(streamed.success, reference.success);
  ASSERT_EQ(streamed.timed_out, reference.timed_out);
  EXPECT_EQ(streamed.states, reference.states);
  EXPECT_EQ(streamed.stats.sequence_length, reference.stats.sequence_length);
  EXPECT_EQ(streamed.stats.vocabulary_size, reference.stats.vocabulary_size);
  EXPECT_EQ(streamed.stats.segments, reference.stats.segments);
  EXPECT_EQ(streamed.stats.encoded_transitions, reference.stats.encoded_transitions);
  EXPECT_EQ(streamed.stats.sat_calls, reference.stats.sat_calls);
  EXPECT_EQ(streamed.stats.forbidden_words, reference.stats.forbidden_words);
  // The abstraction output must be identical: same interned sequence (when
  // the config retains it), same display names.
  EXPECT_EQ(streamed.preds.seq, reference.preds.seq);
  EXPECT_EQ(streamed.preds.display_names, reference.preds.display_names);
  EXPECT_EQ(streamed.preds.vocab.size(), reference.preds.vocab.size());
  // And the models themselves, transition for transition.
  EXPECT_EQ(streamed.model.num_states(), reference.model.num_states());
  EXPECT_EQ(streamed.model.transitions(), reference.model.transitions());
  EXPECT_EQ(streamed.model.pred_names(), reference.model.pred_names());
}

TEST(StreamPipeline, DifferentialOnRandomisedTraces) {
  Rng rng(11);
  for (int round = 0; round < 6; ++round) {
    sim::PatternEventConfig gen;
    gen.events = 500 + rng.below(3000);
    gen.pattern_length = 3 + rng.below(4);
    // At most one digression: with two the default-config state search from
    // N = 2 becomes a minutes-long SAT grind, which is a property of the
    // search, not of the ingest paths under test here.
    gen.bursts = rng.below(2);
    gen.burst_length = 2 + rng.below(3);
    gen.burst_prob = 0.05;
    gen.seed = rng.next();
    LearnerConfig config;
    config.window = 2 + rng.below(3);
    expect_stream_matches_in_memory(sim::generate_pattern_event_trace(gen), config);
  }
}

TEST(StreamPipeline, DifferentialWithAcceptanceOffDropsSequence) {
  sim::PatternEventConfig gen;
  gen.events = 2000;
  LearnerConfig config;
  config.require_trace_acceptance = false;
  // Ingest is under test, not state-count discovery: start at the
  // generator's own automaton size, as the bench does.
  config.initial_states = sim::pattern_generator_states(gen);
  const Trace trace = sim::generate_pattern_event_trace(gen);

  std::ostringstream os;
  write_ftrace(os, trace);
  const TempFile file(os.str());
  std::ifstream is(file.path());
  const Trace read_back = read_ftrace(is);
  const ModelLearner learner(config);
  const LearnResult reference = learner.learn(read_back);

  LineReader lines(file.path());
  FtracePredStream stream(lines);
  const LearnResult streamed = learner.learn_from_stream(stream);

  ASSERT_TRUE(reference.success);
  ASSERT_TRUE(streamed.success);
  EXPECT_EQ(streamed.states, reference.states);
  EXPECT_EQ(streamed.model.transitions(), reference.model.transitions());
  // With acceptance off nothing needs the sequence: the streaming path must
  // not have materialised it.
  EXPECT_TRUE(streamed.preds.seq.empty());
  EXPECT_EQ(streamed.stats.sequence_length, reference.stats.sequence_length);
}

TEST(StreamPipeline, DifferentialOnRtlinuxTrace) {
  LearnerConfig config;
  expect_stream_matches_in_memory(sim::generate_full_coverage_sched_trace(20165), config);
}

TEST(StreamPipeline, VectorPredStreamMatchesLearnFromSequence) {
  sim::PatternEventConfig gen;
  gen.events = 1500;
  gen.bursts = 1;
  gen.burst_prob = 0.05;
  const Trace trace = sim::generate_pattern_event_trace(gen);
  const PredicateSequence preds = abstract_trace(trace, {});
  const ModelLearner learner;

  const LearnResult reference = learner.learn_from_sequence(preds, trace.schema());
  VectorPredStream stream(preds, trace.schema());
  const LearnResult streamed = learner.learn_from_stream(stream);

  ASSERT_EQ(streamed.success, reference.success);
  EXPECT_EQ(streamed.states, reference.states);
  EXPECT_EQ(streamed.model.transitions(), reference.model.transitions());
  EXPECT_EQ(streamed.preds.seq, reference.preds.seq);
}

TEST(StreamPipeline, TextTraceStreamMatchesBatchReader) {
  sim::PatternEventConfig gen;
  gen.events = 800;
  std::ostringstream os;
  sim::write_pattern_event_text(os, gen);
  const TempFile file(os.str());

  const Trace read_back = read_trace_file(file.path());
  const PredicateSequence reference = abstract_trace(read_back, {});

  LineReader lines(file.path());
  TextTracePredStream stream(lines);
  std::vector<PredId> seq;
  while (const auto id = stream.next()) seq.push_back(*id);
  const PredicateSequence streamed = stream.take_preds();

  EXPECT_EQ(seq, reference.seq);
  EXPECT_EQ(streamed.display_names, reference.display_names);
  EXPECT_EQ(streamed.vocab.size(), reference.vocab.size());
  EXPECT_EQ(stream.schema().var(0).symbols, read_back.schema().var(0).symbols);
}

TEST(StreamPipeline, TextTraceStreamRejectsNonCategorical) {
  const TempFile file("# var x int\n1\n2\n");
  LineReader lines(file.path());
  TextTracePredStream stream(lines);
  EXPECT_THROW(stream.next(), std::invalid_argument);
}

TEST(StreamPipeline, TooShortStreamThrowsLikeAbstraction) {
  // Zero and one observation must fail exactly as abstract_trace does.
  for (const char* content : {"", "0.1 only_event\n"}) {
    const TempFile file(content);
    LineReader lines(file.path());
    FtracePredStream stream(lines);
    EXPECT_THROW(
        {
          while (stream.next()) {
          }
        },
        std::invalid_argument)
        << "content: '" << content << "'";
  }
}

TEST(StreamPipeline, FtraceStreamHonoursTaskFilter) {
  const std::string content =
      "pi_stress-1234 [000] d..2 100.000001: sched_waking: comm=x\n"
      "other-77 [000] d..2 100.000002: sched_other: cpu=0\n"
      "pi_stress-1234 [000] d..2 100.000003: sched_switch_in: prev=y\n"
      "pi_stress-1234 [000] d..2 100.000004: sched_waking: comm=x\n";
  const TempFile file(content);

  std::istringstream is(content);
  const Trace reference_trace = read_ftrace(is, "pi_stress");
  const PredicateSequence reference = abstract_trace(reference_trace, {});

  LineReader lines(file.path());
  FtracePredStream stream(lines, "pi_stress");
  std::vector<PredId> seq;
  while (const auto id = stream.next()) seq.push_back(*id);
  EXPECT_EQ(seq, reference.seq);
  const PredicateSequence streamed = stream.take_preds();
  EXPECT_EQ(streamed.display_names, reference.display_names);
}

}  // namespace
}  // namespace t2m
