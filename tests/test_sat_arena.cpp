// Arena/GC invariants of the rewritten SAT core: clause storage survives
// heavy learn/reduce cycles, explicit garbage collection preserves models
// and UNSAT verdicts, and the accounting (arena bytes, peak, GC runs) stays
// coherent.

#include <gtest/gtest.h>

#include "src/sat/clause_arena.h"
#include "src/sat/solver.h"
#include "src/util/rng.h"

namespace t2m::sat {
namespace {

TEST(ClauseArena, LayoutRoundTrip) {
  ClauseArena arena;
  const Lit lits[] = {pos(0), neg(1), pos(2)};
  const ClauseRef problem = arena.alloc(lits, /*learned=*/false);
  const ClauseRef learned = arena.alloc(lits, /*learned=*/true);

  EXPECT_EQ(arena.size(problem), 3u);
  EXPECT_FALSE(arena.learned(problem));
  EXPECT_EQ(arena.size(learned), 3u);
  EXPECT_TRUE(arena.learned(learned));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(arena.lit(problem, i), lits[i]);
    EXPECT_EQ(arena.lit(learned, i), lits[i]);
  }

  arena.set_activity(learned, 42.5f);
  arena.set_lbd(learned, 7);
  EXPECT_FLOAT_EQ(arena.activity(learned), 42.5f);
  EXPECT_EQ(arena.lbd(learned), 7u);
  // Metadata writes must not clobber the literals.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(arena.lit(learned, i), lits[i]);

  // problem: 1 header + 3 lits; learned: 1 header + 2 meta + 3 lits.
  EXPECT_EQ(arena.size_words(), 4u + 6u);
  EXPECT_EQ(arena.peak_bytes(), arena.size_bytes());
}

TEST(ClauseArena, DeletionAndRelocation) {
  ClauseArena arena;
  const Lit a[] = {pos(0), neg(1)};
  const Lit b[] = {pos(2), neg(3), pos(4)};
  const ClauseRef ca = arena.alloc(a, false);
  const ClauseRef cb = arena.alloc(b, true);
  arena.mark_deleted(ca);
  EXPECT_TRUE(arena.deleted(ca));
  EXPECT_EQ(arena.wasted_words(), 3u);

  ClauseArena to;
  const ClauseRef nb = arena.relocate(cb, to);
  // Relocating again forwards to the same new reference.
  EXPECT_EQ(arena.relocate(cb, to), nb);
  EXPECT_TRUE(to.learned(nb));
  EXPECT_EQ(to.size(nb), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(to.lit(nb, i), b[i]);
}

void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(at[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(neg(at[p1][h]), neg(at[p2][h]));
      }
    }
  }
}

TEST(SolverArena, ReduceAndGcUnderHeavyLearning) {
  // Pigeonhole(7) forces hundreds of thousands of conflicts: many
  // learn/reduce rounds and (via the 20% waste trigger) arena compactions.
  Solver s;
  add_pigeonhole(s, 7);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  const SolverStats& st = s.stats();
  EXPECT_GT(st.learned_clauses, 4000u);
  EXPECT_GE(st.reduces, 1u);
  EXPECT_GE(st.gc_runs, 1u);
  EXPECT_LE(st.arena_bytes, st.peak_arena_bytes);
  EXPECT_GT(st.peak_arena_bytes, 0u);
}

TEST(SolverArena, ExplicitGcPreservesModelsIncrementally) {
  // Model-enumeration loop with a forced GC between every solve: blocking
  // clauses accumulate, watchers and reasons must survive each compaction.
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(s.new_var());
  // Odd parity chain: x0 ^ x1, x1 ^ x2, ... encoded as inequality pairs.
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_binary(pos(vars[i]), pos(vars[i + 1]));
    s.add_binary(neg(vars[i]), neg(vars[i + 1]));
  }
  int models = 0;
  while (s.solve() == SolveResult::Sat) {
    ++models;
    ASSERT_LE(models, 2);  // alternating assignments: exactly two models
    Clause block;
    for (const Var v : vars) {
      block.push_back(s.model_value(v) ? neg(v) : pos(v));
    }
    s.add_clause(block);
    s.garbage_collect();
  }
  EXPECT_EQ(models, 2);
}

bool brute_force_sat(std::size_t num_vars, const std::vector<Clause>& clauses) {
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    bool all = true;
    for (const Clause& c : clauses) {
      bool any = false;
      for (const Lit l : c) {
        if ((((mask >> l.var()) & 1) != 0) != l.negated()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SolverArena, RandomisedIncrementalWithForcedGc) {
  // Incremental clause feeding with a GC after every batch must agree with
  // brute force at every step.
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const std::size_t vars = 6 + rng.below(5);
    Solver s;
    for (std::size_t i = 0; i < vars; ++i) s.new_var();
    std::vector<Clause> all;
    bool solver_ok = true;
    for (int batch = 0; batch < 4; ++batch) {
      for (std::size_t c = 0; c < vars; ++c) {
        Clause clause;
        for (int k = 0; k < 3; ++k) {
          clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
        }
        all.push_back(clause);
        if (solver_ok) solver_ok = s.add_clause(clause);
      }
      if (solver_ok) s.garbage_collect();
      const bool expected = brute_force_sat(vars, all);
      const SolveResult got = solver_ok ? s.solve() : SolveResult::Unsat;
      if (got == SolveResult::Unsat) solver_ok = false;
      ASSERT_EQ(got == SolveResult::Sat, expected)
          << "round=" << round << " batch=" << batch;
      if (got == SolveResult::Sat) {
        for (const Clause& c : all) {
          bool any = false;
          for (const Lit l : c) {
            if (s.model_value(l.var()) != l.negated()) any = true;
          }
          ASSERT_TRUE(any);
        }
      }
    }
  }
}

}  // namespace
}  // namespace t2m::sat
