#include <gtest/gtest.h>

#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/trace/recorder.h"

namespace t2m {
namespace {

Trace event_trace(const std::vector<std::string>& events,
                  const std::vector<std::string>& alphabet) {
  TraceRecorder rec;
  std::vector<std::string> symbols = alphabet;
  symbols.insert(symbols.begin(), "__start");
  const VarIndex ev = rec.declare_cat("ev", std::move(symbols), "__start");
  rec.commit();
  for (const auto& e : events) {
    rec.set_sym(ev, e);
    rec.commit();
  }
  return rec.take();
}

TEST(Compliance, DetectsInvalidSequences) {
  Nfa m(2, 0);
  m.add_transition(0, 0, 1);
  m.add_transition(1, 1, 0);
  m.add_transition(1, 0, 1);  // allows (0,0) via 0->1->1
  const std::vector<PredId> seq = {0, 1, 0, 1};
  const ComplianceResult r = check_compliance(m, seq, 2);
  EXPECT_FALSE(r.compliant);
  EXPECT_TRUE(r.invalid_sequences.count({0, 0}));
}

TEST(Compliance, PassesWhenModelMatchesSequence) {
  Nfa m(2, 0);
  m.add_transition(0, 0, 1);
  m.add_transition(1, 1, 0);
  const std::vector<PredId> seq = {0, 1, 0, 1};
  EXPECT_TRUE(check_compliance(m, seq, 2).compliant);
}

TEST(Learner, SimpleCycle) {
  const Trace t = event_trace({"a", "b", "c", "a", "b", "c", "a", "b", "c"},
                              {"a", "b", "c"});
  const ModelLearner learner;
  const LearnResult r = learner.learn(t);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states, 3u);
  EXPECT_EQ(r.model.num_transitions(), 3u);
}

TEST(Learner, SelfLoopCollapsesToOneState) {
  const Trace t = event_trace({"a", "a", "a", "a", "a", "a"}, {"a"});
  const ModelLearner learner;
  const LearnResult r = learner.learn(t);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states, 2u);  // search starts at N=2; a self-loop fits
}

TEST(Learner, RefinementForcesLargerModel) {
  // a-b alternation with a distinguished prefix: aab ab ab ... A 2-state
  // model allowing (a,a) everywhere fails compliance against tails.
  const Trace t = event_trace({"a", "b", "a", "b", "c", "a", "b", "c"},
                              {"a", "b", "c"});
  const ModelLearner learner;
  const LearnResult r = learner.learn(t);
  ASSERT_TRUE(r.success);
  // Whatever N, the result must pass its own compliance check.
  const ComplianceResult c =
      check_compliance(r.model, r.preds.seq, learner.config().compliance_length);
  EXPECT_TRUE(c.compliant);
  EXPECT_TRUE(r.model.deterministic_per_predicate());
}

TEST(Learner, ModelEmbedsEverySegment) {
  const Trace t = event_trace({"a", "b", "a", "c", "a", "b", "a", "c"},
                              {"a", "b", "c"});
  const ModelLearner learner;
  const LearnResult r = learner.learn(t);
  ASSERT_TRUE(r.success);
  // The full predicate sequence must be accepted from the initial state:
  // the chained windows pin the run through the whole trace.
  EXPECT_TRUE(r.model.accepts(r.preds.seq));
}

TEST(Learner, NonSegmentedAgreesOnSmallInput) {
  const Trace t = event_trace({"a", "b", "c", "a", "b", "c", "a", "b", "c"},
                              {"a", "b", "c"});
  LearnerConfig seg_config;
  seg_config.segmented = true;
  LearnerConfig full_config;
  full_config.segmented = false;
  const LearnResult seg = ModelLearner(seg_config).learn(t);
  const LearnResult full = ModelLearner(full_config).learn(t);
  ASSERT_TRUE(seg.success);
  ASSERT_TRUE(full.success);
  EXPECT_EQ(seg.states, full.states);
}

TEST(Learner, WindowSweepLearnsSameCycle) {
  // The paper reports identical automata across window choices for their
  // benchmarks; verify on the simple cycle for several w.
  const std::vector<std::string> events = {"a", "b", "c", "a", "b", "c",
                                           "a", "b", "c", "a", "b", "c"};
  for (const std::size_t w : {2u, 3u, 4u, 5u}) {
    LearnerConfig config;
    config.window = w;
    const LearnResult r = ModelLearner(config).learn(event_trace(events, {"a", "b", "c"}));
    ASSERT_TRUE(r.success) << "w=" << w;
    EXPECT_EQ(r.states, 3u) << "w=" << w;
  }
}

TEST(Learner, InitialStatesRespected) {
  const Trace t = event_trace({"a", "b", "a", "b"}, {"a", "b"});
  LearnerConfig config;
  config.initial_states = 4;  // start searching above the minimum
  const LearnResult r = ModelLearner(config).learn(t);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.states, 4u);
}

TEST(Learner, TimeoutReported) {
  // An effectively-zero budget must time out, not crash.
  std::vector<std::string> events;
  const char* alphabet[] = {"a", "b", "c", "d", "e"};
  for (int i = 0; i < 2000; ++i) {
    events.push_back(alphabet[(i * i + i / 7) % 5]);
  }
  LearnerConfig config;
  config.timeout_seconds = 1e-9;
  const LearnResult r =
      ModelLearner(config).learn(event_trace(events, {"a", "b", "c", "d", "e"}));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
}

TEST(Learner, MaxStatesBoundsSearch) {
  const Trace t = event_trace({"a", "b", "c", "d", "a", "b", "c", "d"},
                              {"a", "b", "c", "d"});
  LearnerConfig config;
  config.max_states = 1;
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.timed_out);
}

TEST(Learner, StatsAreConsistent) {
  const Trace t = event_trace({"a", "b", "a", "b", "a", "b"}, {"a", "b"});
  const LearnResult r = ModelLearner().learn(t);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.sequence_length, 6u);
  EXPECT_GT(r.stats.segments, 0u);
  EXPECT_GE(r.stats.sat_calls, 1u);
  EXPECT_GE(r.stats.total_seconds, 0.0);
}

TEST(Learner, PredNamesAttachedToModel) {
  const Trace t = event_trace({"a", "b", "a", "b"}, {"a", "b"});
  const LearnResult r = ModelLearner().learn(t);
  ASSERT_TRUE(r.success);
  std::set<std::string> labels;
  for (const Transition& tr : r.model.transitions()) {
    labels.insert(r.model.pred_name(tr.pred));
  }
  EXPECT_TRUE(labels.count("a"));
  EXPECT_TRUE(labels.count("b"));
}

}  // namespace
}  // namespace t2m
