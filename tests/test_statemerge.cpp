#include <gtest/gtest.h>

#include "src/sim/basic/counter.h"
#include "src/statemerge/edsm.h"
#include "src/statemerge/ktails.h"
#include "src/statemerge/pta.h"

namespace t2m {
namespace {

TEST(Pta, SingleSequenceIsChain) {
  const Pta pta({{0, 1, 2}}, 3);
  EXPECT_EQ(pta.num_states(), 4u);
  EXPECT_EQ(pta.child(0, 0), std::optional<std::size_t>(1));
  EXPECT_EQ(pta.child(1, 1), std::optional<std::size_t>(2));
  EXPECT_FALSE(pta.child(0, 1).has_value());
}

TEST(Pta, SharedPrefixes) {
  const Pta pta({{0, 1}, {0, 2}}, 3);
  // root, after-0 shared, then two leaves.
  EXPECT_EQ(pta.num_states(), 4u);
  EXPECT_EQ(pta.child(0, 0), pta.child(0, 0));
  const auto mid = *pta.child(0, 0);
  EXPECT_TRUE(pta.child(mid, 1).has_value());
  EXPECT_TRUE(pta.child(mid, 2).has_value());
}

TEST(Pta, RejectsOutOfAlphabet) {
  EXPECT_THROW(Pta({{5}}, 3), std::invalid_argument);
}

TEST(Pta, ToNfa) {
  const Pta pta({{0, 1, 0}}, 2);
  const Nfa m = pta.to_nfa();
  EXPECT_EQ(m.num_states(), 4u);
  EXPECT_EQ(m.num_transitions(), 3u);
  const PredId word[] = {0, 1, 0};
  EXPECT_TRUE(m.accepts(word));
}

TEST(SymbolsOfTrace, DistinctValuationsDistinctSymbols) {
  const Trace t = sim::generate_counter_trace({8, 30, 1});
  const SymbolSequence s = symbols_of_trace(t);
  EXPECT_EQ(s.seq.size(), t.size());
  EXPECT_EQ(s.alphabet.size(), 8u);  // values 1..8
  EXPECT_EQ(s.alphabet[0], "x=1");
}

TEST(KTails, MergesPeriodicChain) {
  // Period-3 cycle repeated: kTails(k=2) folds it to 3 states.
  std::vector<std::size_t> seq;
  for (int i = 0; i < 30; ++i) seq.push_back(static_cast<std::size_t>(i % 3));
  const Nfa m = ktails({seq}, 3, 2);
  EXPECT_LE(m.num_states(), 5u);   // cycle plus possibly tail artefacts
  EXPECT_GE(m.num_states(), 3u);
  EXPECT_TRUE(m.accepts(std::vector<PredId>(seq.begin(), seq.end())));
}

TEST(KTails, HigherKGeneralisesLess) {
  std::vector<std::size_t> seq;
  for (int i = 0; i < 40; ++i) seq.push_back(static_cast<std::size_t>((i / 2) % 2));
  const Nfa loose = ktails({seq}, 2, 1);
  const Nfa tight = ktails({seq}, 2, 4);
  EXPECT_LE(loose.num_states(), tight.num_states());
}

TEST(KTails, CounterBaselineHasManyStates) {
  // The paper's observation: raw counter values give state-merge a large
  // model (MINT: 377 states for len 447), far above our learner's 4.
  const Trace t = sim::generate_counter_trace({128, 447, 1});
  const SymbolSequence s = symbols_of_trace(t);
  const Nfa m = ktails({s.seq}, s.alphabet.size(), 2);
  EXPECT_GT(m.num_states(), 100u);
}

TEST(Edsm, FoldsPeriodicChain) {
  std::vector<std::size_t> seq;
  for (int i = 0; i < 60; ++i) seq.push_back(static_cast<std::size_t>(i % 2));
  const EdsmResult r = edsm_blue_fringe({seq}, 2);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.merges, 0u);
  EXPECT_LE(r.model.num_states(), 4u);
  EXPECT_TRUE(r.model.accepts(std::vector<PredId>(seq.begin(), seq.end())));
}

TEST(Edsm, AcceptsTrainingWordAlways) {
  std::vector<std::size_t> seq = {0, 1, 2, 0, 1, 2, 1, 1, 2, 0};
  const EdsmResult r = edsm_blue_fringe({seq}, 3);
  EXPECT_TRUE(r.model.accepts(std::vector<PredId>(seq.begin(), seq.end())));
}

TEST(Edsm, ThresholdControlsPromotion) {
  std::vector<std::size_t> seq;
  for (int i = 0; i < 30; ++i) seq.push_back(static_cast<std::size_t>(i % 3));
  EdsmConfig aggressive;
  aggressive.merge_threshold = 1;
  EdsmConfig conservative;
  conservative.merge_threshold = 1000000;  // nothing merges
  const EdsmResult a = edsm_blue_fringe({seq}, 3, aggressive);
  const EdsmResult c = edsm_blue_fringe({seq}, 3, conservative);
  EXPECT_LT(a.model.num_states(), c.model.num_states());
  EXPECT_GT(c.promotions, 0u);
}

TEST(Edsm, TimeoutReturnsPartialResult) {
  std::vector<std::size_t> seq;
  std::uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1;
    seq.push_back(static_cast<std::size_t>(state >> 60));  // 16 symbols
  }
  EdsmConfig config;
  config.timeout_seconds = 1e-6;
  const EdsmResult r = edsm_blue_fringe({seq}, 16, config);
  EXPECT_TRUE(r.timed_out);
}

TEST(Edsm, MultipleSamples) {
  const EdsmResult r = edsm_blue_fringe({{0, 1, 0, 1}, {0, 1}, {0, 1, 0, 1, 0, 1}}, 2);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.model.accepts(std::vector<PredId>{0, 1, 0, 1, 0, 1}));
}

}  // namespace
}  // namespace t2m
