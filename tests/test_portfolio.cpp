// Portfolio CEGIS driver: racing solver configurations must agree on the
// learned state count, record per-configuration stats, cancel losers through
// the stop flag, and leave the winner's artefacts intact. Plus the parallel
// compliance check's differential against the sequential DFS and the solver
// knobs the portfolio diversifies.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "src/abstraction/abstraction.h"
#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/core/portfolio.h"
#include "src/sim/basic/counter.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/serial/serial_port.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

TEST(PortfolioConfigs, GeneratesDistinctNamedLanes) {
  LearnerConfig base;
  const auto variants = portfolio_configs(base, 6);
  ASSERT_EQ(variants.size(), 6u);
  for (const auto& v : variants) {
    EXPECT_FALSE(v.name.empty());
    EXPECT_EQ(v.config.portfolio, 0u) << "workers must not recurse";
    EXPECT_EQ(v.config.threads, 1u);
  }
  // Lane 0 is the base configuration; lane 1 flips the solving mode.
  EXPECT_EQ(variants[0].config.persistent_solver, base.persistent_solver);
  EXPECT_EQ(variants[1].config.persistent_solver, !base.persistent_solver);
  // Reseeded lanes actually differ in seed.
  EXPECT_NE(variants[4].config.solver.seed, variants[0].config.solver.seed);
}

TEST(PortfolioConfigs, ClampsToARace) {
  EXPECT_EQ(portfolio_configs(LearnerConfig{}, 0).size(), 2u);
  EXPECT_EQ(portfolio_configs(LearnerConfig{}, 1).size(), 2u);
}

TEST(Portfolio, LearnsSameStateCountAsSequential) {
  for (const Trace& trace :
       {sim::generate_counter_trace({}), sim::generate_serial_trace({})}) {
    LearnerConfig config;
    const LearnResult reference = ModelLearner(config).learn(trace);
    ASSERT_TRUE(reference.success);

    LearnerConfig race = config;
    race.portfolio = 4;
    const LearnResult raced = ModelLearner(race).learn(trace);
    ASSERT_TRUE(raced.success);
    // Any winning configuration finds the same (minimal) state count; the
    // wiring may differ between configurations.
    EXPECT_EQ(raced.states, reference.states);

    // Per-configuration stats: exactly one winner, every lane recorded.
    ASSERT_EQ(raced.stats.portfolio.size(), 4u);
    int winners = 0;
    for (const auto& entry : raced.stats.portfolio) {
      if (entry.winner) {
        ++winners;
        EXPECT_TRUE(entry.finished);
        EXPECT_EQ(entry.states, raced.states);
      }
      EXPECT_FALSE(entry.name.empty());
    }
    EXPECT_EQ(winners, 1);
    // Headline counters aggregate the whole race: at least the winner's own
    // SAT calls are in there.
    std::size_t winner_calls = 0;
    for (const auto& entry : raced.stats.portfolio) {
      if (entry.winner) winner_calls = entry.sat_calls;
    }
    EXPECT_GE(raced.stats.sat_calls, winner_calls);
  }
}

TEST(Portfolio, RtlinuxRaceAgreesWithSequential) {
  const Trace trace = sim::generate_full_coverage_sched_trace(20165);
  LearnerConfig config;
  const LearnResult reference = ModelLearner(config).learn(trace);
  LearnerConfig race = config;
  race.portfolio = 3;
  const LearnResult raced = ModelLearner(race).learn(trace);
  ASSERT_TRUE(reference.success);
  ASSERT_TRUE(raced.success);
  EXPECT_EQ(raced.states, reference.states);
}

TEST(Portfolio, CallerStopFlagCancelsTheWholeRace) {
  // LearnerConfig::stop must keep working when the portfolio substitutes
  // its own race flag: the driver relays the caller's flag into the race.
  std::atomic<bool> stop{true};
  LearnerConfig config;
  config.stop = &stop;
  config.portfolio = 3;
  const LearnResult result =
      ModelLearner(config).learn(sim::generate_counter_trace({}));
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.cancelled);
  ASSERT_EQ(result.stats.portfolio.size(), 3u);
  for (const auto& entry : result.stats.portfolio) {
    EXPECT_FALSE(entry.winner);
    EXPECT_FALSE(entry.finished);
  }
}

TEST(Portfolio, StopFlagCancelsLearn) {
  // A pre-raised stop flag cancels the run before any real work.
  std::atomic<bool> stop{true};
  LearnerConfig config;
  config.stop = &stop;
  const LearnResult result =
      ModelLearner(config).learn(sim::generate_counter_trace({}));
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.timed_out);
}

TEST(Portfolio, SolverKnobsKeepVerdictsIdentical) {
  // The diversification axes change the search path, never the verdict or
  // the minimal state count.
  const Trace trace = sim::generate_counter_trace({});
  LearnerConfig base;
  const LearnResult reference = ModelLearner(base).learn(trace);
  ASSERT_TRUE(reference.success);
  for (const auto& variant : portfolio_configs(base, 4)) {
    const LearnResult got = ModelLearner(variant.config).learn(trace);
    ASSERT_TRUE(got.success) << variant.name;
    EXPECT_EQ(got.states, reference.states) << variant.name;
  }
}

// --- parallel compliance ---------------------------------------------------

Nfa random_model(Rng& rng, std::size_t max_states, std::size_t alphabet) {
  Nfa model(1 + rng.below(max_states));
  const std::size_t edges = rng.below(3 * model.num_states() + 1);
  for (std::size_t e = 0; e < edges; ++e) {
    model.add_transition(rng.below(model.num_states()),
                         static_cast<PredId>(rng.below(alphabet)),
                         rng.below(model.num_states()));
  }
  return model;
}

TEST(ParallelCompliance, MatchesSequentialOnRandomisedCases) {
  Rng rng(909);
  for (int round = 0; round < 300; ++round) {
    const std::size_t l = rng.below(4);  // includes l == 0
    const std::size_t length = rng.below(60);
    const std::size_t alphabet = 1 + rng.below(5);
    std::vector<PredId> seq(length);
    for (auto& p : seq) p = static_cast<PredId>(rng.below(alphabet));

    ComplianceChecker sequential(seq, l);
    ComplianceChecker parallel(seq, l);
    parallel.set_threads(4);

    const Nfa model = random_model(rng, 6, alphabet + 1);
    const ComplianceResult a = sequential.check(model);
    const ComplianceResult b = parallel.check(model);
    ASSERT_EQ(a.compliant, b.compliant) << "round " << round;
    ASSERT_EQ(a.invalid_sequences, b.invalid_sequences) << "round " << round;
    ASSERT_EQ(a.model_sequences, b.model_sequences) << "round " << round;
    ASSERT_EQ(a.trace_sequences, b.trace_sequences) << "round " << round;
  }
}

TEST(ParallelCompliance, WidePredicatesUseVectorPathInParallelToo) {
  const std::vector<PredId> seq = {1ull << 40, 2, 1ull << 40, 3, 2, 1ull << 40};
  ComplianceChecker sequential(seq, 3);
  ComplianceChecker parallel(seq, 3);
  parallel.set_threads(3);
  Nfa model(4);
  model.add_transition(0, 1ull << 40, 1);
  model.add_transition(1, 2, 2);
  model.add_transition(2, 1ull << 40, 3);
  model.add_transition(3, 3, 0);
  const ComplianceResult a = sequential.check(model);
  const ComplianceResult b = parallel.check(model);
  EXPECT_EQ(a.compliant, b.compliant);
  EXPECT_EQ(a.invalid_sequences, b.invalid_sequences);
  EXPECT_EQ(a.model_sequences, b.model_sequences);
}

TEST(ParallelCompliance, LearnerWithThreadsMatchesSequentialLearn) {
  const Trace trace = sim::generate_full_coverage_sched_trace(20165);
  LearnerConfig config;
  const LearnResult reference = ModelLearner(config).learn(trace);
  LearnerConfig threaded = config;
  threaded.threads = 4;
  const LearnResult got = ModelLearner(threaded).learn(trace);
  ASSERT_TRUE(reference.success);
  ASSERT_TRUE(got.success);
  EXPECT_EQ(got.states, reference.states);
  EXPECT_EQ(got.model.transitions(), reference.model.transitions());
  EXPECT_EQ(got.stats.sat_calls, reference.stats.sat_calls);
}

// --- learner-level early stop ---------------------------------------------

TEST(CoreDrivenStop, NormalRunsNeverFireAndStaySuccessful) {
  LearnerConfig config;
  ASSERT_TRUE(config.core_driven_stop);  // default on
  const LearnResult result = ModelLearner(config).learn(sim::generate_counter_trace({}));
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.core_stops, 0u);
}

}  // namespace
}  // namespace t2m
