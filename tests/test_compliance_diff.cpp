// Differential test of the cached one-pass compliance engine against the
// original materialise-and-set_difference pipeline, which is kept in
// automaton/ops as the reference semantics (S_l \ P_l).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/automaton/ops.h"
#include "src/core/compliance.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

/// The seed implementation, verbatim: materialise both sets, subtract.
ComplianceResult reference_check(const Nfa& model, const std::vector<PredId>& seq,
                                 std::size_t l) {
  ComplianceResult result;
  const auto model_seqs = transition_sequences(model, l);
  const auto trace_seqs = subsequences(seq, l);
  result.model_sequences = model_seqs.size();
  result.trace_sequences = trace_seqs.size();
  std::set_difference(model_seqs.begin(), model_seqs.end(), trace_seqs.begin(),
                      trace_seqs.end(),
                      std::inserter(result.invalid_sequences,
                                    result.invalid_sequences.begin()));
  result.compliant = result.invalid_sequences.empty();
  return result;
}

Nfa random_nfa(Rng& rng, std::size_t max_states, std::size_t num_preds,
               PredId pred_offset = 0) {
  const std::size_t states = 1 + rng.below(max_states);
  Nfa m(states, 0);
  const std::size_t transitions = rng.below(states * num_preds + 1);
  for (std::size_t t = 0; t < transitions; ++t) {
    m.add_transition(rng.below(states), pred_offset + rng.below(num_preds),
                     rng.below(states));
  }
  return m;
}

std::vector<PredId> random_seq(Rng& rng, std::size_t max_len, std::size_t num_preds,
                               PredId pred_offset = 0) {
  std::vector<PredId> seq(rng.below(max_len + 1));
  for (auto& p : seq) p = pred_offset + rng.below(num_preds);
  return seq;
}

void expect_identical(const ComplianceResult& got, const ComplianceResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.compliant, want.compliant) << what;
  EXPECT_EQ(got.model_sequences, want.model_sequences) << what;
  EXPECT_EQ(got.trace_sequences, want.trace_sequences) << what;
  EXPECT_EQ(got.invalid_sequences, want.invalid_sequences) << what;
}

TEST(ComplianceDiff, RandomisedAgainstReference) {
  // >= 1000 randomised cases across window lengths, including l = 0 and
  // sequences shorter than l.
  Rng rng(2024);
  int cases = 0;
  for (std::size_t l = 0; l <= 4; ++l) {
    for (int round = 0; round < 250; ++round) {
      const std::size_t num_preds = 1 + rng.below(5);
      const Nfa m = random_nfa(rng, 5, num_preds);
      const std::vector<PredId> seq = random_seq(rng, 12, num_preds);
      const ComplianceResult got = check_compliance(m, seq, l);
      const ComplianceResult want = reference_check(m, seq, l);
      expect_identical(got, want,
                       "l=" + std::to_string(l) + " round=" + std::to_string(round));
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);
}

TEST(ComplianceDiff, ModelPredicatesOutsideTraceRange) {
  // Model predicates larger than anything in the trace force the packed
  // fast path to bail out per-word; verdicts must still match.
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    const Nfa m = random_nfa(rng, 4, 3, /*pred_offset=*/rng.below(2) * 1000);
    const std::vector<PredId> seq = random_seq(rng, 10, 3);
    for (std::size_t l = 1; l <= 3; ++l) {
      expect_identical(check_compliance(m, seq, l), reference_check(m, seq, l),
                       "round=" + std::to_string(round) + " l=" + std::to_string(l));
    }
  }
}

TEST(ComplianceDiff, WideWindowsUseVectorFallback) {
  // Large predicate ids and long windows exceed the 64-bit packed budget;
  // the hashed-vector fallback must agree with the reference too.
  Rng rng(13);
  for (int round = 0; round < 100; ++round) {
    const PredId offset = 1 + (1u << 20);
    const Nfa m = random_nfa(rng, 4, 3, offset);
    const std::vector<PredId> seq = random_seq(rng, 16, 3, offset);
    for (const std::size_t l : {3u, 5u, 8u}) {
      expect_identical(check_compliance(m, seq, l), reference_check(m, seq, l),
                       "round=" + std::to_string(round) + " l=" + std::to_string(l));
    }
  }
}

TEST(ComplianceDiff, CheckerReuseMatchesSingleShot) {
  // One persistent checker (as the learner uses) across many candidate
  // models equals constructing it fresh every time.
  Rng rng(5);
  const std::vector<PredId> seq = random_seq(rng, 40, 4);
  const ComplianceChecker checker(seq, 2);
  for (int round = 0; round < 100; ++round) {
    const Nfa m = random_nfa(rng, 6, 4);
    expect_identical(checker.check(m), reference_check(m, seq, 2),
                     "round=" + std::to_string(round));
  }
}

}  // namespace
}  // namespace t2m
