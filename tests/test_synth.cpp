#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/expr/printer.h"
#include "src/expr/simplify.h"
#include "src/synth/cegis.h"
#include "src/synth/enumerative.h"
#include "src/synth/ite_chain.h"

namespace t2m {
namespace {

Schema one_var_schema() {
  Schema s;
  s.add_int("x");
  return s;
}

Schema two_var_schema() {
  Schema s;
  s.add_int("ip");
  s.add_int("op");
  return s;
}

std::vector<UpdateExample> chain_examples(std::initializer_list<std::int64_t> values) {
  std::vector<UpdateExample> out;
  auto it = values.begin();
  std::int64_t prev = *it++;
  for (; it != values.end(); ++it) {
    out.push_back(UpdateExample{{Value::of_int(prev)}, Value::of_int(*it)});
    prev = *it;
  }
  return out;
}

TEST(Enumerative, LearnsIncrement) {
  // The paper's motivating sample: next(1)=2, next(2)=3, next(3)=4 => x+1.
  const Schema s = one_var_schema();
  const auto examples = chain_examples({1, 2, 3, 4});
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 0, examples));
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(to_string(*e, s), "x + 1");
}

TEST(Enumerative, SectionSevenDoubling) {
  // Section VII: trace 1, 2, 4, 8 => fastsynth produces x + x.
  const Schema s = one_var_schema();
  const auto examples = chain_examples({1, 2, 4, 8});
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 0, examples));
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(to_string(*e, s), "x + x");
}

TEST(Enumerative, ConstantDiscoveryFromData) {
  // next(x) = x - 7: the constant 7 must be discovered automatically.
  const Schema s = one_var_schema();
  const auto examples = chain_examples({20, 13, 6, -1});
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 0, examples));
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(to_string(*simplify(e), s), "x - 7");
}

TEST(Enumerative, TwoVariableUpdate) {
  // op' = op + ip over varying inputs.
  const Schema s = two_var_schema();
  std::vector<UpdateExample> examples = {
      {{Value::of_int(1), Value::of_int(3)}, Value::of_int(4)},
      {{Value::of_int(-1), Value::of_int(4)}, Value::of_int(3)},
      {{Value::of_int(0), Value::of_int(3)}, Value::of_int(3)},
  };
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 1, examples));
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(to_string(*e, s), "op + ip");
}

TEST(Enumerative, ReturnsAllMinimalCandidates) {
  // With a constant input ip=1, `op + 1` collapses into `op + ip` under
  // observational equivalence: the constant 1 and the variable ip have the
  // same signature, and the VARIABLE is the preferred representative (this
  // is what makes the integrator learn op+ip rather than op+1). The
  // spelling variants of the sum survive as distinct minimal candidates.
  const Schema s = two_var_schema();
  std::vector<UpdateExample> examples = {
      {{Value::of_int(1), Value::of_int(3)}, Value::of_int(4)},
      {{Value::of_int(1), Value::of_int(4)}, Value::of_int(5)},
  };
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 1, examples));
  const auto all = engine.synthesize_all(examples);
  ASSERT_GE(all.size(), 2u);
  std::set<std::string> names;
  for (const auto& e : all) names.insert(to_string(*e, s));
  EXPECT_TRUE(names.count("op + ip"));
  EXPECT_FALSE(names.count("op + 1"));  // pruned: 1 is equivalent to ip here
}

TEST(Enumerative, FailsWhenNoSmallTermFits) {
  const Schema s = one_var_schema();
  // The counter peak: next(127)=128, next(128)=127 has no one-op fit.
  auto examples = chain_examples({127, 128, 127});
  Grammar g = Grammar::for_updates(s, 0, examples);
  g.max_size = 4;
  const EnumerativeSynth engine(s, g);
  EXPECT_FALSE(engine.synthesize(examples));
}

TEST(Enumerative, IteExtensionFindsConditional) {
  // A genuinely conditional step function: 5 below the threshold, 7 above.
  // No arithmetic-only term of bounded size fits, so ite is required.
  const Schema s = one_var_schema();
  std::vector<UpdateExample> examples;
  for (const std::int64_t x : {1, 2, 3}) {
    examples.push_back({{Value::of_int(x)}, Value::of_int(5)});
  }
  for (const std::int64_t x : {10, 11}) {
    examples.push_back({{Value::of_int(x)}, Value::of_int(7)});
  }
  Grammar g = Grammar::for_updates(s, 0, examples);
  g.allow_ite = true;
  g.max_size = 9;
  const EnumerativeSynth engine(s, g);
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->op(), ExprOp::Ite);
  for (const auto& ex : examples) {
    EXPECT_EQ(eval_value(*e, ex.input, ex.input), ex.output);
  }
}

TEST(Enumerative, StatsPopulated) {
  const Schema s = one_var_schema();
  const auto examples = chain_examples({1, 2, 3});
  const EnumerativeSynth engine(s, Grammar::for_updates(s, 0, examples));
  SynthStats stats;
  ASSERT_TRUE(engine.synthesize(examples, &stats));
  EXPECT_GT(stats.terms_enumerated, 0u);
  EXPECT_EQ(stats.solution_size, 3u);
}

TEST(Cegis, ConvergesOnLargePool) {
  const Schema s = one_var_schema();
  std::vector<UpdateExample> pool;
  for (std::int64_t x = 0; x < 500; ++x) {
    pool.push_back(UpdateExample{{Value::of_int(x)}, Value::of_int(x - 1)});
  }
  const CegisSynth cegis(s, Grammar::for_updates(s, 0, pool));
  CegisStats stats;
  const ExprPtr e = cegis.synthesize(pool, &stats);
  ASSERT_TRUE(e);
  EXPECT_EQ(to_string(*simplify(e), s), "x - 1");
  // The working set must stay far below the pool size.
  EXPECT_LE(stats.working_set, 10u);
}

TEST(Cegis, AddsCounterexamples) {
  const Schema s = one_var_schema();
  // Mostly x+1 but one exception forces at least one CEGIS round and then
  // failure (no small term fits everything).
  std::vector<UpdateExample> pool;
  for (std::int64_t x = 0; x < 50; ++x) {
    pool.push_back(UpdateExample{{Value::of_int(x)}, Value::of_int(x + 1)});
  }
  pool.push_back(UpdateExample{{Value::of_int(1000)}, Value::of_int(0)});
  Grammar g = Grammar::for_updates(s, 0, pool);
  g.max_size = 3;
  const CegisSynth cegis(s, g);
  CegisStats stats;
  EXPECT_FALSE(cegis.synthesize(pool, &stats));
  EXPECT_GT(stats.iterations, 1u);
}

TEST(IteChain, BuildsTrivialSolution) {
  // Section VII: CVC4's grammar-free mode produces nested point solutions.
  const Schema s = one_var_schema();
  const auto examples = chain_examples({1, 2, 4, 8});
  const IteChainSynth engine(s);
  const ExprPtr e = engine.synthesize(examples);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->op(), ExprOp::Ite);
  for (const auto& ex : examples) {
    EXPECT_EQ(eval_value(*e, ex.input, ex.input), ex.output);
  }
  // And it is larger than the generalising x + x (size 3).
  EXPECT_GT(e->size(), 3u);
}

TEST(IteChain, RejectsNonFunction) {
  const Schema s = one_var_schema();
  std::vector<UpdateExample> examples = {
      {{Value::of_int(1)}, Value::of_int(2)},
      {{Value::of_int(1)}, Value::of_int(3)},
  };
  EXPECT_FALSE(IteChainSynth(s).synthesize(examples));
}

TEST(Grammar, PoolContainsValuesAndDeltas) {
  const Schema s = one_var_schema();
  const auto examples = chain_examples({10, 17});
  const Grammar g = Grammar::for_updates(s, 0, examples);
  const auto has = [&](std::int64_t c) {
    return std::find(g.constants.begin(), g.constants.end(), c) != g.constants.end();
  };
  EXPECT_TRUE(has(10));
  EXPECT_TRUE(has(17));
  EXPECT_TRUE(has(7));  // delta
  EXPECT_TRUE(has(0));
  EXPECT_TRUE(has(1));
}

}  // namespace
}  // namespace t2m
