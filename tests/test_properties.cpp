// Property-based tests: across randomly generated systems, every learned
// model must satisfy the algorithm's invariants -- per-predicate
// determinism, compliance of the final model, acceptance of its own
// predicate sequence, and that every used predicate appears in the trace.

#include <gtest/gtest.h>

#include <array>

#include "src/automaton/ops.h"
#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

/// "e<state>_<edge>" built with += throughout: GCC 12's -Wrestrict
/// false-fires on the temporary-concatenation form at -O2 (PR105651).
std::string event_name(std::size_t state, std::size_t edge) {
  std::string name = "e";
  name += std::to_string(state);
  name.push_back('_');
  name += std::to_string(edge);
  return name;
}

/// Random walk through a random small event-emitting state machine: the
/// ground truth has `states` states and one event per (src, dst) edge, so
/// any trace it emits is learnable.
Trace random_machine_trace(std::uint64_t seed, std::size_t states, std::size_t steps) {
  Rng rng(seed);
  // Build a connected random digraph with 2 out-edges per state.
  std::vector<std::array<std::size_t, 2>> next(states);
  for (std::size_t s = 0; s < states; ++s) {
    next[s] = {(s + 1) % states, rng.below(states)};
  }
  std::vector<std::string> alphabet;
  for (std::size_t s = 0; s < states; ++s) {
    for (int e = 0; e < 2; ++e) {
      alphabet.push_back(event_name(s, static_cast<std::size_t>(e)));
    }
  }
  alphabet.push_back("__start");

  TraceRecorder rec;
  const VarIndex ev = rec.declare_cat("ev", alphabet, "__start");
  rec.commit();
  std::size_t state = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const std::size_t choice = rng.below(2);
    rec.set_sym(ev, event_name(state, choice));
    rec.commit();
    state = next[state][choice];
  }
  return rec.take();
}

class LearnerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(LearnerInvariants, HoldOnRandomSystems) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 977 + 1);
  const std::size_t states = 2 + rng.below(3);
  const std::size_t steps = 60 + rng.below(120);
  const Trace trace = random_machine_trace(seed, states, steps);

  const ModelLearner learner;
  const LearnResult r = learner.learn(trace);
  ASSERT_TRUE(r.success) << "seed=" << seed;

  // Invariant 1: per-predicate determinism (Algorithm 1, line 29).
  EXPECT_TRUE(r.model.deterministic_per_predicate());

  // Invariant 2: the final model passes its own compliance check.
  EXPECT_TRUE(check_compliance(r.model, r.preds.seq, 2).compliant);

  // Invariant 3: the model accepts its own predicate sequence.
  EXPECT_TRUE(r.model.accepts(r.preds.seq));

  // Invariant 4: every transition label occurs in the trace's vocabulary
  // usage (no invented symbols).
  const auto used = r.model.used_predicates();
  for (const PredId p : used) {
    EXPECT_TRUE(std::find(r.preds.seq.begin(), r.preds.seq.end(), p) !=
                r.preds.seq.end());
  }

  // Invariant 5: conciseness -- never more states than the ground truth
  // could need (|ground truth| states x alphabet slack); weak but real.
  EXPECT_LE(r.states, states * 2 + 2) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerInvariants, ::testing::Range(1, 21));

class SegmentationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SegmentationEquivalence, SegmentedMatchesFullOnShortTraces) {
  // On short traces both pipelines must find the same minimal N.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Trace trace = random_machine_trace(seed, 3, 40);
  LearnerConfig seg;
  seg.segmented = true;
  LearnerConfig full;
  full.segmented = false;
  const LearnResult rs = ModelLearner(seg).learn(trace);
  const LearnResult rf = ModelLearner(full).learn(trace);
  ASSERT_TRUE(rs.success);
  ASSERT_TRUE(rf.success);
  EXPECT_EQ(rs.states, rf.states) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentationEquivalence, ::testing::Range(1, 9));

class MonitorSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MonitorSoundness, HealthyTracesNeverFlagged) {
  // Re-runs of the same system (fresh seeds, same structure) must replay on
  // the learned model when they only exercise seen behaviour... which a
  // same-seed re-run trivially does; use a prefix plus the training trace.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Trace trace = random_machine_trace(seed, 3, 100);
  const LearnResult r = ModelLearner().learn(trace);
  ASSERT_TRUE(r.success);
  const ReplayResult replay = replay_trace(r.model, r.preds.vocab, trace);
  EXPECT_TRUE(replay.accepted) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorSoundness, ::testing::Range(1, 9));

}  // namespace
}  // namespace t2m
