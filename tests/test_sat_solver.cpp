#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/sat/dimacs.h"
#include "src/sat/solver.h"
#include "src/util/rng.h"

namespace t2m::sat {
namespace {

TEST(SatSolver, EmptyIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, UnitPropagation) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_unit(pos(a)));
  ASSERT_TRUE(s.add_binary(neg(a), pos(b)));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, ContradictoryUnits) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_unit(pos(a)));
  EXPECT_FALSE(s.add_unit(neg(a)));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, TautologyAndDuplicatesIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));  // tautology dropped
  EXPECT_TRUE(s.add_clause({pos(a), pos(a), pos(a)}));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, SimpleUnsatCore) {
  // (a | b) & (a | ~b) & (~a | b) & (~a | ~b) is unsatisfiable.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  s.add_binary(pos(a), neg(b));
  s.add_binary(neg(a), pos(b));
  s.add_binary(neg(a), neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

/// Pigeonhole principle PHP(n+1, n): classic hard UNSAT family.
void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(at[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(neg(at[p1][h]), neg(at[p2][h]));
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    add_pigeonhole(s, holes);
    EXPECT_EQ(s.solve(), SolveResult::Unsat) << "holes=" << holes;
  }
}

TEST(SatSolver, ExactlyOne) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(s.add_exactly_one(lits));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  int set = 0;
  for (const Lit l : lits) set += s.model_value(l.var()) ? 1 : 0;
  EXPECT_EQ(set, 1);
}

TEST(SatSolver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  // Forbid the found model repeatedly until UNSAT; must take <= 4 models.
  int models = 0;
  while (s.solve() == SolveResult::Sat) {
    ++models;
    ASSERT_LE(models, 3);
    Clause block;
    block.push_back(s.model_value(a) ? neg(a) : pos(a));
    block.push_back(s.model_value(b) ? neg(b) : pos(b));
    s.add_clause(block);
  }
  EXPECT_EQ(models, 3);  // (T,T), (T,F), (F,T)
}

TEST(SatSolver, Assumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));
  const Lit assume_a[] = {pos(a)};
  ASSERT_EQ(s.solve(assume_a), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  // Assumptions do not persist.
  const Lit assume_not_b[] = {neg(b), pos(a)};
  EXPECT_EQ(s.solve(assume_not_b), SolveResult::Unsat);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, FinalConflictNamesFailingAssumptions) {
  // x & (~x | y) & (~y | ~z): assuming {w, z, x} is inconsistent through the
  // chain x -> y -> ~z; the core must contain z and x but not the unrelated w.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  const Var z = s.new_var();
  const Var w = s.new_var();
  s.add_binary(neg(x), pos(y));
  s.add_binary(neg(y), neg(z));
  const Lit assumptions[] = {pos(w), pos(z), pos(x)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::Unsat);
  const std::vector<Lit>& core = s.final_conflict();
  const auto has = [&core](Lit l) {
    return std::find(core.begin(), core.end(), l) != core.end();
  };
  EXPECT_TRUE(has(pos(x)));
  EXPECT_TRUE(has(pos(z)));
  EXPECT_FALSE(has(pos(w)));
  EXPECT_FALSE(s.in_unsat_state());  // assumption Unsat is not root Unsat
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.final_conflict().empty());
}

TEST(SatSolver, FinalConflictOnDirectlyContradictoryAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));  // keep the instance nontrivial
  const Lit assumptions[] = {pos(a), neg(a)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::Unsat);
  const std::vector<Lit>& core = s.final_conflict();
  EXPECT_EQ(core.size(), 2u);
  EXPECT_NE(std::find(core.begin(), core.end(), pos(a)), core.end());
  EXPECT_NE(std::find(core.begin(), core.end(), neg(a)), core.end());
}

TEST(SatSolver, FinalConflictEmptyOnRootUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  const Lit assumptions[] = {pos(s.new_var())};
  EXPECT_EQ(s.solve(assumptions), SolveResult::Unsat);
  EXPECT_TRUE(s.final_conflict().empty());
  EXPECT_TRUE(s.in_unsat_state());
}

TEST(SatSolver, SimplifyRemovesRootSatisfiedClauses) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_ternary(pos(a), pos(b), pos(c));
  s.add_ternary(neg(a), pos(b), pos(c));
  ASSERT_EQ(s.num_clauses(), 2u);
  s.add_unit(pos(b));  // satisfies both at the root
  s.simplify();
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_GE(s.stats().simplify_removed, 2u);
  // Verdicts are unchanged by the removal.
  const Lit assumptions[] = {neg(a), neg(c)};
  EXPECT_EQ(s.solve(assumptions), SolveResult::Sat);
}

TEST(SatSolver, SimplifyKeepsUnresolvedClauses) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_ternary(pos(a), pos(b), pos(c));
  s.add_unit(neg(a));  // falsifies a literal but does not satisfy the clause
  s.simplify();
  EXPECT_EQ(s.num_clauses(), 1u);
  const Lit assumptions[] = {neg(b)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(c));
}

TEST(SatSolver, ReusedSolverAgreesWithFreshOnAssumptionSlices) {
  // One persistent instance solved under many assumption sets must agree
  // with a fresh instance per set — across interleaved clause additions,
  // exactly the learner's usage pattern.
  Rng rng(99);
  Solver persistent;
  CnfFormula base;
  base.num_vars = 8;
  for (std::size_t i = 0; i < 8; ++i) persistent.new_var();
  for (int round = 0; round < 60; ++round) {
    // Occasionally grow the clause set.
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(static_cast<Var>(rng.below(8)), rng.chance(0.5)));
    }
    base.clauses.push_back(clause);
    persistent.add_clause(clause);
    // Random assumption slice.
    std::vector<Lit> assumptions;
    for (Var v = 0; v < 3; ++v) {
      if (rng.chance(0.5)) assumptions.push_back(Lit(v, rng.chance(0.5)));
    }
    Solver fresh;
    for (std::size_t i = 0; i < 8; ++i) fresh.new_var();
    bool fresh_ok = true;
    for (const Clause& cl : base.clauses) fresh_ok = fresh.add_clause(cl) && fresh_ok;
    const SolveResult want = fresh_ok ? fresh.solve(assumptions) : SolveResult::Unsat;
    const SolveResult got = persistent.solve(assumptions);
    EXPECT_EQ(got, want) << "round=" << round;
    if (persistent.in_unsat_state()) break;  // both root-unsat from here on
  }
  EXPECT_GE(persistent.stats().solves, 1u);
}

TEST(SatSolver, ResetBranchingHeuristicsKeepsVerdicts) {
  Solver s;
  add_pigeonhole(s, 5);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  Solver sat_instance;
  const Var a = sat_instance.new_var();
  const Var b = sat_instance.new_var();
  sat_instance.add_binary(pos(a), pos(b));
  ASSERT_EQ(sat_instance.solve(), SolveResult::Sat);
  sat_instance.reset_branching_heuristics();
  EXPECT_EQ(sat_instance.solve(), SolveResult::Sat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_pigeonhole(s, 8);
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), SolveResult::Unknown);
}

// --- randomised cross-check against brute force ---------------------------

CnfFormula random_formula(Rng& rng, std::size_t vars, std::size_t clauses) {
  CnfFormula f;
  f.num_vars = vars;
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      const Var v = static_cast<Var>(rng.below(vars));
      clause.push_back(Lit(v, rng.chance(0.5)));
    }
    f.clauses.push_back(clause);
  }
  return f;
}

bool brute_force_sat(const CnfFormula& f) {
  const std::size_t n = f.num_vars;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    bool all = true;
    for (const Clause& c : f.clauses) {
      bool any = false;
      for (const Lit l : c) {
        const bool val = ((mask >> l.var()) & 1) != 0;
        if (val != l.negated()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 25; ++round) {
    // Around the 3-SAT phase transition (ratio ~4.3) for small n.
    const std::size_t vars = 6 + rng.below(5);
    const std::size_t clauses = vars * 4 + rng.below(vars);
    const CnfFormula f = random_formula(rng, vars, clauses);
    Solver s;
    const bool loaded = load_into_solver(f, s);
    const bool expected = brute_force_sat(f);
    if (!loaded) {
      EXPECT_FALSE(expected);
      continue;
    }
    const SolveResult got = s.solve();
    EXPECT_EQ(got == SolveResult::Sat, expected)
        << "seed=" << GetParam() << " round=" << round;
    // When SAT, the model must actually satisfy the formula.
    if (got == SolveResult::Sat) {
      for (const Clause& c : f.clauses) {
        bool any = false;
        for (const Lit l : c) {
          if (s.model_value(l.var()) != l.negated()) any = true;
        }
        EXPECT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Range(1, 9));

TEST(Dimacs, RoundTrip) {
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{pos(0), neg(1)}, {pos(2)}, {neg(0), pos(1), neg(2)}};
  std::stringstream ss;
  write_dimacs(ss, f);
  const CnfFormula back = read_dimacs(ss);
  EXPECT_EQ(back.num_vars, f.num_vars);
  ASSERT_EQ(back.clauses.size(), f.clauses.size());
  for (std::size_t i = 0; i < f.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], f.clauses[i]);
  }
}

TEST(Dimacs, RejectsGarbage) {
  std::stringstream ss("this is not dimacs\n1 2 0\n");
  EXPECT_THROW(read_dimacs(ss), StatusError);
}

TEST(Dimacs, RejectsMalformedHeaderAndTruncation) {
  const auto expect_parse_error = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      read_dimacs(ss);
      FAIL() << "accepted: " << text;
    } catch (const StatusError& e) {
      EXPECT_EQ(e.code(), ErrorCode::parse_error) << text;
    }
  };
  expect_parse_error("p cnf 2 1 junk\n1 2 0\n");      // extra header field
  expect_parse_error("p cnf 2\n1 2 0\n");             // missing clause count
  expect_parse_error("1 2 0\n");                      // no header at all
  expect_parse_error("p cnf 2 1\np cnf 2 1\n1 2 0\n");  // duplicate header
  expect_parse_error("p cnf 2 1\n1 2\n");             // unterminated clause
  expect_parse_error("p cnf 2 2\n1 2 0\n");           // count mismatch (short)
  expect_parse_error("p cnf 2 1\n1 2 0\n-1 0\n");     // count mismatch (long)
}

TEST(Dimacs, UnitAndEmptyClausesRoundTrip) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{pos(1)}, {}, {neg(0)}};
  std::stringstream ss;
  write_dimacs(ss, f);
  const CnfFormula back = read_dimacs(ss);
  EXPECT_EQ(back.num_vars, f.num_vars);
  ASSERT_EQ(back.clauses.size(), f.clauses.size());
  for (std::size_t i = 0; i < f.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], f.clauses[i]);
  }
}

}  // namespace
}  // namespace t2m::sat
