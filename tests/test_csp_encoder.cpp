#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/automaton/dot.h"
#include "src/core/csp_encoder.h"
#include "src/core/learner.h"
#include "src/trace/recorder.h"

namespace t2m {
namespace {

/// Checks the decoded model realises every segment as a transition path and
/// respects per-predicate determinism.
void validate_model(const Nfa& m, const std::vector<Segment>& segments) {
  EXPECT_TRUE(m.deterministic_per_predicate());
  for (const Segment& seg : segments) {
    EXPECT_TRUE(m.accepts_from(
        [&] {
          std::set<StateId> all;
          for (StateId s = 0; s < m.num_states(); ++s) all.insert(s);
          return all;
        }(),
        seg))
        << "segment not embedded";
  }
}

class CspEncodings : public ::testing::TestWithParam<DeterminismEncoding> {
protected:
  CspOptions options() const {
    CspOptions o;
    o.encoding = GetParam();
    return o;
  }
};

TEST_P(CspEncodings, ChainNeedsEnoughStates) {
  // Segment a-b-c of three distinct predicates with determinism cannot fit
  // in 1 state (self-loops would merge distinct successors? actually it can:
  // 1 state with three self-loops IS deterministic) -- so check a case that
  // genuinely needs 2: p repeated with different successors.
  const std::vector<Segment> segments = {{0, 0, 1}, {0, 1, 0}};
  // In 1 state: all transitions are self loops; that is deterministic and
  // embeds everything, so N=1 is SAT.
  AutomatonCsp csp1(segments, 2, 1, options());
  EXPECT_EQ(csp1.solve(), sat::SolveResult::Sat);
  validate_model(csp1.extract_model(), segments);
}

TEST_P(CspEncodings, DeterminismForcesStateGrowth) {
  // One segment: p then p, and a forbidden pair (p, p). With one state the
  // self-loop realises (p, p), so it must be UNSAT; with two states q0-p->q1
  // works only if... q0-p->q1 then the second p must leave q1 with one
  // deterministic target; chain q0-p->q1-p->q2 needs 3 states to avoid any
  // (p,p)-cycle shorter than the chain? No: the forbidden pair bans ALL
  // consecutive p-p paths, but the segment itself IS p-p, so every N is
  // UNSAT.
  const std::vector<Segment> segments = {{0, 0}};
  for (std::size_t n = 1; n <= 4; ++n) {
    AutomatonCsp csp(segments, 1, n, options());
    csp.add_forbidden_sequence({0, 0});
    EXPECT_EQ(csp.solve(), sat::SolveResult::Unsat) << "N=" << n;
  }
}

TEST_P(CspEncodings, ForbiddenPairShapesModel) {
  // Segments: (a, b) and (b, a). Forbid (a, a). Solutions exist with 2
  // states: 0-a->1, 1-b->0.
  const std::vector<Segment> segments = {{0, 1}, {1, 0}};
  AutomatonCsp csp(segments, 2, 2, options());
  csp.add_forbidden_sequence({0, 0});
  ASSERT_EQ(csp.solve(), sat::SolveResult::Sat);
  const Nfa m = csp.extract_model();
  validate_model(m, segments);
  // No a-a path may exist.
  for (const Transition& t1 : m.transitions()) {
    for (const Transition& t2 : m.transitions()) {
      if (t1.pred == 0 && t2.pred == 0) {
        EXPECT_NE(t1.dst, t2.src);
      }
    }
  }
}

TEST_P(CspEncodings, UnsatGrowsToSat) {
  // The slot-machine shape: forbidding several pairs makes small N
  // impossible; the search must succeed at some larger N.
  const std::vector<Segment> segments = {{0, 1, 2}, {1, 2, 1}, {2, 1, 2}, {2, 3, 0}};
  std::size_t first_sat = 0;
  for (std::size_t n = 2; n <= 6 && first_sat == 0; ++n) {
    AutomatonCsp csp(segments, 4, n, options());
    csp.add_forbidden_sequence({1, 1});
    csp.add_forbidden_sequence({0, 0});
    csp.add_forbidden_sequence({3, 3});
    if (csp.solve() == sat::SolveResult::Sat) {
      first_sat = n;
      validate_model(csp.extract_model(), segments);
    }
  }
  EXPECT_GT(first_sat, 0u);
}

TEST_P(CspEncodings, PinInitialHoldsFirstSegment) {
  const std::vector<Segment> segments = {{0, 1}};
  AutomatonCsp csp(segments, 2, 2, options());
  ASSERT_EQ(csp.solve(), sat::SolveResult::Sat);
  const Nfa m = csp.extract_model();
  // First segment must be traceable from the initial state.
  EXPECT_TRUE(m.accepts(segments[0]));
}

TEST_P(CspEncodings, LongerForbiddenSequences) {
  // Segments create chain a-b-a; forbidding (a, b, a) must make it UNSAT
  // because the segment itself realises that word.
  const std::vector<Segment> segments = {{0, 1, 0}};
  AutomatonCsp csp(segments, 2, 3, options());
  csp.add_forbidden_sequence({0, 1, 0});
  EXPECT_EQ(csp.solve(), sat::SolveResult::Unsat);
}

TEST_P(CspEncodings, StatsExposed) {
  const std::vector<Segment> segments = {{0, 1, 0}, {1, 0, 1}};
  AutomatonCsp csp(segments, 2, 2, options());
  EXPECT_GT(csp.num_vars(), 0u);
  EXPECT_GT(csp.num_clauses(), 0u);
  EXPECT_EQ(csp.num_transitions(), 6u);
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, CspEncodings,
                         ::testing::Values(DeterminismEncoding::Pairwise,
                                           DeterminismEncoding::Successor));

/// Property: the two determinism encodings agree on SAT/UNSAT across a
/// family of random-ish segment systems.
class EncodingAgreement : public ::testing::TestWithParam<int> {};

TEST_P(EncodingAgreement, SameVerdict) {
  const int seed = GetParam();
  // Deterministic pseudo-random segment construction from the seed.
  std::vector<Segment> segments;
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>(state >> 33);
  };
  const std::size_t num_preds = 3;
  const std::size_t num_segments = 2 + next() % 3;
  for (std::size_t s = 0; s < num_segments; ++s) {
    Segment seg;
    for (std::size_t j = 0; j < 3; ++j) seg.push_back(next() % num_preds);
    segments.push_back(std::move(seg));
  }
  for (std::size_t n = 1; n <= 3; ++n) {
    CspOptions pairwise_options;
    pairwise_options.encoding = DeterminismEncoding::Pairwise;
    CspOptions successor_options;
    successor_options.encoding = DeterminismEncoding::Successor;
    AutomatonCsp pairwise(segments, num_preds, n, pairwise_options);
    AutomatonCsp successor(segments, num_preds, n, successor_options);
    pairwise.add_forbidden_sequence({0, 0});
    successor.add_forbidden_sequence({0, 0});
    EXPECT_EQ(pairwise.solve(), successor.solve()) << "seed=" << seed << " N=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingAgreement, ::testing::Range(0, 12));

TEST(EqualityMemoisation, RepeatedWordMintsNoNewVars) {
  // Three-long forbidden words introduce equality aux vars; re-adding the
  // same word must reuse them all (same chains, same sv pairs) and add no
  // solver variables.
  const std::vector<Segment> segments = {{0, 1, 0}, {1, 0, 1}};
  AutomatonCsp csp(segments, 2, 3);
  csp.add_forbidden_sequence({0, 1, 1});
  const std::size_t vars_after_first = csp.num_vars();
  const std::size_t eq_after_first = csp.num_equality_vars();
  EXPECT_GT(eq_after_first, 0u);
  csp.add_forbidden_sequence({0, 1, 1});
  EXPECT_EQ(csp.num_vars(), vars_after_first);
  EXPECT_EQ(csp.num_equality_vars(), eq_after_first);
}

TEST(EqualityMemoisation, OverlappingWordsShareAuxVars) {
  // Words sharing dst/src adjacencies reuse the memoised equality vars:
  // the second word adds at most the pairs the first did not cover.
  const std::vector<Segment> segments = {{0, 1, 2}, {1, 2, 0}};
  AutomatonCsp csp(segments, 3, 3);
  csp.add_forbidden_sequence({0, 1, 2});
  const std::size_t eq_after_first = csp.num_equality_vars();
  AutomatonCsp fresh(segments, 3, 3);
  fresh.add_forbidden_sequence({1, 2, 0});
  const std::size_t eq_second_alone = fresh.num_equality_vars();
  csp.add_forbidden_sequence({1, 2, 0});
  // Shared (dst, src) adjacencies: strictly fewer new vars than standalone.
  EXPECT_LT(csp.num_equality_vars(), eq_after_first + eq_second_alone);
  // And the constraint still bites: the segment realises 0-1-2, so
  // forbidding it must be UNSAT at any N.
  EXPECT_EQ(csp.solve(), sat::SolveResult::Unsat);
}

/// Persistent CSP growing through N must agree with a fresh fixed-N CSP at
/// every step, for both determinism encodings and with forbidden words of
/// every encoded shape (pairs, triples) added before and after growth.
TEST(PersistentCsp, GrowToMatchesFreshAtEveryN) {
  const std::vector<Segment> segments = {{0, 1, 2}, {1, 2, 1}, {2, 1, 2}, {2, 3, 0}};
  for (const DeterminismEncoding enc :
       {DeterminismEncoding::Pairwise, DeterminismEncoding::Successor}) {
    CspOptions persistent_options;
    persistent_options.encoding = enc;
    persistent_options.state_capacity = 6;
    AutomatonCsp persistent(segments, 4, 2, persistent_options);
    persistent.add_forbidden_sequence({1, 1});
    persistent.add_forbidden_sequence({0, 1, 2});
    for (std::size_t n = 2; n <= 6; ++n) {
      ASSERT_TRUE(persistent.grow_to(n));
      if (n == 4) persistent.add_forbidden_sequence({3, 3});  // mid-run refinement
      CspOptions fresh_options;
      fresh_options.encoding = enc;
      AutomatonCsp fresh(segments, 4, n, fresh_options);
      fresh.add_forbidden_sequence({1, 1});
      fresh.add_forbidden_sequence({0, 1, 2});
      if (n >= 4) fresh.add_forbidden_sequence({3, 3});
      const sat::SolveResult got = persistent.solve();
      EXPECT_EQ(got, fresh.solve()) << "N=" << n;
      if (got == sat::SolveResult::Sat) {
        validate_model(persistent.extract_model(), segments);
      }
    }
  }
}

TEST(PersistentCsp, GrowBeyondCapacityRefused) {
  const std::vector<Segment> segments = {{0, 1}};
  CspOptions options;
  options.state_capacity = 3;
  AutomatonCsp csp(segments, 2, 2, options);
  EXPECT_TRUE(csp.persistent());
  EXPECT_EQ(csp.state_capacity(), 3u);
  EXPECT_TRUE(csp.grow_to(3));
  EXPECT_FALSE(csp.grow_to(4));
  EXPECT_EQ(csp.num_states(), 3u);
  // Fixed-N instances never grow.
  AutomatonCsp fixed(segments, 2, 2);
  EXPECT_FALSE(fixed.persistent());
  EXPECT_FALSE(fixed.grow_to(3));
}

TEST(PersistentCsp, ModelUsesOnlyActiveStates) {
  // With capacity 5 but N = 2, every decoded state must be < 2: the guard
  // assumptions deactivate the remaining columns.
  const std::vector<Segment> segments = {{0, 1}, {1, 0}};
  CspOptions options;
  options.state_capacity = 5;
  AutomatonCsp csp(segments, 2, 2, options);
  ASSERT_EQ(csp.solve(), sat::SolveResult::Sat);
  const Nfa m = csp.extract_model();
  EXPECT_EQ(m.num_states(), 2u);
  for (const Transition& t : m.transitions()) {
    EXPECT_LT(t.src, 2u);
    EXPECT_LT(t.dst, 2u);
  }
  validate_model(m, segments);
}

TEST(PersistentCsp, BlockedModelsExpireOnGrowth) {
  // Blocking clauses are guarded per state count: a model blocked at N must
  // stay blocked while N is unchanged, yet the search at N+1 is unaffected
  // (exactly the fresh-per-N semantics of discarding the CSP).
  const std::vector<Segment> segments = {{0, 1}, {1, 0}};
  CspOptions options;
  options.state_capacity = 4;
  AutomatonCsp csp(segments, 2, 2, options);
  std::size_t models_at_2 = 0;
  while (csp.solve() == sat::SolveResult::Sat) {
    csp.block_current_model();
    ++models_at_2;
    ASSERT_LT(models_at_2, 64u) << "runaway model enumeration";
  }
  EXPECT_GT(models_at_2, 0u);
  // Exhausted at N=2; growth must reopen the search.
  ASSERT_TRUE(csp.grow_to(3));
  EXPECT_EQ(csp.solve(), sat::SolveResult::Sat);
  validate_model(csp.extract_model(), segments);
}

TEST(PersistentCsp, DecodeIsStablePerModel) {
  // extract_model() and block_current_model() share one decoded snapshot:
  // repeated extraction without an intervening solve is identical.
  const std::vector<Segment> segments = {{0, 1, 0}, {1, 0, 1}};
  CspOptions options;
  options.state_capacity = 4;
  AutomatonCsp csp(segments, 2, 2, options);
  ASSERT_EQ(csp.solve(), sat::SolveResult::Sat);
  const Nfa first = csp.extract_model();
  const Nfa second = csp.extract_model();
  EXPECT_EQ(to_dot(first, "m"), to_dot(second, "m"));
}

TEST(ForbiddenChainCacheTest, SharedAcrossStateCounts) {
  // The same cache serves CSPs of different N (chains are N-independent);
  // verdicts must match the uncached encoding.
  const std::vector<Segment> segments = {{0, 1, 0}, {1, 0, 1}};
  ForbiddenChainCache cache;
  for (std::size_t n = 1; n <= 4; ++n) {
    AutomatonCsp cached(segments, 2, n);
    cached.set_chain_cache(&cache);
    cached.add_forbidden_sequence({0, 1, 0});
    AutomatonCsp uncached(segments, 2, n);
    uncached.add_forbidden_sequence({0, 1, 0});
    EXPECT_EQ(cached.solve(), uncached.solve()) << "N=" << n;
  }
  // One word, one cache entry, however many N values were encoded.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(UnsatForAllStates, SinglePredicateForbiddenWordStopsEveryN) {
  // A forbidden length-1 word over a predicate the segments use is encoded
  // as a width-independent root contradiction: Unsat for every state count.
  const std::vector<Segment> segments = {{0, 1}};
  CspOptions options;
  options.state_capacity = 4;
  AutomatonCsp csp(segments, 2, 2, options);
  csp.add_forbidden_sequence({0});
  ASSERT_EQ(csp.solve(), sat::SolveResult::Unsat);
  EXPECT_TRUE(csp.unsat_for_all_states());
}

TEST(UnsatForAllStates, WidthLimitedUnsatKeepsGrowing) {
  // Segments [a] and [b] with forbidden word (a, b): at N = 1 every state
  // variable collapses to q0, so the a-transition feeds the b-transition —
  // Unsat. The core must name an inactive-column guard (~act_k), because
  // N = 2 is satisfiable: no early stop.
  const std::vector<Segment> segments = {{0}, {1}};
  CspOptions options;
  options.state_capacity = 3;
  AutomatonCsp csp(segments, 2, 1, options);
  csp.add_forbidden_sequence({0, 1});
  ASSERT_EQ(csp.solve(), sat::SolveResult::Unsat);
  EXPECT_FALSE(csp.unsat_for_all_states());
  ASSERT_TRUE(csp.grow_to(2));
  EXPECT_EQ(csp.solve(), sat::SolveResult::Sat);
}

TEST(UnsatForAllStates, ConservativeAtFullCapacity) {
  // Same width-limited Unsat, but with no headroom column left the verdict
  // may merely be "not within this capacity" — must not claim more.
  const std::vector<Segment> segments = {{0}, {1}};
  CspOptions options;
  options.state_capacity = 1;
  AutomatonCsp csp(segments, 2, 1, options);
  csp.add_forbidden_sequence({0, 1});
  ASSERT_EQ(csp.solve(), sat::SolveResult::Unsat);
  EXPECT_FALSE(csp.unsat_for_all_states());
}

TEST(UnsatForAllStates, FreshCspNeverClaimsAllStates) {
  // The fixed-N encoding has no guard structure; its root Unsat says
  // nothing about other state counts.
  const std::vector<Segment> segments = {{0}, {1}};
  AutomatonCsp csp(segments, 2, 1);
  csp.add_forbidden_sequence({0, 1});
  ASSERT_EQ(csp.solve(), sat::SolveResult::Unsat);
  EXPECT_FALSE(csp.unsat_for_all_states());
}

TEST(UnsatForAllStates, FalseWhileSatisfiable) {
  const std::vector<Segment> segments = {{0, 1}};
  CspOptions options;
  options.state_capacity = 4;
  AutomatonCsp csp(segments, 2, 2, options);
  ASSERT_EQ(csp.solve(), sat::SolveResult::Sat);
  EXPECT_FALSE(csp.unsat_for_all_states());
}

/// A segment system large enough that the chunked emission actually spans
/// multiple chunks per phase, with predicates frequent enough to trigger the
/// star-compression threshold for forbidden pairs.
std::vector<Segment> bulky_segments() {
  std::vector<Segment> segments;
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>(state >> 33);
  };
  for (std::size_t s = 0; s < 40; ++s) {
    Segment seg;
    for (std::size_t j = 0; j < 4; ++j) seg.push_back(next() % 4);
    segments.push_back(std::move(seg));
  }
  return segments;
}

/// Builds the CSP with every clause-emitting path exercised (construction,
/// forbidden words of both shapes, star compression, growth) at the given
/// thread count and returns the clause-database fingerprint.
std::uint64_t fingerprint_at(std::size_t threads, DeterminismEncoding enc) {
  const std::vector<Segment> segments = bulky_segments();
  CspOptions options;
  options.encoding = enc;
  options.threads = threads;
  options.state_capacity = 6;
  AutomatonCsp csp(segments, 4, 3, options);
  csp.add_forbidden_sequence({0, 1});     // star-compressed (frequent preds)
  csp.add_forbidden_sequence({1, 2, 3});  // equality-variable path
  EXPECT_TRUE(csp.grow_to(5));
  csp.add_forbidden_sequence({2, 3});
  EXPECT_TRUE(csp.grow_to(6));
  EXPECT_FALSE(csp.overflowed());
  return csp.encoding_fingerprint();
}

TEST(ParallelEmission, ByteIdenticalAtEveryThreadCount) {
  for (const DeterminismEncoding enc :
       {DeterminismEncoding::Pairwise, DeterminismEncoding::Successor}) {
    const std::uint64_t serial = fingerprint_at(1, enc);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      EXPECT_EQ(fingerprint_at(threads, enc), serial)
          << "threads=" << threads
          << " enc=" << (enc == DeterminismEncoding::Pairwise ? "pairwise" : "successor");
    }
  }
}

TEST(ParallelEmission, SameVerdictAsSerial) {
  const std::vector<Segment> segments = bulky_segments();
  for (const std::size_t threads : {1u, 4u}) {
    CspOptions options;
    options.threads = threads;
    AutomatonCsp csp(segments, 4, 4, options);
    csp.add_forbidden_sequence({0, 1});
    const sat::SolveResult r = csp.solve();
    ASSERT_NE(r, sat::SolveResult::Unknown);
    if (r == sat::SolveResult::Sat) validate_model(csp.extract_model(), segments);
  }
}

TEST(StarCompression, AgreesWithDirectEncoding) {
  // Star-compressed and direct forbidden pairs must agree on the verdict at
  // every state count (equisatisfiability of the z-flag formulation).
  const std::vector<Segment> segments = bulky_segments();
  for (std::size_t n = 2; n <= 5; ++n) {
    CspOptions star_options;
    star_options.compress_forbidden = true;
    AutomatonCsp star(segments, 4, n, star_options);
    CspOptions direct_options;
    direct_options.compress_forbidden = false;
    AutomatonCsp direct(segments, 4, n, direct_options);
    for (auto* csp : {&star, &direct}) {
      csp->add_forbidden_sequence({0, 1});
      csp->add_forbidden_sequence({2, 2});
    }
    const sat::SolveResult sr = star.solve();
    EXPECT_EQ(sr, direct.solve()) << "N=" << n;
    if (sr == sat::SolveResult::Sat) {
      // The star model must genuinely avoid the forbidden pairs.
      const Nfa m = star.extract_model();
      validate_model(m, segments);
      for (const Transition& t1 : m.transitions()) {
        for (const Transition& t2 : m.transitions()) {
          if (t1.pred == 0 && t2.pred == 1) {
            EXPECT_NE(t1.dst, t2.src);
          }
          if (t1.pred == 2 && t2.pred == 2) {
            EXPECT_NE(t1.dst, t2.src);
          }
        }
      }
    }
  }
}

TEST(StarCompression, CompressesFrequentPairs) {
  // The whole point: with frequent predicates on both sides the star
  // encoding must emit strictly fewer clauses than the direct product.
  const std::vector<Segment> segments = bulky_segments();
  CspOptions star_options;
  AutomatonCsp star(segments, 4, 4, star_options);
  CspOptions direct_options;
  direct_options.compress_forbidden = false;
  AutomatonCsp direct(segments, 4, 4, direct_options);
  const std::size_t star_before = star.num_clauses();
  const std::size_t direct_before = direct.num_clauses();
  star.add_forbidden_sequence({0, 1});
  direct.add_forbidden_sequence({0, 1});
  EXPECT_LT(star.num_clauses() - star_before, direct.num_clauses() - direct_before);
}

TEST(ClauseBudget, OverflowIsDetectedDuringEmission) {
  // A budget far below the encoding size must be caught mid-emission (not
  // after materialising everything) and reported via overflowed(); solve()
  // then answers Unknown.
  const std::vector<Segment> segments = bulky_segments();
  CspOptions options;
  options.max_clauses = 64;
  for (const std::size_t threads : {1u, 4u}) {
    options.threads = threads;
    AutomatonCsp csp(segments, 4, 4, options);
    EXPECT_TRUE(csp.overflowed()) << "threads=" << threads;
    EXPECT_EQ(csp.solve(), sat::SolveResult::Unknown);
    EXPECT_LE(csp.num_clauses(), options.max_clauses + 1) << "overshot the budget";
  }
}

TEST(ClauseBudget, LearnerReportsBudgetExceeded) {
  // End to end: a learner whose CSP overruns the clause budget must report
  // budget_exceeded — distinct from a wall-clock timeout.
  LearnerConfig config;
  config.max_clauses = 64;
  config.persistent_solver = false;
  const std::vector<std::string> events = {"a", "b", "a", "b", "c", "a", "b",
                                           "c", "a", "c", "b", "a", "c", "b"};
  TraceRecorder rec;
  std::vector<std::string> symbols = {"__start", "a", "b", "c"};
  const VarIndex ev = rec.declare_cat("ev", std::move(symbols), "__start");
  rec.commit();
  for (const auto& e : events) {
    rec.set_sym(ev, e);
    rec.commit();
  }
  const LearnResult r = ModelLearner(config).learn(rec.take());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.budget_exceeded);
  EXPECT_FALSE(r.timed_out);
}

TEST(ReseedAcrossRebuilds, ImportsClausesAndPreservesVerdicts) {
  // A capacity rebuild with reseed_from must (a) import something — at
  // minimum the root facts — and (b) agree with a fresh CSP at every N.
  const std::vector<Segment> segments = bulky_segments();
  CspOptions small_options;
  small_options.state_capacity = 3;
  auto old_csp = std::make_unique<AutomatonCsp>(segments, 4, 2, small_options);
  old_csp->add_forbidden_sequence({0, 1});
  old_csp->add_forbidden_sequence({1, 2, 3});
  // Burn some search so learned clauses exist to export.
  (void)old_csp->solve();
  EXPECT_TRUE(old_csp->grow_to(3));
  (void)old_csp->solve();

  CspOptions big_options;
  big_options.state_capacity = 6;
  AutomatonCsp rebuilt(segments, 4, 3, big_options);
  rebuilt.add_forbidden_sequence({0, 1});
  rebuilt.add_forbidden_sequence({1, 2, 3});
  const std::size_t imported = rebuilt.reseed_from(*old_csp);
  EXPECT_GT(imported, 0u);
  old_csp.reset();

  for (std::size_t n = 3; n <= 6; ++n) {
    ASSERT_TRUE(n == 3 || rebuilt.grow_to(n));
    AutomatonCsp fresh(segments, 4, n);
    fresh.add_forbidden_sequence({0, 1});
    fresh.add_forbidden_sequence({1, 2, 3});
    const sat::SolveResult got = rebuilt.solve();
    EXPECT_EQ(got, fresh.solve()) << "N=" << n;
    if (got == sat::SolveResult::Sat) {
      validate_model(rebuilt.extract_model(), segments);
    }
  }
}

TEST(Preprocessing, PersistentGrowStaysSoundAfterPreprocess) {
  // Preprocessing runs at the first solve; grow_to afterwards re-mentions
  // frozen structural variables — the combination must keep matching the
  // fresh reference (this is the frozen-variable contract end to end).
  const std::vector<Segment> segments = bulky_segments();
  CspOptions options;
  options.state_capacity = 6;
  options.preprocess = true;
  AutomatonCsp csp(segments, 4, 2, options);
  csp.add_forbidden_sequence({0, 1});
  for (std::size_t n = 2; n <= 6; ++n) {
    ASSERT_TRUE(n == 2 || csp.grow_to(n));
    AutomatonCsp fresh(segments, 4, n);
    fresh.add_forbidden_sequence({0, 1});
    const sat::SolveResult got = csp.solve();
    EXPECT_EQ(got, fresh.solve()) << "N=" << n;
    if (got == sat::SolveResult::Sat) validate_model(csp.extract_model(), segments);
  }
}

}  // namespace
}  // namespace t2m
