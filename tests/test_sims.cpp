#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/basic/counter.h"
#include "src/sim/basic/integrator.h"
#include "src/sim/references.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/serial/serial_port.h"
#include "src/sim/xhci/ring_interface.h"
#include "src/sim/xhci/slot_fsm.h"

namespace t2m::sim {
namespace {

TEST(CounterSim, PaperLengthAndBounds) {
  const Trace t = generate_counter_trace({});
  EXPECT_EQ(t.size(), 447u);  // Table I row
  std::int64_t peak = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::int64_t x = t.obs(i)[0].as_int();
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 128);
    peak = std::max(peak, x);
  }
  EXPECT_EQ(peak, 128);  // the threshold is reached
}

TEST(CounterSim, StepsAreUnitUpOrDown) {
  const Trace t = generate_counter_trace({16, 100, 1});
  for (std::size_t s = 0; s < t.num_steps(); ++s) {
    const std::int64_t d = t.step_next(s)[0].as_int() - t.step_cur(s)[0].as_int();
    EXPECT_TRUE(d == 1 || d == -1) << "step " << s;
  }
}

TEST(CounterSim, InvalidConfigThrows) {
  EXPECT_THROW(generate_counter_trace({1, 10, 1}), std::invalid_argument);
}

TEST(IntegratorSim, PaperLengthClampAndInputs) {
  const Trace t = generate_integrator_trace({});
  EXPECT_EQ(t.size(), 32768u);  // Table I row
  bool hit_upper = false, hit_lower = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::int64_t ip = t.obs(i)[0].as_int();
    const std::int64_t op = t.obs(i)[1].as_int();
    EXPECT_TRUE(ip >= -1 && ip <= 1);
    EXPECT_TRUE(op >= -5 && op <= 5);
    hit_upper |= (op == 5);
    hit_lower |= (op == -5);
  }
  EXPECT_TRUE(hit_upper) << "saturation at +5 never exercised";
  EXPECT_TRUE(hit_lower) << "saturation at -5 never exercised";
}

TEST(IntegratorSim, AntiWindupLaw) {
  const Trace t = generate_integrator_trace({5, 5000, 3, 0.8});
  for (std::size_t s = 0; s < t.num_steps(); ++s) {
    const std::int64_t ip = t.step_cur(s)[0].as_int();
    const std::int64_t op = t.step_cur(s)[1].as_int();
    const std::int64_t expected = std::clamp<std::int64_t>(op + ip, -5, 5);
    EXPECT_EQ(t.step_next(s)[1].as_int(), expected) << "step " << s;
  }
}

TEST(IntegratorSim, InputNeverJumpsAcrossZero) {
  const Trace t = generate_integrator_trace({5, 10000, 9, 0.7});
  for (std::size_t s = 0; s < t.num_steps(); ++s) {
    const std::int64_t d = t.step_next(s)[0].as_int() - t.step_cur(s)[0].as_int();
    EXPECT_LE(std::llabs(d), 1) << "bandwidth-limited input violated at " << s;
  }
}

TEST(IntegratorSim, Deterministic) {
  const Trace a = generate_integrator_trace({5, 1000, 7, 0.85});
  const Trace b = generate_integrator_trace({5, 1000, 7, 0.85});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.obs(i), b.obs(i));
}

TEST(SerialSim, PaperLengthAndQueueLaw) {
  const Trace t = generate_serial_trace({});
  EXPECT_EQ(t.size(), 2077u);  // 2076 operation rows + initial observation
  const Schema& s = t.schema();
  const VarIndex ev = *s.find("ev");
  const VarIndex x = *s.find("x");
  for (std::size_t i = 0; i + 1 < t.size(); i += 2) {
    // Rows alternate idle/op; check queue-length bounds throughout.
    const std::int64_t len = t.obs(i)[x].as_int();
    EXPECT_GE(len, 0);
    EXPECT_LE(len, 16);
  }
  // Effect rows implement the operation semantics.
  for (std::size_t i = 1; i + 1 < t.size(); i += 2) {
    const std::string op = s.format_value(ev, t.obs(i)[ev]);
    const std::int64_t before = t.obs(i)[x].as_int();
    const std::int64_t after = t.obs(i + 1)[x].as_int();
    if (op == "read") {
      EXPECT_EQ(after, before - 1);
    }
    if (op == "write") {
      EXPECT_EQ(after, before + 1);
    }
    if (op == "reset") {
      EXPECT_EQ(after, 0);
    }
  }
}

TEST(SerialSim, DeviceModelRejectsIllegalOps) {
  SerialPort port(2);
  EXPECT_FALSE(port.read());   // empty
  EXPECT_FALSE(port.reset());  // reset of empty queue is a no-op
  EXPECT_TRUE(port.write());
  EXPECT_TRUE(port.write());
  EXPECT_FALSE(port.write());  // full
  EXPECT_TRUE(port.reset());
  EXPECT_EQ(port.length(), 0);
}

TEST(SlotFsm, DatasheetTransitions) {
  SlotFsm fsm;
  EXPECT_EQ(fsm.state(), SlotState::Disabled);
  EXPECT_FALSE(fsm.apply(SlotCommand::AddrDevBsr0));  // must enable first
  EXPECT_TRUE(fsm.apply(SlotCommand::EnableSlot));
  EXPECT_FALSE(fsm.apply(SlotCommand::EnableSlot));  // already enabled
  EXPECT_TRUE(fsm.apply(SlotCommand::AddrDevBsr0));
  EXPECT_EQ(fsm.state(), SlotState::Addressed);
  EXPECT_TRUE(fsm.apply(SlotCommand::ConfigureEnd));
  EXPECT_EQ(fsm.state(), SlotState::Configured);
  EXPECT_TRUE(fsm.apply(SlotCommand::ResetDevice));
  EXPECT_EQ(fsm.state(), SlotState::Default);
  EXPECT_TRUE(fsm.apply(SlotCommand::AddrDevBsr0));
  EXPECT_TRUE(fsm.apply(SlotCommand::DisableSlot));
  EXPECT_EQ(fsm.state(), SlotState::Disabled);
}

TEST(SlotFsm, Bsr1Path) {
  SlotFsm fsm;
  ASSERT_TRUE(fsm.apply(SlotCommand::EnableSlot));
  EXPECT_TRUE(fsm.apply(SlotCommand::AddrDevBsr1));
  EXPECT_EQ(fsm.state(), SlotState::Default);
  EXPECT_TRUE(fsm.apply(SlotCommand::AddrDevBsr0));
}

TEST(SlotTrace, PaperLengthAndValidity) {
  const Trace t = generate_slot_trace({});
  EXPECT_EQ(t.size(), 40u);  // 39 commands + initial observation (Table I)
  // Replaying the command sequence against a fresh FSM must be legal; this
  // is implied by construction but guards the driver script.
  EXPECT_EQ(t.schema().format_value(0, t.obs(0)[0]), "__start");
}

TEST(RingTrace, PaperLengthAndVocabulary) {
  const Trace t = generate_usb_attach_trace({});
  EXPECT_EQ(t.size(), 260u);  // 259 ring events + initial observation
  std::set<std::string> seen;
  for (std::size_t i = 1; i < t.size(); ++i) {
    seen.insert(t.schema().format_value(0, t.obs(i)[0]));
  }
  for (const char* must : {"xhci_ring_fetch", "xhci_write", "CrES", "CrAD", "CrCE",
                           "TRSetup", "TRData", "TRStatus", "TRNormal", "TRBReserved",
                           "ErCC", "ErPSC", "ErTransfer", "CCSuccess"}) {
    EXPECT_TRUE(seen.count(must)) << must << " missing from ring trace";
  }
}

TEST(SchedTrace, PaperLengthAndLegalityAgainstReference) {
  const Trace t = generate_full_coverage_sched_trace(20165);
  EXPECT_GE(t.size(), 20165u);
  EXPECT_LE(t.size(), 20168u);  // cycles may overshoot by an emission burst
  // Every step must be a legal transition of the ground-truth thread model.
  const Nfa ref = reference_sched_thread_model();
  std::set<StateId> frontier = {ref.initial()};
  const Schema& s = t.schema();
  for (std::size_t i = 1; i < t.size(); ++i) {
    const std::string event = s.format_value(0, t.obs(i)[0]);
    std::set<StateId> next;
    for (const Transition& tr : ref.transitions()) {
      if (ref.pred_name(tr.pred) == event && frontier.count(tr.src)) next.insert(tr.dst);
    }
    ASSERT_FALSE(next.empty()) << "illegal event " << event << " at " << i;
    frontier = std::move(next);
  }
}

TEST(SchedTrace, PiStressOmitsCornerCase) {
  const Trace t = generate_pi_stress_trace(5000);
  const Schema& s = t.schema();
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NE(s.format_value(0, t.obs(i)[0]), "set_state_runnable");
  }
}

TEST(SchedTrace, CornerModuleCoversRunnable) {
  const Trace t = generate_full_coverage_sched_trace(5000);
  const Schema& s = t.schema();
  bool found = false;
  for (std::size_t i = 0; i < t.size() && !found; ++i) {
    found = s.format_value(0, t.obs(i)[0]) == "set_state_runnable";
  }
  EXPECT_TRUE(found);
}

TEST(References, ShapesAndDeterminism) {
  EXPECT_EQ(reference_usb_slot_datasheet().num_states(), 5u);
  EXPECT_EQ(reference_usb_slot_expected().num_states(), 4u);
  EXPECT_EQ(reference_counter_model().num_states(), 4u);
  EXPECT_EQ(reference_sched_thread_model().num_states(), 8u);
  EXPECT_TRUE(reference_usb_slot_expected().deterministic_per_predicate());
  EXPECT_TRUE(reference_counter_model().deterministic_per_predicate());
  EXPECT_TRUE(reference_sched_thread_model().deterministic_per_predicate());
}

/// Property sweep: counter traces stay within bounds for many thresholds.
class CounterSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CounterSweep, BoundsHold) {
  const std::int64_t threshold = GetParam();
  const Trace t =
      generate_counter_trace({threshold, static_cast<std::size_t>(threshold * 4), 1});
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.obs(i)[0].as_int(), 1);
    EXPECT_LE(t.obs(i)[0].as_int(), threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CounterSweep, ::testing::Values(2, 3, 8, 31, 128));

}  // namespace
}  // namespace t2m::sim
