// Sharded parallel ingest vs the sequential streaming pipeline: for every
// shard count the merged artefacts — vocabulary, display names, segment list
// (content AND first-occurrence order), compliance window set, retained
// sequence — must be byte-identical, and learn_from_ftrace must produce the
// same model transition for transition.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/learner.h"
#include "src/parallel/sharded_ingest.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/synthetic/pattern_events.h"
#include "src/trace/ftrace_io.h"
#include "src/trace/mmap_io.h"
#include "src/util/rng.h"

namespace t2m {
namespace {

class TempFile {
public:
  explicit TempFile(const std::string& content) {
    path_ = "/tmp/t2m_sharded_test_" + std::to_string(counter_++) + ".txt";
    std::ofstream os(path_, std::ios::binary);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

private:
  static inline int counter_ = 0;
  std::string path_;
};

/// Simplified-shape ftrace content for an event-name sequence.
std::string ftrace_content(const std::vector<std::string>& events) {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << (100 + i) << ".000001 " << events[i] << "\n";
  }
  return os.str();
}

void expect_ingest_identical(const par::ShardedIngestResult& got,
                             const par::ShardedIngestResult& want,
                             const std::string& context) {
  EXPECT_EQ(got.sequence_length, want.sequence_length) << context;
  EXPECT_EQ(got.preds.vocab.size(), want.preds.vocab.size()) << context;
  EXPECT_EQ(got.preds.display_names, want.preds.display_names) << context;
  EXPECT_EQ(got.preds.seq, want.preds.seq) << context;
  // Segment list: content and first-occurrence order.
  EXPECT_EQ(got.segments, want.segments) << context;
  EXPECT_EQ(got.compliance.trace_sequences(), want.compliance.trace_sequences())
      << context;
  EXPECT_EQ(got.schema.var(0).symbols, want.schema.var(0).symbols) << context;
}

void check_all_shard_counts(const std::string& content,
                            par::ShardedIngestOptions options,
                            std::size_t max_shards = 8) {
  options.shards = 1;
  const par::ShardedIngestResult reference =
      par::sharded_ftrace_ingest(content, options);
  for (std::size_t shards = 2; shards <= max_shards; ++shards) {
    options.shards = shards;
    options.threads = 3;
    const par::ShardedIngestResult got = par::sharded_ftrace_ingest(content, options);
    expect_ingest_identical(got, reference,
                            "shards=" + std::to_string(shards) +
                                " w=" + std::to_string(options.window) +
                                " l=" + std::to_string(options.compliance_length));
  }
}

TEST(ShardedIngest, BoundaryWindowAppearsExactlyOnce) {
  // Events chosen so the windows straddling every possible cut are UNIQUE in
  // the trace: if a shard cut dropped or duplicated a boundary window, the
  // segment list would differ from the sequential one.
  std::vector<std::string> events;
  for (int i = 0; i < 40; ++i) events.push_back("ev" + std::to_string(i));
  const std::string content = ftrace_content(events);
  par::ShardedIngestOptions options;
  options.window = 3;
  options.compliance_length = 2;
  options.keep_sequence = true;
  check_all_shard_counts(content, options);
}

TEST(ShardedIngest, BoundaryWindowDuplicatingInteriorIsDeduped) {
  // A short repeating alphabet: windows straddling a cut also occur inside
  // shards, so the merge must dedup them against the interior lists while
  // preserving sequential first-occurrence order.
  std::vector<std::string> events;
  for (int i = 0; i < 60; ++i) events.push_back("ev" + std::to_string(i % 3));
  const std::string content = ftrace_content(events);
  par::ShardedIngestOptions options;
  options.window = 3;
  options.compliance_length = 2;
  options.keep_sequence = true;
  check_all_shard_counts(content, options);
}

TEST(ShardedIngest, RandomisedDifferential) {
  Rng rng(404);
  for (int round = 0; round < 30; ++round) {
    const std::size_t length = 2 + rng.below(120);
    const std::size_t alphabet = 1 + rng.below(6);
    std::vector<std::string> events;
    events.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      // += form: GCC 12's -Wrestrict false-fires on "e" + to_string(...)
      // at -O2 (PR105651).
      std::string name = "e";
      name += std::to_string(rng.below(alphabet));
      events.push_back(std::move(name));
    }
    par::ShardedIngestOptions options;
    options.window = 1 + rng.below(5);
    options.compliance_length = rng.below(4);  // includes l == 0
    options.keep_sequence = rng.chance(0.5);
    options.segmented = rng.chance(0.9);
    check_all_shard_counts(ftrace_content(events), options, 6);
  }
}

TEST(ShardedIngest, ShorterThanWindowFormsOneSegment) {
  const std::string content = ftrace_content({"a", "b", "c", "d"});
  // 3 steps < w=5: one whole-sequence segment, as segment_sequence.
  par::ShardedIngestOptions options;
  options.window = 5;
  options.compliance_length = 2;
  options.keep_sequence = true;
  check_all_shard_counts(content, options, 4);
}

TEST(ShardedIngest, CommentOnlyLeadingShardFallsBackCorrectly)
{
  // A long comment prefix pushes every event past the first cut: the shard
  // that scanned in fresh-start mode saw nothing. The implementation must
  // detect this and still produce sequential-identical artefacts.
  std::string content;
  for (int i = 0; i < 50; ++i) content += "# padding comment line with some text\n";
  content += ftrace_content({"x", "y", "x", "z", "y", "x"});
  par::ShardedIngestOptions options;
  options.window = 2;
  options.compliance_length = 2;
  options.keep_sequence = true;
  check_all_shard_counts(content, options, 4);
}

TEST(ShardedIngest, TaskFilterApplies) {
  std::string content;
  for (int i = 0; i < 30; ++i) {
    const char* task = (i % 3 == 0) ? "keep" : "drop";
    content += std::string(task) + "-1 [000] " + std::to_string(100 + i) +
               ".5: ev" + std::to_string(i % 4) + ": detail\n";
  }
  par::ShardedIngestOptions options;
  options.window = 2;
  options.compliance_length = 2;
  options.keep_sequence = true;
  options.task_filter = "keep";
  check_all_shard_counts(content, options, 4);
}

TEST(ShardedIngest, TooShortThrowsLikeStreaming) {
  par::ShardedIngestOptions options;
  options.shards = 3;
  EXPECT_THROW(par::sharded_ftrace_ingest(ftrace_content({"only"}), options),
               std::invalid_argument);
  EXPECT_THROW(par::sharded_ftrace_ingest("", options), std::invalid_argument);
  options.window = 0;
  EXPECT_THROW(par::sharded_ftrace_ingest(ftrace_content({"a", "b"}), options),
               std::invalid_argument);
}

TEST(ShardedIngest, LearnFromFtraceMatchesStreamingOnRandomisedTraces) {
  Rng rng(77);
  for (int round = 0; round < 3; ++round) {
    sim::PatternEventConfig gen;
    gen.events = 500 + rng.below(2000);
    gen.pattern_length = 3 + rng.below(3);
    gen.bursts = rng.below(2);
    gen.burst_length = 2 + rng.below(3);
    gen.burst_prob = 0.05;
    gen.seed = rng.next();
    std::ostringstream os;
    write_ftrace(os, sim::generate_pattern_event_trace(gen));
    const TempFile file(os.str());

    LearnerConfig config;
    config.window = 2 + rng.below(3);
    const ModelLearner sequential(config);
    const LearnResult reference = sequential.learn_from_ftrace(file.path());

    LearnerConfig parallel_config = config;
    parallel_config.threads = 4;
    const ModelLearner parallel(parallel_config);
    const LearnResult sharded = parallel.learn_from_ftrace(file.path());

    ASSERT_EQ(sharded.success, reference.success);
    EXPECT_EQ(sharded.states, reference.states);
    EXPECT_EQ(sharded.stats.sequence_length, reference.stats.sequence_length);
    EXPECT_EQ(sharded.stats.segments, reference.stats.segments);
    EXPECT_EQ(sharded.stats.sat_calls, reference.stats.sat_calls);
    EXPECT_EQ(sharded.preds.seq, reference.preds.seq);
    EXPECT_EQ(sharded.preds.display_names, reference.preds.display_names);
    EXPECT_EQ(sharded.model.num_states(), reference.model.num_states());
    EXPECT_EQ(sharded.model.transitions(), reference.model.transitions());
    EXPECT_EQ(sharded.model.pred_names(), reference.model.pred_names());
  }
}

TEST(ShardedIngest, LearnFromFtraceMatchesStreamingOnRtlinux) {
  std::ostringstream os;
  write_ftrace(os, sim::generate_full_coverage_sched_trace(20165));
  const TempFile file(os.str());

  LearnerConfig config;
  const ModelLearner sequential(config);
  const LearnResult reference = sequential.learn_from_ftrace(file.path());

  LearnerConfig parallel_config = config;
  parallel_config.threads = 4;
  const LearnResult sharded = ModelLearner(parallel_config).learn_from_ftrace(file.path());

  ASSERT_TRUE(reference.success);
  ASSERT_TRUE(sharded.success);
  EXPECT_EQ(sharded.states, reference.states);
  EXPECT_EQ(sharded.model.transitions(), reference.model.transitions());
  EXPECT_EQ(sharded.preds.seq, reference.preds.seq);
}

TEST(MappedFileView, ServesWholeFile) {
  const std::string content = "alpha\nbeta\ngamma";
  const TempFile file(content);
  const MappedFile mapped(file.path());
  EXPECT_EQ(mapped.view(), content);
  // Region cursors over sub-views serve exact lines.
  LineReader reader(mapped.view().substr(6), LineReader::from_memory);
  std::string_view line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "beta");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "gamma");
  EXPECT_FALSE(reader.next(line));
}

}  // namespace
}  // namespace t2m
