#include <gtest/gtest.h>

#include <algorithm>

#include "src/abstraction/abstraction.h"
#include "src/sim/basic/counter.h"
#include "src/sim/basic/integrator.h"
#include "src/sim/serial/serial_port.h"
#include "src/trace/recorder.h"

namespace t2m {
namespace {

std::vector<std::string> vocab_names(const PredicateSequence& p, const Schema& s) {
  return p.names_for(s);
}

bool has_name(const std::vector<std::string>& names, const std::string& want) {
  return std::find(names.begin(), names.end(), want) != names.end();
}

TEST(ModeSelection, FollowsSchema) {
  Schema events;
  events.add_cat("ev", {"a"}, "a");
  EXPECT_EQ(select_mode(events), AbstractionMode::Event);
  Schema numeric;
  numeric.add_int("x");
  EXPECT_EQ(select_mode(numeric), AbstractionMode::Numeric);
  Schema mixed;
  mixed.add_cat("ev", {"a"}, "a");
  mixed.add_int("x");
  EXPECT_EQ(select_mode(mixed), AbstractionMode::Mixed);
}

TEST(EventAbstraction, OnePredicatePerStepWithDisplayNames) {
  TraceRecorder rec;
  const VarIndex ev = rec.declare_cat("ev", {"a", "b", "c"}, "a");
  for (const char* e : {"a", "b", "c", "b", "c"}) {
    rec.set_sym(ev, e);
    rec.commit();
  }
  const Trace trace = rec.take();
  const PredicateSequence p = abstract_trace(trace);
  EXPECT_EQ(p.length(), 4u);  // n-1 steps
  EXPECT_EQ(p.vocab.size(), 2u);  // only b and c are step destinations
  const auto names = vocab_names(p, trace.schema());
  EXPECT_TRUE(has_name(names, "b"));
  EXPECT_TRUE(has_name(names, "c"));
  // Repeating pattern shares ids.
  EXPECT_EQ(p.seq[0], p.seq[2]);
  EXPECT_EQ(p.seq[1], p.seq[3]);
}

TEST(EventAbstraction, TooShortThrows) {
  TraceRecorder rec;
  rec.declare_cat("ev", {"a"}, "a");
  rec.commit();
  EXPECT_THROW(abstract_trace(rec.take()), std::invalid_argument);
}

TEST(NumericAbstraction, CounterVocabularyMatchesFig5) {
  const Trace trace = sim::generate_counter_trace({128, 447, 1});
  const PredicateSequence p = abstract_trace(trace);
  EXPECT_EQ(p.length(), trace.size() + 1 - 3);  // k = n + 1 - w
  const auto names = vocab_names(p, trace.schema());
  ASSERT_EQ(names.size(), 4u);
  EXPECT_TRUE(has_name(names, "x' = x + 1"));
  EXPECT_TRUE(has_name(names, "x' = x - 1"));
  EXPECT_TRUE(has_name(names, "x >= 128"));
  EXPECT_TRUE(has_name(names, "x <= 1"));
}

TEST(NumericAbstraction, CounterGuardsNotMerged) {
  // Peak and trough guards have different contexts and must stay separate.
  const Trace trace = sim::generate_counter_trace({16, 200, 1});
  AbstractionConfig config;
  config.merge_guards = true;
  const PredicateSequence p = abstract_trace(trace, config);
  const auto names = vocab_names(p, trace.schema());
  EXPECT_TRUE(has_name(names, "x >= 16"));
  EXPECT_TRUE(has_name(names, "x <= 1"));
}

TEST(NumericAbstraction, IntegratorGuardsMergeIntoDisjunction) {
  sim::IntegratorConfig config;
  config.length = 20000;
  const Trace trace = sim::generate_integrator_trace(config);
  AbstractionConfig abs;
  abs.input_vars = {sim::integrator_input_var()};
  const PredicateSequence p = abstract_trace(trace, abs);
  const auto names = vocab_names(p, trace.schema());
  EXPECT_TRUE(has_name(names, "op' = op"));
  EXPECT_TRUE(has_name(names, "op' = op + ip"));
  bool merged_guard = false;
  for (const auto& n : names) {
    if (n.find("||") != std::string::npos && n.find("5") != std::string::npos) {
      merged_guard = true;
    }
  }
  EXPECT_TRUE(merged_guard) << "saturation guards should merge into a disjunction";
}

TEST(NumericAbstraction, MergeCanBeDisabled) {
  sim::IntegratorConfig config;
  config.length = 20000;
  const Trace trace = sim::generate_integrator_trace(config);
  AbstractionConfig abs;
  abs.input_vars = {sim::integrator_input_var()};
  abs.merge_guards = false;
  const PredicateSequence p = abstract_trace(trace, abs);
  for (const auto& n : vocab_names(p, trace.schema())) {
    EXPECT_EQ(n.find("||"), std::string::npos) << n;
  }
}

TEST(NumericAbstraction, WindowSizeControlsSequenceLength) {
  const Trace trace = sim::generate_counter_trace({8, 50, 1});
  for (const std::size_t w : {2u, 3u, 4u, 5u}) {
    AbstractionConfig config;
    config.window = w;
    const PredicateSequence p = abstract_trace(trace, config);
    EXPECT_EQ(p.length(), trace.size() + 1 - w) << "w=" << w;
  }
}

TEST(NumericAbstraction, InputVarGetsNoUpdateAtom) {
  sim::IntegratorConfig config;
  config.length = 5000;
  const Trace trace = sim::generate_integrator_trace(config);
  AbstractionConfig abs;
  abs.input_vars = {"ip"};
  const PredicateSequence p = abstract_trace(trace, abs);
  for (const auto& n : vocab_names(p, trace.schema())) {
    EXPECT_EQ(n.find("ip' ="), std::string::npos) << n;
  }
}

TEST(NumericAbstraction, RejectsCategoricalVariables) {
  TraceRecorder rec;
  rec.declare_cat("ev", {"a"}, "a");
  rec.commit();
  rec.commit();
  AbstractionConfig config;
  EXPECT_THROW(abstract_trace(rec.take(), config, AbstractionMode::Numeric),
               std::invalid_argument);
}

TEST(MixedAbstraction, SerialAtoms) {
  sim::SerialPortConfig config;
  config.operations = 400;
  const Trace trace = sim::generate_serial_trace(config);
  const PredicateSequence p = abstract_trace(trace);
  EXPECT_EQ(p.length(), trace.num_steps());
  const auto names = vocab_names(p, trace.schema());
  EXPECT_TRUE(has_name(names, "read"));
  EXPECT_TRUE(has_name(names, "write"));
  EXPECT_TRUE(has_name(names, "reset"));
  EXPECT_TRUE(has_name(names, "x' = x - 1"));
  EXPECT_TRUE(has_name(names, "x' = x + 1"));
  EXPECT_TRUE(has_name(names, "x' = 0"));
}

TEST(MixedAbstraction, EventAndEffectAlternate) {
  sim::SerialPortConfig config;
  config.operations = 100;
  const Trace trace = sim::generate_serial_trace(config);
  const PredicateSequence p = abstract_trace(trace);
  const auto names = vocab_names(p, trace.schema());
  // Even positions (0-based) are operation events, odd are data effects.
  for (std::size_t i = 0; i + 1 < p.length(); i += 2) {
    const std::string& ev = names[p.seq[i]];
    EXPECT_TRUE(ev == "read" || ev == "write" || ev == "reset") << i << ": " << ev;
    const std::string& effect = names[p.seq[i + 1]];
    EXPECT_NE(effect.find("x'"), std::string::npos) << i + 1 << ": " << effect;
  }
}

TEST(Compaction, DropsUnusedVocabulary) {
  PredicateSequence p;
  const PredId a = p.vocab.intern(Expr::int_const(1));
  const PredId b = p.vocab.intern(Expr::int_const(2));
  (void)a;
  p.seq = {b, b};
  compact_sequence(p);
  EXPECT_EQ(p.vocab.size(), 1u);
  EXPECT_EQ(p.seq, (std::vector<PredId>{0, 0}));
}

}  // namespace
}  // namespace t2m
