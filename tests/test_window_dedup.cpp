// StreamingWindowDedup under engineered rolling-hash collisions: distinct
// windows sharing a polynomial hash must all survive (bucket chains compare
// full contents), duplicates must still dedup, and the streaming segmenter
// must stay byte-identical to the batch path on colliding inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/segmentation.h"
#include "src/util/hash.h"
#include "src/util/window_dedup.h"

namespace t2m {
namespace {

// For window length 2 the rolling hash is v0 * B + v1 (mod 2^64), so
// [a0, a1] and [a0 + d, a1 - d*B] collide for any d: the bucket key alone
// cannot tell them apart.
std::vector<std::uint64_t> collider(std::uint64_t a0, std::uint64_t a1,
                                    std::uint64_t d) {
  return {a0 + d, a1 - d * kPolyHashBase};
}

TEST(WindowDedupCollision, DistinctCollidingWindowsAllSurvive) {
  StreamingWindowDedup<std::uint64_t> dedup(2);
  const std::vector<std::uint64_t> a = {5, 7};
  const std::vector<std::uint64_t> b = collider(5, 7, 1);
  const std::vector<std::uint64_t> c = collider(5, 7, 2);
  for (const auto& w : {a, b, c}) {
    for (const std::uint64_t v : w) dedup.push(v);
  }
  // Sanity: the three windows really do share one rolling hash...
  const auto poly = [](const std::vector<std::uint64_t>& w) {
    return w[0] * kPolyHashBase + w[1];
  };
  ASSERT_EQ(poly(a), poly(b));
  ASSERT_EQ(poly(a), poly(c));
  // ...yet all three (plus the two bridging windows) are retained distinct.
  const auto& windows = dedup.windows();
  EXPECT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[0], a);
  ASSERT_TRUE(std::find(windows.begin(), windows.end(), b) != windows.end());
  ASSERT_TRUE(std::find(windows.begin(), windows.end(), c) != windows.end());
}

TEST(WindowDedupCollision, TrueDuplicateStillDedups) {
  StreamingWindowDedup<std::uint64_t> dedup(2);
  const std::vector<std::uint64_t> b = collider(5, 7, 1);
  // [5, 7] twice with the colliding window in between: the duplicate must
  // land in the same bucket, compare equal, and not be re-materialised.
  for (const std::uint64_t v : {std::uint64_t{5}, std::uint64_t{7}, b[0], b[1],
                                std::uint64_t{5}, std::uint64_t{7}}) {
    dedup.push(v);
  }
  std::size_t count_a = 0;
  for (const auto& w : dedup.windows()) {
    if (w == std::vector<std::uint64_t>({5, 7})) ++count_a;
  }
  EXPECT_EQ(count_a, 1u);
}

TEST(WindowDedupCollision, SegmenterMatchesBatchOnCollidingIds) {
  // PredId is 64-bit, so the engineered collisions flow through the real
  // segmenter; the batch path hashes differently (VectorHash), making this
  // a genuine differential.
  const std::vector<std::uint64_t> b = collider(5, 7, 1);
  const std::vector<std::uint64_t> c = collider(5, 7, 2);
  const std::vector<PredId> seq = {5, 7, b[0], b[1], 5, 7, c[0], c[1], 5, 7};
  for (const std::size_t w : {std::size_t{2}, std::size_t{3}}) {
    StreamingSegmenter segmenter(w);
    for (const PredId p : seq) segmenter.push(p);
    EXPECT_EQ(segmenter.take(), segment_sequence(seq, w)) << "w=" << w;
  }
}

TEST(WindowDedupCollision, LongerWindowCollision) {
  // w = 3: hash = v0*B^2 + v1*B + v2; shifting weight between the first two
  // positions collides as well.
  StreamingWindowDedup<std::uint64_t> dedup(3);
  const std::vector<std::uint64_t> a = {3, 9, 4};
  const std::vector<std::uint64_t> b = {4, 9 - kPolyHashBase, 4};
  const auto poly = [](const std::vector<std::uint64_t>& w) {
    return (w[0] * kPolyHashBase + w[1]) * kPolyHashBase + w[2];
  };
  ASSERT_EQ(poly(a), poly(b));
  for (const auto& w : {a, b}) {
    for (const std::uint64_t v : w) dedup.push(v);
  }
  const auto& windows = dedup.windows();
  ASSERT_TRUE(std::find(windows.begin(), windows.end(), a) != windows.end());
  ASSERT_TRUE(std::find(windows.begin(), windows.end(), b) != windows.end());
}

}  // namespace
}  // namespace t2m
