// End-to-end reproduction checks: every paper benchmark learns a model of
// the published shape (state count, vocabulary, structure). These are the
// executable versions of Figs. 1b, 2b, 3, 4, 5, 6.

#include <gtest/gtest.h>

#include "src/automaton/isomorphism.h"
#include "src/automaton/ops.h"
#include "src/core/compliance.h"
#include "src/core/learner.h"
#include "src/sim/basic/counter.h"
#include "src/sim/basic/integrator.h"
#include "src/sim/references.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/serial/serial_port.h"
#include "src/sim/xhci/ring_interface.h"
#include "src/sim/xhci/slot_fsm.h"

namespace t2m {
namespace {

LearnResult learn(const Trace& trace, std::vector<std::string> inputs = {}) {
  LearnerConfig config;
  config.abstraction.input_vars = std::move(inputs);
  LearnResult r = ModelLearner(config).learn(trace);
  EXPECT_TRUE(r.success);
  return r;
}

/// All transition paths of length l, as predicate-NAME tuples. Two minimal
/// models with different (but equally valid) wirings share this language, so
/// it is the right reproduction check where the SAT solver's choice among
/// sibling models is arbitrary.
std::set<std::vector<std::string>> path_language(const Nfa& m, std::size_t l) {
  std::set<std::vector<std::string>> out;
  for (const auto& path : transition_sequences(m, l)) {
    std::vector<std::string> named;
    named.reserve(path.size());
    for (const PredId p : path) named.push_back(m.pred_name(p));
    out.insert(std::move(named));
  }
  return out;
}

TEST(EndToEnd, Fig1bUsbSlot) {
  const LearnResult r = learn(sim::generate_slot_trace());
  EXPECT_EQ(r.states, 4u);  // Table II: 4 states
  EXPECT_TRUE(isomorphic(canonicalize(r.model), sim::reference_usb_slot_expected()));
}

TEST(EndToEnd, Fig3UsbAttach) {
  const LearnResult r = learn(sim::generate_usb_attach_trace());
  // Paper: 7 states; our transaction mix lands within one state of that.
  EXPECT_GE(r.states, 6u);
  EXPECT_LE(r.states, 8u);
  EXPECT_TRUE(r.model.accepts(r.preds.seq));
}

TEST(EndToEnd, Fig5Counter) {
  const LearnResult r = learn(sim::generate_counter_trace({}));
  EXPECT_EQ(r.states, 4u);
  // Several 4-state wirings satisfy all constraints; they agree on the
  // realisable label paths, which is what Fig. 5 depicts.
  const Nfa reference = sim::reference_counter_model(128);
  EXPECT_EQ(path_language(r.model, 2), path_language(reference, 2));
  EXPECT_EQ(path_language(r.model, 3), path_language(reference, 3));
  EXPECT_TRUE(r.model.accepts(r.preds.seq));
}

TEST(EndToEnd, Fig4Integrator) {
  const LearnResult r =
      learn(sim::generate_integrator_trace({}), {sim::integrator_input_var()});
  EXPECT_EQ(r.states, 3u);  // Table II: 3 states
  // Vocabulary: op' = op + ip, op' = op, and the merged saturation guard.
  const auto names = r.preds.names_for(Schema());
  bool has_merged_guard = false;
  for (const Transition& t : r.model.transitions()) {
    if (r.model.pred_name(t.pred).find("||") != std::string::npos) {
      has_merged_guard = true;
    }
  }
  EXPECT_TRUE(has_merged_guard);
}

TEST(EndToEnd, Fig2bSerial) {
  const LearnResult r = learn(sim::generate_serial_trace({}));
  // Paper: 6 states; ours is at least as concise.
  EXPECT_GE(r.states, 4u);
  EXPECT_LE(r.states, 6u);
  // Event labels and data updates both appear on edges.
  std::set<std::string> labels;
  for (const Transition& t : r.model.transitions()) {
    labels.insert(r.model.pred_name(t.pred));
  }
  EXPECT_TRUE(labels.count("read"));
  EXPECT_TRUE(labels.count("write"));
  EXPECT_TRUE(labels.count("reset"));
  EXPECT_TRUE(labels.count("x' = x - 1"));
  EXPECT_TRUE(labels.count("x' = x + 1"));
  EXPECT_TRUE(labels.count("x' = 0"));
}

TEST(EndToEnd, Fig6RtLinux) {
  const LearnResult r = learn(sim::generate_full_coverage_sched_trace(20165));
  // Paper: 8 states with l = 2 compliance; our trace permits merging the
  // two scheduler-entry states, landing at 7 (EXPERIMENTS.md discusses it).
  EXPECT_GE(r.states, 7u);
  EXPECT_LE(r.states, 8u);
  // All eight events appear as edge labels.
  std::set<std::string> labels;
  for (const Transition& t : r.model.transitions()) {
    labels.insert(r.model.pred_name(t.pred));
  }
  for (const auto& event : sim::sched_event_names()) {
    EXPECT_TRUE(labels.count(event)) << event;
  }
}

TEST(EndToEnd, Fig6RtLinuxDeeperComplianceRecoversEightStates) {
  // With l = 3 the (sleepable, entry, preempt) mix is forbidden and the
  // scheduler-entry states split, matching the paper's 8 exactly.
  LearnerConfig config;
  config.compliance_length = 3;
  const LearnResult r =
      ModelLearner(config).learn(sim::generate_full_coverage_sched_trace(6000));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states, 8u);
  EXPECT_EQ(path_language(r.model, 2),
            path_language(sim::reference_sched_thread_model(), 2));
}

TEST(EndToEnd, LearnedModelsReplayTheirOwnTraces) {
  const Trace traces[] = {
      sim::generate_slot_trace({}),
      sim::generate_counter_trace({16, 120, 1}),
      sim::generate_serial_trace({16, 200, 11, 0.46, 0.44}),
  };
  for (const Trace& t : traces) {
    const LearnResult r = learn(t);
    EXPECT_TRUE(r.model.accepts(r.preds.seq));
    const ComplianceResult c = check_compliance(r.model, r.preds.seq, 2);
    EXPECT_TRUE(c.compliant);
  }
}

TEST(EndToEnd, PairwiseEncodingReproducesSameModels) {
  LearnerConfig config;
  config.encoding = DeterminismEncoding::Pairwise;
  const LearnResult slot = ModelLearner(config).learn(sim::generate_slot_trace());
  ASSERT_TRUE(slot.success);
  EXPECT_EQ(slot.states, 4u);
  const LearnResult counter =
      ModelLearner(config).learn(sim::generate_counter_trace({}));
  ASSERT_TRUE(counter.success);
  EXPECT_EQ(counter.states, 4u);
}

/// Parameterized sweep over w. With w = 3 the model is exactly Fig. 5;
/// larger windows refine the peak/trough into nested guards (x >= 127 then
/// x >= 128), so the model grows but stays concise and trace-accepting.
class WindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSweep, CounterModelConciseAndAccepting) {
  LearnerConfig config;
  config.window = GetParam();
  const LearnResult r = ModelLearner(config).learn(sim::generate_counter_trace({}));
  ASSERT_TRUE(r.success);
  if (GetParam() == 3) {
    EXPECT_EQ(r.states, 4u);
  } else {
    EXPECT_LE(r.states, 8u) << "w=" << GetParam();
  }
  EXPECT_TRUE(r.model.accepts(r.preds.seq));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(3, 4, 5, 6));

/// Parameterized sweep: counter thresholds all learn 4-state models with
/// matching threshold guards.
class ThresholdSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ThresholdSweep, FourStatesAnyThreshold) {
  const std::int64_t threshold = GetParam();
  const Trace t = sim::generate_counter_trace(
      {threshold, static_cast<std::size_t>(threshold * 7 / 2), 1});
  const LearnResult r = ModelLearner().learn(t);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states, 4u);
  const Nfa reference = sim::reference_counter_model(threshold);
  EXPECT_EQ(path_language(r.model, 2), path_language(reference, 2));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep, ::testing::Values(8, 16, 32, 100));

}  // namespace
}  // namespace t2m
