#include <gtest/gtest.h>

#include "src/base/schema.h"
#include "src/base/value.h"

namespace t2m {
namespace {

TEST(Value, IntRoundTrip) {
  const Value v = Value::of_int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_sym());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_EQ(v.debug_string(), "-42");
}

TEST(Value, BoolIsInt) {
  EXPECT_EQ(Value::of_bool(true).as_int(), 1);
  EXPECT_EQ(Value::of_bool(false).as_int(), 0);
  EXPECT_TRUE(Value::of_bool(true).as_bool());
}

TEST(Value, SymRoundTrip) {
  const Value v = Value::of_sym(3);
  EXPECT_TRUE(v.is_sym());
  EXPECT_EQ(v.as_sym(), 3);
  EXPECT_THROW(v.as_int(), std::logic_error);
}

TEST(Value, EqualityDistinguishesKinds) {
  EXPECT_NE(Value::of_int(1), Value::of_sym(1));
  EXPECT_EQ(Value::of_int(1), Value::of_bool(true));
  EXPECT_EQ(Value::of_sym(2), Value::of_sym(2));
}

TEST(Value, OrderingIsTotal) {
  EXPECT_LT(Value::of_int(1), Value::of_int(2));
  EXPECT_LT(Value::of_int(5), Value::of_sym(0));  // Int kind sorts first
}

TEST(Schema, DeclareAndLookup) {
  Schema schema;
  const VarIndex x = schema.add_int("x");
  const VarIndex flag = schema.add_bool("flag");
  const VarIndex ev = schema.add_cat("ev", {"idle", "read"}, "idle");
  EXPECT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema.find("x"), std::optional<VarIndex>(x));
  EXPECT_EQ(schema.find("flag"), std::optional<VarIndex>(flag));
  EXPECT_EQ(schema.find("ev"), std::optional<VarIndex>(ev));
  EXPECT_FALSE(schema.find("nope").has_value());
}

TEST(Schema, DuplicateNameRejected) {
  Schema schema;
  schema.add_int("x");
  EXPECT_THROW(schema.add_bool("x"), std::invalid_argument);
}

TEST(Schema, CatSymbols) {
  Schema schema;
  const VarIndex ev = schema.add_cat("ev", {"a", "b"}, "a");
  EXPECT_EQ(schema.sym_id(ev, "a"), 0);
  EXPECT_EQ(schema.sym_id(ev, "b"), 1);
  EXPECT_EQ(schema.sym_name(ev, 1), "b");
  EXPECT_EQ(schema.var(ev).default_sym, std::optional<std::int64_t>(0));
  EXPECT_THROW(schema.sym_id(ev, "c"), std::invalid_argument);
}

TEST(Schema, InternGrowsSymbolTable) {
  Schema schema;
  const VarIndex ev = schema.add_cat("ev", {}, std::nullopt);
  EXPECT_EQ(schema.sym_id_intern(ev, "x"), 0);
  EXPECT_EQ(schema.sym_id_intern(ev, "y"), 1);
  EXPECT_EQ(schema.sym_id_intern(ev, "x"), 0);
  EXPECT_EQ(schema.var(ev).symbols.size(), 2u);
}

TEST(Schema, DefaultSymbolMustExist) {
  Schema schema;
  EXPECT_THROW(schema.add_cat("ev", {"a"}, "b"), std::invalid_argument);
}

TEST(Schema, ParseAndFormat) {
  Schema schema;
  const VarIndex x = schema.add_int("x");
  const VarIndex b = schema.add_bool("b");
  const VarIndex ev = schema.add_cat("ev", {"on", "off"}, "off");
  EXPECT_EQ(schema.parse_value(x, "-7"), Value::of_int(-7));
  EXPECT_EQ(schema.parse_value(b, "true"), Value::of_bool(true));
  EXPECT_EQ(schema.parse_value(b, "0"), Value::of_bool(false));
  EXPECT_EQ(schema.parse_value(ev, "on"), Value::of_sym(0));
  EXPECT_EQ(schema.format_value(x, Value::of_int(9)), "9");
  EXPECT_EQ(schema.format_value(b, Value::of_bool(true)), "true");
  EXPECT_EQ(schema.format_value(ev, Value::of_sym(1)), "off");
}

TEST(Schema, MalformedIntegerLiteralIsDiagnosedNotCrash) {
  // Regression: parse_value used std::stoll, so a malformed trace row
  // ("12x", "", out-of-range) crashed with an uncaught exception instead of
  // the reader's clean invalid_argument error path.
  Schema schema;
  const VarIndex x = schema.add_int("x");
  EXPECT_THROW(schema.parse_value(x, "banana"), std::invalid_argument);
  EXPECT_THROW(schema.parse_value(x, "12x"), std::invalid_argument);
  EXPECT_THROW(schema.parse_value(x, ""), std::invalid_argument);
  EXPECT_THROW(schema.parse_value(x, "99999999999999999999"), std::invalid_argument);
  // An explicit '+' sign, which stoll accepted, keeps parsing.
  EXPECT_EQ(schema.parse_value(x, "+12"), Value::of_int(12));
  EXPECT_THROW(schema.parse_value(x, "+"), std::invalid_argument);
  try {
    schema.parse_value(x, "12x");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("12x"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("x"), std::string::npos);
  }
}

TEST(Schema, ModePredicates) {
  Schema numeric;
  numeric.add_int("x");
  numeric.add_bool("b");
  EXPECT_TRUE(numeric.all_numeric());
  EXPECT_FALSE(numeric.all_categorical());

  Schema events;
  events.add_cat("ev", {"a"}, "a");
  EXPECT_TRUE(events.all_categorical());
  EXPECT_FALSE(events.all_numeric());

  Schema empty;
  EXPECT_FALSE(empty.all_numeric());
  EXPECT_FALSE(empty.all_categorical());
}

}  // namespace
}  // namespace t2m
