// The observability layer: span tracer (lock-free buffers, nesting, named
// tracks), metrics registry (counters/gauges/log-scale histograms), the
// progress heartbeat, the upgraded logger — and the two identity guarantees
// the design hinges on: metrics are the same with tracing on or off, and
// the learn's artefacts (clause fingerprint, conflict counts) are the same
// with observability on or off.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/csp_encoder.h"
#include "src/core/learner.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/obs/validate.h"
#include "src/parallel/thread_pool.h"
#include "src/sim/basic/counter.h"
#include "src/util/log.h"
#include "src/util/sync.h"

namespace t2m {
namespace {

/// Restores global observability state on scope exit so tests cannot leak
/// an enabled tracer/metrics/progress into their neighbours.
struct ObsQuiescent {
  ~ObsQuiescent() {
    obs::Tracer::instance().stop();
    obs::MetricsRegistry::global().disable();
    obs::Progress::global().disable();
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::Warn);
  }
};

std::string trace_json() {
  std::ostringstream os;
  obs::Tracer::instance().write_json(os);
  return os.str();
}

// --- tracer ----------------------------------------------------------------

TEST(Tracer, DisabledSpansRecordNothing) {
  const ObsQuiescent guard;
  obs::Tracer::instance().stop();
  {
    T2M_SPAN("idle.phase", "n", 1);
    T2M_INSTANT("idle.marker");
    T2M_TRACE_COUNTER("idle.counter", 3);
  }
  obs::Tracer::instance().start();
  obs::Tracer::instance().stop();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST(Tracer, NestedSpansValidateAndParseBack) {
  const ObsQuiescent guard;
  obs::Tracer::instance().start();
  {
    T2M_SPAN("outer", "k", 1);
    {
      T2M_SPAN("middle");
      { T2M_SPAN("inner", "tag", "deep"); }
    }
    T2M_INSTANT("note");
    T2M_TRACE_COUNTER("gaugey", 42);
  }
  obs::Tracer::instance().stop();

  obs::TraceSummary summary;
  const Status status = obs::validate_trace_json(trace_json(), &summary);
  ASSERT_TRUE(status.ok()) << status.to_string();
#if T2M_OBS_ENABLED
  EXPECT_EQ(summary.spans, 3u);
  EXPECT_EQ(summary.instants, 1u);
  EXPECT_EQ(summary.counters, 1u);
  EXPECT_TRUE(summary.span_names.count("outer"));
  EXPECT_TRUE(summary.span_names.count("middle"));
  EXPECT_TRUE(summary.span_names.count("inner"));
#else
  // T2M_OBS=OFF strips the macros: empty-but-valid is the contract.
  EXPECT_EQ(summary.events, 0u);
#endif
}

TEST(Tracer, SpansAcrossPoolWorkersNestPerTrack) {
  const ObsQuiescent guard;
  par::ThreadPool& pool = par::ThreadPool::global();
  pool.ensure_size(4);
  obs::Tracer::instance().start();
  {
    T2M_SPAN("fanout");
    par::for_chunks(4, 256, 16, []([[maybe_unused]] std::size_t c, std::size_t lo,
                                   std::size_t hi) {
      T2M_SPAN("chunk", "c", c);
      for (std::size_t i = lo; i < hi; ++i) {
        T2M_SPAN("item", "i", i);
      }
    });
  }
  obs::Tracer::instance().stop();

  obs::TraceSummary summary;
  const Status status = obs::validate_trace_json(trace_json(), &summary);
  ASSERT_TRUE(status.ok()) << status.to_string();
#if T2M_OBS_ENABLED
  // 1 fanout + 16 chunk + 256 item spans at least, across however many
  // tracks the pool scheduling landed them on — the validator has already
  // asserted every track's spans nest laminarly. Chunks executed by pool
  // workers (rather than the helping caller) add a pool.task span each, so
  // the exact total is scheduling-dependent.
  EXPECT_GE(summary.spans, 1u + 16u + 256u);
  EXPECT_LE(summary.spans, 1u + 16u + 256u + 16u);
  EXPECT_TRUE(summary.span_names.count("chunk"));
  EXPECT_TRUE(summary.span_names.count("item"));
#endif
}

TEST(Tracer, TrackScopeRoutesSpansOntoNamedTrack) {
  const ObsQuiescent guard;
  obs::Tracer::instance().start();
  {
    const obs::TrackScope lane("lane test-lane");
    T2M_SPAN("lane.work");
  }
  { T2M_SPAN("own.work"); }
  obs::Tracer::instance().stop();

  obs::TraceSummary summary;
  ASSERT_TRUE(obs::validate_trace_json(trace_json(), &summary).ok());
#if T2M_OBS_ENABLED
  bool lane_track = false;
  for (const auto& [tid, name] : summary.tracks) {
    if (name == "lane test-lane") lane_track = true;
  }
  EXPECT_TRUE(lane_track);
  EXPECT_TRUE(summary.span_names.count("lane.work"));
  EXPECT_TRUE(summary.span_names.count("own.work"));
#endif
}

TEST(Tracer, StartDiscardsPreviousRun) {
  const ObsQuiescent guard;
  obs::Tracer::instance().start();
  { T2M_SPAN("first.run"); }
  obs::Tracer::instance().start();  // restart: first.run must be gone
  { T2M_SPAN("second.run"); }
  obs::Tracer::instance().stop();

  obs::TraceSummary summary;
  ASSERT_TRUE(obs::validate_trace_json(trace_json(), &summary).ok());
  EXPECT_FALSE(summary.span_names.count("first.run"));
#if T2M_OBS_ENABLED
  EXPECT_TRUE(summary.span_names.count("second.run"));
#endif
}

TEST(TraceValidation, RejectsCorruptedInput) {
  EXPECT_FALSE(obs::validate_trace_json("").ok());
  EXPECT_FALSE(obs::validate_trace_json("not json").ok());
  EXPECT_FALSE(obs::validate_trace_json("{\"traceEvents\": 3}").ok());
  // An 'X' event without a duration is not a Perfetto-loadable span.
  EXPECT_FALSE(
      obs::validate_trace_json(
          R"({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1}]})")
          .ok());
  // Truncated document (the classic crash-mid-write artefact).
  EXPECT_FALSE(obs::validate_trace_json(R"({"traceEvents": [{"name": "x")").ok());
}

// --- json parser -----------------------------------------------------------

TEST(Json, ParsesStructuresAndRejectsGarbage) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(R"({"a": [1, 2.5, "s", true, null], "b": {}})", v).ok());
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array.size(), 5u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[2].string, "s");

  EXPECT_FALSE(obs::parse_json("{", v).ok());
  EXPECT_FALSE(obs::parse_json("[1, ]", v).ok());
  EXPECT_FALSE(obs::parse_json("{\"a\": 1} trailing", v).ok());
}

// --- metrics ---------------------------------------------------------------

TEST(Histogram, LogScaleBucketEdges) {
  // bucket_of(v) = bit_width(v): 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(obs::Histogram::bucket_floor(64), std::uint64_t{1} << 63);

  obs::Histogram h;
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Metrics, RegistryJsonRoundTrips) {
  const ObsQuiescent guard;
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().enable();
  obs::count("test.counter", 3);
  obs::gauge_set("test.gauge", -7);
  obs::gauge_max("test.peak", 10);
  obs::gauge_max("test.peak", 4);  // lower: must not regress the peak
  obs::observe("test.histogram", 5);
  obs::observe("test.histogram", 0);

  std::ostringstream os;
  obs::MetricsRegistry::global().write_json(os);
  const Status status = obs::validate_metrics_json(os.str());
  ASSERT_TRUE(status.ok()) << status.to_string() << "\n" << os.str();

  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(os.str(), v).ok());
  EXPECT_EQ(v.find("counters")->find("test.counter")->number, 3.0);
  EXPECT_EQ(v.find("gauges")->find("test.gauge")->number, -7.0);
  EXPECT_EQ(v.find("gauges")->find("test.peak")->number, 10.0);
  EXPECT_EQ(v.find("histograms")->find("test.histogram")->find("count")->number, 2.0);
}

TEST(Metrics, DisabledEmittersAreNoOps) {
  const ObsQuiescent guard;
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().disable();
  obs::count("test.should_not_exist");
  EXPECT_EQ(obs::MetricsRegistry::global().counter_values().count("test.should_not_exist"),
            0u);
}

TEST(MetricsValidation, RejectsMalformedSnapshots) {
  EXPECT_FALSE(obs::validate_metrics_json("").ok());
  EXPECT_FALSE(obs::validate_metrics_json("{\"counters\": 3}").ok());
  // Bucket counts not summing to "count".
  EXPECT_FALSE(obs::validate_metrics_json(
                   R"({"histograms": {"h": {"count": 5, "sum": 1, "buckets": [[0, 1]]}}})")
                   .ok());
}

// --- identity guarantees ---------------------------------------------------

LearnResult run_small_learn() {
  LearnerConfig config;
  config.require_trace_acceptance = false;
  config.threads = 1;
  const ModelLearner learner(config);
  return learner.learn(sim::generate_counter_trace({}));
}

TEST(ObsIdentity, MetricsIdenticalWithTracingOnAndOff) {
  const ObsQuiescent guard;
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().enable();
  obs::Tracer::instance().stop();
  const LearnResult off = run_small_learn();
  const auto counters_off = obs::MetricsRegistry::global().counter_values();

  obs::MetricsRegistry::global().reset();
  obs::Tracer::instance().start();
  const LearnResult on = run_small_learn();
  obs::Tracer::instance().stop();
  const auto counters_on = obs::MetricsRegistry::global().counter_values();

  ASSERT_TRUE(off.success);
  ASSERT_TRUE(on.success);
  EXPECT_EQ(counters_off, counters_on);
  EXPECT_GT(counters_on.at("learn.sat_calls"), 0u);
  EXPECT_EQ(counters_on.at("learn.runs"), 1u);
}

TEST(ObsIdentity, LearnArtefactsIdenticalWithObservabilityOnAndOff) {
  const ObsQuiescent guard;
  // Fully dark run.
  obs::Tracer::instance().stop();
  obs::MetricsRegistry::global().disable();
  const LearnResult dark = run_small_learn();

  // Fully lit run: tracing, metrics and progress all live.
  obs::Tracer::instance().start();
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().enable();
  obs::Progress::global().enable();
  const LearnResult lit = run_small_learn();
  obs::Tracer::instance().stop();

  ASSERT_TRUE(dark.success);
  ASSERT_TRUE(lit.success);
  EXPECT_EQ(dark.states, lit.states);
  EXPECT_EQ(dark.stats.sat_calls, lit.stats.sat_calls);
  EXPECT_EQ(dark.stats.sat_conflicts, lit.stats.sat_conflicts);
  EXPECT_EQ(dark.stats.refinements, lit.stats.refinements);
}

TEST(ObsIdentity, EncodingFingerprintUnaffectedByTracing) {
  const ObsQuiescent guard;
  const std::vector<Segment> segments = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};
  const auto fingerprint_of = [&segments] {
    const AutomatonCsp csp(segments, 3, 3, {});
    return csp.encoding_fingerprint();
  };
  obs::Tracer::instance().stop();
  const std::uint64_t dark = fingerprint_of();
  obs::Tracer::instance().start();
  const std::uint64_t lit = fingerprint_of();
  obs::Tracer::instance().stop();
  EXPECT_EQ(dark, lit);
  EXPECT_NE(dark, 0u);
}

// --- progress --------------------------------------------------------------

TEST(Progress, CountersAndSnapshot) {
  const ObsQuiescent guard;
  obs::Progress::global().enable();
  obs::Progress::global().begin_run(Deadline::never());
  obs::Progress::global().set_states(4);
  obs::Progress::global().add_sat_calls(2);
  obs::Progress::global().add_conflicts(100);
  obs::Progress::global().add_refinements(1);

  const obs::ProgressSnapshot snap = obs::Progress::global().snapshot();
  EXPECT_EQ(snap.states, 4u);
  EXPECT_EQ(snap.sat_calls, 2u);
  EXPECT_EQ(snap.conflicts, 100u);
  EXPECT_EQ(snap.refinements, 1u);
  EXPECT_GE(snap.uptime_seconds, 0.0);
  EXPECT_TRUE(std::isinf(snap.deadline_remaining_seconds));

  const std::string line = format_progress_line(snap);
  EXPECT_NE(line.find("progress:"), std::string::npos);
  EXPECT_NE(line.find("N=4"), std::string::npos);
  EXPECT_NE(line.find("sat_calls=2"), std::string::npos);
  EXPECT_NE(line.find("conflicts=100"), std::string::npos);
}

TEST(Progress, DisabledUpdatesAreDropped) {
  const ObsQuiescent guard;
  obs::Progress::global().enable();
  obs::Progress::global().begin_run(Deadline::never());
  obs::Progress::global().disable();
  obs::Progress::global().add_sat_calls(5);
  obs::Progress::global().enable();
  EXPECT_EQ(obs::Progress::global().snapshot().sat_calls, 0u);
}

TEST(Heartbeat, FiresCallbackAndInfoLine) {
  const ObsQuiescent guard;
  obs::Progress::global().enable();
  obs::Progress::global().begin_run(Deadline::never());
  obs::Progress::global().add_conflicts(7);

  std::atomic<int> callbacks{0};
  Mutex lines_mutex;
  std::vector<std::string> lines;
  Logger::instance().set_level(LogLevel::Info);
  Logger::instance().set_sink([&](LogLevel, const std::string& line) {
    const MutexLock lock(lines_mutex);
    lines.push_back(line);
  });
  {
    obs::Heartbeat heartbeat(0.02, [&callbacks](const obs::ProgressSnapshot& snap) {
      EXPECT_EQ(snap.conflicts, 7u);
      callbacks.fetch_add(1);
    });
    // Generous budget for loaded CI machines; exits as soon as one fires.
    for (int i = 0; i < 200 && callbacks.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  Logger::instance().set_sink(nullptr);
  EXPECT_GE(callbacks.load(), 1);
  const MutexLock lock(lines_mutex);
  bool progress_line = false;
  for (const std::string& line : lines) {
    if (line.find("progress:") != std::string::npos &&
        line.find("conflicts=7") != std::string::npos) {
      progress_line = true;
    }
  }
  EXPECT_TRUE(progress_line);
}

// --- logger ----------------------------------------------------------------

TEST(Logger, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_STREQ(log_level_name(LogLevel::Info), "INFO");
}

TEST(Logger, SinkCapturesPrefixedLines) {
  const ObsQuiescent guard;
  std::vector<std::pair<LogLevel, std::string>> captured;
  Mutex captured_mutex;
  Logger::instance().set_level(LogLevel::Info);
  Logger::instance().set_sink([&](LogLevel level, const std::string& line) {
    const MutexLock lock(captured_mutex);
    captured.emplace_back(level, line);
  });
  log_info() << "observable " << 42;
  log_debug() << "filtered out";
  Logger::instance().set_sink(nullptr);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Info);
  // "[t2m INFO  12.345678 t03] observable 42"
  EXPECT_EQ(captured[0].second.rfind("[t2m INFO ", 0), 0u);
  EXPECT_NE(captured[0].second.find(" t"), std::string::npos);
  EXPECT_NE(captured[0].second.find("] observable 42"), std::string::npos);
}

TEST(Logger, LevelGatesAreDynamic) {
  const ObsQuiescent guard;
  Logger::instance().set_level(LogLevel::Error);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::Warn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::Error));
  Logger::instance().set_level(LogLevel::Trace);
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::Debug));
  Logger::instance().set_level(LogLevel::Off);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::Error));
}

}  // namespace
}  // namespace t2m
