#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/expr/parser.h"
#include "src/expr/printer.h"
#include "src/expr/simplify.h"

namespace t2m {
namespace {

Schema test_schema() {
  Schema s;
  s.add_int("x");
  s.add_int("y");
  s.add_cat("ev", {"idle", "read", "write"}, "idle");
  return s;
}

Valuation obs(std::int64_t x, std::int64_t y, std::int64_t ev = 0) {
  return {Value::of_int(x), Value::of_int(y), Value::of_sym(ev)};
}

TEST(Expr, SizeCountsNodes) {
  const auto e = Expr::add(Expr::var_ref(0, false), Expr::int_const(1));
  EXPECT_EQ(e->size(), 3u);
  EXPECT_EQ(Expr::int_const(5)->size(), 1u);
  const auto ite = Expr::ite(Expr::bool_const(true), e, Expr::int_const(0));
  EXPECT_EQ(ite->size(), 6u);
}

TEST(Expr, GuardDetection) {
  const auto guard = Expr::ge(Expr::var_ref(0, false), Expr::int_const(128));
  EXPECT_TRUE(guard->is_guard());
  const auto update = Expr::update_of(0, Expr::int_const(0));
  EXPECT_FALSE(update->is_guard());
}

TEST(Expr, StructuralEqualityAndHash) {
  const auto a = Expr::add(Expr::var_ref(0, false), Expr::int_const(1));
  const auto b = Expr::add(Expr::var_ref(0, false), Expr::int_const(1));
  const auto c = Expr::add(Expr::var_ref(0, true), Expr::int_const(1));
  EXPECT_TRUE(Expr::equal(*a, *b));
  EXPECT_FALSE(Expr::equal(*a, *c));
  EXPECT_EQ(Expr::hash(*a), Expr::hash(*b));
}

TEST(Expr, CollectVars) {
  const auto e = Expr::update_of(0, Expr::add(Expr::var_ref(0, false),
                                              Expr::var_ref(1, false)));
  std::set<std::pair<VarIndex, bool>> vars;
  e->collect_vars(vars);
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_TRUE(vars.count({0, true}));
  EXPECT_TRUE(vars.count({0, false}));
  EXPECT_TRUE(vars.count({1, false}));
}

TEST(Expr, ConjDisjEdgeCases) {
  EXPECT_EQ(eval_guard(*Expr::conj({}), obs(0, 0)), true);
  EXPECT_EQ(eval_guard(*Expr::disj({}), obs(0, 0)), false);
  const auto single = Expr::ge(Expr::var_ref(0, false), Expr::int_const(1));
  EXPECT_TRUE(Expr::equal(*Expr::conj({single}), *single));
}

TEST(Eval, ArithmeticAndComparison) {
  const Valuation cur = obs(3, 4);
  const Valuation next = obs(5, 6);
  const auto x = Expr::var_ref(0, false);
  const auto xp = Expr::var_ref(0, true);
  EXPECT_EQ(eval_value(*Expr::add(x, Expr::int_const(2)), cur, next), Value::of_int(5));
  EXPECT_EQ(eval_value(*Expr::mul(x, x), cur, next), Value::of_int(9));
  EXPECT_TRUE(eval_bool(*Expr::eq(xp, Expr::int_const(5)), cur, next));
  EXPECT_TRUE(eval_bool(*Expr::update_of(0, Expr::add(x, Expr::int_const(2))), cur, next));
  EXPECT_FALSE(eval_bool(*Expr::lt(xp, x), cur, next));
}

TEST(Eval, BooleanShortCircuitAndIte) {
  const Valuation cur = obs(1, 0);
  const auto t = Expr::bool_const(true);
  const auto f = Expr::bool_const(false);
  EXPECT_TRUE(eval_bool(*Expr::lor(t, f), cur, cur));
  EXPECT_FALSE(eval_bool(*Expr::land(f, t), cur, cur));
  const auto ite = Expr::ite(Expr::ge(Expr::var_ref(0, false), Expr::int_const(1)),
                             Expr::int_const(10), Expr::int_const(20));
  EXPECT_EQ(eval_value(*ite, cur, cur), Value::of_int(10));
}

TEST(Eval, SymbolEquality) {
  const Valuation cur = obs(0, 0, 1);
  const Valuation next = obs(0, 0, 2);
  const auto ev_next = Expr::var_ref(2, true);
  EXPECT_TRUE(eval_bool(*Expr::eq(ev_next, Expr::constant(Value::of_sym(2))), cur, next));
  EXPECT_FALSE(eval_bool(*Expr::eq(ev_next, Expr::constant(Value::of_sym(1))), cur, next));
  // A symbol never equals an integer.
  EXPECT_FALSE(eval_bool(*Expr::eq(ev_next, Expr::int_const(2)), cur, next));
}

TEST(Eval, TypeErrorsThrow) {
  const Valuation cur = obs(0, 0, 1);
  const auto ev = Expr::var_ref(2, false);
  EXPECT_THROW(eval_value(*Expr::add(ev, Expr::int_const(1)), cur, cur), std::logic_error);
  EXPECT_THROW(eval_guard(*Expr::var_ref(0, true), cur), std::logic_error);
}

TEST(Printer, PaperNotation) {
  const Schema s = test_schema();
  const auto up = Expr::update_of(0, Expr::add(Expr::var_ref(0, false), Expr::int_const(1)));
  EXPECT_EQ(to_string(*up, s), "x' = x + 1");
  const auto guard = Expr::ge(Expr::var_ref(0, false), Expr::int_const(128));
  EXPECT_EQ(to_string(*guard, s), "x >= 128");
  const auto ev = Expr::eq(Expr::var_ref(2, true), Expr::constant(Value::of_sym(1)));
  EXPECT_EQ(to_string(*ev, s), "ev' = read");
}

TEST(Printer, Parenthesization) {
  const Schema s = test_schema();
  const auto x = Expr::var_ref(0, false);
  const auto e = Expr::mul(Expr::add(x, Expr::int_const(1)), Expr::int_const(2));
  EXPECT_EQ(to_string(*e, s), "(x + 1) * 2");
  const auto disj = Expr::lor(
      Expr::land(Expr::ge(x, Expr::int_const(5)), Expr::le(x, Expr::int_const(9))),
      Expr::eq(x, Expr::int_const(0)));
  EXPECT_EQ(to_string(*disj, s), "x >= 5 && x <= 9 || x = 0");
}

TEST(Parser, RoundTripsPrinterOutput) {
  const Schema s = test_schema();
  const char* cases[] = {
      "x' = x + 1",
      "x >= 128",
      "x <= 1",
      "x' = x - 1",
      "ev' = read",
      "x >= 5 && y <= 3 || x = 0",
      "x' = y + x",
      "ite(x >= 2, y, x + 1)",
      "!(x = 1)",
      "-x + 3",
  };
  for (const char* text : cases) {
    const ExprPtr parsed = parse_expr(text, s);
    const ExprPtr reparsed = parse_expr(to_string(*parsed, s), s);
    EXPECT_TRUE(Expr::equal(*parsed, *reparsed)) << text;
  }
}

TEST(Parser, Errors) {
  const Schema s = test_schema();
  EXPECT_THROW(parse_expr("x +", s), std::invalid_argument);
  EXPECT_THROW(parse_expr("unknown_var + 1", s), std::invalid_argument);
  EXPECT_THROW(parse_expr("x + 1 extra", s), std::invalid_argument);
  EXPECT_THROW(parse_expr("ite(x, 1)", s), std::invalid_argument);
}

TEST(Simplify, ConstantFolding) {
  const Schema s = test_schema();
  const auto folded = simplify(parse_expr("2 + 3 * 4", s));
  EXPECT_EQ(to_string(*folded, s), "14");
  EXPECT_EQ(to_string(*simplify(parse_expr("x + 0", s)), s), "x");
  EXPECT_EQ(to_string(*simplify(parse_expr("x * 1", s)), s), "x");
  EXPECT_EQ(to_string(*simplify(parse_expr("x * 0", s)), s), "0");
  EXPECT_EQ(to_string(*simplify(parse_expr("x - x", s)), s), "0");
}

TEST(Simplify, NegativeAddendBecomesSub) {
  const auto e = Expr::add(Expr::var_ref(0, false), Expr::int_const(-1));
  const Schema s = test_schema();
  EXPECT_EQ(to_string(*simplify(e), s), "x - 1");
}

TEST(Simplify, BooleanRules) {
  const Schema s = test_schema();
  EXPECT_EQ(to_string(*simplify(parse_expr("x >= 1 && true", s)), s), "x >= 1");
  EXPECT_EQ(to_string(*simplify(parse_expr("x >= 1 || true", s)), s), "1");
  EXPECT_EQ(to_string(*simplify(parse_expr("!!(x >= 1)", s)), s), "x >= 1");
  EXPECT_EQ(to_string(*simplify(parse_expr("ite(true, x, y)", s)), s), "x");
}

/// Property: simplification preserves semantics on a grid of valuations.
class SimplifySemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(SimplifySemantics, PreservesValue) {
  const Schema s = test_schema();
  const ExprPtr original = parse_expr(GetParam(), s);
  const ExprPtr simplified = simplify(original);
  for (std::int64_t x = -3; x <= 3; ++x) {
    for (std::int64_t y = -2; y <= 2; ++y) {
      const Valuation cur = obs(x, y);
      const Valuation next = obs(x + 1, y - 1);
      EXPECT_EQ(eval_value(*original, cur, next), eval_value(*simplified, cur, next))
          << GetParam() << " at x=" << x << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Exprs, SimplifySemantics,
                         ::testing::Values("x + 0 + y", "x * 1 - y * 0",
                                           "ite(x >= 0, x + 1, x - 1)",
                                           "x' = x + 1 && true",
                                           "(x + 1) * (y + 0)", "x - x + y",
                                           "!(x >= 1) || x >= 1"));

}  // namespace
}  // namespace t2m
