// Deterministic fault-injection tests: every failpoint in the catalogue
// (docs/robustness.md) is armed and must surface as a structured Status —
// no abort, no leak (the suite runs under ASan in CI), no torn process.
// Also covers the failpoint spec grammar, the memory accountant, raw IO
// error paths (EINTR retries, zero-length and unterminated files), deadline
// and memory-cap learn verdicts, best-so-far salvage, and portfolio lane
// crash isolation (the TSan job re-runs this suite for the race coverage).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/memory_accountant.h"
#include "src/base/status.h"
#include "src/core/compliance.h"
#include "src/core/csp_encoder.h"
#include "src/core/learner.h"
#include "src/parallel/thread_pool.h"
#include "src/sat/preprocessor.h"
#include "src/sat/solver.h"
#include "src/sim/basic/counter.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/trace/mmap_io.h"
#include "src/trace/recorder.h"
#include "src/util/failpoint.h"
#include "src/util/stopwatch.h"

namespace t2m {
namespace {

/// Every test arms through this guard so a failing assertion can never leak
/// an armed failpoint or a memory cap into the rest of the binary.
class FailpointGuard {
public:
  FailpointGuard() { failpoint::disarm_all(); }
  ~FailpointGuard() {
    failpoint::disarm_all();
    MemoryAccountant::global().set_limit(0);
  }
};

/// RAII temp file seeded with `content`.
class TempFile {
public:
  explicit TempFile(const std::string& content) {
    path_ = "/tmp/t2m_fault_test_" + std::to_string(counter_++) + ".txt";
    std::ofstream os(path_, std::ios::binary);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

private:
  static inline int counter_ = 0;
  std::string path_;
};

Trace event_trace(const std::vector<std::string>& events,
                  const std::vector<std::string>& alphabet) {
  TraceRecorder rec;
  std::vector<std::string> symbols = alphabet;
  symbols.insert(symbols.begin(), "__start");
  const VarIndex ev = rec.declare_cat("ev", std::move(symbols), "__start");
  rec.commit();
  for (const auto& e : events) {
    rec.set_sym(ev, e);
    rec.commit();
  }
  return rec.take();
}

ErrorCode thrown_code(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StatusError& e) {
    return e.code();
  }
  return ErrorCode::ok;
}

// --- spec grammar ----------------------------------------------------------

TEST(FailpointSpec, ParsesEveryTerm) {
  EXPECT_TRUE(failpoint::parse_spec("always").always);
  const failpoint::FailSpec once = failpoint::parse_spec("once");
  EXPECT_EQ(once.count, 1u);
  const failpoint::FailSpec off = failpoint::parse_spec("off");
  EXPECT_FALSE(off.always);
  EXPECT_EQ(off.count, 0u);
  const failpoint::FailSpec combo = failpoint::parse_spec("skip=5,count=2");
  EXPECT_EQ(combo.skip, 5u);
  EXPECT_EQ(combo.count, 2u);
  const failpoint::FailSpec perm = failpoint::parse_spec("permille=250,seed=7");
  EXPECT_EQ(perm.permille, 250u);
  EXPECT_EQ(perm.seed, 7u);
}

TEST(FailpointSpec, MalformedTermIsParseError) {
  EXPECT_EQ(thrown_code([] { failpoint::parse_spec("banana"); }),
            ErrorCode::parse_error);
  EXPECT_EQ(thrown_code([] { failpoint::parse_spec("skip=notanumber"); }),
            ErrorCode::parse_error);
}

TEST(Failpoint, CountSkipAndCountersBehave) {
  const FailpointGuard guard;
  failpoint::arm("test.site", "skip=2,count=1");
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (T2M_FAILPOINT("test.site")) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(failpoint::evaluations("test.site"), 5u);
  EXPECT_EQ(failpoint::fires("test.site"), 1u);
  failpoint::disarm("test.site");
  EXPECT_FALSE(T2M_FAILPOINT("test.site"));
}

TEST(Failpoint, PermilleStreamIsDeterministic) {
  const FailpointGuard guard;
  const auto pattern = [] {
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(T2M_FAILPOINT("test.permille"));
    return fires;
  };
  failpoint::arm("test.permille", "permille=400,seed=42");
  const std::vector<bool> first = pattern();
  failpoint::disarm("test.permille");
  failpoint::arm("test.permille", "permille=400,seed=42");
  const std::vector<bool> second = pattern();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
}

TEST(Failpoint, DisarmedSitesAreFree) {
  const FailpointGuard guard;
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_FALSE(T2M_FAILPOINT("never.armed"));
  EXPECT_EQ(failpoint::evaluations("never.armed"), 0u);
}

// --- memory accountant -----------------------------------------------------

TEST(MemoryAccountant, ChargesReleasesAndCaps) {
  const FailpointGuard guard;
  MemoryAccountant& mem = MemoryAccountant::global();
  const std::size_t before = mem.used();
  mem.charge(1024);
  EXPECT_EQ(mem.used(), before + 1024);
  EXPECT_GE(mem.peak(), before + 1024);
  mem.release(1024);
  EXPECT_EQ(mem.used(), before);

  mem.set_limit(before + 100);
  EXPECT_FALSE(mem.try_charge(200));
  EXPECT_EQ(mem.used(), before);  // failed charge rolled back
  EXPECT_EQ(thrown_code([&] { mem.charge(200); }), ErrorCode::resource_exhausted);
  EXPECT_EQ(mem.used(), before);
  EXPECT_TRUE(mem.try_charge(50));
  mem.release(50);
  mem.set_limit(0);
}

TEST(MemoryAccountant, MemChargeFailpointForcesFailure) {
  const FailpointGuard guard;
  MemoryAccountant& mem = MemoryAccountant::global();
  failpoint::arm("mem.charge", "always");
  EXPECT_FALSE(mem.try_charge(1));
  EXPECT_EQ(thrown_code([&] { mem.charge(1); }), ErrorCode::resource_exhausted);
  failpoint::disarm_all();
  EXPECT_TRUE(mem.try_charge(1));
  mem.release(1);
}

// --- trace IO failpoints and raw error paths -------------------------------

TEST(TraceIoFaults, MmapOpenFailureIsIoError) {
  const FailpointGuard guard;
  const TempFile file("line one\nline two\n");
  failpoint::arm("mmap.open", "always");
  EXPECT_EQ(thrown_code([&] { LineReader reader(file.path()); }), ErrorCode::io_error);
}

TEST(TraceIoFaults, MmapOpenRetriesEintr) {
  const FailpointGuard guard;
  const TempFile file("alpha\nbeta\n");
  failpoint::arm("mmap.open_eintr", "count=3");
  LineReader reader(file.path());  // must succeed: EINTR is retried
  EXPECT_EQ(failpoint::fires("mmap.open_eintr"), 3u);
  std::string_view line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "alpha");
}

TEST(TraceIoFaults, MapFailureFallsBackToReads) {
  const FailpointGuard guard;
  const TempFile file("alpha\nbeta");
  failpoint::arm("mmap.map", "always");
  LineReader reader(file.path());
  EXPECT_FALSE(reader.mapped());
  std::string_view line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "beta");  // unterminated last line survives the fallback
  EXPECT_FALSE(reader.next(line));
}

TEST(TraceIoFaults, ReadFailureIsIoErrorAndEintrIsRetried) {
  const FailpointGuard guard;
  const TempFile file("alpha\nbeta\n");
  // The read(2) loop is MappedFile's mmap fallback (sharded ingest path).
  failpoint::arm("mmap.map", "always");
  failpoint::arm("io.read", "always");
  EXPECT_EQ(thrown_code([&] { MappedFile mapped(file.path()); }), ErrorCode::io_error);
  failpoint::disarm("io.read");

  failpoint::arm("io.read_eintr", "count=2");
  MappedFile mapped(file.path());  // must succeed: EINTR is retried
  EXPECT_FALSE(mapped.mapped());
  EXPECT_EQ(mapped.view(), "alpha\nbeta\n");
  EXPECT_EQ(failpoint::fires("io.read_eintr"), 2u);
}

TEST(TraceIoFaults, ShortReadsAreLooped) {
  const FailpointGuard guard;
  const std::string content = "first\nsecond\nthird\n";
  const TempFile file(content);
  failpoint::arm("mmap.map", "always");
  failpoint::arm("io.short_read", "always");  // 1-byte reads end to end
  MappedFile mapped(file.path());
  EXPECT_EQ(mapped.view(), content);
  EXPECT_GE(failpoint::fires("io.short_read"), content.size());
}

TEST(TraceIoFaults, ZeroLengthFileHasNoLines) {
  const FailpointGuard guard;
  const TempFile file("");
  for (const char* mode : {"mapped", "fallback"}) {
    failpoint::disarm_all();
    if (std::string(mode) == "fallback") failpoint::arm("mmap.map", "always");
    LineReader reader(file.path());
    std::string_view line;
    EXPECT_FALSE(reader.next(line)) << mode;
  }
}

TEST(TraceIoFaults, MissingFileDiagnosticsNamePathAndErrno) {
  const FailpointGuard guard;
  try {
    LineReader reader("/tmp/definitely_missing_t2m_fault_file.txt");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::io_error);
    EXPECT_NE(std::string(e.what()).find("definitely_missing_t2m_fault_file"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("No such file"), std::string::npos);
  }
}

// --- thread pool, preprocessor and solver failpoints -----------------------

TEST(ParallelFaults, TaskBodyFailureCancelsTheStageNotTheProcess) {
  const FailpointGuard guard;
  failpoint::arm("pool.task", "once");
  std::atomic<int> ran{0};
  EXPECT_EQ(thrown_code([&] {
              par::for_chunks(4, 64, 8, [&](std::size_t, std::size_t, std::size_t) {
                ran.fetch_add(1);
              });
            }),
            ErrorCode::internal);
  failpoint::disarm_all();
  // The pool is intact: the next parallel stage runs normally.
  std::atomic<int> reran{0};
  par::for_chunks(4, 64, 8,
                  [&](std::size_t, std::size_t, std::size_t) { reran.fetch_add(1); });
  EXPECT_EQ(reran.load(), 8);
}

TEST(PreprocessorFaults, DerivationFailureSurfacesStructured) {
  const FailpointGuard guard;
  // The BVE chain from test_preprocessor: elimination must derive resolvents,
  // so the armed failpoint is guaranteed to be reached.
  sat::Solver s;
  const sat::Var base = s.new_vars(16);
  for (sat::Var v = 0; v + 1 < 16; ++v) {
    s.add_clause(std::vector<sat::Lit>{sat::neg(base + v), sat::pos(base + v + 1)});
  }
  s.freeze(base);
  s.freeze(base + 15);
  failpoint::arm("preprocess.derive", "always");
  EXPECT_EQ(thrown_code([&] { s.preprocess(sat::PreprocessOptions{}); }),
            ErrorCode::internal);
}

TEST(SolverFaults, ArenaAllocationFailureIsResourceExhausted) {
  const FailpointGuard guard;
  sat::Solver s;
  const sat::Var base = s.new_vars(4);
  failpoint::arm("arena.alloc", "always");
  EXPECT_EQ(thrown_code([&] {
              s.add_clause(std::vector<sat::Lit>{sat::pos(base), sat::pos(base + 1)});
            }),
            ErrorCode::resource_exhausted);
}

// --- deadlines -------------------------------------------------------------

TEST(DeadlineFaults, ComplianceCheckHonoursExpiredDeadline) {
  const FailpointGuard guard;
  Nfa model(2, 0);
  model.add_transition(0, 0, 1);
  model.add_transition(1, 1, 0);
  const std::vector<PredId> seq = {0, 1, 0, 1};
  ComplianceChecker checker(seq, 2);
  checker.set_deadline(Deadline::after_seconds(-1.0));
  EXPECT_EQ(thrown_code([&] { checker.check(model); }), ErrorCode::deadline_exceeded);
  // A fresh checker without the deadline still completes.
  ComplianceChecker healthy(seq, 2);
  EXPECT_TRUE(healthy.check(model).compliant);
}

TEST(DeadlineFaults, LearnWithExpiredDeadlineReturnsTimeoutVerdict) {
  const FailpointGuard guard;
  const Trace t = event_trace({"a", "b", "a", "b"}, {"a", "b"});
  LearnerConfig config;
  config.timeout_seconds = 1e-9;
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
}

// --- memory-cap verdicts and best-so-far salvage ---------------------------

TEST(MemoryCap, LearnUnderTinyCapReturnsResourceExhaustedVerdict) {
  const FailpointGuard guard;
  const Trace t = sim::generate_full_coverage_sched_trace(2000);
  LearnerConfig config;
  config.max_memory_bytes = 4096;  // far below what the run needs
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.resource_exhausted);
  EXPECT_EQ(r.status.code(), ErrorCode::resource_exhausted);
  // The learner scopes the cap to the call: the global limit is restored.
  EXPECT_EQ(MemoryAccountant::global().limit(), 0u);
}

TEST(Salvage, RtlinuxRunKilledByAllocationFailureSalvagesCompliantModel) {
  const FailpointGuard guard;
  // default_phase = true makes the rtlinux search pass through at least one
  // compliant-but-acceptance-blocked candidate (deterministically), so a
  // late failure has a best-so-far model to salvage. First count the run's
  // arena allocations with the site armed but never firing, then rerun with
  // the failure injected near the end — inside the final solve, after the
  // blocked candidate was captured.
  const Trace t = sim::generate_full_coverage_sched_trace(4000);
  LearnerConfig config;
  config.solver.default_phase = true;

  failpoint::arm("arena.alloc", "off");
  const LearnResult clean = ModelLearner(config).learn(t);
  ASSERT_TRUE(clean.success);
  const std::uint64_t allocs = failpoint::evaluations("arena.alloc");
  ASSERT_GT(allocs, 100u);
  failpoint::disarm_all();

  failpoint::FailSpec late;
  late.skip = allocs - 20;
  late.count = ~0ULL;
  failpoint::arm("arena.alloc", late);
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.resource_exhausted);
  ASSERT_TRUE(r.salvaged);
  EXPECT_EQ(r.states, clean.states);
  // The salvaged model passed compliance when it was captured — and still
  // does against the trace's window set.
  const ComplianceResult compliance =
      check_compliance(r.model, r.preds.seq, config.compliance_length);
  EXPECT_TRUE(compliance.compliant);
}

TEST(Salvage, CancelledLaneDoesNotSalvage) {
  const FailpointGuard guard;
  // A run aborted by the cooperative stop flag lost a race whose winner owns
  // the verdict; handing back a partial model would be misleading.
  const Trace t = event_trace({"a", "b", "a", "b"}, {"a", "b"});
  std::atomic<bool> stop{true};
  LearnerConfig config;
  config.stop = &stop;
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.salvaged);
}

// --- portfolio lane isolation ----------------------------------------------

TEST(PortfolioFaults, CrashedLaneDoesNotTakeDownTheRace) {
  const FailpointGuard guard;
  const Trace t = event_trace({"a", "b", "c", "a", "b", "c", "a", "b", "c"},
                              {"a", "b", "c"});
  failpoint::arm("portfolio.lane", "once");
  LearnerConfig config;
  config.portfolio = 3;
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_EQ(failpoint::fires("portfolio.lane"), 1u);
  ASSERT_TRUE(r.success);  // the surviving lanes still reach the verdict
  EXPECT_EQ(r.states, 3u);
  ASSERT_EQ(r.stats.portfolio.size(), 3u);
  int failed = 0, winners = 0;
  for (const PortfolioConfigStats& lane : r.stats.portfolio) {
    failed += lane.failed ? 1 : 0;
    winners += lane.winner ? 1 : 0;
    if (lane.failed) {
      EXPECT_FALSE(lane.winner);
      EXPECT_NE(lane.error.find("internal"), std::string::npos);
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(winners, 1);  // the winner CAS stays single-shot
}

TEST(PortfolioFaults, LaneCrashStress) {
  // Repeated races with one injected lane death each: run under TSan in CI
  // to shake out winner-CAS and stop-flag races on the failure path.
  const Trace t = event_trace({"a", "b", "c", "a", "b", "c", "a", "b", "c"},
                              {"a", "b", "c"});
  for (int round = 0; round < 6; ++round) {
    const FailpointGuard guard;
    failpoint::arm("portfolio.lane", "once");
    LearnerConfig config;
    config.portfolio = 4;
    const LearnResult r = ModelLearner(config).learn(t);
    ASSERT_TRUE(r.success) << "round " << round;
    int winners = 0, failed = 0;
    for (const PortfolioConfigStats& lane : r.stats.portfolio) {
      winners += lane.winner ? 1 : 0;
      failed += lane.failed ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "round " << round;
    EXPECT_EQ(failed, 1) << "round " << round;
  }
}

TEST(PortfolioFaults, AllLanesCrashedStillReturnsAVerdict) {
  const FailpointGuard guard;
  const Trace t = event_trace({"a", "b", "a", "b"}, {"a", "b"});
  failpoint::arm("portfolio.lane", "always");
  LearnerConfig config;
  config.portfolio = 3;
  const LearnResult r = ModelLearner(config).learn(t);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status.code(), ErrorCode::internal);
  for (const PortfolioConfigStats& lane : r.stats.portfolio) {
    EXPECT_TRUE(lane.failed);
    EXPECT_FALSE(lane.winner);
  }
}

// --- determinism with the harness compiled in ------------------------------

TEST(Determinism, FingerprintUnchangedWithAccountantAndDisarmedFailpoints) {
  const FailpointGuard guard;
  const std::vector<Segment> segments = {{0, 1, 2, 0}, {1, 2, 0, 1}};
  CspOptions options;
  AutomatonCsp reference(segments, 3, 3, options);
  const std::uint64_t want = reference.encoding_fingerprint();

  // Armed-then-disarmed failpoints and an (uncapped) accountant must leave
  // the clause database byte-identical.
  failpoint::arm("arena.alloc", "off");
  failpoint::arm("mem.charge", "off");
  AutomatonCsp probed(segments, 3, 3, options);
  EXPECT_EQ(probed.encoding_fingerprint(), want);
  failpoint::disarm_all();
  AutomatonCsp clean(segments, 3, 3, options);
  EXPECT_EQ(clean.encoding_fingerprint(), want);
}

}  // namespace
}  // namespace t2m
