// Concurrency stress for the annotated sync layer (docs/concurrency.md):
// the components the thread-safety audit certifies — pool, task groups,
// logger sink swaps, metrics registry, heartbeat, tracer, portfolio race —
// hammered together under the sanitizer jobs (TSan is where these tests
// earn their keep; on plain builds they are fast smoke checks). Also holds
// the regression for the portfolio coordinator stall the audit fixed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/learner.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/obs/validate.h"
#include "src/parallel/thread_pool.h"
#include "src/sim/basic/counter.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/sync.h"

namespace t2m {
namespace {

/// Restores global observability state on scope exit (mirrors test_obs.cpp).
struct ObsQuiescent {
  ~ObsQuiescent() {
    obs::Tracer::instance().stop();
    obs::MetricsRegistry::global().disable();
    obs::Progress::global().disable();
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::Warn);
  }
};

TEST(ConcurrencyStress, PortfolioUnderFullObservability) {
  // The worst-case lock interleaving the library offers: a portfolio race
  // (pool + task group + stop flags) with the tracer, metrics, progress and
  // a fast heartbeat all live, plus a capturing logger sink — every
  // capability in the lock hierarchy is exercised concurrently.
  const ObsQuiescent guard;
  obs::Tracer::instance().start();
  obs::MetricsRegistry::global().enable();
  obs::Progress::global().enable();
  Logger::instance().set_level(LogLevel::Info);
  Mutex lines_mutex;
  std::vector<std::string> lines;
  Logger::instance().set_sink([&](LogLevel, const std::string& line) {
    const MutexLock lock(lines_mutex);
    lines.push_back(line);
  });

  obs::Progress::global().begin_run(Deadline::never());
  const obs::Heartbeat heartbeat(0.005);
  LearnerConfig config;
  config.portfolio = 3;
  const LearnResult result =
      ModelLearner(config).learn(sim::generate_counter_trace({}));
  EXPECT_TRUE(result.success);

  obs::Tracer::instance().stop();
  std::ostringstream os;
  obs::Tracer::instance().write_json(os);
  const Status status = obs::validate_trace_json(os.str());
  EXPECT_TRUE(status.ok()) << status.to_string();
}

TEST(ConcurrencyStress, LoggerSinkSwapsDuringConcurrentWrites) {
  // set_sink swaps under the same mutex that serialises write(): hammering
  // both from many tasks must neither tear lines nor drop the guard.
  const ObsQuiescent guard;
  Logger::instance().set_level(LogLevel::Info);
  std::atomic<std::uint64_t> delivered{0};
  par::ThreadPool pool(4);
  par::TaskGroup group(pool);
  for (int task = 0; task < 8; ++task) {
    group.run([task] {
      for (int i = 0; i < 200; ++i) {
        log_info() << "stress line " << task << ":" << i;
      }
    });
  }
  for (int swap = 0; swap < 100; ++swap) {
    Logger::instance().set_sink([&delivered](LogLevel, const std::string& line) {
      // order: relaxed — counter only; group.wait() below synchronises.
      if (!line.empty()) delivered.fetch_add(1, std::memory_order_relaxed);
    });
    Logger::instance().set_sink(nullptr);
  }
  Logger::instance().set_sink([&delivered](LogLevel, const std::string& line) {
    // order: relaxed — counter only; group.wait() below synchronises.
    if (!line.empty()) delivered.fetch_add(1, std::memory_order_relaxed);
  });
  group.wait();
  Logger::instance().set_sink(nullptr);
  // Some writes land on the stderr default mid-swap; whatever the sink saw
  // arrived whole (the counter only counts non-empty formatted lines).
  EXPECT_GT(delivered.load(), 0u);
}

TEST(ConcurrencyStress, MetricsRegistryConcurrentRegisterAndSnapshot) {
  // Instrument registration (map insert under the registry mutex) racing
  // updates on already-registered instruments and full snapshots.
  const ObsQuiescent guard;
  for (int i = 0; i < 7; ++i) {
    obs::MetricsRegistry::global().counter("stress.counter." + std::to_string(i)).reset();
  }
  obs::MetricsRegistry::global().histogram("stress.histogram").reset();
  obs::MetricsRegistry::global().enable();
  par::ThreadPool pool(4);
  par::TaskGroup group(pool);
  for (int task = 0; task < 8; ++task) {
    group.run([task] {
      for (int i = 0; i < 300; ++i) {
        obs::count(("stress.counter." + std::to_string(i % 7)).c_str());
        obs::gauge_max("stress.gauge", task * 1000 + i);
        obs::observe("stress.histogram", static_cast<std::uint64_t>(i));
        if (i % 64 == 0) {
          std::ostringstream os;
          obs::MetricsRegistry::global().write_json(os);
        }
      }
    });
  }
  group.wait();
  std::uint64_t total = 0;
  for (int i = 0; i < 7; ++i) {
    total += obs::MetricsRegistry::global()
                 .counter("stress.counter." + std::to_string(i))
                 .value();
  }
  EXPECT_EQ(total, 8u * 300u);
  EXPECT_EQ(obs::MetricsRegistry::global().histogram("stress.histogram").count(),
            8u * 300u);
}

TEST(ConcurrencyStress, PoolGrowthRacesSubmissionAndNestedGroups) {
  // ensure_size (grow lock) racing submit (queue locks + sleep cv) and
  // nested TaskGroups (group mutex/cv) — the full ThreadPool hierarchy.
  par::ThreadPool pool(1);
  std::atomic<int> done{0};
  par::TaskGroup outer(pool);
  for (int task = 0; task < 6; ++task) {
    outer.run([&pool, &done] {
      par::TaskGroup inner(pool);
      for (int i = 0; i < 50; ++i) {
        // order: relaxed — counter only; the group joins below.
        inner.run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();
    });
  }
  for (std::size_t size = 2; size <= 4; ++size) pool.ensure_size(size);
  outer.wait();
  EXPECT_EQ(done.load(), 6 * 50);
  EXPECT_GE(pool.size(), 4u);
}

TEST(ConcurrencyStress, HeartbeatStartStopChurn) {
  // Construction/destruction churn on the heartbeat worker: every cycle
  // joins the thread through the stop_ handshake the annotations guard.
  const ObsQuiescent guard;
  obs::Progress::global().enable();
  obs::Progress::global().begin_run(Deadline::never());
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::atomic<int> beats{0};
    obs::Heartbeat heartbeat(0.001, [&beats](const obs::ProgressSnapshot&) {
      // order: relaxed — counter only; the destructor joins the worker.
      beats.fetch_add(1, std::memory_order_relaxed);
    });
    obs::Progress::global().add_conflicts(1);
  }
}

TEST(ConcurrencyStress, OuterStopCancelsPortfolioMidRun) {
  // Regression for the coordinator stall the thread-safety audit fixed: the
  // portfolio wait loop used to steal lane tasks via help_one(), so a stolen
  // lane captured the coordinator and the caller's stop flag went unrelayed
  // for the lane's whole runtime. The relay loop must now observe a stop
  // raised mid-run promptly regardless of lane durations.
  std::atomic<bool> stop{false};
  LearnerConfig config;
  config.stop = &stop;
  config.portfolio = 3;
  const Trace trace = sim::generate_full_coverage_sched_trace(20165);
  Thread raiser([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // order: relaxed — pure signal; the learner's join publishes results.
    stop.store(true, std::memory_order_relaxed);
  });
  const Stopwatch wall;
  const LearnResult result = ModelLearner(config).learn(trace);
  const double seconds = wall.elapsed_seconds();
  raiser.join();
  // Either the race finished before the flag rose (fast machine) or it was
  // cancelled; a stalled relay would blow far past this generous bound.
  EXPECT_TRUE(result.success || result.cancelled);
  EXPECT_LT(seconds, 30.0);
}

}  // namespace
}  // namespace t2m
