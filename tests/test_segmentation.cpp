#include <gtest/gtest.h>

#include "src/core/segmentation.h"

namespace t2m {
namespace {

TEST(Segmentation, UniqueWindowsInFirstOccurrenceOrder) {
  const std::vector<PredId> seq = {0, 1, 0, 1, 0, 1, 2};
  const auto segments = segment_sequence(seq, 3);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], (Segment{0, 1, 0}));
  EXPECT_EQ(segments[1], (Segment{1, 0, 1}));
  EXPECT_EQ(segments[2], (Segment{0, 1, 2}));
}

TEST(Segmentation, RepetitionCollapses) {
  // A long periodic sequence yields a constant number of segments.
  std::vector<PredId> seq;
  for (int i = 0; i < 10000; ++i) seq.push_back(static_cast<PredId>(i % 4));
  const auto segments = segment_sequence(seq, 3);
  EXPECT_EQ(segments.size(), 4u);
}

TEST(Segmentation, ShortSequenceIsOneSegment) {
  const std::vector<PredId> seq = {0, 1};
  const auto segments = segment_sequence(seq, 3);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], seq);
}

TEST(Segmentation, ExactWindowLength) {
  const std::vector<PredId> seq = {0, 1, 2};
  const auto segments = segment_sequence(seq, 3);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], seq);
}

TEST(Segmentation, EmptyAndInvalid) {
  EXPECT_TRUE(segment_sequence({}, 3).empty());
  EXPECT_THROW(segment_sequence({0, 1}, 0), std::invalid_argument);
}

TEST(Segmentation, WholeSequenceMode) {
  const std::vector<PredId> seq = {0, 1, 0, 1};
  const auto whole = whole_sequence(seq);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], seq);
  EXPECT_TRUE(whole_sequence({}).empty());
}

TEST(Segmentation, TotalTransitions) {
  const std::vector<PredId> seq = {0, 1, 0, 1, 0};
  EXPECT_EQ(total_transitions(segment_sequence(seq, 3)), 6u);   // 2 segments x 3
  EXPECT_EQ(total_transitions(whole_sequence(seq)), 5u);
}

TEST(Segmentation, WindowOneListsAlphabet) {
  const std::vector<PredId> seq = {2, 0, 1, 0, 2};
  const auto segments = segment_sequence(seq, 1);
  EXPECT_EQ(segments.size(), 3u);  // unique symbols, order of first occurrence
  EXPECT_EQ(segments[0], (Segment{2}));
}

}  // namespace
}  // namespace t2m
