// Runtime verification with a learned model (the application motivating the
// paper's RT-Linux experiment, after de Oliveira et al.): learn the thread
// scheduling model from a healthy trace, then monitor a live event stream
// and flag the first behaviour the model cannot explain.
//
// The "buggy kernel" here loses a sched_waking event, i.e. the thread is
// switched in without ever being woken -- exactly the class of ordering bug
// the hand-drawn models of [13,14] are used to catch.

#include <iostream>

#include "src/automaton/monitor.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/trace/recorder.h"

namespace {

/// A faulty event stream: a healthy prefix, then a lost wakeup.
t2m::Trace faulty_stream() {
  t2m::TraceRecorder rec;
  std::vector<std::string> symbols = t2m::sim::sched_event_names();
  symbols.insert(symbols.begin(), "__start");
  const t2m::VarIndex ev = rec.declare_cat("event", std::move(symbols), "__start");
  rec.commit();  // pre-scheduling observation, as in the training traces
  const auto emit = [&](const char* name) {
    rec.set_sym(ev, name);
    rec.commit();
  };
  // Healthy cycle: run, block, suspend, wake, run again.
  emit("sched_switch_in");
  emit("set_state_sleepable");
  emit("sched_entry");
  emit("sched_switch_suspend");
  emit("sched_waking");
  emit("sched_switch_in");
  // Bug: the thread suspends and is switched in WITHOUT a wakeup.
  emit("set_state_sleepable");
  emit("sched_entry");
  emit("sched_switch_suspend");
  emit("sched_switch_in");  // <- illegal: no sched_waking before this
  emit("set_state_sleepable");
  return rec.take();
}

}  // namespace

int main() {
  using namespace t2m;

  // Learn the model from a full-coverage healthy trace.
  const Trace healthy = sim::generate_full_coverage_sched_trace(20165);
  const ModelLearner learner;
  const LearnResult result = learner.learn(healthy);
  std::cout << "learned scheduler model: " << format_learn_summary(result) << "\n";
  if (!result.success) return 1;

  // Monitor the faulty stream.
  Monitor monitor(result.model, result.preds.vocab);
  const Trace stream = faulty_stream();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!monitor.feed(stream.obs(i)) && monitor.violated()) {
      std::cout << "VIOLATION at observation " << monitor.violation_index() << ": '"
                << stream.format_obs(i)
                << "' cannot follow the preceding behaviour\n";
      return 0;
    }
  }
  std::cout << "stream accepted (unexpected -- the injected bug was missed)\n";
  return 1;
}
