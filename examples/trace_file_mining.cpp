// Mining a model from an on-disk trace file: the workflow for traces coming
// from outside this process (ftrace dumps, virtual-platform logs). Writes a
// sample trace, reads it back, learns, and prints the model as text and DOT.
//
// Usage: trace_file_mining [path/to/trace.txt]
// Without an argument a serial-port trace is generated into ./serial.trace.

#include <iostream>
#include <string>

#include "src/automaton/dot.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/sim/serial/serial_port.h"
#include "src/trace/text_io.h"

int main(int argc, char** argv) {
  using namespace t2m;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "serial.trace";
    sim::SerialPortConfig config;
    config.operations = 300;
    write_trace_file(path, sim::generate_serial_trace(config));
    std::cout << "generated sample serial-port trace: " << path << "\n";
  }

  const Trace trace = read_trace_file(path);
  std::cout << "read " << trace.size() << " observations, "
            << trace.schema().size() << " variables\n";

  const ModelLearner learner;
  const LearnResult result = learner.learn(trace);
  std::cout << format_learn_report(result, trace.schema());
  if (!result.success) return 1;
  std::cout << "\n" << to_dot(result.model, "mined_model");
  return 0;
}
