// USB model mining: the paper's headline use case. Run the xHCI virtual
// platform substitute under a storage-device driver load, record the slot
// command trace and the ring interface trace, and learn both models
// (Fig. 1b and Fig. 3). Writes model DOT files next to the binary.

#include <fstream>
#include <iostream>

#include "src/automaton/dot.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/sim/xhci/ring_interface.h"
#include "src/sim/xhci/slot_fsm.h"

namespace {

void learn_and_dump(const t2m::Trace& trace, const std::string& name) {
  const t2m::ModelLearner learner;
  const t2m::LearnResult result = learner.learn(trace);
  std::cout << "=== " << name << " (" << trace.size() << " observations) ===\n";
  std::cout << t2m::format_learn_report(result, trace.schema());
  if (result.success) {
    const std::string path = name + ".dot";
    std::ofstream os(path);
    t2m::write_dot(os, result.model, name);
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace t2m::sim;

  // Slot-level view: the command sequence against the device slot.
  learn_and_dump(generate_slot_trace(), "usb_slot");

  // Interface-level view: every command/event ring operation during attach.
  learn_and_dump(generate_usb_attach_trace(), "usb_attach");
  return 0;
}
