// Mining a model from a trace too long to hold in memory: the streaming
// workflow. A LineReader memory-maps the trace file (zero-copy line views),
// FtracePredStream interns one predicate per step as lines are consumed, and
// ModelLearner::learn_from_stream builds the segment and compliance-window
// sets from that single pass — peak memory stays O(window + unique windows)
// no matter how long the trace is.
//
// Usage: stream_mining [--trace FILE] [--events N] [--window W]
// Without --trace, a synthetic N-event trace (default 1,000,000) is
// generated into ./stream_sample.ftrace first.

#include <fstream>
#include <iostream>
#include <string>

#include "src/abstraction/event_stream.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/sim/synthetic/pattern_events.h"
#include "src/trace/mmap_io.h"
#include "src/util/cli.h"
#include "src/util/string_utils.h"

namespace {

/// Peak resident set of this process in KB (Linux: VmHWM from /proc), or 0.
std::int64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (t2m::starts_with(line, "VmHWM:")) {
      const auto fields = t2m::split_ws(line);
      std::int64_t kb = 0;
      if (fields.size() >= 2 && t2m::parse_int64(fields[1], kb)) return kb;
      return 0;  // unexpected /proc format: report nothing rather than throw
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace t2m;
  try {
    const CliArgs args(argc, argv);

    std::string path = args.get_or("trace", "");
    const bool user_trace = !path.empty();
    sim::PatternEventConfig gen;
    gen.events = static_cast<std::size_t>(args.get_int_or("events", 1'000'000));
    if (!user_trace) {
      path = "stream_sample.ftrace";
      std::ofstream os(path);
      sim::write_pattern_event_ftrace(os, gen);
      std::cout << "generated " << gen.events << "-event sample trace: " << path << "\n";
    }

    LearnerConfig config;
    config.window = static_cast<std::size_t>(args.get_int_or("window", 3));
    config.timeout_seconds = args.get_double_or("timeout", 120.0);
    // Algorithm 1 as published: with acceptance strengthening off the
    // learner never needs the materialised sequence, so the ingest pass
    // holds only the window ring and the dedup sets.
    config.require_trace_acceptance = false;
    // For the self-generated sample the generator's own automaton size is
    // the right starting N; a user trace searches from the paper's default
    // so the minimal model is not skipped.
    const std::size_t default_n =
        user_trace ? config.initial_states : sim::pattern_generator_states(gen);
    config.initial_states = static_cast<std::size_t>(
        args.get_int_or("initial-states", static_cast<std::int64_t>(default_n)));

    LineReader lines(path);
    std::cout << "reading " << path << " via "
              << (lines.mapped() ? "mmap (zero-copy)" : "buffered istream") << "\n";
    FtracePredStream stream(lines);

    const ModelLearner learner(config);
    const LearnResult result = learner.learn_from_stream(stream);
    std::cout << format_learn_report(result, stream.schema());
    std::cout << "ingested " << lines.bytes_read() << " bytes, "
              << result.stats.sequence_length << " steps, peak RSS "
              << format_double(peak_rss_kb() / 1024.0, 1) << " MB\n";
    return result.success ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "stream_mining: error: " << e.what() << "\n";
    return 1;
  }
}
