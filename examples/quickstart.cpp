// Quickstart: record a small trace with the instrumentation API, learn a
// model, and print it. This is the 30-second tour of the library:
//
//   TraceRecorder -> Trace -> ModelLearner -> Nfa -> DOT
//
// The traced "system" is a two-bulb traffic light controller; the learner
// recovers its 2-phase cycle automatically.

#include <iostream>

#include "src/automaton/dot.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/trace/recorder.h"

int main() {
  using namespace t2m;

  // 1. Instrument the system: declare what you observe, commit each step.
  TraceRecorder rec;
  const VarIndex light = rec.declare_cat("light", {"red", "green", "yellow"}, "red");
  const char* cycle[] = {"red", "green", "yellow"};
  for (int iteration = 0; iteration < 12; ++iteration) {
    rec.set_sym(light, cycle[iteration % 3]);
    rec.commit();
  }
  const Trace trace = rec.take();
  std::cout << "recorded " << trace.size() << " observations\n";

  // 2. Learn: default configuration (window w=3, compliance l=2, CDCL SAT
  //    search for the smallest automaton).
  const ModelLearner learner;
  const LearnResult result = learner.learn(trace);

  // 3. Inspect the result.
  std::cout << format_learn_report(result, trace.schema());
  if (!result.success) return 1;

  std::cout << "\nGraphviz DOT:\n" << to_dot(result.model, "traffic_light");
  return 0;
}
