// Functional coverage analysis with learned models (Section IV of the
// paper): compare the model learned under a given application load against
// the datasheet state machine. Transitions missing from the learned model
// are scenarios the load never drove the system into -- the paper observes
// exactly this for the QEMU USB slot and for the pi_stress RT-Linux load.

#include <iostream>

#include "src/automaton/coverage.h"
#include "src/core/learner.h"
#include "src/core/report.h"
#include "src/sim/references.h"
#include "src/sim/rtlinux/workloads.h"
#include "src/sim/xhci/slot_fsm.h"

int main() {
  using namespace t2m;

  std::cout << "=== USB slot: driver load vs datasheet (Fig. 1) ===\n";
  const Trace slot_trace = sim::generate_slot_trace();
  const ModelLearner learner;
  const LearnResult slot = learner.learn(slot_trace);
  std::cout << "learned: " << format_learn_summary(slot) << "\n";
  if (!slot.success) return 1;
  std::cout << format_report(
      compare_coverage(sim::reference_usb_slot_datasheet(), slot.model));

  std::cout << "\n=== RT-Linux: pi_stress only vs full thread model (Fig. 6) ===\n";
  const LearnResult pi_only = learner.learn(sim::generate_pi_stress_trace(8000));
  std::cout << "learned from pi_stress alone: " << format_learn_summary(pi_only) << "\n";
  if (pi_only.success) {
    std::cout << format_report(
        compare_coverage(sim::reference_sched_thread_model(), pi_only.model));
  }

  std::cout << "\n=== RT-Linux: with the corner-case kernel module ===\n";
  const LearnResult full = learner.learn(sim::generate_full_coverage_sched_trace(8000));
  std::cout << "learned with corner-case module: " << format_learn_summary(full) << "\n";
  if (full.success) {
    std::cout << format_report(
        compare_coverage(sim::reference_sched_thread_model(), full.model));
  }
  return 0;
}
