#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/failpoint.h"
#include "src/util/log.h"

namespace t2m::par {

std::size_t hardware_threads() {
  const unsigned n = Thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t workers) {
  ensure_size(std::max<std::size_t>(workers, 1));
}

ThreadPool::~ThreadPool() {
  // order: release pairs with the worker's acquire load under sleep_mutex_;
  // the rendezvous below guarantees no worker is between its idle check and
  // its wait when the notify lands.
  stopping_.store(true, std::memory_order_release);
  {
    // Rendezvous so no worker is between its idle check and its wait.
    const MutexLock lk(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  const MutexLock lk(grow_mutex_);
  for (Thread& t : threads_) t.join();
}

void ThreadPool::ensure_size(std::size_t workers) {
  workers = std::min(workers, kMaxWorkers);
  if (size() >= workers) return;
  const MutexLock lk(grow_mutex_);
  for (std::size_t i = size(); i < workers; ++i) {
    // Queue first, then publish the count, then start the thread: everyone
    // indexing < worker_count_ finds an initialised queue.
    queues_[i] = std::make_unique<WorkerQueue>();
    // order: release publishes queues_[i]; pairs with the acquire in size().
    worker_count_.store(i + 1, std::memory_order_release);
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t n = size();
  // order: relaxed — the cursor is a round-robin hint; queue placement needs
  // no ordering, only uniqueness-ish distribution.
  const std::size_t slot = submit_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
  // order: release pairs with the worker's acquire re-check of pending_
  // under sleep_mutex_ before it sleeps (the task itself is published by the
  // queue mutex, not by this counter).
  pending_.fetch_add(1, std::memory_order_release);
  {
    const MutexLock lk(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    // Pairs with the pending_ check a worker makes under sleep_mutex_ before
    // waiting: either the worker is already waiting (notify reaches it) or
    // it still holds the mutex and will re-check pending_ != 0.
    const MutexLock lk(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t index, std::function<void()>& out) {
  WorkerQueue& q = *queues_[index];
  const MutexLock lk(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  // order: release keeps the decrement from being reordered before the pop
  // it accounts for; pairs with the acquire loads in worker_loop/wait.
  pending_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::steal(std::size_t thief, std::function<void()>& out) {
  const std::size_t n = size();
  for (std::size_t d = 0; d < n; ++d) {
    const std::size_t victim = (thief + d) % n;
    WorkerQueue& q = *queues_[victim];
    const MutexLock lk(q.mutex);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    // order: release — same pairing as pop_own.
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }
  return false;
}

bool ThreadPool::help_one() {
  std::function<void()> task;
  if (!steal(0, task)) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::Tracer::set_thread_name("pool.worker " + std::to_string(index));
  std::function<void()> task;
  while (true) {
    if (pop_own(index, task) || steal(index + 1, task)) {
      // Last line of defence: a raw submit() task that throws (violating the
      // submit contract) must take down its own work item, not the process —
      // an unwound worker thread would std::terminate. TaskGroup tasks never
      // reach this (their wrapper captures the exception for wait()).
      try {
        T2M_SPAN("pool.task", "worker", index);
        obs::count("pool.tasks");
        task();
      } catch (const std::exception& e) {
        log_warn() << "ThreadPool: task escaped with exception: " << e.what();
      } catch (...) {
        log_warn() << "ThreadPool: task escaped with unknown exception";
      }
      task = nullptr;
      continue;
    }
    MutexLock lk(sleep_mutex_);
    // order: acquire pairs with the destructor's release store; the
    // rendezvous under sleep_mutex_ makes the flag impossible to miss.
    if (stopping_.load(std::memory_order_acquire)) return;
    // order: acquire pairs with submit()'s release increment (missed-work
    // re-check under the same mutex submit rendezvouses on).
    if (pending_.load(std::memory_order_acquire) != 0) continue;  // missed work
    sleep_cv_.wait(sleep_mutex_);
  }
}

TaskGroup::~TaskGroup() {
  // A forgotten wait() would let tasks outlive the frame they capture;
  // drain them, dropping any task exception (wait() is where it reports).
  try {
    wait();
  } catch (...) {
  }
}

void TaskGroup::run(std::function<void()> fn) {
  // order: acq_rel — the increment must be visible before the task's own
  // decrement can reach zero (pairs with the loads in wait()/done()).
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit([this, fn = std::move(fn)]() mutable {
    try {
      // Fault-injection hook covering every TaskGroup task body (ingest
      // shards, compliance chunks, emission chunks, portfolio lanes): an
      // injected failure here must surface from wait() as a structured
      // error, cancelling the parallel stage and nothing else.
      T2M_INJECT_STATUS("pool.task", ErrorCode::internal,
                        "injected task-body failure");
      fn();
    } catch (...) {
      const MutexLock lk(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    const MutexLock lk(mutex_);
    // order: acq_rel — the release half publishes this task's writes to the
    // waiter's acquire load; the acquire half orders the zero-check after
    // sibling decrements.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  // order: acquire pairs with each task wrapper's acq_rel decrement, so a
  // zero read here implies every task's writes are visible to this thread.
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (pool_.help_one()) continue;
    // Nothing left to steal: the stragglers are running on workers. Their
    // completion notifies under mutex_, so the pending_ re-check under the
    // same mutex cannot miss it.
    MutexLock lk(mutex_);
    // order: acquire — same pairing as the loop condition above.
    if (pending_.load(std::memory_order_acquire) == 0) break;
    cv_.wait(mutex_);
  }
  const MutexLock lk(mutex_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void for_chunks(std::size_t threads, std::size_t n, std::size_t chunks,
                const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunks = std::min(chunks == 0 ? n : chunks, n);
  if (threads <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) fn(c, n * c / chunks, n * (c + 1) / chunks);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_size(std::min(threads, ThreadPool::kMaxWorkers));
  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    group.run([&fn, c, n, chunks] { fn(c, n * c / chunks, n * (c + 1) / chunks); });
  }
  group.wait();
}

}  // namespace t2m::par
