#include "src/parallel/sharded_ingest.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/abstraction/event_stream.h"
#include "src/base/status.h"
#include "src/obs/trace.h"
#include "src/parallel/scratch_arena.h"
#include "src/parallel/thread_pool.h"
#include "src/trace/ftrace_io.h"
#include "src/trace/mmap_io.h"
#include "src/util/hash.h"
#include "src/util/window_dedup.h"

namespace t2m::par {
namespace {

/// Everything one shard scan produces, in shard-local predicate ids (dense,
/// first-occurrence order within the shard). Local ids are 32-bit: a shard
/// cannot see more distinct events than bytes.
struct ShardScan {
  std::size_t observations = 0;  ///< parsed (and filter-passing) events
  std::size_t preds = 0;         ///< step destinations (|local pred sequence|)
  bool has_first_obs = false;
  std::string first_obs;  ///< event string of the shard's first observation
  /// Local pred id -> event string, in local first-occurrence order.
  std::vector<std::string> dest_order;
  /// First min(preds, K) local ids (K covers every merge window length).
  std::vector<std::uint32_t> lead;
  /// Last min(preds, K) local ids.
  std::vector<std::uint32_t> rear;
  /// Distinct windows fully inside the shard, local first-occurrence order.
  std::vector<std::vector<std::uint32_t>> seg_windows;
  std::vector<std::vector<std::uint32_t>> cmp_windows;
  /// Full local-id sequence (only when the caller keeps the sequence).
  std::vector<std::uint32_t> seq;
};

/// Amortised deadline poll for the scan and merge loops: reads the clock
/// every 8192nd call and throws the structured timeout on expiry.
struct IngestDeadlinePoll {
  const Deadline& deadline;
  std::uint64_t ticks = 0;
  void operator()() {
    if ((ticks++ & 8191u) != 0 || !deadline.is_finite()) return;
    if (deadline.expired()) {
      throw_status(ErrorCode::deadline_exceeded,
                   "trace ingest exceeded the learn deadline");
    }
  }
};

/// Cuts `content` at line boundaries into up to `shards` non-empty regions.
std::vector<std::string_view> split_regions(std::string_view content,
                                            std::size_t shards) {
  std::vector<std::size_t> cuts{0};
  for (std::size_t s = 1; s < shards; ++s) {
    const std::size_t target = content.size() * s / shards;
    if (target <= cuts.back()) continue;
    const char* nl = static_cast<const char*>(
        std::memchr(content.data() + target, '\n', content.size() - target));
    const std::size_t cut =
        nl != nullptr ? static_cast<std::size_t>(nl - content.data()) + 1 : content.size();
    if (cut > cuts.back() && cut < content.size()) cuts.push_back(cut);
  }
  cuts.push_back(content.size());
  std::vector<std::string_view> regions;
  regions.reserve(cuts.size() - 1);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i + 1] > cuts[i]) {
      regions.push_back(content.substr(cuts[i], cuts[i + 1] - cuts[i]));
    }
  }
  if (regions.empty()) regions.push_back(content.substr(0, 0));
  return regions;
}

/// One shard's pass: parse lines, intern event strings locally, feed the
/// window dedups. The step predicate depends only on the destination
/// observation (see EventStreamAbstractor), so a shard needs no context from
/// its predecessor: every observation it sees is a step destination — except
/// the very first observation of the whole trace (`fresh_start`), which
/// starts the trace instead of ending a step.
void scan_shard(std::string_view region, bool fresh_start,
                const ShardedIngestOptions& opt, std::size_t K, ShardScan& out) {
  LineReader lines(region, LineReader::from_memory);
  std::unordered_map<std::string, std::uint32_t> local_ids;
  std::optional<StreamingWindowDedup<std::uint32_t>> seg_dedup;
  if (opt.segmented) seg_dedup.emplace(std::max<std::size_t>(opt.window, 1));
  std::optional<StreamingWindowDedup<std::uint32_t>> cmp_dedup;
  if (opt.compliance_length > 0) {
    cmp_dedup.emplace(std::max<std::size_t>(opt.compliance_length, 1));
  }
  std::vector<std::uint32_t> rear_ring(std::max<std::size_t>(K, 1));

  std::string task, event;
  std::string_view line;
  IngestDeadlinePoll poll{opt.deadline};
  while (lines.next(line)) {
    poll();
    if (!parse_ftrace_line(line, task, event)) continue;
    if (!opt.task_filter.empty() && task != opt.task_filter) continue;
    ++out.observations;
    if (!out.has_first_obs) {
      out.has_first_obs = true;
      out.first_obs = event;
      if (fresh_start) continue;  // the trace's first observation: no step yet
    }
    const auto [it, inserted] =
        local_ids.try_emplace(event, static_cast<std::uint32_t>(out.dest_order.size()));
    if (inserted) out.dest_order.push_back(event);
    const std::uint32_t lid = it->second;
    if (seg_dedup) seg_dedup->push(lid);
    if (cmp_dedup) cmp_dedup->push(lid);
    if (out.preds < K) out.lead.push_back(lid);
    if (K > 0) rear_ring[out.preds % K] = lid;
    if (opt.keep_sequence) out.seq.push_back(lid);
    ++out.preds;
  }

  if (seg_dedup) out.seg_windows = seg_dedup->take_windows();
  if (cmp_dedup) out.cmp_windows = cmp_dedup->take_windows();
  const std::size_t r = std::min(out.preds, K);
  out.rear.resize(r);
  for (std::size_t i = 0; i < r; ++i) {
    out.rear[i] = rear_ring[(out.preds - r + i) % K];
  }
}

/// Order-preserving distinct-window accumulator for the merge: insert keeps
/// the first occurrence, exactly as the sequential dedup would have. Stored
/// as hash buckets of indices into the ordered list (the window_dedup.h
/// layout), so each distinct window is held once, not once per container.
class OrderedWindowMerge {
public:
  void insert(std::vector<PredId> window) {
    auto& bucket = buckets_[VectorHash{}(window)];
    for (const std::uint32_t idx : bucket) {
      if (order_[idx] == window) return;
    }
    bucket.push_back(static_cast<std::uint32_t>(order_.size()));
    order_.push_back(std::move(window));
  }
  std::vector<std::vector<PredId>> take() { return std::move(order_); }

private:
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> buckets_;
  std::vector<std::vector<PredId>> order_;
};

/// Emits the length-L windows that straddle the cut between the processed
/// stream (whose last up-to-(L-1) predicates are `tail`) and the next
/// shard (whose first predicates are `lead`), in stream order. Windows fully
/// inside the tail were emitted at an earlier cut; windows fully inside the
/// lead are in the shard's local list.
void emit_cross_windows(const std::vector<PredId>& tail, const std::vector<PredId>& lead,
                        std::size_t L, OrderedWindowMerge& out) {
  if (L == 0 || tail.empty() || lead.empty()) return;
  ScratchArena& scratch = local_scratch();
  scratch.reset();
  const std::size_t tape_len = tail.size() + lead.size();
  PredId* tape = scratch.alloc_array<PredId>(tape_len);
  std::copy(tail.begin(), tail.end(), tape);
  std::copy(lead.begin(), lead.end(), tape + tail.size());
  // advance_tail caps the tail at L-1 elements, so every enumerated window
  // necessarily crosses into the lead — none can sit fully inside the tail.
  for (std::size_t p = 0; p < tail.size() && p + L <= tape_len; ++p) {
    out.insert(std::vector<PredId>(tape + p, tape + p + L));
  }
}

/// Appends `take` and trims to the last L-1 elements: the rolling context
/// the next cut's cross windows need.
void advance_tail(std::vector<PredId>& tail, const std::vector<PredId>& take,
                  std::size_t L) {
  if (L <= 1) return;
  tail.insert(tail.end(), take.begin(), take.end());
  if (tail.size() > L - 1) {
    tail.erase(tail.begin(),
               tail.begin() + static_cast<std::ptrdiff_t>(tail.size() - (L - 1)));
  }
}

/// Sequential reference pipeline over the same region (also the fallback for
/// degenerate inputs): LineReader -> FtracePredStream -> window builders,
/// exactly what ModelLearner::learn_from_stream runs.
ShardedIngestResult sequential_ingest(std::string_view content,
                                      const ShardedIngestOptions& opt) {
  ShardedIngestResult result;
  result.shards_used = 1;
  LineReader lines(content, LineReader::from_memory);
  FtracePredStream stream(lines, opt.task_filter);
  std::optional<StreamingSegmenter> segmenter;
  if (opt.segmented) segmenter.emplace(opt.window);
  ComplianceWindowBuilder builder(opt.compliance_length);
  std::vector<PredId> seq;
  IngestDeadlinePoll poll{opt.deadline};
  while (const auto id = stream.next()) {
    poll();
    if (segmenter) segmenter->push(*id);
    builder.push(*id);
    if (opt.keep_sequence) seq.push_back(*id);
    ++result.sequence_length;
  }
  result.preds = stream.take_preds();
  result.preds.seq = std::move(seq);
  result.schema = stream.schema();
  if (segmenter) result.segments = segmenter->take();
  result.compliance = builder.finish();
  return result;
}

}  // namespace

ShardedIngestResult sharded_ftrace_ingest(std::string_view content,
                                          const ShardedIngestOptions& options) {
  if (options.window == 0) {
    throw std::invalid_argument("sharded ingest: window must be positive");
  }
  const std::size_t want =
      options.shards != 0 ? options.shards : std::max<std::size_t>(options.threads, 1);
  if (want <= 1) return sequential_ingest(content, options);

  const std::vector<std::string_view> regions = split_regions(content, want);
  if (regions.size() <= 1) return sequential_ingest(content, options);

  // K: enough lead/rear context for every merge window length.
  const std::size_t w = options.window;
  const std::size_t l = options.compliance_length;
  const std::size_t K =
      std::max(w > 0 ? w - 1 : 0, l > 0 ? l - 1 : 0);

  // Parallel scan: one task per shard, results keyed by shard index.
  std::vector<ShardScan> scans(regions.size());
  for_chunks(options.threads, regions.size(), regions.size(),
             [&](std::size_t shard, std::size_t, std::size_t) {
               T2M_SPAN("ingest.scan_shard", "shard", shard, "bytes",
                        regions[shard].size());
               scan_shard(regions[shard], /*fresh_start=*/shard == 0, options, K,
                          scans[shard]);
             });

  // The first observation of the whole trace must be the one scanned in
  // fresh-start mode. If the leading shard held no events (a comment-only
  // prefix), a later shard misclassified the global first observation as a
  // step destination — rare enough that re-running sequentially is the
  // simplest correct answer.
  std::size_t first_shard = scans.size();
  for (std::size_t s = 0; s < scans.size(); ++s) {
    if (scans[s].observations > 0) {
      first_shard = s;
      break;
    }
  }
  if (first_shard != 0) return sequential_ingest(content, options);

  std::size_t total_obs = 0;
  std::size_t total_preds = 0;
  for (const ShardScan& s : scans) {
    total_obs += s.observations;
    total_preds += s.preds;
  }
  if (total_obs < 2) {
    throw std::invalid_argument(
        "event abstraction: trace needs at least two observations");
  }

  ShardedIngestResult result;
  result.shards_used = scans.size();
  result.sequence_length = total_preds;

  T2M_SPAN("ingest.merge", "shards", scans.size(), "observations", total_obs);

  // --- global vocabulary replay -------------------------------------------
  // The sequential path interns each event symbol at its first occurrence
  // and each step predicate at its first occurrence as a destination.
  // Concatenating the shards' per-shard first-occurrence orders (new strings
  // only) reproduces both orders exactly: all of shard s's firsts come after
  // shard s-1's, and within a shard local order is stream order. Replaying
  // through a real EventStreamAbstractor keeps the Exprs, interned ids and
  // display names byte-identical to the sequential pipeline.
  const VarIndex ev = result.schema.add_cat("event", {}, std::nullopt);
  result.schema.sym_id_intern(ev, scans[0].first_obs);  // the trace's first observation
  EventStreamAbstractor abstractor;
  abstractor.prime();
  std::unordered_map<std::string, PredId> global_of;
  for (const ShardScan& scan : scans) {
    for (const std::string& name : scan.dest_order) {
      if (global_of.count(name) != 0) continue;
      const auto sym = result.schema.sym_id_intern(ev, name);
      const auto id = abstractor.push(result.schema, {Value::of_sym(sym)});
      global_of.emplace(name, *id);
    }
  }
  std::vector<std::vector<PredId>> remap(scans.size());
  for (std::size_t s = 0; s < scans.size(); ++s) {
    remap[s].reserve(scans[s].dest_order.size());
    for (const std::string& name : scans[s].dest_order) {
      remap[s].push_back(global_of.at(name));
    }
  }
  // --- window merges -------------------------------------------------------
  // Per length L: walk shards in stream order keeping the last L-1 merged
  // predicates as `tail`; per shard, first emit the windows straddling the
  // incoming cut (tail x lead), then splice the shard's interior list. Every
  // window is thereby inserted at its global first-occurrence position, so
  // the merged order equals the sequential dedup's order exactly.
  const auto slice_front = [](const std::vector<PredId>& v, std::size_t n) {
    return std::vector<PredId>(v.begin(),
                               v.begin() + static_cast<std::ptrdiff_t>(std::min(n, v.size())));
  };
  const auto slice_back = [](const std::vector<PredId>& v, std::size_t n) {
    const std::size_t take = std::min(n, v.size());
    return std::vector<PredId>(v.end() - static_cast<std::ptrdiff_t>(take), v.end());
  };
  std::vector<std::vector<PredId>> lead_global(scans.size());
  std::vector<std::vector<PredId>> rear_global(scans.size());
  for (std::size_t s = 0; s < scans.size(); ++s) {
    lead_global[s].reserve(scans[s].lead.size());
    for (const std::uint32_t lid : scans[s].lead) lead_global[s].push_back(remap[s][lid]);
    rear_global[s].reserve(scans[s].rear.size());
    for (const std::uint32_t lid : scans[s].rear) rear_global[s].push_back(remap[s][lid]);
  }

  const auto merge_windows = [&](std::size_t L,
                                 const auto member) -> std::vector<std::vector<PredId>> {
    OrderedWindowMerge merged;
    std::vector<PredId> tail;
    IngestDeadlinePoll poll{options.deadline};
    for (std::size_t s = 0; s < scans.size(); ++s) {
      emit_cross_windows(tail, slice_front(lead_global[s], L > 0 ? L - 1 : 0), L, merged);
      for (const auto& local_window : scans[s].*member) {
        poll();
        std::vector<PredId> window;
        window.reserve(local_window.size());
        for (const std::uint32_t lid : local_window) window.push_back(remap[s][lid]);
        merged.insert(std::move(window));
      }
      advance_tail(tail, slice_back(rear_global[s], L > 0 ? L - 1 : 0), L);
    }
    return merged.take();
  };

  if (options.segmented) {
    if (total_preds > 0 && total_preds < w) {
      // Short stream: the whole sequence is one segment, as in
      // segment_sequence / StreamingSegmenter. Every shard's count is below
      // w, so its lead holds all of its predicates.
      Segment whole;
      whole.reserve(total_preds);
      for (std::size_t s = 0; s < scans.size(); ++s) {
        whole.insert(whole.end(), lead_global[s].begin(), lead_global[s].end());
      }
      result.segments.push_back(std::move(whole));
    } else if (total_preds >= w) {
      result.segments = merge_windows(w, &ShardScan::seg_windows);
    }
  }

  result.preds = abstractor.take();
  {
    std::vector<std::vector<PredId>> cmp_windows;
    if (l > 0 && total_preds >= l) {
      cmp_windows = merge_windows(l, &ShardScan::cmp_windows);
    }
    // Predicate ids are dense and every one occurs in the stream, so the
    // stream's maximum id is vocab-size - 1 — the same packed-representation
    // decision the builder's rolling maximum reaches.
    const PredId max_pred =
        result.preds.vocab.size() > 0 ? result.preds.vocab.size() - 1 : 0;
    result.compliance = ComplianceChecker::from_windows(l, total_preds,
                                                        std::move(cmp_windows), max_pred);
  }

  if (options.keep_sequence) {
    result.preds.seq.reserve(total_preds);
    for (std::size_t s = 0; s < scans.size(); ++s) {
      for (const std::uint32_t lid : scans[s].seq) {
        result.preds.seq.push_back(remap[s][lid]);
      }
    }
  }

  return result;
}

ShardedIngestResult sharded_ftrace_ingest_file(const std::string& path,
                                               const ShardedIngestOptions& options) {
  const MappedFile file(path);
  return sharded_ftrace_ingest(file.view(), options);
}

}  // namespace t2m::par
