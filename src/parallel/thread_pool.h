#ifndef T2M_PARALLEL_THREAD_POOL_H
#define T2M_PARALLEL_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "src/util/sync.h"

namespace t2m::par {

/// Usable hardware parallelism (never 0).
std::size_t hardware_threads();

/// Fixed-size thread pool with per-worker work-stealing deques: a worker
/// pops its own deque LIFO (cache-warm continuation of its latest spawn) and
/// steals FIFO from a victim when it runs dry, so coarse tasks distribute
/// without a central bottleneck. Submissions from outside the pool
/// round-robin across the deques.
///
/// The pool only ever grows (`ensure_size`); shrinking a live pool would
/// have to interrupt workers mid-task. Consumers usually go through the
/// `for_chunks` / `TaskGroup` helpers and the process-wide `global()`
/// instance rather than owning a pool.
///
/// Tasks submitted directly via submit() must not throw — exception capture
/// is TaskGroup's job (its wrapper funnels the first exception to wait()).
///
/// Lock hierarchy (docs/concurrency.md): a WorkerQueue mutex is a leaf —
/// nothing else is acquired while one is held; sleep_mutex_ is taken only
/// with no queue mutex held; grow_mutex_ serialises growth and shutdown and
/// never nests inside the others.
class ThreadPool {
 public:
  /// Hard cap on workers; keeps the deque table a fixed-size array so
  /// stealing never races vector reallocation.
  static constexpr std::size_t kMaxWorkers = 128;

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // order: acquire pairs with the release store in ensure_size — a caller
  // that observes worker_count_ == n also observes the n initialised
  // queues_[i] pointers published before it.
  std::size_t size() const { return worker_count_.load(std::memory_order_acquire); }

  /// Enqueues a task. Never blocks.
  void submit(std::function<void()> task);

  /// Runs one pending task on the calling thread, if any (FIFO steal).
  /// TaskGroup::wait() calls this so a blocked caller — including a pool
  /// worker waiting on a nested group — makes progress instead of
  /// deadlocking the pool.
  bool help_one();

  /// Grows the pool to at least `workers` threads (clamped to kMaxWorkers).
  void ensure_size(std::size_t workers);

  /// Process-wide pool, created on first use with hardware_threads()
  /// workers; consumers requesting more parallelism grow it on demand.
  static ThreadPool& global();

 private:
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t index);
  bool pop_own(std::size_t index, std::function<void()>& out);
  bool steal(std::size_t thief, std::function<void()>& out);

  std::unique_ptr<WorkerQueue> queues_[kMaxWorkers];
  std::atomic<std::size_t> worker_count_{0};
  /// Tasks enqueued and not yet popped. Workers sleep only when this is 0;
  /// submit() bumps it before pushing and rendezvouses on sleep_mutex_, so a
  /// worker can never sleep through a submission.
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> submit_cursor_{0};
  std::atomic<bool> stopping_{false};
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  Mutex grow_mutex_;
  std::vector<Thread> threads_ GUARDED_BY(grow_mutex_);
};

/// Fork-join scope over a pool: run() submits counted tasks, wait() blocks
/// until all of them finished, helping the pool run pending tasks meanwhile
/// (nested groups therefore cannot deadlock even on a one-worker pool). The
/// first exception a task throws is captured and rethrown from wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global()) : pool_(pool) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();
  /// True when no task is pending — for callers that interleave waiting
  /// with other duties (e.g. propagating an outer cancellation flag); pair
  /// with help_one() and finish with wait() for exception delivery.
  // order: acquire pairs with the acq_rel fetch_sub in the task wrapper, so
  // done() == true implies the finished tasks' writes (results, walls) are
  // visible to this thread even before the wait() rendezvous.
  bool done() const { return pending_.load(std::memory_order_acquire) == 0; }

 private:
  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  Mutex mutex_;
  CondVar cv_;
  std::exception_ptr error_ GUARDED_BY(mutex_);  ///< first task exception
};

/// Splits [0, n) into `chunks` contiguous ranges and runs
/// fn(chunk, begin, end) for each. Results keyed by chunk index are
/// deterministic regardless of which worker ran which chunk — the merge
/// order every parallel consumer in this codebase relies on. threads <= 1
/// (or a single chunk) runs inline with no pool involvement.
void for_chunks(std::size_t threads, std::size_t n, std::size_t chunks,
                const std::function<void(std::size_t chunk, std::size_t begin,
                                         std::size_t end)>& fn);

}  // namespace t2m::par

#endif  // T2M_PARALLEL_THREAD_POOL_H
