#ifndef T2M_PARALLEL_SCRATCH_ARENA_H
#define T2M_PARALLEL_SCRATCH_ARENA_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/base/memory_accountant.h"

namespace t2m::par {

/// Per-thread bump allocator for transient worker buffers (merge tapes,
/// remap tables): alloc is a pointer bump, reset() recycles everything at
/// once, and nothing is freed mid-pass, so parallel stages do no per-task
/// heap traffic and never contend on the global allocator. Not thread-safe
/// by design — get one per thread via local_scratch().
class ScratchArena {
public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two). The
  /// memory is valid until reset().
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    Block* b = current();
    std::size_t offset = b ? aligned_offset(*b, b->used, align) : 0;
    if (b == nullptr || offset + bytes > b->size) {
      b = grow(bytes + align);
      offset = aligned_offset(*b, 0, align);
    }
    b->used = offset + bytes;
    return b->data.get() + offset;
  }

  /// Typed array of `count` default-constructible trivial elements.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycles every allocation; keeps only the largest block for reuse.
  void reset() {
    if (blocks_.empty()) return;
    std::size_t best = 0;
    for (std::size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[best].size) best = i;
    }
    Block keep = std::move(blocks_[best]);
    keep.used = 0;
    blocks_.clear();
    blocks_.push_back(std::move(keep));
    charge_.set_charged(keep_capacity());
  }

  /// Total bytes held across blocks.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block* current() { return blocks_.empty() ? nullptr : &blocks_.back(); }

  /// Smallest offset >= `from` whose address in `b` satisfies `align`.
  static std::size_t aligned_offset(const Block& b, std::size_t from, std::size_t align) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t aligned = (base + from + align - 1) & ~(align - 1);
    return static_cast<std::size_t>(aligned - base);
  }

  Block* grow(std::size_t at_least) {
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max({at_least, prev * 2, std::size_t{4096}});
    // Charge before allocating so a configured cap rejects the growth as a
    // structured resource_exhausted instead of driving the process into the
    // OOM killer. Worker threads let the throw propagate into their
    // TaskGroup, which rethrows it at the fork-join point.
    charge_.set_charged(charge_.charged() + size);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    return &blocks_.back();
  }

  std::size_t keep_capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  std::vector<Block> blocks_;
  ChargeTracker charge_;  ///< releases everything at thread/scope exit
};

/// The calling thread's scratch arena (thread-local, created on first use).
/// Pool workers and external callers alike get their own instance, so
/// chunked parallel stages can allocate scratch without synchronisation.
inline ScratchArena& local_scratch() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace t2m::par

#endif  // T2M_PARALLEL_SCRATCH_ARENA_H
