#ifndef T2M_PARALLEL_SHARDED_INGEST_H
#define T2M_PARALLEL_SHARDED_INGEST_H

#include <string>
#include <string_view>
#include <vector>

#include "src/abstraction/predicate.h"
#include "src/base/schema.h"
#include "src/core/compliance.h"
#include "src/core/segmentation.h"

namespace t2m::par {

struct ShardedIngestOptions {
  /// Segmentation window w; must be positive (as segment_sequence requires).
  std::size_t window = 3;
  /// Compliance-check window length l (0 = no compliance windows).
  std::size_t compliance_length = 2;
  /// Worker threads scanning shards concurrently.
  std::size_t threads = 1;
  /// Shard count; 0 derives one shard per thread. Tests pin it to exercise
  /// cut placement on small inputs — any count yields identical artefacts.
  std::size_t shards = 0;
  /// Collect the segmentation window set (off for non-segmented learns,
  /// which take the whole retained sequence as one segment instead).
  bool segmented = true;
  /// Retain the full interned id sequence (needed by trace acceptance and
  /// the non-segmented encoding; costs O(events) extra memory).
  bool keep_sequence = false;
  /// ftrace task filter (empty = keep all), as FtracePredStream.
  std::string task_filter;
  /// Cooperative wall-clock bound: shard scans poll it every few thousand
  /// lines and the merge polls it per shard; expiry throws
  /// StatusError(deadline_exceeded) from sharded_ftrace_ingest (the worker
  /// throw propagates through TaskGroup::wait). Defaults to never expiring.
  Deadline deadline;
};

/// The one-pass ingest artefacts the CEGIS search runs on. Byte-identical to
/// the sequential streaming path (LineReader -> FtracePredStream ->
/// StreamingSegmenter + ComplianceWindowBuilder) for every shard count — the
/// merge reproduces the sequential first-occurrence orders exactly; see
/// docs/parallel.md for the determinism contract.
struct ShardedIngestResult {
  PredicateSequence preds;  ///< vocabulary + display names (+ seq when kept)
  Schema schema;
  std::vector<Segment> segments;
  ComplianceChecker compliance{std::vector<PredId>{}, 0};
  std::size_t sequence_length = 0;  ///< |P|, whether or not seq was retained
  std::size_t shards_used = 0;      ///< 1 when the sequential path served the call
};

/// Sharded parallel ingest of an ftrace log held in memory (normally a
/// MappedFile view): the content is cut at line boundaries into roughly
/// equal shards, each scanned concurrently by its own line cursor, local
/// interner and window dedups; a deterministic sequential merge then
/// rebuilds the global vocabulary, segment list, and compliance window set.
/// Throws std::invalid_argument for window == 0 or a trace with fewer than
/// two observations (mirroring the sequential pipeline's errors).
ShardedIngestResult sharded_ftrace_ingest(std::string_view content,
                                          const ShardedIngestOptions& options);

/// Convenience wrapper: maps `path` (MappedFile) and ingests its view.
ShardedIngestResult sharded_ftrace_ingest_file(const std::string& path,
                                               const ShardedIngestOptions& options);

}  // namespace t2m::par

#endif  // T2M_PARALLEL_SHARDED_INGEST_H
