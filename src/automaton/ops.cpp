#include "src/automaton/ops.h"

#include <algorithm>
#include <map>

#include "src/expr/eval.h"

namespace t2m {

std::vector<std::vector<std::pair<PredId, StateId>>> out_edges(const Nfa& m) {
  std::vector<std::vector<std::pair<PredId, StateId>>> out(m.num_states());
  for (const Transition& t : m.transitions()) {
    out[t.src].emplace_back(t.pred, t.dst);
  }
  return out;
}

namespace {

void extend_paths(const std::vector<std::vector<std::pair<PredId, StateId>>>& edges,
                  StateId state, std::size_t remaining, std::vector<PredId>& prefix,
                  std::set<std::vector<PredId>>& out) {
  if (remaining == 0) {
    out.insert(prefix);
    return;
  }
  for (const auto& [pred, dst] : edges[state]) {
    prefix.push_back(pred);
    extend_paths(edges, dst, remaining - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::set<std::vector<PredId>> transition_sequences(const Nfa& m, std::size_t l) {
  std::set<std::vector<PredId>> out;
  std::vector<PredId> prefix;
  const auto edges = out_edges(m);
  for (StateId s = 0; s < m.num_states(); ++s) {
    extend_paths(edges, s, l, prefix, out);
  }
  return out;
}

std::set<std::vector<PredId>> subsequences(const std::vector<PredId>& seq, std::size_t l) {
  std::set<std::vector<PredId>> out;
  if (l == 0 || seq.size() < l) return out;
  for (std::size_t i = 0; i + l <= seq.size(); ++i) {
    out.insert(std::vector<PredId>(seq.begin() + static_cast<std::ptrdiff_t>(i),
                                   seq.begin() + static_cast<std::ptrdiff_t>(i + l)));
  }
  return out;
}

namespace {

ReplayResult replay_from(const Nfa& m, const PredicateVocab& vocab, const Trace& trace,
                         std::set<StateId> frontier) {
  ReplayResult result;
  for (std::size_t step = 0; step < trace.num_steps(); ++step) {
    const Valuation& cur = trace.step_cur(step);
    const Valuation& next = trace.step_next(step);
    std::set<StateId> advanced;
    for (const Transition& t : m.transitions()) {
      if (frontier.count(t.src) == 0) continue;
      if (holds(*vocab.expr(t.pred), cur, next)) advanced.insert(t.dst);
    }
    if (advanced.empty()) {
      result.accepted = false;
      result.failed_step = step;
      result.steps = step;
      return result;
    }
    frontier = std::move(advanced);
    result.steps = step + 1;
  }
  result.accepted = true;
  return result;
}

}  // namespace

ReplayResult replay_trace(const Nfa& m, const PredicateVocab& vocab, const Trace& trace) {
  return replay_from(m, vocab, trace, {m.initial()});
}

ReplayResult replay_trace_anywhere(const Nfa& m, const PredicateVocab& vocab,
                                   const Trace& trace) {
  std::set<StateId> all;
  for (StateId s = 0; s < m.num_states(); ++s) all.insert(s);
  return replay_from(m, vocab, trace, std::move(all));
}

Nfa canonicalize(const Nfa& m) {
  // BFS from the initial state over deterministically ordered edges.
  std::map<StateId, StateId> renumber;
  std::vector<StateId> queue = {m.initial()};
  renumber[m.initial()] = 0;
  std::vector<Transition> sorted = m.transitions();
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const StateId s = queue[head];
    for (const Transition& t : sorted) {
      if (t.src != s) continue;
      if (renumber.emplace(t.dst, renumber.size()).second) queue.push_back(t.dst);
    }
  }
  Nfa out(renumber.size(), 0);
  out.set_pred_names(m.pred_names());
  for (const Transition& t : sorted) {
    const auto si = renumber.find(t.src);
    const auto di = renumber.find(t.dst);
    if (si == renumber.end() || di == renumber.end()) continue;  // unreachable
    out.add_transition(si->second, t.pred, di->second);
  }
  return out;
}

}  // namespace t2m
