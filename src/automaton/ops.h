#ifndef T2M_AUTOMATON_OPS_H
#define T2M_AUTOMATON_OPS_H

#include <set>
#include <vector>

#include "src/abstraction/predicate.h"
#include "src/automaton/nfa.h"
#include "src/trace/trace.h"

namespace t2m {

/// Transitions grouped by source state, as (pred, dst) pairs: the adjacency
/// index used by path enumeration and the compliance DFS.
std::vector<std::vector<std::pair<PredId, StateId>>> out_edges(const Nfa& m);

/// All predicate words of length `l` realisable as transition paths in `m`
/// from any state (the paper's S_l, used by the compliance check).
std::set<std::vector<PredId>> transition_sequences(const Nfa& m, std::size_t l);

/// All contiguous subsequences of `seq` of length `l` (the paper's P_l).
std::set<std::vector<PredId>> subsequences(const std::vector<PredId>& seq, std::size_t l);

/// Result of replaying a concrete trace against a model whose predicates are
/// evaluated on each step (NFA semantics: a step may satisfy several
/// predicates; the run survives while some enabled transition exists).
struct ReplayResult {
  bool accepted = false;
  /// First step index with no enabled transition, when rejected.
  std::size_t failed_step = 0;
  /// Number of steps consumed.
  std::size_t steps = 0;
};

/// Simulates `trace` on `m` starting from the initial state.
ReplayResult replay_trace(const Nfa& m, const PredicateVocab& vocab, const Trace& trace);

/// Simulates starting from every state (useful when the trace is a fragment
/// that need not begin at the model's initial state).
ReplayResult replay_trace_anywhere(const Nfa& m, const PredicateVocab& vocab,
                                   const Trace& trace);

/// Renumbers states so the initial state is 0 and the rest follow in BFS
/// order over (pred, dst)-sorted edges; drops unreachable states. Canonical
/// form makes models comparable across runs.
Nfa canonicalize(const Nfa& m);

}  // namespace t2m

#endif  // T2M_AUTOMATON_OPS_H
