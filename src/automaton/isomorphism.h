#ifndef T2M_AUTOMATON_ISOMORPHISM_H
#define T2M_AUTOMATON_ISOMORPHISM_H

#include "src/automaton/nfa.h"

namespace t2m {

/// Tests whether two automata are isomorphic: a bijection between states
/// mapping initial to initial and preserving the transition relation, with
/// edges matched BY PREDICATE NAME (so vocabularies with different interning
/// orders still compare). Backtracking search; intended for the small models
/// this library learns (N <= ~16).
bool isomorphic(const Nfa& a, const Nfa& b);

/// Isomorphism matching on raw PredIds instead of names (both automata share
/// one vocabulary).
bool isomorphic_by_pred_id(const Nfa& a, const Nfa& b);

}  // namespace t2m

#endif  // T2M_AUTOMATON_ISOMORPHISM_H
