#include "src/automaton/isomorphism.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace t2m {

namespace {

/// Edge set of a state as a sorted (label, dst) list, labels as strings or ids.
template <typename Label>
using EdgeProfile = std::vector<std::pair<Label, StateId>>;

template <typename Label, typename LabelOf>
bool isomorphic_impl(const Nfa& a, const Nfa& b, LabelOf label_of) {
  if (a.num_states() != b.num_states()) return false;
  if (a.num_transitions() != b.num_transitions()) return false;

  const std::size_t n = a.num_states();
  // adjacency keyed by (src) -> sorted vector of (label, dst)
  const auto edges_of = [&](const Nfa& m) {
    std::vector<EdgeProfile<Label>> out(m.num_states());
    for (const Transition& t : m.transitions()) {
      out[t.src].emplace_back(label_of(m, t.pred), t.dst);
    }
    for (auto& profile : out) std::sort(profile.begin(), profile.end());
    return out;
  };
  const auto ea = edges_of(a);
  const auto eb = edges_of(b);

  std::vector<std::int64_t> map_ab(n, -1);
  std::vector<std::int64_t> map_ba(n, -1);

  // Consistency: every mapped edge of `sa` must exist identically in `sb`
  // modulo the (possibly partial) state mapping; degree profiles must match.
  const auto consistent = [&](StateId sa, StateId sb) {
    if (ea[sa].size() != eb[sb].size()) return false;
    // multiset of labels must coincide
    std::multiset<Label> la, lb;
    for (const auto& [l, d] : ea[sa]) la.insert(l);
    for (const auto& [l, d] : eb[sb]) lb.insert(l);
    return la == lb;
  };

  // Backtracking over states in BFS order from the initial state.
  std::vector<StateId> order;
  {
    std::set<StateId> seen = {a.initial()};
    order.push_back(a.initial());
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const auto& [l, d] : ea[order[head]]) {
        if (seen.insert(d).second) order.push_back(d);
      }
    }
    for (StateId s = 0; s < n; ++s) {
      if (seen.insert(s).second) order.push_back(s);
    }
  }

  // Full check of the current complete mapping.
  const auto edges_match = [&]() {
    for (const Transition& t : a.transitions()) {
      const StateId ms = static_cast<StateId>(map_ab[t.src]);
      const StateId md = static_cast<StateId>(map_ab[t.dst]);
      const auto want = std::make_pair(label_of(a, t.pred), md);
      const auto& profile = eb[ms];
      if (!std::binary_search(profile.begin(), profile.end(), want)) return false;
    }
    return true;
  };

  const std::function<bool(std::size_t)> assign = [&](std::size_t idx) -> bool {
    if (idx == order.size()) return edges_match();
    const StateId sa = order[idx];
    for (StateId sb = 0; sb < n; ++sb) {
      if (map_ba[sb] != -1) continue;
      if (sa == a.initial() && sb != b.initial()) continue;
      if (sa != a.initial() && sb == b.initial()) continue;
      if (!consistent(sa, sb)) continue;
      map_ab[sa] = static_cast<std::int64_t>(sb);
      map_ba[sb] = static_cast<std::int64_t>(sa);
      if (assign(idx + 1)) return true;
      map_ab[sa] = -1;
      map_ba[sb] = -1;
    }
    return false;
  };
  return assign(0);
}

}  // namespace

bool isomorphic(const Nfa& a, const Nfa& b) {
  return isomorphic_impl<std::string>(
      a, b, [](const Nfa& m, PredId p) { return m.pred_name(p); });
}

bool isomorphic_by_pred_id(const Nfa& a, const Nfa& b) {
  return isomorphic_impl<PredId>(a, b, [](const Nfa&, PredId p) { return p; });
}

}  // namespace t2m
