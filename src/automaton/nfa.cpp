#include "src/automaton/nfa.h"

#include <algorithm>
#include <stdexcept>

namespace t2m {

Nfa::Nfa(std::size_t num_states, StateId initial)
    : num_states_(num_states), initial_(initial) {
  if (num_states_ == 0) throw std::invalid_argument("Nfa: need at least one state");
  if (initial_ >= num_states_) throw std::invalid_argument("Nfa: initial state out of range");
}

void Nfa::set_initial(StateId s) {
  if (s >= num_states_) throw std::invalid_argument("Nfa::set_initial: out of range");
  initial_ = s;
}

void Nfa::add_transition(StateId src, PredId pred, StateId dst) {
  num_states_ = std::max(num_states_, std::max(src, dst) + 1);
  const Transition t{src, pred, dst};
  if (std::find(transitions_.begin(), transitions_.end(), t) == transitions_.end()) {
    transitions_.push_back(t);
  }
}

std::string Nfa::pred_name(PredId p) const {
  if (p < pred_names_.size()) return pred_names_[p];
  // Built via += rather than "p" + to_string(p): GCC 12's -Wrestrict
  // false-fires on the temporary-concatenation form at -O2 (PR105651).
  std::string name = "p";
  name += std::to_string(p);
  return name;
}

std::vector<StateId> Nfa::successors(StateId src, PredId pred) const {
  std::vector<StateId> out;
  for (const Transition& t : transitions_) {
    if (t.src == src && t.pred == pred) out.push_back(t.dst);
  }
  return out;
}

std::vector<std::size_t> Nfa::transitions_from(StateId src) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].src == src) out.push_back(i);
  }
  return out;
}

bool Nfa::deterministic_per_predicate() const {
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    for (std::size_t j = i + 1; j < transitions_.size(); ++j) {
      if (transitions_[i].src == transitions_[j].src &&
          transitions_[i].pred == transitions_[j].pred &&
          transitions_[i].dst != transitions_[j].dst) {
        return false;
      }
    }
  }
  return true;
}

bool Nfa::accepts(std::span<const PredId> word) const {
  return accepts_from({initial_}, word);
}

bool Nfa::accepts_from(const std::set<StateId>& start, std::span<const PredId> word) const {
  std::set<StateId> frontier = start;
  for (const PredId symbol : word) {
    std::set<StateId> next;
    for (const Transition& t : transitions_) {
      if (t.pred == symbol && frontier.count(t.src) > 0) next.insert(t.dst);
    }
    if (next.empty()) return false;
    frontier = std::move(next);
  }
  return true;
}

std::set<StateId> Nfa::reachable_states() const {
  std::set<StateId> seen = {initial_};
  std::vector<StateId> stack = {initial_};
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Transition& t : transitions_) {
      if (t.src == s && seen.insert(t.dst).second) stack.push_back(t.dst);
    }
  }
  return seen;
}

std::set<PredId> Nfa::used_predicates() const {
  std::set<PredId> out;
  for (const Transition& t : transitions_) out.insert(t.pred);
  return out;
}

}  // namespace t2m
