#include "src/automaton/dot.h"

#include <map>
#include <ostream>
#include <sstream>

namespace t2m {

namespace {

std::string escape_label(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const Nfa& m, const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=circle];\n";
  os << "  __start [shape=point];\n";
  os << "  __start -> q" << (m.initial() + 1) << ";\n";
  for (StateId s = 0; s < m.num_states(); ++s) {
    os << "  q" << (s + 1) << " [label=\"q" << (s + 1) << "\"];\n";
  }
  // Merge parallel edges into one label.
  std::map<std::pair<StateId, StateId>, std::string> merged;
  for (const Transition& t : m.transitions()) {
    auto& label = merged[{t.src, t.dst}];
    if (!label.empty()) label += "\\n";
    label += escape_label(m.pred_name(t.pred));
  }
  for (const auto& [edge, label] : merged) {
    os << "  q" << (edge.first + 1) << " -> q" << (edge.second + 1) << " [label=\"" << label
       << "\"];\n";
  }
  os << "}\n";
}

std::string to_dot(const Nfa& m, const std::string& graph_name) {
  std::ostringstream os;
  write_dot(os, m, graph_name);
  return os.str();
}

std::string to_text(const Nfa& m) {
  std::ostringstream os;
  os << "states: " << m.num_states() << ", initial: q" << (m.initial() + 1)
     << ", transitions: " << m.num_transitions() << "\n";
  for (const Transition& t : m.transitions()) {
    os << "  q" << (t.src + 1) << " --[" << m.pred_name(t.pred) << "]--> q" << (t.dst + 1)
       << "\n";
  }
  return os.str();
}

}  // namespace t2m
