#ifndef T2M_AUTOMATON_MONITOR_H
#define T2M_AUTOMATON_MONITOR_H

#include <set>
#include <string>
#include <vector>

#include "src/abstraction/predicate.h"
#include "src/automaton/nfa.h"
#include "src/base/value.h"

namespace t2m {

/// Runtime monitor: feeds live observations through a learned model and
/// reports the first behaviour the model cannot explain. This is the runtime
/// verification application from the paper's RT-Linux section ([13], [14]):
/// the learned automaton plays the role of the hand-drawn kernel model.
class Monitor {
public:
  Monitor(const Nfa& model, const PredicateVocab& vocab);

  /// Resets to the initial state with no pending observation.
  void reset();

  /// Feeds the next observation. Returns true while the run is alive; after
  /// the first violation the monitor stays in the violated state until
  /// reset(). The first call only latches the observation (a step needs two).
  bool feed(const Valuation& obs);

  bool violated() const { return violated_; }
  /// Index of the observation that completed the violating step.
  std::size_t violation_index() const { return violation_index_; }
  /// Current set of possible model states.
  const std::set<StateId>& frontier() const { return frontier_; }
  /// Observations consumed so far.
  std::size_t observations() const { return count_; }

private:
  const Nfa& model_;
  const PredicateVocab& vocab_;
  std::set<StateId> frontier_;
  Valuation previous_;
  bool have_previous_ = false;
  bool violated_ = false;
  std::size_t violation_index_ = 0;
  std::size_t count_ = 0;
};

}  // namespace t2m

#endif  // T2M_AUTOMATON_MONITOR_H
