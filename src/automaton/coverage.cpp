#include "src/automaton/coverage.h"

#include <set>
#include <sstream>

namespace t2m {

CoverageReport compare_coverage(const Nfa& reference, const Nfa& learned) {
  std::set<std::string> ref_labels;
  for (const Transition& t : reference.transitions()) {
    ref_labels.insert(reference.pred_name(t.pred));
  }
  std::set<std::string> got_labels;
  for (const Transition& t : learned.transitions()) {
    got_labels.insert(learned.pred_name(t.pred));
  }

  CoverageReport report;
  for (const auto& label : ref_labels) {
    if (got_labels.count(label) > 0) {
      report.covered_labels.push_back(label);
    } else {
      report.uncovered_labels.push_back(label);
    }
  }
  for (const auto& label : got_labels) {
    if (ref_labels.count(label) == 0) report.extra_labels.push_back(label);
  }
  return report;
}

std::string format_report(const CoverageReport& report) {
  std::ostringstream os;
  os << "label coverage: " << report.covered_labels.size() << "/"
     << (report.covered_labels.size() + report.uncovered_labels.size()) << "\n";
  if (!report.uncovered_labels.empty()) {
    os << "uncovered (reference behaviour the load never exercised):\n";
    for (const auto& label : report.uncovered_labels) os << "  - " << label << "\n";
  }
  if (!report.extra_labels.empty()) {
    os << "extra (learned behaviour outside the reference):\n";
    for (const auto& label : report.extra_labels) os << "  + " << label << "\n";
  }
  return os.str();
}

}  // namespace t2m
