#ifndef T2M_AUTOMATON_NFA_H
#define T2M_AUTOMATON_NFA_H

#include <cstddef>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace t2m {

/// State index within an automaton (0-based; the paper's q1..qN map to 0..N-1).
using StateId = std::size_t;
/// Index into the predicate vocabulary labelling the transitions.
using PredId = std::size_t;

struct Transition {
  StateId src = 0;
  PredId pred = 0;
  StateId dst = 0;

  friend bool operator==(const Transition& a, const Transition& b) {
    return a.src == b.src && a.pred == b.pred && a.dst == b.dst;
  }
  friend bool operator<(const Transition& a, const Transition& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.dst < b.dst;
  }
};

/// Non-deterministic finite automaton in the paper's sense: every state is
/// accepting and a word is rejected only by running into a dead end
/// (Definition 1). Transitions carry predicate-vocabulary indices; the
/// automaton itself is purely symbolic and evaluation against concrete trace
/// steps lives in automaton/ops and automaton/monitor.
class Nfa {
public:
  Nfa() = default;
  explicit Nfa(std::size_t num_states, StateId initial = 0);

  std::size_t num_states() const { return num_states_; }
  StateId initial() const { return initial_; }
  void set_initial(StateId s);

  /// Adds a transition (deduplicated). Grows the state count if needed.
  void add_transition(StateId src, PredId pred, StateId dst);
  const std::vector<Transition>& transitions() const { return transitions_; }
  std::size_t num_transitions() const { return transitions_.size(); }

  /// Optional human-readable predicate names, indexed by PredId; used by the
  /// DOT/ASCII exporters and the coverage comparison.
  void set_pred_names(std::vector<std::string> names) { pred_names_ = std::move(names); }
  const std::vector<std::string>& pred_names() const { return pred_names_; }
  std::string pred_name(PredId p) const;

  /// All successor states of `src` under predicate `pred`.
  std::vector<StateId> successors(StateId src, PredId pred) const;
  /// All transitions leaving `src` (indices into transitions()).
  std::vector<std::size_t> transitions_from(StateId src) const;

  /// True when no state has two transitions with the same predicate and
  /// different targets (the paper's "no wrong transition" condition).
  bool deterministic_per_predicate() const;

  /// NFA acceptance of a predicate word: some run from the initial state
  /// consumes every symbol. All states accept, so this is just "no dead end".
  bool accepts(std::span<const PredId> word) const;
  /// Acceptance starting from an arbitrary state set.
  bool accepts_from(const std::set<StateId>& start, std::span<const PredId> word) const;

  /// States reachable from the initial state.
  std::set<StateId> reachable_states() const;

  /// Distinct predicates used on transitions.
  std::set<PredId> used_predicates() const;

private:
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<Transition> transitions_;
  std::vector<std::string> pred_names_;
};

}  // namespace t2m

#endif  // T2M_AUTOMATON_NFA_H
