#ifndef T2M_AUTOMATON_DOT_H
#define T2M_AUTOMATON_DOT_H

#include <iosfwd>
#include <string>

#include "src/automaton/nfa.h"

namespace t2m {

/// Graphviz DOT export. Edge labels come from the automaton's predicate
/// names; parallel edges between the same state pair are merged into one
/// multi-line label, matching the figures in the paper.
void write_dot(std::ostream& os, const Nfa& m, const std::string& graph_name = "model");

/// DOT as a string (convenience for examples and tests).
std::string to_dot(const Nfa& m, const std::string& graph_name = "model");

/// Plain-text adjacency rendering for terminals:
///   q1 --[x' = x + 1]--> q1
std::string to_text(const Nfa& m);

}  // namespace t2m

#endif  // T2M_AUTOMATON_DOT_H
