#ifndef T2M_AUTOMATON_COVERAGE_H
#define T2M_AUTOMATON_COVERAGE_H

#include <string>
#include <vector>

#include "src/automaton/nfa.h"

namespace t2m {

/// Label-level coverage comparison of a learned model against a reference
/// ("datasheet") model. The paper observes that transitions absent from the
/// learned USB slot model expose scenarios the application load never drove
/// the system into; this report makes that analysis a library feature.
struct CoverageReport {
  /// Edge labels present in the reference but not in the learned model.
  std::vector<std::string> uncovered_labels;
  /// Edge labels in both.
  std::vector<std::string> covered_labels;
  /// Edge labels only the learned model has (behaviour outside the
  /// reference, or predicates the reference abstracts differently).
  std::vector<std::string> extra_labels;

  double label_coverage() const {
    const std::size_t total = covered_labels.size() + uncovered_labels.size();
    return total == 0 ? 1.0 : static_cast<double>(covered_labels.size()) /
                                  static_cast<double>(total);
  }
};

/// Compares by predicate NAME so the two automata may use different
/// vocabularies (e.g. hand-written reference vs learned).
CoverageReport compare_coverage(const Nfa& reference, const Nfa& learned);

/// Renders the report as human-readable text.
std::string format_report(const CoverageReport& report);

}  // namespace t2m

#endif  // T2M_AUTOMATON_COVERAGE_H
