#include "src/automaton/monitor.h"

#include "src/expr/eval.h"

namespace t2m {

Monitor::Monitor(const Nfa& model, const PredicateVocab& vocab)
    : model_(model), vocab_(vocab) {
  reset();
}

void Monitor::reset() {
  frontier_ = {model_.initial()};
  have_previous_ = false;
  violated_ = false;
  violation_index_ = 0;
  count_ = 0;
}

bool Monitor::feed(const Valuation& obs) {
  ++count_;
  if (violated_) return false;
  if (!have_previous_) {
    previous_ = obs;
    have_previous_ = true;
    return true;
  }
  std::set<StateId> next;
  for (const Transition& t : model_.transitions()) {
    if (frontier_.count(t.src) == 0) continue;
    if (holds(*vocab_.expr(t.pred), previous_, obs)) next.insert(t.dst);
  }
  previous_ = obs;
  if (next.empty()) {
    violated_ = true;
    violation_index_ = count_ - 1;
    return false;
  }
  frontier_ = std::move(next);
  return true;
}

}  // namespace t2m
