#ifndef T2M_OBS_PROGRESS_H
#define T2M_OBS_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "src/util/stopwatch.h"
#include "src/util/sync.h"

namespace t2m::obs {

/// Point-in-time view of a running learn, assembled from the global
/// Progress counters plus the memory accountant.
struct ProgressSnapshot {
  double uptime_seconds = 0.0;  ///< since begin_run()
  std::uint64_t states = 0;     ///< current N under search
  std::uint64_t sat_calls = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t refinements = 0;
  std::size_t memory_used_bytes = 0;  ///< MemoryAccountant::global().used()
  /// Seconds until the run's deadline; +inf when none was set.
  double deadline_remaining_seconds = 0.0;
};

/// "progress: N=4 sat_calls=12 conflicts=3.4k refinements=7 mem=12.3 MiB
/// deadline=4.2s" — the Info line the heartbeat emits.
std::string format_progress_line(const ProgressSnapshot& snapshot);

/// Global lock-free progress counters fed by the learner and the SAT solver
/// at phase boundaries (solver restarts, refinement steps). Disabled (the
/// default) every update is one relaxed load.
class Progress {
public:
  static Progress& global();

  // order: release on enable/disable so counter resets sequenced before the
  // flip are visible to updaters that observe it; the relaxed read side is a
  // hot-path gate where a one-update-stale answer is harmless.
  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes the counters and records the run's start + deadline; called by
  /// the learner when a search begins (only when enabled).
  void begin_run(const Deadline& deadline);

  // order: relaxed — independent statistics counters; the heartbeat reader
  // tolerates cross-counter tearing (each line is a glance value, not an
  // invariant), and no payload hangs off any of them.
  void set_states(std::uint64_t n) {
    if (enabled()) states_.store(n, std::memory_order_relaxed);
  }
  // order: relaxed — see set_states() above.
  void add_sat_calls(std::uint64_t n) {
    if (enabled()) sat_calls_.fetch_add(n, std::memory_order_relaxed);
  }
  // order: relaxed — see set_states() above.
  void add_conflicts(std::uint64_t n) {
    if (enabled()) conflicts_.fetch_add(n, std::memory_order_relaxed);
  }
  // order: relaxed — see set_states() above.
  void add_refinements(std::uint64_t n) {
    if (enabled()) refinements_.fetch_add(n, std::memory_order_relaxed);
  }

  ProgressSnapshot snapshot() const;

private:
  Progress() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> states_{0};
  std::atomic<std::uint64_t> sat_calls_{0};
  std::atomic<std::uint64_t> conflicts_{0};
  std::atomic<std::uint64_t> refinements_{0};
  /// steady_clock ns of begin_run() and of the deadline; -1 = no deadline.
  /// Published as a pair: begin_run stores deadline_ns_ first, then
  /// start_ns_ with release; snapshot loads start_ns_ with acquire before
  /// deadline_ns_, so a reader that sees the new start also sees the
  /// matching deadline (they feed the same formatted line).
  std::atomic<std::int64_t> start_ns_{0};
  std::atomic<std::int64_t> deadline_ns_{-1};
};

/// Background thread emitting one Info-level progress line (plus an optional
/// callback) every `interval_seconds` while alive. RAII: construction
/// starts the thread, destruction (or stop()) joins it. Long CLI runs hold
/// one for `t2m --progress`; a future --serve mode can hold one per job.
class Heartbeat {
public:
  using Callback = std::function<void(const ProgressSnapshot&)>;

  explicit Heartbeat(double interval_seconds, Callback callback = nullptr);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void stop();

private:
  Mutex mutex_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
  Thread worker_;
};

}  // namespace t2m::obs

#endif  // T2M_OBS_PROGRESS_H
