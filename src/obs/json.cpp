#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace t2m::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent reader over the input span. Depth is bounded so a
/// pathological artefact cannot blow the stack.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status parse(JsonValue& out) {
    Status status = parse_value(out, 0);
    if (!status.ok()) return status;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return Status::Ok();
  }

private:
  static constexpr std::size_t kMaxDepth = 64;

  Status fail(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_keyword(out, c == 't' ? "true" : "false");
    if (c == 'n') return parse_keyword(out, "null");
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  Status parse_keyword(JsonValue& out, std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("malformed literal");
    pos_ += word.size();
    if (word == "null") {
      out.kind = JsonValue::Kind::Null;
    } else {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = word == "true";
    }
    return Status::Ok();
  }

  Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() || token == "-") {
      return fail("malformed number '" + token + "'");
    }
    out.kind = JsonValue::Kind::Number;
    return Status::Ok();
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return fail("malformed \\u escape");
          }
          pos_ += 4;
          // Validation-only reader: non-ASCII code points are preserved as
          // a replacement byte rather than UTF-8 encoded.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_array(JsonValue& out, std::size_t depth) {
    consume('[');
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      Status status = parse_value(element, depth + 1);
      if (!status.ok()) return status;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return Status::Ok();
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Status parse_object(JsonValue& out, std::size_t depth) {
    consume('{');
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return Status::Ok();
    while (true) {
      skip_ws();
      std::string key;
      Status status = parse_string(key);
      if (!status.ok()) return status;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue value;
      status = parse_value(value, depth + 1);
      if (!status.ok()) return status;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return Status::Ok();
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Status parse_json(std::string_view text, JsonValue& out) {
  out = JsonValue{};
  return Parser(text).parse(out);
}

}  // namespace t2m::obs
