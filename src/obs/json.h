#ifndef T2M_OBS_JSON_H
#define T2M_OBS_JSON_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace t2m::obs {

/// Minimal JSON document tree for validating our own emitted artefacts
/// (trace.json, metrics.json) — a strict reader for machine-written output,
/// not a general-purpose JSON library. Objects keep insertion order and
/// allow duplicate keys (find returns the first), matching what a
/// streaming-emitted document can contain.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// First member with this key, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

/// Strict parse of a complete document: the whole input must be consumed
/// (trailing garbage is an error), depth is bounded, and malformed input
/// reports a parse_error Status with position context — it never throws.
Status parse_json(std::string_view text, JsonValue& out);

}  // namespace t2m::obs

#endif  // T2M_OBS_JSON_H
