#ifndef T2M_OBS_TRACE_H
#define T2M_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/sync.h"

// Compile-time kill switch for the span macros (configure with -DT2M_OBS=OFF,
// which defines T2M_OBS_DISABLED): every T2M_SPAN expands to nothing and the
// instrumented binaries carry no per-site code at all. The Tracer itself
// still links so `--trace-out` degrades to an empty-but-valid trace instead
// of a missing-symbol build break.
#if !defined(T2M_OBS_ENABLED)
#if defined(T2M_OBS_DISABLED)
#define T2M_OBS_ENABLED 0
#else
#define T2M_OBS_ENABLED 1
#endif
#endif

namespace t2m::obs {

namespace detail {
/// Runtime master switch, read with one relaxed load on every instrumented
/// site; false (the default) makes every span a no-op.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// One key/value pair attached to an event. Keys are string literals owned
/// by the call site; values are small tagged unions.
struct EventArg {
  enum class Kind : std::uint8_t { Int, Float, Str };

  const char* key = "";
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double f = 0.0;
  std::string s;

  EventArg() = default;
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  EventArg(const char* k, T v) : key(k), i(static_cast<std::int64_t>(v)) {}
  EventArg(const char* k, bool v) : key(k), i(v ? 1 : 0) {}
  EventArg(const char* k, double v) : key(k), kind(Kind::Float), f(v) {}
  EventArg(const char* k, std::string v) : key(k), kind(Kind::Str), s(std::move(v)) {}
  EventArg(const char* k, const char* v) : key(k), kind(Kind::Str), s(v) {}
};

/// One buffered trace event in the Chrome trace-event model: a complete span
/// ('X', with a duration), an instant marker ('i'), or a counter sample
/// ('C'). Timestamps are nanoseconds since Tracer::start().
struct TraceEvent {
  const char* name = "";
  char phase = 'X';
  std::uint32_t track = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::vector<EventArg> args;
};

/// Process-wide span collector emitting Chrome trace-event / Perfetto JSON.
///
/// Appends go to lock-free per-thread chunked buffers: the owning thread
/// writes a slot and publishes it with one release store, so the hot path
/// takes no lock and touches no shared cache line; write_json() walks the
/// published prefixes with acquire loads and may run concurrently with
/// stragglers (their late events are simply not in that flush). The
/// intended lifecycle is start() → instrumented run → stop() →
/// write_file(), all driven from the coordinating thread.
class Tracer {
public:
  static Tracer& instance();

  /// True when spans are being collected — one relaxed load, safe anywhere.
  // order: relaxed — pure gate; a span that races start()/stop() either
  // lands in the old generation's orphaned buffer or is skipped, both fine.
  static bool enabled() { return detail::g_trace_enabled.load(std::memory_order_relaxed); }

  /// Discards previously collected events, restarts the clock at 0 and
  /// enables collection. Call from a quiescent point (no spans in flight).
  void start();
  /// Stops collection; buffered events stay readable until the next start().
  void stop();

  /// Nanoseconds since start() on the steady clock.
  std::int64_t now_ns() const;

  /// Buffers an event on the calling thread's track (no-op when disabled).
  /// `ev.track` is stamped by the tracer; callers never set it.
  void record(TraceEvent ev);
  /// Convenience 'i' (instant) and 'C' (counter sample) emitters.
  void instant(const char* name, std::vector<EventArg> args = {});
  void counter(const char* name, std::int64_t value);

  /// Allocates a fresh named virtual track (e.g. one per portfolio lane);
  /// route spans onto it with TrackScope.
  std::uint32_t new_track(const std::string& name);
  /// Names the calling thread's own track ("pool.worker 3"). Sticky: the
  /// name survives start()/stop() cycles.
  static void set_thread_name(const std::string& name);

  /// Number of events currently published across all buffers (tests).
  std::size_t event_count();
  /// Events dropped by the per-thread overflow cap across all buffers.
  std::size_t dropped_count();

  /// Emits the collected events as a Chrome trace-event JSON document
  /// ({"traceEvents": [...]}) loadable by Perfetto / chrome://tracing.
  void write_json(std::ostream& os);
  bool write_file(const std::string& path);

private:
  friend class TrackScope;
  Tracer();

  class EventBuffer;
  struct ThreadState;
  static ThreadState& thread_state();
  /// Binds the calling thread to the current generation, allocating its
  /// buffer and track id on first contact.
  void ensure_registered(ThreadState& state);

  Mutex mutex_;
  std::vector<std::shared_ptr<EventBuffer>> buffers_ GUARDED_BY(mutex_);
  std::vector<std::string> track_names_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> generation_{1};
  /// steady_clock nanoseconds captured at start(); atomic so spans on
  /// worker threads can read it without synchronising with start().
  std::atomic<std::int64_t> epoch_ns_{0};
};

/// RAII track override: spans emitted by this thread inside the scope land
/// on a fresh named track instead of the thread's own — portfolio lanes use
/// one per lane so a lane's timeline stays contiguous even when lanes share
/// pool workers. No-op when tracing is disabled at construction.
class TrackScope {
public:
  explicit TrackScope(const std::string& name);
  ~TrackScope();
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

private:
  std::uint32_t prev_ = 0;
  bool active_ = false;
};

/// RAII span: captures the clock at construction and buffers one complete
/// ('X') event at scope exit. Constructor args are flat key/value pairs:
/// Span s("learn.solve", "n", n, "calls", calls). Inactive (one relaxed
/// load, nothing else) when tracing is off at construction.
class Span {
public:
  template <typename... KV>
  explicit Span(const char* name, KV&&... kv) {
    if (!Tracer::enabled()) return;
    name_ = name;
    start_ns_ = Tracer::instance().now_ns();
    add_args(std::forward<KV>(kv)...);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return name_ != nullptr; }
  /// Attaches a result arg discovered after construction (no-op if inactive).
  template <typename V>
  void arg(const char* key, V&& value) {
    if (name_ != nullptr) args_.emplace_back(key, std::forward<V>(value));
  }

private:
  void add_args() {}
  template <typename V, typename... Rest>
  void add_args(const char* key, V&& value, Rest&&... rest) {
    args_.emplace_back(key, std::forward<V>(value));
    add_args(std::forward<Rest>(rest)...);
  }

  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::vector<EventArg> args_;
};

/// Compiled-out stand-in for T2M_SPAN_SCOPE handles when T2M_OBS is off.
class NullSpan {
public:
  bool active() const { return false; }  // NOLINT(readability-convert-member-functions-to-static)
  template <typename V>
  void arg(const char*, V&&) {}
};

}  // namespace t2m::obs

#define T2M_OBS_CONCAT_INNER(a, b) a##b
#define T2M_OBS_CONCAT(a, b) T2M_OBS_CONCAT_INNER(a, b)

#if T2M_OBS_ENABLED
/// Anonymous scope span: T2M_SPAN("phase.name", "key", value, ...).
#define T2M_SPAN(...) \
  const ::t2m::obs::Span T2M_OBS_CONCAT(t2m_obs_span_, __LINE__){__VA_ARGS__}
/// Named span handle, for attaching result args before scope exit.
#define T2M_SPAN_SCOPE(var, ...) ::t2m::obs::Span var{__VA_ARGS__}
/// Instant marker on the current track.
#define T2M_INSTANT(name) \
  do { \
    if (::t2m::obs::Tracer::enabled()) ::t2m::obs::Tracer::instance().instant(name); \
  } while (false)
/// Counter-track sample (Perfetto renders these as a value-over-time lane).
#define T2M_TRACE_COUNTER(name, value) \
  do { \
    if (::t2m::obs::Tracer::enabled()) { \
      ::t2m::obs::Tracer::instance().counter(name, static_cast<std::int64_t>(value)); \
    } \
  } while (false)
#else
#define T2M_SPAN(...) static_cast<void>(0)
#define T2M_SPAN_SCOPE(var, ...) ::t2m::obs::NullSpan var
#define T2M_INSTANT(name) static_cast<void>(0)
#define T2M_TRACE_COUNTER(name, value) static_cast<void>(0)
#endif

#endif  // T2M_OBS_TRACE_H
