#include "src/obs/validate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/obs/json.h"

namespace t2m::obs {

namespace {

Status invalid(const std::string& what) { return Status::ParseError("trace: " + what); }

struct Interval {
  double start = 0.0;
  double end = 0.0;
  std::string name;
};

/// Spans on one track must form a laminar family: RAII scopes on a single
/// thread (or lane track) can nest but never half-overlap. Checked in
/// start order with an enclosing-interval stack; `eps` absorbs the
/// microsecond rounding of the emitted timestamps.
Status check_nesting(std::uint32_t track, std::vector<Interval>& intervals) {
  constexpr double eps = 0.01;  // µs; emission rounds to 0.001
  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end > b.end;  // parents before their children at equal starts
  });
  std::vector<Interval> stack;
  for (const Interval& span : intervals) {
    while (!stack.empty() && span.start >= stack.back().end - eps) stack.pop_back();
    if (!stack.empty() && span.end > stack.back().end + eps) {
      return invalid("span '" + span.name + "' on track " + std::to_string(track) +
                     " half-overlaps '" + stack.back().name + "'");
    }
    stack.push_back(span);
  }
  return Status::Ok();
}

const JsonValue* require_member(const JsonValue& object, const char* key,
                                JsonValue::Kind kind, Status& status,
                                const std::string& context) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->kind != kind) {
    status = invalid(context + ": missing or mistyped \"" + key + "\"");
    return nullptr;
  }
  return value;
}

}  // namespace

Status validate_trace_json(const std::string& text, TraceSummary* summary) {
  JsonValue doc;
  Status status = parse_json(text, doc);
  if (!status.ok()) return status;
  if (!doc.is_object()) return invalid("document is not an object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return invalid("missing \"traceEvents\" array");
  }

  TraceSummary local;
  std::map<std::uint32_t, std::vector<Interval>> spans_by_track;
  std::set<std::uint32_t> tids_seen;
  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) return invalid("traceEvents entry is not an object");
    const JsonValue* name = require_member(ev, "name", JsonValue::Kind::String, status, "event");
    if (name == nullptr) return status;
    const JsonValue* ph = require_member(ev, "ph", JsonValue::Kind::String, status,
                                         "event '" + name->string + "'");
    if (ph == nullptr) return status;
    if (ph->string.size() != 1) return invalid("event phase must be one character");
    const JsonValue* tid = require_member(ev, "tid", JsonValue::Kind::Number, status,
                                          "event '" + name->string + "'");
    if (tid == nullptr) return status;
    const JsonValue* pid = require_member(ev, "pid", JsonValue::Kind::Number, status,
                                          "event '" + name->string + "'");
    if (pid == nullptr) return status;
    const auto track = static_cast<std::uint32_t>(tid->number);

    const char phase = ph->string[0];
    if (phase == 'M') {
      if (name->string == "thread_name") {
        const JsonValue* args = require_member(ev, "args", JsonValue::Kind::Object, status,
                                               "thread_name metadata");
        if (args == nullptr) return status;
        const JsonValue* track_name =
            require_member(*args, "name", JsonValue::Kind::String, status,
                           "thread_name metadata args");
        if (track_name == nullptr) return status;
        local.tracks[track] = track_name->string;
      }
      continue;
    }

    const JsonValue* ts = require_member(ev, "ts", JsonValue::Kind::Number, status,
                                         "event '" + name->string + "'");
    if (ts == nullptr) return status;
    if (ts->number < 0 || !std::isfinite(ts->number)) {
      return invalid("event '" + name->string + "' has a negative timestamp");
    }
    ++local.events;
    tids_seen.insert(track);
    switch (phase) {
      case 'X': {
        const JsonValue* dur = require_member(ev, "dur", JsonValue::Kind::Number, status,
                                              "span '" + name->string + "'");
        if (dur == nullptr) return status;
        if (dur->number < 0) return invalid("span '" + name->string + "' has negative dur");
        ++local.spans;
        local.span_names.insert(name->string);
        spans_by_track[track].push_back(
            {ts->number, ts->number + dur->number, name->string});
        break;
      }
      case 'i': ++local.instants; break;
      case 'C': {
        const JsonValue* args = require_member(ev, "args", JsonValue::Kind::Object, status,
                                               "counter '" + name->string + "'");
        if (args == nullptr) return status;
        if (args->object.empty()) {
          return invalid("counter '" + name->string + "' has no series values");
        }
        for (const auto& [key, value] : args->object) {
          if (!value.is_number()) {
            return invalid("counter '" + name->string + "' series '" + key +
                           "' is not numeric");
          }
        }
        ++local.counters;
        break;
      }
      default:
        return invalid("event '" + name->string + "' has unsupported phase '" +
                       std::string(1, phase) + "'");
    }
  }

  for (const std::uint32_t track : tids_seen) {
    if (local.tracks.find(track) == local.tracks.end()) {
      return invalid("track " + std::to_string(track) + " has no thread_name metadata");
    }
  }
  for (auto& [track, intervals] : spans_by_track) {
    status = check_nesting(track, intervals);
    if (!status.ok()) return status;
  }

  if (summary != nullptr) *summary = std::move(local);
  return Status::Ok();
}

Status validate_metrics_json(const std::string& text) {
  JsonValue doc;
  Status status = parse_json(text, doc);
  if (!status.ok()) return status;
  if (!doc.is_object()) return Status::ParseError("metrics: document is not an object");

  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* map = doc.find(section);
    if (map == nullptr || !map->is_object()) {
      return Status::ParseError(std::string("metrics: missing \"") + section +
                                "\" object");
    }
    for (const auto& [name, value] : map->object) {
      if (!value.is_number()) {
        return Status::ParseError("metrics: " + std::string(section) + " \"" + name +
                                  "\" is not numeric");
      }
    }
  }

  const JsonValue* histograms = doc.find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return Status::ParseError("metrics: missing \"histograms\" object");
  }
  for (const auto& [name, hist] : histograms->object) {
    const auto bad = [&name](const std::string& what) {
      return Status::ParseError("metrics: histogram \"" + name + "\" " + what);
    };
    if (!hist.is_object()) return bad("is not an object");
    const JsonValue* count = hist.find("count");
    const JsonValue* sum = hist.find("sum");
    const JsonValue* buckets = hist.find("buckets");
    if (count == nullptr || !count->is_number()) return bad("has no numeric \"count\"");
    if (sum == nullptr || !sum->is_number()) return bad("has no numeric \"sum\"");
    if (buckets == nullptr || !buckets->is_array()) return bad("has no \"buckets\" array");
    double bucket_total = 0.0;
    double prev_floor = -1.0;
    for (const JsonValue& entry : buckets->array) {
      if (!entry.is_array() || entry.array.size() != 2 || !entry.array[0].is_number() ||
          !entry.array[1].is_number()) {
        return bad("has a malformed bucket entry (want [floor, count])");
      }
      const double floor = entry.array[0].number;
      // Valid floors are 0 and exact powers of two, strictly increasing.
      if (floor < 0 || floor <= prev_floor) return bad("has out-of-order bucket floors");
      if (floor > 0 && std::exp2(std::round(std::log2(floor))) != floor) {
        return bad("has a non-power-of-two bucket floor");
      }
      prev_floor = floor;
      bucket_total += entry.array[1].number;
    }
    if (bucket_total != count->number) {
      return bad("bucket counts do not sum to \"count\"");
    }
  }
  return Status::Ok();
}

}  // namespace t2m::obs
