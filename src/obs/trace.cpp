#include "src/obs/trace.h"

#include <array>
#include <fstream>
#include <string_view>

namespace t2m::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// JSON string escape shared by names, thread names and string args.
void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome trace timestamps are microseconds; emit ns ticks as µs with three
/// decimals so no precision is lost through the division.
void write_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) ns = 0;
  os << (ns / 1000) << '.';
  const auto frac = static_cast<int>(ns % 1000);
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

void write_args(std::ostream& os, const std::vector<EventArg>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) os << ", ";
    write_json_string(os, args[i].key);
    os << ": ";
    switch (args[i].kind) {
      case EventArg::Kind::Int: os << args[i].i; break;
      case EventArg::Kind::Float: os << args[i].f; break;
      case EventArg::Kind::Str: write_json_string(os, args[i].s); break;
    }
  }
  os << "}";
}

}  // namespace

/// Per-thread chunked event buffer. The owning thread appends into the
/// current chunk and publishes each slot with a release store of `count`;
/// chunks are linked through a release-stored `next`. A concurrent reader
/// acquire-loads both, so it only ever sees fully constructed events — the
/// append path never takes a lock and never touches another thread's state.
class Tracer::EventBuffer {
public:
  static constexpr std::size_t kChunkEvents = 512;
  /// Runaway-instrumentation backstop: one learn emits thousands of events,
  /// not millions; past the cap events are counted as dropped, not stored.
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  ~EventBuffer() {
    Chunk* c = head_.next.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
  }

  /// Owner thread only.
  void push(TraceEvent ev) {
    if (total_ >= kMaxEvents) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Chunk* c = write_;
    std::size_t n = c->count.load(std::memory_order_relaxed);
    if (n == kChunkEvents) {
      auto* fresh = new Chunk();
      c->next.store(fresh, std::memory_order_release);
      write_ = fresh;
      c = fresh;
      n = 0;
    }
    c->events[n] = std::move(ev);
    c->count.store(n + 1, std::memory_order_release);
    ++total_;
  }

  /// Any thread; sees every event published before the call.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Chunk* c = &head_; c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      const std::size_t n = c->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) fn(c->events[i]);
    }
  }

  std::size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
    std::atomic<std::size_t> count{0};
    std::atomic<Chunk*> next{nullptr};
  };

  Chunk head_;
  Chunk* write_ = &head_;           // owner-only
  std::size_t total_ = 0;           // owner-only
  std::atomic<std::size_t> dropped_{0};
};

struct Tracer::ThreadState {
  std::shared_ptr<EventBuffer> buffer;
  std::uint64_t generation = 0;  ///< tracer generation the buffer belongs to
  std::uint32_t track = 0;       ///< current emission track (TrackScope override)
  std::uint32_t thread_track = 0;
  std::string name;  ///< sticky set_thread_name value, "" = default
};

Tracer::ThreadState& Tracer::thread_state() {
  thread_local ThreadState state;
  return state;
}

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Tracer::Tracer() { epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bumping the generation orphans every thread's old buffer: threads
  // re-register on their next append, so no buffer is ever cleared while
  // its owner might still be writing.
  generation_.fetch_add(1, std::memory_order_release);
  buffers_.clear();
  track_names_.clear();
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::stop() { detail::g_trace_enabled.store(false, std::memory_order_release); }

std::int64_t Tracer::now_ns() const {
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::ensure_registered(ThreadState& state) {
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (state.generation == generation) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  state.buffer = std::make_shared<EventBuffer>();
  buffers_.push_back(state.buffer);
  state.thread_track = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(state.name.empty()
                             ? "thread " + std::to_string(state.thread_track)
                             : state.name);
  state.track = state.thread_track;
  state.generation = generation_.load(std::memory_order_relaxed);
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  ThreadState& state = thread_state();
  ensure_registered(state);
  ev.track = state.track;
  state.buffer->push(std::move(ev));
}

void Tracer::instant(const char* name, std::vector<EventArg> args) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_ns = now_ns();
  ev.args = std::move(args);
  record(std::move(ev));
}

void Tracer::counter(const char* name, std::int64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'C';
  ev.ts_ns = now_ns();
  ev.args.emplace_back("value", value);
  record(std::move(ev));
}

std::uint32_t Tracer::new_track(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(name);
  return id;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadState& state = thread_state();
  state.name = name;
  Tracer& tracer = instance();
  const std::lock_guard<std::mutex> lock(tracer.mutex_);
  // Re-check the generation under the lock: a concurrent start() may have
  // cleared the registry since the caller last registered.
  if (state.generation == tracer.generation_.load(std::memory_order_relaxed) &&
      state.thread_track < tracer.track_names_.size()) {
    tracer.track_names_[state.thread_track] = name;
  }
}

std::size_t Tracer::event_count() {
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& buffer : buffers) buffer->for_each([&n](const TraceEvent&) { ++n; });
  return n;
}

std::size_t Tracer::dropped_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->dropped();
  return n;
}

void Tracer::write_json(std::ostream& os) {
  // Snapshot the registry, then walk the buffers outside the lock: the
  // chunked buffers tolerate concurrent appends, and late events simply
  // miss this flush.
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
    names = track_names_;
  }

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&first, &os] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "t2m"}})";
  for (std::size_t t = 0; t < names.size(); ++t) {
    sep();
    os << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << t << ", \"args\": {\"name\": ";
    write_json_string(os, names[t]);
    os << "}}";
  }

  for (const auto& buffer : buffers) {
    buffer->for_each([&](const TraceEvent& ev) {
      sep();
      os << "{\"name\": ";
      write_json_string(os, ev.name);
      os << ", \"ph\": \"" << ev.phase << "\", \"pid\": 1, \"tid\": " << ev.track
         << ", \"ts\": ";
      write_us(os, ev.ts_ns);
      if (ev.phase == 'X') {
        os << ", \"dur\": ";
        write_us(os, ev.dur_ns);
      }
      if (ev.phase == 'i') os << ", \"s\": \"t\"";
      if (!ev.args.empty() || ev.phase == 'C') {
        os << ", \"args\": ";
        write_args(os, ev.args);
      }
      os << "}";
    });
  }
  os << "\n]}\n";
}

bool Tracer::write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return bool(out);
}

TrackScope::TrackScope(const std::string& name) {
  if (!Tracer::enabled()) return;
  Tracer& tracer = Tracer::instance();
  Tracer::ThreadState& state = Tracer::thread_state();
  tracer.ensure_registered(state);
  prev_ = state.track;
  state.track = tracer.new_track(name);
  active_ = true;
}

TrackScope::~TrackScope() {
  if (active_) Tracer::thread_state().track = prev_;
}

Span::~Span() {
  if (name_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.phase = 'X';
  ev.ts_ns = start_ns_;
  ev.dur_ns = Tracer::instance().now_ns() - start_ns_;
  ev.args = std::move(args_);
  Tracer::instance().record(std::move(ev));
}

}  // namespace t2m::obs
