#include "src/obs/trace.h"

#include <array>
#include <fstream>
#include <string_view>

namespace t2m::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// JSON string escape shared by names, thread names and string args.
void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome trace timestamps are microseconds; emit ns ticks as µs with three
/// decimals so no precision is lost through the division.
void write_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) ns = 0;
  os << (ns / 1000) << '.';
  const auto frac = static_cast<int>(ns % 1000);
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

void write_args(std::ostream& os, const std::vector<EventArg>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) os << ", ";
    write_json_string(os, args[i].key);
    os << ": ";
    switch (args[i].kind) {
      case EventArg::Kind::Int: os << args[i].i; break;
      case EventArg::Kind::Float: os << args[i].f; break;
      case EventArg::Kind::Str: write_json_string(os, args[i].s); break;
    }
  }
  os << "}";
}

}  // namespace

/// Per-thread chunked event buffer. The owning thread appends into the
/// current chunk and publishes each slot with a release store of `count`;
/// chunks are linked through a release-stored `next`. A concurrent reader
/// acquire-loads both, so it only ever sees fully constructed events — the
/// append path never takes a lock and never touches another thread's state.
class Tracer::EventBuffer {
public:
  static constexpr std::size_t kChunkEvents = 512;
  /// Runaway-instrumentation backstop: one learn emits thousands of events,
  /// not millions; past the cap events are counted as dropped, not stored.
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  ~EventBuffer() {
    // order: acquire pairs with push()'s release store of next — the
    // destructor must see fully constructed chunks before deleting them.
    Chunk* c = head_.next.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
  }

  /// Owner thread only.
  void push(TraceEvent ev) {
    if (total_ >= kMaxEvents) {
      // order: relaxed — an isolated statistic read by dropped().
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Chunk* c = write_;
    // order: relaxed — count is only ever written by this (owner) thread;
    // the load needs atomicity against concurrent readers, not ordering.
    std::size_t n = c->count.load(std::memory_order_relaxed);
    if (n == kChunkEvents) {
      auto* fresh = new Chunk();
      // order: release publishes the zero-initialised chunk; pairs with the
      // acquire chain walk in for_each / the destructor.
      c->next.store(fresh, std::memory_order_release);
      write_ = fresh;
      c = fresh;
      n = 0;
    }
    c->events[n] = std::move(ev);
    // order: release publishes events[n] itself — THE publication edge of
    // the lock-free buffer; pairs with for_each's acquire load of count.
    c->count.store(n + 1, std::memory_order_release);
    ++total_;
  }

  /// Any thread; sees every event published before the call.
  // order: acquire on next/count pairs with push()'s release stores, so the
  // reader only ever dereferences fully constructed chunks and events.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Chunk* c = &head_; c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      const std::size_t n = c->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) fn(c->events[i]);
    }
  }

  // order: relaxed — isolated statistic.
  std::size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
    std::atomic<std::size_t> count{0};
    std::atomic<Chunk*> next{nullptr};
  };

  Chunk head_;
  Chunk* write_ = &head_;           // owner-only
  std::size_t total_ = 0;           // owner-only
  std::atomic<std::size_t> dropped_{0};
};

struct Tracer::ThreadState {
  std::shared_ptr<EventBuffer> buffer;
  std::uint64_t generation = 0;  ///< tracer generation the buffer belongs to
  std::uint32_t track = 0;       ///< current emission track (TrackScope override)
  std::uint32_t thread_track = 0;
  std::string name;  ///< sticky set_thread_name value, "" = default
};

Tracer::ThreadState& Tracer::thread_state() {
  thread_local ThreadState state;
  return state;
}

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// order: relaxed — epoch_ns_ is a timestamp scalar; readers tolerate a
// stale epoch during a start() race (spans then carry pre-reset offsets into
// a buffer the same race just orphaned).
Tracer::Tracer() { epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  const MutexLock lock(mutex_);  // no-span
  // Bumping the generation orphans every thread's old buffer: threads
  // re-register on their next append, so no buffer is ever cleared while
  // its owner might still be writing.
  // order: release pairs with ensure_registered's acquire load — a thread
  // that observes the new generation also observes the cleared registry
  // state published by this critical section.
  generation_.fetch_add(1, std::memory_order_release);
  buffers_.clear();
  track_names_.clear();
  // order: relaxed — see the constructor's epoch_ns_ rationale.
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  // order: release so the generation bump and registry reset above are
  // visible before any site observes tracing as enabled.
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

// order: release so events pushed before stop() are published ahead of any
// reader that keys off the disabled flag.
void Tracer::stop() { detail::g_trace_enabled.store(false, std::memory_order_release); }

std::int64_t Tracer::now_ns() const {
  // order: relaxed — see the constructor's epoch_ns_ rationale.
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::ensure_registered(ThreadState& state) {
  // order: acquire pairs with start()'s release fetch_add (see there).
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (state.generation == generation) return;
  const MutexLock lock(mutex_);  // no-span
  state.buffer = std::make_shared<EventBuffer>();
  buffers_.push_back(state.buffer);
  state.thread_track = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(state.name.empty()
                             ? "thread " + std::to_string(state.thread_track)
                             : state.name);
  state.track = state.thread_track;
  // order: relaxed — re-read under the registry mutex: whichever generation
  // this critical section belongs to is the one the buffer was filed under.
  state.generation = generation_.load(std::memory_order_relaxed);
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  ThreadState& state = thread_state();
  ensure_registered(state);
  ev.track = state.track;
  state.buffer->push(std::move(ev));
}

void Tracer::instant(const char* name, std::vector<EventArg> args) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_ns = now_ns();
  ev.args = std::move(args);
  record(std::move(ev));
}

void Tracer::counter(const char* name, std::int64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'C';
  ev.ts_ns = now_ns();
  ev.args.emplace_back("value", value);
  record(std::move(ev));
}

std::uint32_t Tracer::new_track(const std::string& name) {
  const MutexLock lock(mutex_);  // no-span
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(name);
  return id;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadState& state = thread_state();
  state.name = name;
  Tracer& tracer = instance();
  const MutexLock lock(tracer.mutex_);  // no-span
  // Re-check the generation under the lock: a concurrent start() may have
  // cleared the registry since the caller last registered.
  // order: relaxed — the registry mutex already orders this read against
  // start()'s critical section.
  if (state.generation == tracer.generation_.load(std::memory_order_relaxed) &&
      state.thread_track < tracer.track_names_.size()) {
    tracer.track_names_[state.thread_track] = name;
  }
}

std::size_t Tracer::event_count() {
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  {
    const MutexLock lock(mutex_);  // no-span
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& buffer : buffers) buffer->for_each([&n](const TraceEvent&) { ++n; });
  return n;
}

std::size_t Tracer::dropped_count() {
  const MutexLock lock(mutex_);  // no-span
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->dropped();
  return n;
}

void Tracer::write_json(std::ostream& os) {
  // Snapshot the registry, then walk the buffers outside the lock: the
  // chunked buffers tolerate concurrent appends, and late events simply
  // miss this flush.
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  std::vector<std::string> names;
  {
    const MutexLock lock(mutex_);  // no-span
    buffers = buffers_;
    names = track_names_;
  }

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&first, &os] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "t2m"}})";
  for (std::size_t t = 0; t < names.size(); ++t) {
    sep();
    os << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << t << ", \"args\": {\"name\": ";
    write_json_string(os, names[t]);
    os << "}}";
  }

  for (const auto& buffer : buffers) {
    buffer->for_each([&](const TraceEvent& ev) {
      sep();
      os << "{\"name\": ";
      write_json_string(os, ev.name);
      os << ", \"ph\": \"" << ev.phase << "\", \"pid\": 1, \"tid\": " << ev.track
         << ", \"ts\": ";
      write_us(os, ev.ts_ns);
      if (ev.phase == 'X') {
        os << ", \"dur\": ";
        write_us(os, ev.dur_ns);
      }
      if (ev.phase == 'i') os << ", \"s\": \"t\"";
      if (!ev.args.empty() || ev.phase == 'C') {
        os << ", \"args\": ";
        write_args(os, ev.args);
      }
      os << "}";
    });
  }
  os << "\n]}\n";
}

bool Tracer::write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return bool(out);
}

TrackScope::TrackScope(const std::string& name) {
  if (!Tracer::enabled()) return;
  Tracer& tracer = Tracer::instance();
  Tracer::ThreadState& state = Tracer::thread_state();
  tracer.ensure_registered(state);
  prev_ = state.track;
  state.track = tracer.new_track(name);
  active_ = true;
}

TrackScope::~TrackScope() {
  if (active_) Tracer::thread_state().track = prev_;
}

Span::~Span() {
  if (name_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.phase = 'X';
  ev.ts_ns = start_ns_;
  ev.dur_ns = Tracer::instance().now_ns() - start_ns_;
  ev.args = std::move(args_);
  Tracer::instance().record(std::move(ev));
}

}  // namespace t2m::obs
