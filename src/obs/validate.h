#ifndef T2M_OBS_VALIDATE_H
#define T2M_OBS_VALIDATE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/base/status.h"

namespace t2m::obs {

/// What a validated trace contained — trace_check prints it and asserts
/// required tracks/spans against it.
struct TraceSummary {
  std::size_t events = 0;   ///< all non-metadata events
  std::size_t spans = 0;    ///< 'X' complete events
  std::size_t instants = 0;
  std::size_t counters = 0;
  std::map<std::uint32_t, std::string> tracks;  ///< tid -> thread_name
  std::set<std::string> span_names;
};

/// Structural check of a Tracer-emitted Chrome trace-event document:
/// well-formed JSON, a traceEvents array whose entries carry the fields
/// Perfetto requires for their phase, every event tid covered by a
/// thread_name metadata record, and per-track span intervals that nest
/// properly (a span never half-overlaps another on its track — RAII scopes
/// guarantee laminar nesting, so a violation means buffer corruption).
Status validate_trace_json(const std::string& text, TraceSummary* summary = nullptr);

/// Structural check of a MetricsRegistry JSON snapshot: counters/gauges/
/// histograms maps with numeric leaves, and for every histogram the bucket
/// counts summing to "count" with valid power-of-two bucket floors.
Status validate_metrics_json(const std::string& text);

}  // namespace t2m::obs

#endif  // T2M_OBS_VALIDATE_H
