#ifndef T2M_OBS_METRICS_H
#define T2M_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "src/util/sync.h"

namespace t2m::obs {

namespace detail {
/// Runtime switch for the convenience emitters below; the registry itself
/// always works so handles stay usable in tests.
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

inline bool metrics_enabled() {
  // order: relaxed — instrumentation gate only; emitters publish nothing
  // through it (instruments are found via the mutex-protected registry).
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonically increasing event count (lock-free).
class Counter {
public:
  // order: relaxed — an isolated statistic (see the class comment above).
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar with a monotone-max variant (lock-free).
class Gauge {
public:
  // order: relaxed — an isolated statistic; the CAS loop only needs
  // atomicity of the max update, not ordering against other memory.
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if larger (for peaks).
  // order: relaxed — see set(); the CAS loop needs atomicity only.
  void record_max(std::int64_t value) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (value > cur &&
           !value_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  // order: relaxed — see set().
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram over non-negative integers with fixed log-scale (power-of-two)
/// buckets: bucket 0 holds the value 0 and bucket b >= 1 holds values in
/// [2^(b-1), 2^b - 1] — i.e. bucket_of(v) is bit_width(v). 65 buckets cover
/// the full uint64 range with no configuration and no allocation, which is
/// what lets observe() stay a pair of relaxed atomic adds.
class Histogram {
public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_of(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Smallest value landing in bucket `b` (inclusive lower edge).
  static std::uint64_t bucket_floor(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  // order: relaxed — bucket/count/sum are allowed to tear relative to each
  // other; a snapshot mid-observe is off by one transient event at worst.
  void observe(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  // order: relaxed — see observe(): readers accept instrument-level tearing.
  // order: relaxed — readers accept instrument-level tearing (see observe).
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_.at(b).load(std::memory_order_relaxed);
  }
  // order: relaxed — reset is only meaningful on a quiescent registry.
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide named-instrument registry serializing to JSON. Lookup takes
/// a mutex; the returned references are stable for the registry's lifetime
/// (instruments are never deleted, reset() only zeroes them), so hot sites
/// can cache a reference and touch only its relaxed atomics afterwards.
class MetricsRegistry {
public:
  static MetricsRegistry& global();

  // order: release so instruments reset before an enable() are not observed
  // reordered after it by a freshly-enabled emitter's registry lookup.
  void enable() { detail::g_metrics_enabled.store(true, std::memory_order_release); }
  void disable() { detail::g_metrics_enabled.store(false, std::memory_order_release); }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of every counter (tests and the tracing-on/off identity check).
  std::map<std::string, std::uint64_t> counter_values();

  /// Zeroes every registered instrument; handles stay valid.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count": N,
  /// "sum": S, "buckets": [[floor, count], ...]}}} — buckets list only the
  /// non-empty entries, keyed by their inclusive lower edge.
  void write_json(std::ostream& os);
  bool write_file(const std::string& path);

private:
  MetricsRegistry() = default;

  Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mutex_);
};

/// Instrumentation-site emitters: one relaxed load and nothing else when
/// metrics are disabled. Sites that fire at phase (not per-event) frequency
/// use these directly; per-event accumulation stays in LearnStats /
/// SolverStats and is published once per run (report.h's
/// publish_learn_metrics), which is what keeps the disabled mode free.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (metrics_enabled()) MetricsRegistry::global().counter(name).add(delta);
}
inline void gauge_set(const char* name, std::int64_t value) {
  if (metrics_enabled()) MetricsRegistry::global().gauge(name).set(value);
}
inline void gauge_max(const char* name, std::int64_t value) {
  if (metrics_enabled()) MetricsRegistry::global().gauge(name).record_max(value);
}
inline void observe(const char* name, std::uint64_t value) {
  if (metrics_enabled()) MetricsRegistry::global().histogram(name).observe(value);
}

}  // namespace t2m::obs

#endif  // T2M_OBS_METRICS_H
