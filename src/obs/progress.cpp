#include "src/obs/progress.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/base/memory_accountant.h"
#include "src/obs/trace.h"
#include "src/util/log.h"
#include "src/util/string_utils.h"

namespace t2m::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "3456" → "3.5k", "12582912" → "12.0M": progress lines favour glance
/// value over digit-exact counts (the exact numbers land in LearnStats).
std::string compact_count(std::uint64_t n) {
  if (n < 10000) return std::to_string(n);
  const double d = static_cast<double>(n);
  if (n < 10000000) return format_double(d / 1e3, 1) + "k";
  return format_double(d / 1e6, 1) + "M";
}

}  // namespace

std::string format_progress_line(const ProgressSnapshot& snapshot) {
  std::ostringstream os;
  os << "progress: t=" << format_double(snapshot.uptime_seconds, 1) << "s N="
     << snapshot.states << " sat_calls=" << snapshot.sat_calls
     << " conflicts=" << compact_count(snapshot.conflicts)
     << " refinements=" << snapshot.refinements << " mem="
     << format_double(static_cast<double>(snapshot.memory_used_bytes) / (1 << 20), 1)
     << "MiB";
  if (std::isfinite(snapshot.deadline_remaining_seconds)) {
    os << " deadline=" << format_double(snapshot.deadline_remaining_seconds, 1) << "s";
  }
  return os.str();
}

Progress& Progress::global() {
  static Progress progress;
  return progress;
}

void Progress::begin_run(const Deadline& deadline) {
  // order: relaxed — independent counters; see the header.
  states_.store(0, std::memory_order_relaxed);
  sat_calls_.store(0, std::memory_order_relaxed);
  conflicts_.store(0, std::memory_order_relaxed);
  refinements_.store(0, std::memory_order_relaxed);
  const std::int64_t now = steady_now_ns();
  const double remaining = deadline.remaining_seconds();
  // Deadline first, then start with release: the concurrency audit found the
  // old relaxed start-then-deadline order let a heartbeat pair a fresh start
  // with the previous run's deadline and print a wildly negative remaining.
  // order: relaxed — publication rides on the release store of start_ns_.
  deadline_ns_.store(std::isfinite(remaining)
                         ? now + static_cast<std::int64_t>(remaining * 1e9)
                         : -1,
                     std::memory_order_relaxed);
  // order: release pairs with snapshot()'s acquire load of start_ns_,
  // publishing the deadline stored above as one consistent pair.
  start_ns_.store(now, std::memory_order_release);
}

ProgressSnapshot Progress::snapshot() const {
  ProgressSnapshot s;
  const std::int64_t now = steady_now_ns();
  // order: acquire pairs with begin_run()'s release store: observing the new
  // start guarantees the matching deadline is visible below.
  s.uptime_seconds =
      static_cast<double>(now - start_ns_.load(std::memory_order_acquire)) / 1e9;
  // order: relaxed — independent counters; see the header.
  s.states = states_.load(std::memory_order_relaxed);
  s.sat_calls = sat_calls_.load(std::memory_order_relaxed);
  s.conflicts = conflicts_.load(std::memory_order_relaxed);
  s.refinements = refinements_.load(std::memory_order_relaxed);
  s.memory_used_bytes = MemoryAccountant::global().used();
  // order: relaxed — ordered by the acquire load of start_ns_ above.
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  s.deadline_remaining_seconds = deadline < 0
                                     ? std::numeric_limits<double>::infinity()
                                     : static_cast<double>(deadline - now) / 1e9;
  return s;
}

Heartbeat::Heartbeat(double interval_seconds, Callback callback) {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(interval_seconds > 0 ? interval_seconds : 1.0));
  worker_ = Thread([this, interval, callback = std::move(callback)] {
    Tracer::set_thread_name("obs.heartbeat");
    // Absolute-deadline loop (CondVar has no predicate overloads — the
    // analysis cannot see through a predicate lambda): stop_ is only read
    // and written under mutex_, and every emission happens with the lock
    // shed so the callback / logger / tracer take their own locks freely.
    auto next = std::chrono::steady_clock::now() + interval;
    MutexLock lock(mutex_);
    while (!stop_) {
      if (cv_.wait_until(mutex_, next) != std::cv_status::timeout) {
        continue;  // notified (stop) or spurious: re-check stop_
      }
      lock.unlock();
      const ProgressSnapshot snapshot = Progress::global().snapshot();
      log_info() << format_progress_line(snapshot);
      // A conflicts-over-time counter track makes a stalled solve visible
      // at a glance in the Perfetto view of the same run.
      T2M_TRACE_COUNTER("progress.conflicts", snapshot.conflicts);
      T2M_TRACE_COUNTER("progress.memory_bytes", snapshot.memory_used_bytes);
      if (callback) callback(snapshot);
      next += interval;
      lock.lock();
    }
  });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

}  // namespace t2m::obs
