#include "src/obs/metrics.h"

#include <fstream>

namespace t2m::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

/// Metric names are identifier-ish by convention ("learn.sat_calls"); the
/// escape still guards the two JSON-breaking characters for robustness.
void write_name(std::ostream& os, const std::string& name) {
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);  // no-span
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);  // no-span
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const MutexLock lock(mutex_);  // no-span
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() {
  const MutexLock lock(mutex_);  // no-span
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);  // no-span
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

void MetricsRegistry::write_json(std::ostream& os) {
  const MutexLock lock(mutex_);  // no-span
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(os, name);
    os << ": " << counter->value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(os, name);
    os << ": " << gauge->value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(os, name);
    os << ": {\"count\": " << histogram->count() << ", \"sum\": " << histogram->sum()
       << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = histogram->bucket(b);
      if (n == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      os << "[" << Histogram::bucket_floor(b) << ", " << n << "]";
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

bool MetricsRegistry::write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return bool(out);
}

}  // namespace t2m::obs
