#include "src/statemerge/pta.h"

#include <stdexcept>

namespace t2m {

SymbolSequence symbols_of_trace(const Trace& trace) {
  SymbolSequence out;
  std::map<std::string, std::size_t> interned;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const std::string name = trace.format_obs(t);
    const auto [it, inserted] = interned.emplace(name, out.alphabet.size());
    if (inserted) out.alphabet.push_back(name);
    out.seq.push_back(it->second);
  }
  return out;
}

SymbolSequence symbols_of_preds(const PredicateSequence& preds, const Schema& schema) {
  SymbolSequence out;
  out.alphabet = preds.names_for(schema);
  out.seq = preds.seq;
  return out;
}

Pta::Pta(const std::vector<std::vector<std::size_t>>& sequences, std::size_t alphabet_size)
    : alphabet_size_(alphabet_size) {
  children_.emplace_back();  // root
  for (const auto& sequence : sequences) {
    std::size_t state = 0;
    for (const std::size_t symbol : sequence) {
      if (symbol >= alphabet_size_) {
        throw std::invalid_argument("Pta: symbol out of alphabet range");
      }
      const auto it = children_[state].find(symbol);
      if (it != children_[state].end()) {
        state = it->second;
      } else {
        const std::size_t fresh = children_.size();
        children_[state].emplace(symbol, fresh);
        children_.emplace_back();
        state = fresh;
      }
    }
  }
}

std::optional<std::size_t> Pta::child(std::size_t state, std::size_t symbol) const {
  const auto& kids = children_.at(state);
  const auto it = kids.find(symbol);
  if (it == kids.end()) return std::nullopt;
  return it->second;
}

Nfa Pta::to_nfa() const {
  Nfa out(std::max<std::size_t>(1, children_.size()), 0);
  for (std::size_t s = 0; s < children_.size(); ++s) {
    for (const auto& [symbol, dst] : children_[s]) {
      out.add_transition(s, symbol, dst);
    }
  }
  return out;
}

}  // namespace t2m
