#include "src/statemerge/edsm.h"

#include <algorithm>
#include <map>
#include <set>

namespace t2m {

namespace {

/// Mutable merge hypothesis: the PTA folded under a union-find, with a
/// deterministic transition map per representative and an undo journal so
/// candidate merges can be scored and rolled back cheaply.
class Hypothesis {
public:
  explicit Hypothesis(const Pta& pta) : rep_(pta.num_states()), delta_(pta.num_states()) {
    for (std::size_t s = 0; s < pta.num_states(); ++s) {
      rep_[s] = s;
      for (const auto& [symbol, child] : pta.children(s)) delta_[s].emplace(symbol, child);
    }
  }

  std::size_t find(std::size_t s) const {
    while (rep_[s] != s) s = rep_[s];
    return s;
  }

  struct Journal {
    std::vector<std::pair<std::size_t, std::size_t>> rep_changes;  // (state, old rep)
    // (state, symbol, had_entry, old child)
    std::vector<std::tuple<std::size_t, std::size_t, bool, std::size_t>> delta_changes;
  };

  /// Folds `source` into `target`, determinising recursively; returns the
  /// evidence score (number of overlapping transitions folded).
  std::int64_t merge(std::size_t target, std::size_t source, Journal& journal) {
    std::int64_t score = 0;
    std::vector<std::pair<std::size_t, std::size_t>> stack = {{target, source}};
    while (!stack.empty()) {
      auto [a, b] = stack.back();
      stack.pop_back();
      a = find(a);
      b = find(b);
      if (a == b) continue;
      journal.rep_changes.emplace_back(b, rep_[b]);
      rep_[b] = a;
      for (const auto& [symbol, cb] : delta_[b]) {
        const auto it = delta_[a].find(symbol);
        if (it != delta_[a].end()) {
          ++score;
          stack.emplace_back(it->second, cb);
        } else {
          journal.delta_changes.emplace_back(a, symbol, false, 0);
          delta_[a].emplace(symbol, cb);
        }
      }
    }
    return score;
  }

  void rollback(const Journal& journal) {
    for (auto it = journal.delta_changes.rbegin(); it != journal.delta_changes.rend(); ++it) {
      const auto& [state, symbol, had, old_child] = *it;
      if (had) {
        delta_[state][symbol] = old_child;
      } else {
        delta_[state].erase(symbol);
      }
    }
    for (auto it = journal.rep_changes.rbegin(); it != journal.rep_changes.rend(); ++it) {
      rep_[it->first] = it->second;
    }
  }

  const std::map<std::size_t, std::size_t>& children(std::size_t rep_state) const {
    return delta_[rep_state];
  }

  /// Quotient automaton over representatives reachable from the root.
  Nfa quotient() const {
    std::map<std::size_t, std::size_t> renumber;
    std::vector<std::size_t> queue = {find(0)};
    renumber[queue[0]] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const auto& [symbol, child] : delta_[queue[head]]) {
        const std::size_t c = find(child);
        if (renumber.emplace(c, renumber.size()).second) queue.push_back(c);
      }
    }
    Nfa out(renumber.size(), 0);
    for (const auto& [state, id] : renumber) {
      for (const auto& [symbol, child] : delta_[state]) {
        out.add_transition(id, symbol, renumber.at(find(child)));
      }
    }
    return out;
  }

private:
  std::vector<std::size_t> rep_;
  std::vector<std::map<std::size_t, std::size_t>> delta_;
};

}  // namespace

EdsmResult edsm_blue_fringe(const std::vector<std::vector<std::size_t>>& sequences,
                            std::size_t alphabet_size, const EdsmConfig& config) {
  const Stopwatch watch;
  const Deadline deadline = config.timeout_seconds > 0
                                ? Deadline::after_seconds(config.timeout_seconds)
                                : Deadline::never();
  const Pta pta(sequences, alphabet_size);
  Hypothesis hyp(pta);
  EdsmResult result;

  std::set<std::size_t> red = {hyp.find(0)};
  const auto compute_blue = [&]() {
    std::set<std::size_t> blue;
    for (const std::size_t r : red) {
      for (const auto& [symbol, child] : hyp.children(r)) {
        const std::size_t c = hyp.find(child);
        if (red.count(c) == 0) blue.insert(c);
      }
    }
    return blue;
  };

  std::set<std::size_t> blue = compute_blue();
  while (!blue.empty()) {
    if (deadline.expired()) {
      result.timed_out = true;
      break;
    }
    // Score every (red, blue) pair; promote any blue that merges nowhere.
    bool promoted = false;
    std::int64_t best_score = -1;
    std::size_t best_red = 0, best_blue = 0;
    for (const std::size_t b : blue) {
      std::int64_t b_best = -1;
      for (const std::size_t r : red) {
        Hypothesis::Journal journal;
        const std::int64_t score = hyp.merge(r, b, journal);
        hyp.rollback(journal);
        b_best = std::max(b_best, score);
        if (score > best_score) {
          best_score = score;
          best_red = r;
          best_blue = b;
        }
        if (deadline.expired()) break;
      }
      if (b_best < config.merge_threshold) {
        red.insert(b);
        ++result.promotions;
        promoted = true;
        break;
      }
      if (deadline.expired()) break;
    }
    if (deadline.expired() && !promoted && best_score < config.merge_threshold) {
      result.timed_out = true;
      break;
    }
    if (promoted) {
      blue = compute_blue();
      continue;
    }
    Hypothesis::Journal journal;
    hyp.merge(best_red, best_blue, journal);
    ++result.merges;
    // Red representatives may have been folded; refresh the red set.
    std::set<std::size_t> new_red;
    for (const std::size_t r : red) new_red.insert(hyp.find(r));
    red = std::move(new_red);
    blue = compute_blue();
  }

  result.model = hyp.quotient();
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace t2m
