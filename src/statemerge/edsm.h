#ifndef T2M_STATEMERGE_EDSM_H
#define T2M_STATEMERGE_EDSM_H

#include <cstdint>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/statemerge/pta.h"
#include "src/util/stopwatch.h"

namespace t2m {

/// Blue-fringe Evidence-Driven State Merging (Lang/Pearlmutter/Price 1998),
/// the inference engine behind MINT. Working on positive data only, evidence
/// is the number of state pairs folded together by a merge; merges below
/// `merge_threshold` promote the blue state instead, limiting
/// over-generalisation in the absence of negative samples.
struct EdsmConfig {
  /// Minimum fold evidence for a merge; below it the blue state is promoted.
  /// 3 calibrates our implementation against MINT's published state counts
  /// on the paper's benchmarks (see EXPERIMENTS.md).
  std::int64_t merge_threshold = 3;
  /// Wall-clock budget; expired searches return partial results flagged
  /// timed_out (MINT shows the same behaviour on the paper's two long
  /// traces: no model within the time budget).
  double timeout_seconds = 0.0;
};

struct EdsmResult {
  bool timed_out = false;
  Nfa model;
  std::size_t merges = 0;
  std::size_t promotions = 0;
  double seconds = 0.0;
};

EdsmResult edsm_blue_fringe(const std::vector<std::vector<std::size_t>>& sequences,
                            std::size_t alphabet_size, const EdsmConfig& config = {});

}  // namespace t2m

#endif  // T2M_STATEMERGE_EDSM_H
