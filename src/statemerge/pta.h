#ifndef T2M_STATEMERGE_PTA_H
#define T2M_STATEMERGE_PTA_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/abstraction/predicate.h"
#include "src/automaton/nfa.h"
#include "src/trace/trace.h"

namespace t2m {

/// A symbol sequence over a named alphabet: the input representation of the
/// state-merge baseline. Unlike our learner, state merging consumes the
/// events EXPLICIT in the trace, so each distinct observation becomes its
/// own symbol (this is why the counter baseline explodes to hundreds of
/// states: every counter value is a separate event).
struct SymbolSequence {
  std::vector<std::string> alphabet;
  std::vector<std::size_t> seq;
};

/// One symbol per distinct observation, named by its rendered valuation.
SymbolSequence symbols_of_trace(const Trace& trace);

/// Symbols from an abstracted predicate sequence (for like-for-like
/// comparisons on the same alphabet as our learner).
SymbolSequence symbols_of_preds(const PredicateSequence& preds, const Schema& schema);

/// Prefix Tree Acceptor over a symbol alphabet. A single long trace yields a
/// chain; multiple samples share prefixes. State 0 is the root.
class Pta {
public:
  Pta(const std::vector<std::vector<std::size_t>>& sequences, std::size_t alphabet_size);

  std::size_t num_states() const { return children_.size(); }
  std::size_t alphabet_size() const { return alphabet_size_; }

  std::optional<std::size_t> child(std::size_t state, std::size_t symbol) const;
  const std::map<std::size_t, std::size_t>& children(std::size_t state) const {
    return children_.at(state);
  }

  /// The PTA as an automaton (symbols as predicate ids).
  Nfa to_nfa() const;

private:
  std::size_t alphabet_size_;
  std::vector<std::map<std::size_t, std::size_t>> children_;  // state -> sym -> state
};

}  // namespace t2m

#endif  // T2M_STATEMERGE_PTA_H
