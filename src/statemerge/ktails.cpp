#include "src/statemerge/ktails.h"

#include <map>
#include <set>
#include <string>

namespace t2m {

namespace {

/// Collects the k-tail of `state`: all symbol strings of length <= k
/// following it, shorter strings marked terminal so a leaf differs from an
/// inner state sharing the same prefixes.
void collect_tails(const Pta& pta, std::size_t state, std::size_t k,
                   std::vector<std::size_t>& prefix, std::set<std::vector<std::size_t>>& out) {
  if (k == 0) {
    // Horizon reached: termination beyond k is unobservable, no marker.
    out.insert(prefix);
    return;
  }
  if (pta.children(state).empty()) {
    // Leaf within the horizon: mark termination (alphabet_size() is never a
    // real symbol) so leaves differ from inner states sharing the prefixes.
    std::vector<std::size_t> tail = prefix;
    tail.push_back(pta.alphabet_size());
    out.insert(std::move(tail));
    return;
  }
  for (const auto& [symbol, child] : pta.children(state)) {
    prefix.push_back(symbol);
    collect_tails(pta, child, k - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

Nfa ktails(const Pta& pta, std::size_t k) {
  // Partition states by k-tail.
  std::map<std::set<std::vector<std::size_t>>, std::size_t> classes;
  std::vector<std::size_t> class_of(pta.num_states());
  for (std::size_t s = 0; s < pta.num_states(); ++s) {
    std::set<std::vector<std::size_t>> tails;
    std::vector<std::size_t> prefix;
    collect_tails(pta, s, k, prefix, tails);
    const auto [it, inserted] = classes.emplace(std::move(tails), classes.size());
    class_of[s] = it->second;
  }

  Nfa out(classes.size(), class_of[0]);
  for (std::size_t s = 0; s < pta.num_states(); ++s) {
    for (const auto& [symbol, child] : pta.children(s)) {
      out.add_transition(class_of[s], symbol, class_of[child]);
    }
  }
  return out;
}

Nfa ktails(const std::vector<std::vector<std::size_t>>& sequences,
           std::size_t alphabet_size, std::size_t k) {
  const Pta pta(sequences, alphabet_size);
  return ktails(pta, k);
}

}  // namespace t2m
