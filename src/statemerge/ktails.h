#ifndef T2M_STATEMERGE_KTAILS_H
#define T2M_STATEMERGE_KTAILS_H

#include <vector>

#include "src/automaton/nfa.h"
#include "src/statemerge/pta.h"

namespace t2m {

/// Classic kTails state merging (Biermann & Feldman 1972): build the PTA,
/// compute every state's k-tail (the set of symbol strings of length <= k
/// leaving it, with explicit termination markers), and merge states whose
/// k-tails coincide. The quotient automaton may be nondeterministic. The
/// parameter k controls generalisation: small k merges aggressively.
Nfa ktails(const std::vector<std::vector<std::size_t>>& sequences,
           std::size_t alphabet_size, std::size_t k);

/// Convenience overload over an existing PTA.
Nfa ktails(const Pta& pta, std::size_t k);

}  // namespace t2m

#endif  // T2M_STATEMERGE_KTAILS_H
