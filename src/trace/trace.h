#ifndef T2M_TRACE_TRACE_H
#define T2M_TRACE_TRACE_H

#include <cstddef>
#include <string>
#include <vector>

#include "src/base/schema.h"
#include "src/base/value.h"

namespace t2m {

/// An execution trace: a schema plus a sequence of observations (valuations
/// of the schema's variables over time), sigma = v1, v2, ..., vn.
class Trace {
public:
  Trace() = default;
  explicit Trace(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Appends an observation; must have one value per schema variable.
  void append(Valuation observation);

  std::size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }
  /// Number of steps (adjacent observation pairs): size()-1, or 0.
  std::size_t num_steps() const { return observations_.empty() ? 0 : observations_.size() - 1; }

  const Valuation& obs(std::size_t i) const { return observations_.at(i); }
  const std::vector<Valuation>& observations() const { return observations_; }

  /// Source / destination observation of step `i` (0-based, i < num_steps()).
  const Valuation& step_cur(std::size_t i) const { return observations_.at(i); }
  const Valuation& step_next(std::size_t i) const { return observations_.at(i + 1); }

  /// Keeps only the first `n` observations (used by the scalability sweep).
  Trace prefix(std::size_t n) const;

  /// One-line textual rendering of observation `i` ("x=3 ev=READ").
  std::string format_obs(std::size_t i) const;

private:
  Schema schema_;
  std::vector<Valuation> observations_;
};

}  // namespace t2m

#endif  // T2M_TRACE_TRACE_H
