#include "src/trace/mmap_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define T2M_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace t2m {

LineReader::LineReader(const std::string& path) {
#ifdef T2M_HAVE_MMAP
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ >= 0) {
    struct stat st {};
    if (::fstat(fd_, &st) == 0 && S_ISREG(st.st_mode)) {
      size_ = static_cast<std::size_t>(st.st_size);
      if (size_ == 0) {
        // Empty regular file: a zero-length mmap is invalid, but there is
        // nothing to read; stay in "mapped" mode with an exhausted cursor.
        data_ = "";
        return;
      }
      void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
      if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        ::madvise(map, size_, MADV_SEQUENTIAL);
#endif
        data_ = static_cast<const char*>(map);
        return;
      }
    }
    ::close(fd_);
    fd_ = -1;
  }
#endif
  open_fallback(path);
}

LineReader::LineReader(std::istream& is) : stream_(&is) {}

LineReader::~LineReader() {
#ifdef T2M_HAVE_MMAP
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

void LineReader::open_fallback(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) {
    throw std::runtime_error("LineReader: cannot open " + path);
  }
  owned_stream_ = std::move(file);
  stream_ = owned_stream_.get();
}

void LineReader::release_consumed() {
#ifdef T2M_HAVE_MMAP
  // Hand fully-consumed pages back to the kernel in multi-megabyte strides,
  // so resident memory tracks the cursor instead of the file size. Pages
  // stay in the page cache; MADV_DONTNEED only drops this mapping's
  // references. Lines already handed out from the released region are dead
  // by contract in fallback mode anyway (valid until the next next()), so
  // sequential consumers are unaffected; re-reading released bytes would
  // merely refault them in.
  constexpr std::size_t kStride = 8u << 20;
  if (pos_ - released_ < kStride) return;
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_size = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t end = (pos_ / page_size) * page_size;  // keep the live page
  if (end > released_) {
    ::madvise(const_cast<char*>(data_) + released_, end - released_, MADV_DONTNEED);
    released_ = end;
  }
#endif
}

bool LineReader::next(std::string_view& line) {
  if (data_ != nullptr) {
    if (pos_ >= size_) return false;
    const char* begin = data_ + pos_;
    const std::size_t remaining = size_ - pos_;
    const char* nl = static_cast<const char*>(std::memchr(begin, '\n', remaining));
    std::size_t len = nl != nullptr ? static_cast<std::size_t>(nl - begin) : remaining;
    pos_ += len + (nl != nullptr ? 1 : 0);
    bytes_read_ = pos_;
    release_consumed();
    if (len > 0 && begin[len - 1] == '\r') --len;
    line = std::string_view(begin, len);
    return true;
  }
  if (stream_ == nullptr || !std::getline(*stream_, line_buf_)) return false;
  // Count the newline only when one was consumed (a final unterminated line
  // sets eofbit), keeping bytes_read() consistent with the mmap mode.
  bytes_read_ += line_buf_.size() + (stream_->eof() ? 0 : 1);
  if (!line_buf_.empty() && line_buf_.back() == '\r') line_buf_.pop_back();
  line = line_buf_;
  return true;
}

}  // namespace t2m
