#include "src/trace/mmap_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>

#include "src/base/status.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define T2M_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace t2m {

namespace {

/// Result of the shared open+map sequence both readers use.
struct ReadonlyMapping {
  const char* data = nullptr;  ///< non-null on success ("" for an empty file)
  std::size_t size = 0;
  int fd = -1;
  bool owns_map = false;   ///< true when `data` must be munmap'd
  int open_errno = 0;      ///< errno from a failed open(); 0 when open worked
};

#ifdef T2M_HAVE_MMAP
/// open(2) with EINTR retry. The "mmap.open" failpoint forces a hard EIO
/// failure; "mmap.open_eintr" injects transient EINTRs the loop must absorb.
int open_readonly_retry(const std::string& path) {
  if (T2M_FAILPOINT("mmap.open")) {
    errno = EIO;
    return -1;
  }
  int fd;
  for (;;) {
    if (T2M_FAILPOINT("mmap.open_eintr")) {
      errno = EINTR;
      fd = -1;
    } else {
      fd = ::open(path.c_str(), O_RDONLY);
    }
    if (fd >= 0 || errno != EINTR) return fd;
  }
}
#endif

/// Opens `path` and maps it read-only with sequential-access advice.
/// On open failure, data == nullptr and open_errno holds the saved errno.
/// When the file opened but is not a mappable regular file (pipe, device,
/// mmap refusal), data == nullptr with open_errno == 0 — callers then take
/// their own read fallback. An empty regular file succeeds with data == ""
/// and no mapping (a zero-length mmap is invalid, but there is nothing to
/// read).
ReadonlyMapping map_readonly(const std::string& path) {
  ReadonlyMapping m;
#ifdef T2M_HAVE_MMAP
  m.fd = open_readonly_retry(path);
  if (m.fd < 0) {
    m.open_errno = errno != 0 ? errno : EIO;
    m.fd = -1;
    return m;
  }
  struct stat st {};
  if (::fstat(m.fd, &st) == 0 && S_ISREG(st.st_mode)) {
    m.size = static_cast<std::size_t>(st.st_size);
    if (m.size == 0) {
      m.data = "";
      return m;
    }
    void* map = T2M_FAILPOINT("mmap.map")
                    ? MAP_FAILED
                    : ::mmap(nullptr, m.size, PROT_READ, MAP_PRIVATE, m.fd, 0);
    if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
      ::madvise(map, m.size, MADV_SEQUENTIAL);
#endif
      m.data = static_cast<const char*>(map);
      m.owns_map = true;
      return m;
    }
  }
  ::close(m.fd);
  m.fd = -1;
  m.size = 0;
#else
  (void)path;
#endif
  return m;
}

/// Whole-file slurp via a POSIX read(2) loop: retries EINTR, accumulates
/// short reads, and reports failures with errno + path. Failpoints:
/// "io.read_eintr" (transient EINTR), "io.read" (hard EIO),
/// "io.short_read" (caps each read at one byte so the accumulation loop is
/// exercised). Non-POSIX builds fall back to an ifstream slurp.
std::string read_file_contents(const std::string& path) {
#ifdef T2M_HAVE_MMAP
  int fd = open_readonly_retry(path);
  if (fd < 0) {
    throw StatusError(ErrorCode::io_error,
                      errno_message("cannot open", path, errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    std::size_t want = sizeof buf;
    if (T2M_FAILPOINT("io.short_read")) want = 1;
    ssize_t n;
    if (T2M_FAILPOINT("io.read_eintr")) {
      errno = EINTR;
      n = -1;
    } else if (T2M_FAILPOINT("io.read")) {
      errno = EIO;
      n = -1;
    } else {
      n = ::read(fd, buf, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw StatusError(ErrorCode::io_error,
                        errno_message("read failed", path, saved));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
#else
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw StatusError(ErrorCode::io_error, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return std::move(buffer).str();
#endif
}

}  // namespace

LineReader::LineReader(const std::string& path) {
  const ReadonlyMapping m = map_readonly(path);
  if (m.data != nullptr) {
    data_ = m.data;
    size_ = m.size;
    fd_ = m.fd;
    owns_map_ = m.owns_map;
    return;
  }
  if (m.open_errno != 0) {
    // StatusError derives from std::runtime_error, preserving the historical
    // throw contract while adding the taxonomy + errno detail.
    throw StatusError(
        ErrorCode::io_error,
        errno_message("LineReader: cannot open", path, m.open_errno));
  }
  open_fallback(path);
}

LineReader::LineReader(std::istream& is) : stream_(&is) {}

LineReader::LineReader(std::string_view region, from_memory_t)
    // An empty view may carry a null pointer; keep data_ non-null so next()
    // stays on the memory path and reports a clean end of input.
    : data_(region.data() != nullptr ? region.data() : ""), size_(region.size()) {}

LineReader::~LineReader() {
#ifdef T2M_HAVE_MMAP
  if (owns_map_ && size_ > 0) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

void LineReader::open_fallback(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) {
    const int saved = errno;
    throw StatusError(
        ErrorCode::io_error,
        errno_message("LineReader: cannot open", path, saved != 0 ? saved : EIO));
  }
  owned_stream_ = std::move(file);
  stream_ = owned_stream_.get();
}

void LineReader::release_consumed() {
#ifdef T2M_HAVE_MMAP
  // Only for mappings we own: a view region may be shared with other shard
  // cursors and is not page-aligned to this reader's consumption.
  if (!owns_map_) return;
  // Hand fully-consumed pages back to the kernel in multi-megabyte strides,
  // so resident memory tracks the cursor instead of the file size. Pages
  // stay in the page cache; MADV_DONTNEED only drops this mapping's
  // references. Lines already handed out from the released region are dead
  // by contract in fallback mode anyway (valid until the next next()), so
  // sequential consumers are unaffected; re-reading released bytes would
  // merely refault them in.
  constexpr std::size_t kStride = 8u << 20;
  if (pos_ - released_ < kStride) return;
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_size = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t end = (pos_ / page_size) * page_size;  // keep the live page
  if (end > released_) {
    ::madvise(const_cast<char*>(data_) + released_, end - released_, MADV_DONTNEED);
    released_ = end;
  }
#endif
}

bool LineReader::next(std::string_view& line) {
  if (data_ != nullptr) {
    if (pos_ >= size_) return false;
    const char* begin = data_ + pos_;
    const std::size_t remaining = size_ - pos_;
    const char* nl = static_cast<const char*>(std::memchr(begin, '\n', remaining));
    std::size_t len = nl != nullptr ? static_cast<std::size_t>(nl - begin) : remaining;
    pos_ += len + (nl != nullptr ? 1 : 0);
    bytes_read_ = pos_;
    release_consumed();
    if (len > 0 && begin[len - 1] == '\r') --len;
    line = std::string_view(begin, len);
    return true;
  }
  if (stream_ == nullptr || !std::getline(*stream_, line_buf_)) return false;
  // Count the newline only when one was consumed (a final unterminated line
  // sets eofbit), keeping bytes_read() consistent with the mmap mode.
  bytes_read_ += line_buf_.size() + (stream_->eof() ? 0 : 1);
  if (!line_buf_.empty() && line_buf_.back() == '\r') line_buf_.pop_back();
  line = line_buf_;
  return true;
}

MappedFile::MappedFile(const std::string& path) {
  const ReadonlyMapping m = map_readonly(path);
  if (m.data != nullptr) {
    data_ = m.data;
    size_ = m.size;
    fd_ = m.fd;
    owns_map_ = m.owns_map;
    return;
  }
  if (m.open_errno != 0) {
    throw StatusError(
        ErrorCode::io_error,
        errno_message("MappedFile: cannot open", path, m.open_errno));
  }
  // Fallback: slurp the file through the EINTR-safe read loop. Costs O(file)
  // memory, but keeps the sharded path functional on platforms or file kinds
  // mmap cannot serve.
  fallback_ = read_file_contents(path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() {
#ifdef T2M_HAVE_MMAP
  if (owns_map_ && size_ > 0) ::munmap(const_cast<char*>(data_), size_);
  if (fd_ >= 0) ::close(fd_);
#endif
}

}  // namespace t2m
