#include "src/trace/ftrace_io.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/util/string_utils.h"

namespace t2m {

namespace {

/// Extracts (task, event) from a full ftrace line, or (empty, event) from the
/// simplified two-column shape. Returns false if neither shape matches.
bool parse_line(std::string_view line, std::string& task, std::string& event) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return false;

  // Full shape: "task-123 [000] d..2 12.345678: event_name: details"
  const auto first_colon = trimmed.find(": ");
  if (first_colon != std::string_view::npos && trimmed.find('[') != std::string_view::npos) {
    const auto fields = split_ws(trimmed.substr(0, first_colon));
    if (!fields.empty()) {
      const std::string& head = fields.front();
      const auto dash = head.rfind('-');
      task = dash == std::string::npos ? head : head.substr(0, dash);
      std::string_view rest = trimmed.substr(first_colon + 2);
      const auto second_colon = rest.find(':');
      event = std::string(second_colon == std::string_view::npos
                              ? trim(rest)
                              : trim(rest.substr(0, second_colon)));
      return !event.empty();
    }
  }

  // Simplified shape: "<timestamp> <event> [details]"
  const auto fields = split_ws(trimmed);
  if (fields.size() >= 2) {
    // The first field must look like a number to avoid misreading data rows.
    const std::string& ts = fields[0];
    bool numeric = !ts.empty();
    for (const char c : ts) {
      if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.') {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      task.clear();
      event = fields[1];
      return true;
    }
  }
  return false;
}

}  // namespace

Trace read_ftrace(std::istream& is, const std::string& task_filter) {
  Schema schema;
  const VarIndex ev = schema.add_cat("event", {}, std::nullopt);
  Trace trace(std::move(schema));

  std::string line, task, event;
  while (std::getline(is, line)) {
    if (!parse_line(line, task, event)) continue;
    if (!task_filter.empty() && task != task_filter) continue;
    const auto sym = trace.mutable_schema().sym_id_intern(ev, event);
    trace.append({Value::of_sym(sym)});
  }
  return trace;
}

void write_ftrace(std::ostream& os, const Trace& trace) {
  const Schema& schema = trace.schema();
  if (schema.size() != 1 || schema.var(0).type != VarType::Cat) {
    throw std::invalid_argument("write_ftrace: trace must have one categorical variable");
  }
  for (std::size_t t = 0; t < trace.size(); ++t) {
    os << t << ".000000 " << schema.format_value(0, trace.obs(t)[0]) << '\n';
  }
}

}  // namespace t2m
