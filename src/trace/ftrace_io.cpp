#include "src/trace/ftrace_io.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/util/string_utils.h"

namespace t2m {

namespace {

/// "[000]", "[12]": a bracketed cpu number, the anchor of the full shape.
bool is_cpu_field(std::string_view field) {
  if (field.size() < 3 || field.front() != '[' || field.back() != ']') return false;
  for (std::size_t i = 1; i + 1 < field.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(field[i]))) return false;
  }
  return true;
}

/// "12", "0.5", "100.000001": at least one digit, nothing but digits and
/// dots. Shared by the simplified-shape timestamp check and the full-shape
/// anchor (where the timestamp is the last field before the first ": ").
bool is_timestamp_field(std::string_view field) {
  bool has_digit = false;
  for (const char c : field) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c != '.') {
      return false;
    }
  }
  return has_digit;
}

/// "comm-123", "<idle>-0": the full shape's head always carries a -pid
/// suffix; requiring it keeps simplified lines whose details fake the
/// [cpu]/timestamp geometry from being misread as the full shape.
bool has_pid_suffix(std::string_view head) {
  const auto dash = head.rfind('-');
  if (dash == std::string_view::npos || dash + 1 >= head.size()) return false;
  for (std::size_t i = dash + 1; i < head.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(head[i]))) return false;
  }
  return true;
}

/// Skips leading whitespace and splits off the next token; `text` is left
/// pointing past it. Allocation-free (the simplified parse runs once per
/// line of a million-event stream).
std::string_view take_ws_token(std::string_view& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  std::size_t j = i;
  while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
  const std::string_view token = text.substr(i, j - i);
  text.remove_prefix(j);
  return token;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool parse_ftrace_line(std::string_view line, std::string& task, std::string& event) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return false;

  // Full shape: "comm-123 [000] d..2 12.345678: event: details" (ftrace
  // raw) or "comm-123 [000] 12.345678: event: details" (trace-cmd report,
  // no flags column). The anchor is the fixed tail geometry before the
  // first ": " — a bracketed [cpu] field third- or second-from-last with a
  // numeric timestamp last — plus the mandatory -pid suffix on the comm
  // head. Anchoring from the end keeps comms containing spaces or
  // bracketed tokens ("Web Content-1234") matching, and the pid check
  // keeps simplified lines whose details fake the tail geometry ("1.5 ev
  // [0] d..2 2.0: note") in the simplified branch. A genuinely ambiguous
  // line (a simplified event named "x-1" with such details) parses as the
  // full shape; the grammars overlap there and the full shape wins.
  const auto first_colon = trimmed.find(": ");
  if (first_colon != std::string_view::npos) {
    const auto fields = split_ws(trimmed.substr(0, first_colon));
    const std::size_t n = fields.size();
    std::size_t cpu_idx = 0;  // 0 = no anchor; the comm occupies index 0
    if (n >= 3 && is_timestamp_field(fields[n - 1])) {
      if (n >= 4 && is_cpu_field(fields[n - 3])) {
        cpu_idx = n - 3;  // [cpu] flags timestamp
      } else if (is_cpu_field(fields[n - 2])) {
        cpu_idx = n - 2;  // [cpu] timestamp
      }
    }
    if (cpu_idx > 0) {
      // The comm-pid head is everything before the cpu field (spaces inside
      // the comm are joined back with single spaces).
      std::string head = fields.front();
      for (std::size_t i = 1; i < cpu_idx; ++i) head += ' ' + fields[i];
      if (has_pid_suffix(head)) {
        task = head.substr(0, head.rfind('-'));
        std::string_view rest = trimmed.substr(first_colon + 2);
        const auto second_colon = rest.find(':');
        event = std::string(second_colon == std::string_view::npos
                                ? trim(rest)
                                : trim(rest.substr(0, second_colon)));
        return !event.empty();
      }
    }
  }

  // Simplified shape: "<timestamp> <event> [details]". The first field must
  // look like a number ("." or "..." are data, not timestamps). Only the
  // two leading tokens are extracted — no per-detail-field allocations on
  // the streaming hot path.
  std::string_view rest = trimmed;
  const std::string_view ts = take_ws_token(rest);
  const std::string_view ev = take_ws_token(rest);
  if (!ev.empty() && is_timestamp_field(ts)) {
    task.clear();
    if (ev.find('%') == std::string_view::npos) {
      event.assign(ev.data(), ev.size());  // reuse the caller's buffer
    } else {
      event = unescape_ftrace_symbol(ev);
    }
    return true;
  }
  return false;
}

std::string escape_ftrace_symbol(std::string_view symbol) {
  if (symbol.empty()) {
    throw std::invalid_argument(
        "ftrace: empty event symbol cannot be represented in the line format");
  }
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(symbol.size());
  for (const char c : symbol) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= ' ' || c == ':' || c == '%' || u == 0x7f) {
      out.push_back('%');
      out.push_back(hex[u >> 4]);
      out.push_back(hex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string unescape_ftrace_symbol(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '%' && i + 2 < field.size()) {
      const int hi = hex_digit(field[i + 1]);
      const int lo = hex_digit(field[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(field[i]);
  }
  return out;
}

Trace read_ftrace(std::istream& is, const std::string& task_filter) {
  Schema schema;
  const VarIndex ev = schema.add_cat("event", {}, std::nullopt);
  Trace trace(std::move(schema));

  std::string line, task, event;
  while (std::getline(is, line)) {
    if (!parse_ftrace_line(line, task, event)) continue;
    if (!task_filter.empty() && task != task_filter) continue;
    const auto sym = trace.mutable_schema().sym_id_intern(ev, event);
    trace.append({Value::of_sym(sym)});
  }
  return trace;
}

void write_ftrace(std::ostream& os, const Trace& trace) {
  const Schema& schema = trace.schema();
  if (schema.size() != 1 || schema.var(0).type != VarType::Cat) {
    throw std::invalid_argument("write_ftrace: trace must have one categorical variable");
  }
  for (std::size_t t = 0; t < trace.size(); ++t) {
    os << t << ".000000 " << escape_ftrace_symbol(schema.format_value(0, trace.obs(t)[0]))
       << '\n';
  }
}

}  // namespace t2m
