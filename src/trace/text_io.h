#ifndef T2M_TRACE_TEXT_IO_H
#define T2M_TRACE_TEXT_IO_H

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace t2m {

/// Self-describing text trace format:
///
///   # t2m-trace v1
///   # var x int
///   # var ev cat IDLE READ WRITE default=IDLE
///   1 IDLE
///   2 READ
///
/// Variable order in rows matches declaration order. Blank lines and other
/// `#` comments are ignored. Categorical symbols not pre-declared are
/// interned on first use.
Trace read_trace_text(std::istream& is);
Trace read_trace_file(const std::string& path);

void write_trace_text(std::ostream& os, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

}  // namespace t2m

#endif  // T2M_TRACE_TEXT_IO_H
