#ifndef T2M_TRACE_TEXT_IO_H
#define T2M_TRACE_TEXT_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace t2m {

/// Applies one `# var <name> <type> [extra...]` declaration (already split
/// into fields, `fields[0] == "var"`) to `schema`. Shared by the batch
/// reader below and the streaming TextTracePredStream.
void parse_trace_var_decl(Schema& schema, const std::vector<std::string>& fields);

/// Self-describing text trace format:
///
///   # t2m-trace v1
///   # var x int
///   # var ev cat IDLE READ WRITE default=IDLE
///   1 IDLE
///   2 READ
///
/// Variable order in rows matches declaration order. Blank lines and other
/// `#` comments are ignored. Categorical symbols not pre-declared are
/// interned on first use.
Trace read_trace_text(std::istream& is);
Trace read_trace_file(const std::string& path);

void write_trace_text(std::ostream& os, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

}  // namespace t2m

#endif  // T2M_TRACE_TEXT_IO_H
