#ifndef T2M_TRACE_RECORDER_H
#define T2M_TRACE_RECORDER_H

#include <string>

#include "src/trace/trace.h"

namespace t2m {

/// Instrumentation facade mirroring the paper's "print statements in source
/// code" tracing setup. A simulator declares variables once, then calls
/// set()/commit() at each discrete step; the recorder materialises the
/// observation sequence.
///
///   TraceRecorder rec;
///   auto x = rec.declare_int("x");
///   auto ev = rec.declare_cat("ev", {"IDLE", "READ"}, "IDLE");
///   rec.set_int(x, 1); rec.set_sym(ev, "READ"); rec.commit();
///
/// Variables keep their previous value across commits unless re-set, so
/// sparse instrumentation points need only touch what changed.
class TraceRecorder {
public:
  TraceRecorder() = default;

  VarIndex declare_int(std::string name, std::int64_t initial = 0);
  VarIndex declare_bool(std::string name, bool initial = false);
  VarIndex declare_cat(std::string name, std::vector<std::string> symbols,
                       const std::string& initial);

  void set_int(VarIndex v, std::int64_t value);
  void set_bool(VarIndex v, bool value);
  void set_sym(VarIndex v, const std::string& symbol);

  /// Records the current valuation as the next observation.
  void commit();

  /// Number of committed observations so far.
  std::size_t committed() const { return trace_.size(); }

  /// Finishes recording and returns the trace (recorder resets to empty).
  Trace take();

  const Trace& trace() const { return trace_; }

private:
  Trace trace_;
  Valuation current_;
};

}  // namespace t2m

#endif  // T2M_TRACE_RECORDER_H
