#include "src/trace/trace.h"

#include <stdexcept>

namespace t2m {

void Trace::append(Valuation observation) {
  if (observation.size() != schema_.size()) {
    throw std::invalid_argument("Trace::append: observation width " +
                                std::to_string(observation.size()) +
                                " does not match schema width " +
                                std::to_string(schema_.size()));
  }
  observations_.push_back(std::move(observation));
}

Trace Trace::prefix(std::size_t n) const {
  Trace out(schema_);
  const std::size_t count = std::min(n, observations_.size());
  for (std::size_t i = 0; i < count; ++i) out.append(observations_[i]);
  return out;
}

std::string Trace::format_obs(std::size_t i) const {
  const Valuation& v = obs(i);
  std::string out;
  for (VarIndex k = 0; k < schema_.size(); ++k) {
    if (k > 0) out += ' ';
    out += schema_.var(k).name;
    out += '=';
    out += schema_.format_value(k, v[k]);
  }
  return out;
}

}  // namespace t2m
