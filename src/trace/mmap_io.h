#ifndef T2M_TRACE_MMAP_IO_H
#define T2M_TRACE_MMAP_IO_H

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

namespace t2m {

/// Zero-copy line cursor over a trace file. Opening a path memory-maps the
/// file read-only (with sequential access advice) and serves each line as a
/// `string_view` directly into the mapping — no per-line allocation, no copy,
/// and the kernel reclaims pages behind the cursor, so resident memory stays
/// bounded regardless of trace size. Where mmap is unavailable (non-POSIX
/// builds, pipes, special files, mapping failure) the reader transparently
/// falls back to buffered istream reads; the returned views then point into
/// an internal buffer and stay valid only until the next `next()` call, which
/// is the contract consumers must code against in both modes.
class LineReader {
public:
  /// Opens `path`, preferring an mmap mapping. Throws std::runtime_error when
  /// the file cannot be opened at all.
  explicit LineReader(const std::string& path);

  /// Streams from an existing istream (never mmap). The stream must outlive
  /// the reader.
  explicit LineReader(std::istream& is);

  /// Tag selecting the in-memory constructor (a bare string literal would
  /// otherwise be ambiguous against the path overload).
  struct from_memory_t {};
  static constexpr from_memory_t from_memory{};

  /// Serves lines straight out of caller-owned memory (a MappedFile shard
  /// region, a test buffer). No pages are released behind the cursor — the
  /// region may be shared with other concurrently-reading cursors — and the
  /// memory must outlive the reader. mapped() reports true (views stay valid
  /// for the reader's lifetime).
  LineReader(std::string_view region, from_memory_t);

  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;
  ~LineReader();

  /// Yields the next line with the trailing '\n' (and a preceding '\r', for
  /// CRLF input) stripped. Returns false at end of input. A final line
  /// without a terminating newline is still yielded.
  bool next(std::string_view& line);

  /// True when the reader serves views straight out of an mmap mapping
  /// (views then remain valid for the reader's lifetime).
  bool mapped() const { return data_ != nullptr; }

  /// Bytes consumed so far (mmap mode: cursor offset; stream mode: an
  /// approximation from line lengths).
  std::size_t bytes_read() const { return bytes_read_; }

private:
  // mmap mode.
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::size_t released_ = 0;  ///< consumed prefix already returned to the kernel
  int fd_ = -1;
  bool owns_map_ = false;  ///< true when data_ is our own mmap (not a view)

  void release_consumed();

  // istream fallback mode.
  std::istream* stream_ = nullptr;
  std::unique_ptr<std::ifstream> owned_stream_;  // set when we opened the file
  std::string line_buf_;

  std::size_t bytes_read_ = 0;

  void open_fallback(const std::string& path);
};

/// Read-only whole-file mapping for the sharded ingest path. Unlike
/// LineReader's consuming cursor, every byte stays addressable for the
/// object's lifetime, so multiple shard cursors (LineReader over
/// string_view) can walk disjoint regions of one mapping concurrently.
/// Falls back to reading the file into memory where mmap is unavailable.
/// Throws std::runtime_error when the file cannot be opened.
class MappedFile {
public:
  explicit MappedFile(const std::string& path);
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view view() const { return {data_, size_}; }
  std::size_t size() const { return size_; }
  /// True when backed by an actual mapping (false: in-memory fallback).
  bool mapped() const { return owns_map_; }

private:
  const char* data_ = "";
  std::size_t size_ = 0;
  int fd_ = -1;
  bool owns_map_ = false;
  std::string fallback_;  ///< owns the bytes when mmap was unavailable
};

}  // namespace t2m

#endif  // T2M_TRACE_MMAP_IO_H
