#include "src/trace/recorder.h"

#include <stdexcept>

namespace t2m {

VarIndex TraceRecorder::declare_int(std::string name, std::int64_t initial) {
  if (!trace_.empty()) {
    throw std::logic_error("TraceRecorder: declare after first commit");
  }
  const VarIndex v = trace_.mutable_schema().add_int(std::move(name));
  current_.push_back(Value::of_int(initial));
  return v;
}

VarIndex TraceRecorder::declare_bool(std::string name, bool initial) {
  if (!trace_.empty()) {
    throw std::logic_error("TraceRecorder: declare after first commit");
  }
  const VarIndex v = trace_.mutable_schema().add_bool(std::move(name));
  current_.push_back(Value::of_bool(initial));
  return v;
}

VarIndex TraceRecorder::declare_cat(std::string name, std::vector<std::string> symbols,
                                    const std::string& initial) {
  if (!trace_.empty()) {
    throw std::logic_error("TraceRecorder: declare after first commit");
  }
  const VarIndex v =
      trace_.mutable_schema().add_cat(std::move(name), std::move(symbols), initial);
  current_.push_back(Value::of_sym(trace_.schema().sym_id(v, initial)));
  return v;
}

void TraceRecorder::set_int(VarIndex v, std::int64_t value) {
  current_.at(v) = Value::of_int(value);
}

void TraceRecorder::set_bool(VarIndex v, bool value) {
  current_.at(v) = Value::of_bool(value);
}

void TraceRecorder::set_sym(VarIndex v, const std::string& symbol) {
  current_.at(v) = Value::of_sym(trace_.schema().sym_id(v, symbol));
}

void TraceRecorder::commit() { trace_.append(current_); }

Trace TraceRecorder::take() {
  Trace out = std::move(trace_);
  trace_ = Trace();
  current_.clear();
  return out;
}

}  // namespace t2m
