#include "src/trace/text_io.h"

#include <cerrno>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/base/status.h"
#include "src/util/string_utils.h"

namespace t2m {

void parse_trace_var_decl(Schema& schema, const std::vector<std::string>& fields) {
  // fields: ["var", name, type, extra...]
  if (fields.size() < 3) throw std::invalid_argument("trace: malformed '# var' line");
  const std::string& name = fields[1];
  const std::string& type = fields[2];
  if (type == "int") {
    schema.add_int(name);
  } else if (type == "bool") {
    schema.add_bool(name);
  } else if (type == "cat") {
    std::vector<std::string> symbols;
    std::optional<std::string> default_symbol;
    for (std::size_t i = 3; i < fields.size(); ++i) {
      if (starts_with(fields[i], "default=")) {
        default_symbol = fields[i].substr(8);
      } else {
        symbols.push_back(fields[i]);
      }
    }
    schema.add_cat(name, std::move(symbols), default_symbol);
  } else {
    throw std::invalid_argument("trace: unknown variable type '" + type + "'");
  }
}

Trace read_trace_text(std::istream& is) {
  Schema schema;
  std::vector<Valuation> rows;
  std::string line;
  bool header_done = false;
  while (std::getline(is, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      const auto fields = split_ws(trimmed.substr(1));
      if (!fields.empty() && fields[0] == "var") {
        if (header_done) {
          throw std::invalid_argument("trace: '# var' after first data row");
        }
        parse_trace_var_decl(schema, fields);
      }
      continue;
    }
    header_done = true;
    const auto fields = split_ws(trimmed);
    if (fields.size() != schema.size()) {
      throw std::invalid_argument("trace: row width " + std::to_string(fields.size()) +
                                  " does not match schema width " +
                                  std::to_string(schema.size()));
    }
    Valuation v(schema.size());
    for (VarIndex i = 0; i < schema.size(); ++i) {
      if (schema.var(i).type == VarType::Cat) {
        v[i] = Value::of_sym(schema.sym_id_intern(i, fields[i]));
      } else {
        v[i] = schema.parse_value(i, fields[i]);
      }
    }
    rows.push_back(std::move(v));
  }
  Trace trace(std::move(schema));
  for (auto& row : rows) trace.append(std::move(row));
  return trace;
}

Trace read_trace_file(const std::string& path) {
  errno = 0;
  std::ifstream is(path);
  if (!is) {
    throw StatusError(ErrorCode::io_error,
                      errno_message("cannot open trace file", path,
                                    errno != 0 ? errno : EIO));
  }
  return read_trace_text(is);
}

void write_trace_text(std::ostream& os, const Trace& trace) {
  const Schema& schema = trace.schema();
  os << "# t2m-trace v1\n";
  for (VarIndex i = 0; i < schema.size(); ++i) {
    const VarInfo& info = schema.var(i);
    os << "# var " << info.name << ' ';
    switch (info.type) {
      case VarType::Int: os << "int"; break;
      case VarType::Bool: os << "bool"; break;
      case VarType::Cat: {
        os << "cat";
        for (const auto& s : info.symbols) os << ' ' << s;
        if (info.default_sym) {
          os << " default=" << info.symbols[static_cast<std::size_t>(*info.default_sym)];
        }
        break;
      }
    }
    os << '\n';
  }
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const Valuation& v = trace.obs(t);
    for (VarIndex i = 0; i < schema.size(); ++i) {
      if (i > 0) os << ' ';
      os << schema.format_value(i, v[i]);
    }
    os << '\n';
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  errno = 0;
  std::ofstream os(path);
  if (!os) {
    throw StatusError(ErrorCode::io_error,
                      errno_message("cannot open trace file for writing", path,
                                    errno != 0 ? errno : EIO));
  }
  write_trace_text(os, trace);
}

}  // namespace t2m
