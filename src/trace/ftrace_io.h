#ifndef T2M_TRACE_FTRACE_IO_H
#define T2M_TRACE_FTRACE_IO_H

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace t2m {

/// Parses a simplified ftrace-style event log into a single-variable
/// categorical trace. Accepted line shapes (mirroring `trace-cmd report`
/// output for sched events):
///
///   <task>-<pid> [<cpu>] <flags> <timestamp>: <event>: <details>
///   <timestamp> <event> [details]
///
/// Only the event name is retained; task filtering selects lines whose task
/// field matches `task_filter` (empty = keep all). Lines that do not match
/// either shape are skipped.
Trace read_ftrace(std::istream& is, const std::string& task_filter = "");

/// Writes the trace in the simplified `<timestamp> <event>` shape. The trace
/// must have a single categorical variable.
void write_ftrace(std::ostream& os, const Trace& trace);

}  // namespace t2m

#endif  // T2M_TRACE_FTRACE_IO_H
