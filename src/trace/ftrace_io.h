#ifndef T2M_TRACE_FTRACE_IO_H
#define T2M_TRACE_FTRACE_IO_H

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/trace/trace.h"

namespace t2m {

/// Extracts (task, event) from one ftrace-style line. Returns false for
/// comments, blank lines and lines matching neither accepted shape:
///
///   <task>-<pid> [<cpu>] <flags> <timestamp>: <event>: <details>
///   <task>-<pid> [<cpu>] <timestamp>: <event>: <details>
///   <timestamp> <event> [details]
///
/// Full-shape detection is anchored on the fixed tail geometry before the
/// first ": " — a bracketed [cpu] field third- or second-from-last with a
/// numeric timestamp last — plus the mandatory -pid suffix on the comm
/// head. Task comms containing spaces or bracketed tokens still match,
/// while simplified lines whose details contain '[N]', numbers and ": "
/// are not misread as the full shape. The simplified shape requires the
/// leading timestamp to contain at least one digit (digit-free tokens such
/// as "." are data, not timestamps) and %XX escapes in the event field are
/// decoded (see escape_ftrace_symbol).
bool parse_ftrace_line(std::string_view line, std::string& task, std::string& event);

/// Escapes an event symbol for the simplified `<timestamp> <event>` shape:
/// whitespace/control bytes, ':' and '%' become %XX so the written line
/// stays whitespace-delimited and colon-free. Throws std::invalid_argument
/// on an empty symbol, which has no representation in the line format.
std::string escape_ftrace_symbol(std::string_view symbol);

/// Decodes %XX escapes produced by escape_ftrace_symbol. A '%' not followed
/// by two hex digits is kept verbatim, so most files predating the escaping
/// read back unchanged — the exception is a legacy symbol that happens to
/// contain a valid %XX triple ("disk%2Fsda"), which is now decoded; rewrite
/// such files once through read_ftrace/write_ftrace to normalise them.
std::string unescape_ftrace_symbol(std::string_view field);

/// Parses a simplified ftrace-style event log into a single-variable
/// categorical trace (shapes as in parse_ftrace_line). Only the event name
/// is retained; task filtering selects lines whose task field matches
/// `task_filter` (empty = keep all). Lines that do not match either shape
/// are skipped.
Trace read_ftrace(std::istream& is, const std::string& task_filter = "");

/// Writes the trace in the simplified `<timestamp> <event>` shape with event
/// symbols escaped so read_ftrace round-trips them exactly. The trace must
/// have a single categorical variable.
void write_ftrace(std::ostream& os, const Trace& trace);

}  // namespace t2m

#endif  // T2M_TRACE_FTRACE_IO_H
