#include "src/synth/enumerative.h"

#include <cstdint>
#include <stdexcept>
#include <unordered_set>

namespace t2m {

namespace {

using Signature = std::vector<std::int64_t>;

struct SigHash {
  std::size_t operator()(const Signature& s) const noexcept {
    std::size_t h = 0x811c9dc5u;
    for (const std::int64_t v : s) {
      h = (h ^ static_cast<std::size_t>(v)) * 0x100000001b3ULL;
    }
    return h;
  }
};

struct Term {
  ExprPtr expr;
  Signature sig;
};

std::int64_t apply_arith(ExprOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ExprOp::Add: return a + b;
    case ExprOp::Sub: return a - b;
    case ExprOp::Mul: return a * b;
    default: throw std::logic_error("enumerative: unsupported arith op");
  }
}

bool apply_cmp(ExprOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ExprOp::Eq: return a == b;
    case ExprOp::Ne: return a != b;
    case ExprOp::Lt: return a < b;
    case ExprOp::Le: return a <= b;
    case ExprOp::Gt: return a > b;
    case ExprOp::Ge: return a >= b;
    default: throw std::logic_error("enumerative: unsupported cmp op");
  }
}

}  // namespace

EnumerativeSynth::EnumerativeSynth(const Schema& schema, Grammar grammar)
    : schema_(schema), grammar_(std::move(grammar)) {}

std::vector<ExprPtr> EnumerativeSynth::synthesize_all(
    const std::vector<UpdateExample>& examples, SynthStats* stats) const {
  SynthStats local;
  SynthStats& st = stats ? *stats : local;
  st = SynthStats{};

  if (examples.empty()) return {};
  for (const UpdateExample& ex : examples) {
    if (!ex.output.is_int()) return {};  // numeric synthesis only
  }

  const std::size_t n = examples.size();
  Signature target(n);
  for (std::size_t i = 0; i < n; ++i) target[i] = examples[i].output.as_int();

  // terms[s] holds representative integer terms of size s (post-pruning);
  // bools[s] likewise for boolean terms (ite conditions).
  std::vector<std::vector<Term>> terms(grammar_.max_size + 1);
  std::vector<std::vector<Term>> bools(grammar_.max_size + 1);
  std::unordered_set<Signature, SigHash> seen_int;
  std::unordered_set<Signature, SigHash> seen_bool;

  std::vector<ExprPtr> solutions;

  const auto admissible_solution = [&](const Expr& e) {
    if (!grammar_.solution_must_reference) return true;
    std::set<std::pair<VarIndex, bool>> vars;
    e.collect_vars(vars);
    return vars.count({*grammar_.solution_must_reference, false}) > 0;
  };
  const auto consider_int = [&](std::size_t size, ExprPtr expr, Signature sig) {
    ++st.terms_enumerated;
    if (sig == target && solutions.size() < kMaxSolutions && admissible_solution(*expr)) {
      solutions.push_back(expr);
    }
    if (terms[size].size() >= kMaxTermsPerSize) return;
    if (seen_int.insert(sig).second) {
      terms[size].push_back(Term{std::move(expr), std::move(sig)});
      ++st.terms_kept;
    }
  };
  const auto consider_bool = [&](std::size_t size, ExprPtr expr, Signature sig) {
    ++st.terms_enumerated;
    if (bools[size].size() >= kMaxTermsPerSize) return;
    if (seen_bool.insert(sig).second) {
      bools[size].push_back(Term{std::move(expr), std::move(sig)});
      ++st.terms_kept;
    }
  };

  for (std::size_t size = 1; size <= grammar_.max_size; ++size) {
    if (size == 1) {
      // Leaves: variables by index first (so `x + 1` is found before
      // `1 + x`), then constants from the sorted pool.
      for (const VarIndex v : grammar_.leaf_vars) {
        Signature sig(n);
        bool ok = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (v >= examples[i].input.size() || !examples[i].input[v].is_int()) {
            ok = false;
            break;
          }
          sig[i] = examples[i].input[v].as_int();
        }
        if (ok) consider_int(1, Expr::var_ref(v, /*primed=*/false), std::move(sig));
      }
      for (const std::int64_t c : grammar_.constants) {
        consider_int(1, Expr::int_const(c), Signature(n, c));
      }
    } else {
      // Binary arithmetic combinations: |lhs| + |rhs| = size - 1.
      for (const ExprOp op : grammar_.arith_ops) {
        for (std::size_t ls = 1; ls + 1 < size; ++ls) {
          const std::size_t rs = size - 1 - ls;
          for (const Term& lhs : terms[ls]) {
            for (const Term& rhs : terms[rs]) {
              Signature sig(n);
              for (std::size_t i = 0; i < n; ++i) {
                sig[i] = apply_arith(op, lhs.sig[i], rhs.sig[i]);
              }
              consider_int(size, Expr::binary(op, lhs.expr, rhs.expr), std::move(sig));
            }
          }
        }
      }
      if (grammar_.allow_ite) {
        // Comparisons become boolean terms.
        for (const ExprOp op : grammar_.cmp_ops) {
          for (std::size_t ls = 1; ls + 1 < size; ++ls) {
            const std::size_t rs = size - 1 - ls;
            for (const Term& lhs : terms[ls]) {
              for (const Term& rhs : terms[rs]) {
                Signature sig(n);
                for (std::size_t i = 0; i < n; ++i) {
                  sig[i] = apply_cmp(op, lhs.sig[i], rhs.sig[i]) ? 1 : 0;
                }
                consider_bool(size, Expr::binary(op, lhs.expr, rhs.expr), std::move(sig));
              }
            }
          }
        }
        // ite(c, t, e) with |c| + |t| + |e| = size - 1.
        for (std::size_t cs = 1; cs + 2 < size; ++cs) {
          for (std::size_t ts = 1; cs + ts + 1 < size; ++ts) {
            const std::size_t es = size - 1 - cs - ts;
            for (const Term& cond : bools[cs]) {
              for (const Term& then_t : terms[ts]) {
                for (const Term& else_t : terms[es]) {
                  Signature sig(n);
                  for (std::size_t i = 0; i < n; ++i) {
                    sig[i] = cond.sig[i] != 0 ? then_t.sig[i] : else_t.sig[i];
                  }
                  consider_int(size, Expr::ite(cond.expr, then_t.expr, else_t.expr),
                               std::move(sig));
                }
              }
            }
          }
        }
      }
    }
    if (!solutions.empty()) {
      st.solution_size = size;
      return solutions;
    }
  }
  return {};
}

ExprPtr EnumerativeSynth::synthesize(const std::vector<UpdateExample>& examples,
                                     SynthStats* stats) const {
  auto all = synthesize_all(examples, stats);
  return all.empty() ? nullptr : all.front();
}

}  // namespace t2m
