#ifndef T2M_SYNTH_ITE_CHAIN_H
#define T2M_SYNTH_ITE_CHAIN_H

#include <vector>

#include "src/base/schema.h"
#include "src/expr/expr.h"
#include "src/synth/examples.h"

namespace t2m {

/// The trivial "point solution" engine the paper observes in CVC4's
/// grammar-free mode (Section VII): given the trace 1, 2, 4, 8 it produces a
/// nested ite over input equalities instead of a generalising expression.
/// We keep it as a comparison engine for the synthesis-engine bench and as a
/// total fallback (it always succeeds on functionally consistent examples).
class IteChainSynth {
public:
  explicit IteChainSynth(const Schema& schema) : schema_(schema) {}

  /// Builds ite(in = i1, o1, ite(in = i2, o2, ... o_last)). Distinguishes
  /// inputs on all numeric variables. Returns nullptr when two examples have
  /// identical inputs but different outputs (not a function).
  ExprPtr synthesize(const std::vector<UpdateExample>& examples) const;

private:
  const Schema& schema_;
};

}  // namespace t2m

#endif  // T2M_SYNTH_ITE_CHAIN_H
