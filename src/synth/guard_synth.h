#ifndef T2M_SYNTH_GUARD_SYNTH_H
#define T2M_SYNTH_GUARD_SYNTH_H

#include <vector>

#include "src/base/schema.h"
#include "src/expr/expr.h"
#include "src/synth/examples.h"

namespace t2m {

/// Synthesises boolean guards over unprimed variables from labelled
/// observations: the result holds on every positive observation and on no
/// negative one. Guards explain the mode-switch windows of numeric traces
/// (the paper's `x >= 128`, `x <= 1`, `(op = 5 && ip = 1) || ...`).
///
/// Method: positives are clustered by distinct valuation; for each cluster
/// the smallest conjunction of comparison atoms (v >= c, v <= c, v = c over
/// numeric variables; v = sym over categorical ones) that excludes all
/// negatives is found by exhaustive subset search of bounded width; the
/// cluster conjunctions are disjoined. Atom generation order (>=, <=, =)
/// makes results deterministic and favours interval guards, matching the
/// paper's published predicates.
class GuardSynth {
public:
  explicit GuardSynth(const Schema& schema) : schema_(schema) {}

  /// Smallest separating guard or nullptr when none exists within bounds
  /// (in particular when a negative equals a positive valuation).
  ExprPtr synthesize(const std::vector<GuardExample>& examples) const;

  /// Maximum atoms per cluster conjunction.
  static constexpr std::size_t kMaxConjunction = 3;

private:
  const Schema& schema_;
};

}  // namespace t2m

#endif  // T2M_SYNTH_GUARD_SYNTH_H
