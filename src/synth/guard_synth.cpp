#include "src/synth/guard_synth.h"

#include <algorithm>
#include <set>

#include "src/expr/eval.h"

namespace t2m {

namespace {

/// An atom with its exclusion mask: bit i set when the atom is false on
/// negative i (i.e. the atom "covers" that negative).
struct AtomInfo {
  ExprPtr expr;
  std::vector<bool> excludes;
  std::size_t exclude_count = 0;
};

std::vector<AtomInfo> atoms_for(const Schema& schema, const Valuation& positive,
                                const std::vector<Valuation>& negatives) {
  std::vector<AtomInfo> atoms;
  const auto push = [&](ExprPtr e) {
    AtomInfo info;
    info.excludes.resize(negatives.size());
    for (std::size_t i = 0; i < negatives.size(); ++i) {
      const bool true_on_neg = eval_guard(*e, negatives[i]);
      info.excludes[i] = !true_on_neg;
      if (!true_on_neg) ++info.exclude_count;
    }
    info.expr = std::move(e);
    if (info.exclude_count > 0) atoms.push_back(std::move(info));
  };

  for (VarIndex v = 0; v < schema.size(); ++v) {
    const Value& val = positive.at(v);
    const ExprPtr var = Expr::var_ref(v, /*primed=*/false);
    if (schema.var(v).is_numeric()) {
      const ExprPtr c = Expr::constant(val);
      push(Expr::ge(var, c));
      push(Expr::le(var, c));
      push(Expr::eq(var, c));
    } else {
      push(Expr::eq(var, Expr::constant(val)));
    }
  }
  return atoms;
}

/// True when the OR of the atoms' exclusion masks covers every negative.
bool covers_all(const std::vector<const AtomInfo*>& subset, std::size_t neg_count) {
  for (std::size_t i = 0; i < neg_count; ++i) {
    bool covered = false;
    for (const AtomInfo* a : subset) {
      if (a->excludes[i]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

ExprPtr conj_of(const std::vector<const AtomInfo*>& subset) {
  std::vector<ExprPtr> parts;
  parts.reserve(subset.size());
  for (const AtomInfo* a : subset) parts.push_back(a->expr);
  return Expr::conj(std::move(parts));
}

/// Smallest conjunction (by atom count, then generation order) excluding all
/// negatives; nullptr when impossible within kMaxConjunction atoms.
ExprPtr cluster_guard(const Schema& schema, const Valuation& positive,
                      const std::vector<Valuation>& negatives) {
  if (negatives.empty()) return Expr::bool_const(true);
  std::vector<AtomInfo> atoms = atoms_for(schema, positive, negatives);
  const std::size_t n = negatives.size();

  for (const AtomInfo& a : atoms) {
    if (a.exclude_count == n) return a.expr;
  }
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      const std::vector<const AtomInfo*> pair = {&atoms[i], &atoms[j]};
      if (covers_all(pair, n)) return conj_of(pair);
    }
  }
  if (GuardSynth::kMaxConjunction >= 3) {
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      for (std::size_t j = i + 1; j < atoms.size(); ++j) {
        for (std::size_t k = j + 1; k < atoms.size(); ++k) {
          const std::vector<const AtomInfo*> triple = {&atoms[i], &atoms[j], &atoms[k]};
          if (covers_all(triple, n)) return conj_of(triple);
        }
      }
    }
  }
  return nullptr;
}

}  // namespace

ExprPtr GuardSynth::synthesize(const std::vector<GuardExample>& examples) const {
  std::set<Valuation> positives;
  std::set<Valuation> negatives_set;
  for (const GuardExample& ex : examples) {
    (ex.positive ? positives : negatives_set).insert(ex.obs);
  }
  if (positives.empty()) return nullptr;
  // A negative identical to a positive is unsatisfiable; treat as conflict.
  for (const Valuation& p : positives) {
    if (negatives_set.count(p) > 0) return nullptr;
  }
  const std::vector<Valuation> negatives(negatives_set.begin(), negatives_set.end());

  std::vector<ExprPtr> clauses;
  for (const Valuation& p : positives) {
    // Skip positives already captured by an earlier cluster's conjunction.
    bool captured = false;
    for (const ExprPtr& c : clauses) {
      if (eval_guard(*c, p)) {
        captured = true;
        break;
      }
    }
    if (captured) continue;
    ExprPtr guard = cluster_guard(schema_, p, negatives);
    if (!guard) return nullptr;
    clauses.push_back(std::move(guard));
  }
  return Expr::disj(std::move(clauses));
}

}  // namespace t2m
