#ifndef T2M_SYNTH_EXAMPLES_H
#define T2M_SYNTH_EXAMPLES_H

#include <vector>

#include "src/base/value.h"

namespace t2m {

/// A synthesis-from-examples constraint for an update function next(X):
/// on `input` (a full observation) the function must produce `output`.
/// This mirrors the paper's "next(1) = 2, next(2) = 3, next(3) = 4" samples.
struct UpdateExample {
  Valuation input;
  Value output;
};

/// A labelled observation for guard synthesis: the guard must be true on
/// every positive observation and false on every negative one.
struct GuardExample {
  Valuation obs;
  bool positive = true;
};

}  // namespace t2m

#endif  // T2M_SYNTH_EXAMPLES_H
