#ifndef T2M_SYNTH_ENUMERATIVE_H
#define T2M_SYNTH_ENUMERATIVE_H

#include <vector>

#include "src/base/schema.h"
#include "src/expr/expr.h"
#include "src/synth/examples.h"
#include "src/synth/grammar.h"

namespace t2m {

/// Statistics from one synthesis run.
struct SynthStats {
  std::size_t terms_enumerated = 0;
  std::size_t terms_kept = 0;  // after observational-equivalence pruning
  std::size_t solution_size = 0;
};

/// Bottom-up enumerative synthesis from examples, in the style of fastsynth:
/// terms are generated smallest-first, pruned by observational equivalence on
/// the example inputs, and the search stops at the first size where a
/// consistent term exists. All minimal-size solutions (up to a cap) are
/// returned so callers can re-rank by global criteria such as trace-wide fit.
class EnumerativeSynth {
public:
  EnumerativeSynth(const Schema& schema, Grammar grammar);

  /// All expressions of minimal size consistent with `examples` (empty if no
  /// term within grammar.max_size fits). Deterministic order.
  std::vector<ExprPtr> synthesize_all(const std::vector<UpdateExample>& examples,
                                      SynthStats* stats = nullptr) const;

  /// First minimal solution or nullptr.
  ExprPtr synthesize(const std::vector<UpdateExample>& examples,
                     SynthStats* stats = nullptr) const;

  const Grammar& grammar() const { return grammar_; }

  /// Cap on distinct solutions returned by synthesize_all.
  static constexpr std::size_t kMaxSolutions = 64;
  /// Cap on equivalence classes kept per size (guards against blow-up).
  static constexpr std::size_t kMaxTermsPerSize = 20000;

private:
  const Schema& schema_;
  Grammar grammar_;
};

}  // namespace t2m

#endif  // T2M_SYNTH_ENUMERATIVE_H
