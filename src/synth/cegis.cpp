#include "src/synth/cegis.h"

#include <optional>

#include "src/expr/eval.h"

namespace t2m {

namespace {

/// Index of the first example the candidate mispredicts, if any.
std::optional<std::size_t> find_counterexample(const Expr& candidate,
                                               const std::vector<UpdateExample>& examples) {
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const Value got = eval_value(candidate, examples[i].input, examples[i].input);
    if (got != examples[i].output) return i;
  }
  return std::nullopt;
}

}  // namespace

ExprPtr CegisSynth::synthesize(const std::vector<UpdateExample>& examples,
                               CegisStats* stats) const {
  CegisStats local;
  CegisStats& st = stats ? *stats : local;
  st = CegisStats{};

  if (examples.empty()) return nullptr;

  // Seed the working set with a spread of examples rather than a prefix, so
  // constant-valued prefixes do not mislead the first round.
  std::vector<UpdateExample> working;
  const std::size_t stride =
      examples.size() <= kInitialExamples ? 1 : examples.size() / kInitialExamples;
  for (std::size_t i = 0; i < examples.size() && working.size() < kInitialExamples;
       i += stride) {
    working.push_back(examples[i]);
  }

  const EnumerativeSynth engine(schema_, grammar_);
  for (std::size_t round = 0; round < kMaxIterations; ++round) {
    ++st.iterations;
    st.working_set = working.size();
    const ExprPtr candidate = engine.synthesize(working, &st.inner);
    if (!candidate) return nullptr;  // no term in the grammar fits
    const auto cex = find_counterexample(*candidate, examples);
    if (!cex) return candidate;
    working.push_back(examples[*cex]);
  }
  return nullptr;
}

}  // namespace t2m
