#ifndef T2M_SYNTH_GRAMMAR_H
#define T2M_SYNTH_GRAMMAR_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/schema.h"
#include "src/expr/expr.h"
#include "src/synth/examples.h"

namespace t2m {

/// Search-space description for the enumerative synthesiser. This plays the
/// role of a SyGuS grammar: callers may hand-craft one (syntax-guided mode)
/// or derive one from the examples (fastsynth-like mode, where constants are
/// discovered automatically from the data).
struct Grammar {
  /// Variables usable as leaves (read from the current observation).
  std::vector<VarIndex> leaf_vars;
  /// Integer constant pool.
  std::vector<std::int64_t> constants;
  /// Binary arithmetic operators to combine integer terms with.
  std::vector<ExprOp> arith_ops = {ExprOp::Add, ExprOp::Sub};
  /// Comparison operators for boolean terms (used when allow_ite is set).
  std::vector<ExprOp> cmp_ops = {ExprOp::Ge, ExprOp::Le, ExprOp::Eq};
  /// Whether if-then-else terms may be built.
  bool allow_ite = false;
  /// Maximum AST size to enumerate.
  std::size_t max_size = 5;
  /// When set, a term only counts as a SOLUTION if it references this
  /// variable (it remains available as a subterm regardless). Numeric trace
  /// abstraction sets it to the update target: `op' = 5` or `op' = ip + 4`
  /// describe a saturation mode, not an update law, and must lose to guard
  /// synthesis even when they are the smallest fit.
  std::optional<VarIndex> solution_must_reference;

  /// Derives a grammar from update examples: leaves are the numeric
  /// variables of `schema`, constants are the distinct example values and
  /// output-input deltas for `target` plus {0, 1}. This is the automatic
  /// constant discovery the paper attributes to fastsynth (Section VII).
  static Grammar for_updates(const Schema& schema, VarIndex target,
                             const std::vector<UpdateExample>& examples);
};

}  // namespace t2m

#endif  // T2M_SYNTH_GRAMMAR_H
