#include "src/synth/ite_chain.h"

#include <map>

namespace t2m {

ExprPtr IteChainSynth::synthesize(const std::vector<UpdateExample>& examples) const {
  if (examples.empty()) return nullptr;

  // Deduplicate by input valuation; reject functional inconsistency.
  std::map<Valuation, Value> table;
  for (const UpdateExample& ex : examples) {
    const auto [it, inserted] = table.emplace(ex.input, ex.output);
    if (!inserted && it->second != ex.output) return nullptr;
  }

  std::vector<VarIndex> numeric;
  for (VarIndex v = 0; v < schema_.size(); ++v) {
    if (schema_.var(v).is_numeric()) numeric.push_back(v);
  }
  if (numeric.empty()) return nullptr;

  const auto match_of = [&](const Valuation& input) {
    std::vector<ExprPtr> atoms;
    for (const VarIndex v : numeric) {
      atoms.push_back(Expr::eq(Expr::var_ref(v, false), Expr::constant(input.at(v))));
    }
    return Expr::conj(std::move(atoms));
  };

  // Last row becomes the else branch; the rest nest outward.
  auto it = table.rbegin();
  ExprPtr chain = Expr::constant(it->second);
  for (++it; it != table.rend(); ++it) {
    chain = Expr::ite(match_of(it->first), Expr::constant(it->second), std::move(chain));
  }
  return chain;
}

}  // namespace t2m
