#include "src/synth/grammar.h"

#include <algorithm>
#include <set>

namespace t2m {

Grammar Grammar::for_updates(const Schema& schema, VarIndex target,
                             const std::vector<UpdateExample>& examples) {
  Grammar g;
  // Target variable first so updates read `op + ip`, not `ip + op`.
  if (target < schema.size() && schema.var(target).is_numeric()) {
    g.leaf_vars.push_back(target);
  }
  for (VarIndex v = 0; v < schema.size(); ++v) {
    if (v != target && schema.var(v).is_numeric()) g.leaf_vars.push_back(v);
  }

  std::set<std::int64_t> pool = {0, 1};
  for (const UpdateExample& ex : examples) {
    if (ex.output.is_int()) {
      pool.insert(ex.output.as_int());
      if (target < ex.input.size() && ex.input[target].is_int()) {
        // Output-input delta: yields the `c` of `x + c` update shapes.
        pool.insert(ex.output.as_int() - ex.input[target].as_int());
      }
    }
    for (VarIndex v = 0; v < ex.input.size(); ++v) {
      if (ex.input[v].is_int()) pool.insert(ex.input[v].as_int());
    }
  }
  // Negative constants are reachable through Sub/Neg; keep the pool small by
  // storing magnitudes of small deltas and the raw values otherwise.
  g.constants.assign(pool.begin(), pool.end());
  return g;
}

}  // namespace t2m
