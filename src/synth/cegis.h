#ifndef T2M_SYNTH_CEGIS_H
#define T2M_SYNTH_CEGIS_H

#include <vector>

#include "src/synth/enumerative.h"

namespace t2m {

/// Counter-Example Guided Inductive Synthesis driver. Large example pools
/// (thousands of pooled steps in mixed-trace abstraction) make direct
/// enumeration signatures expensive, so we synthesise against a small working
/// set and verify candidates against the full pool; a failing example joins
/// the working set and the loop repeats. This is the classic CEGIS structure
/// of fastsynth with example-checking as the verification oracle.
struct CegisStats {
  std::size_t iterations = 0;
  std::size_t working_set = 0;
  SynthStats inner;
};

class CegisSynth {
public:
  CegisSynth(const Schema& schema, Grammar grammar)
      : schema_(schema), grammar_(std::move(grammar)) {}

  /// Smallest expression consistent with every example, or nullptr.
  ExprPtr synthesize(const std::vector<UpdateExample>& examples,
                     CegisStats* stats = nullptr) const;

  /// Initial working-set size.
  static constexpr std::size_t kInitialExamples = 4;
  /// Abort threshold: CEGIS rounds (each adds one counterexample).
  static constexpr std::size_t kMaxIterations = 64;

private:
  const Schema& schema_;
  Grammar grammar_;
};

}  // namespace t2m

#endif  // T2M_SYNTH_CEGIS_H
