#include "src/sim/xhci/slot_fsm.h"

#include <stdexcept>

#include "src/trace/recorder.h"

namespace t2m::sim {

const char* slot_command_name(SlotCommand cmd) {
  switch (cmd) {
    case SlotCommand::EnableSlot: return "CR_ENABLE_SLOT";
    case SlotCommand::DisableSlot: return "CR_DISABLE_SLOT";
    case SlotCommand::AddrDevBsr0: return "CR_ADDR_DEV_BSR0";
    case SlotCommand::AddrDevBsr1: return "CR_ADDR_DEV_BSR1";
    case SlotCommand::ConfigureEnd: return "CR_CONFIG_END";
    case SlotCommand::DeconfigureEnd: return "CR_DECONFIG_END";
    case SlotCommand::StopEnd: return "CR_STOP_END";
    case SlotCommand::ResetDevice: return "CR_RESET_DEVICE";
  }
  return "?";
}

const char* slot_state_name(SlotState state) {
  switch (state) {
    case SlotState::Disabled: return "Disabled";
    case SlotState::Enabled: return "Enabled";
    case SlotState::Default: return "Default";
    case SlotState::Addressed: return "Addressed";
    case SlotState::Configured: return "Configured";
  }
  return "?";
}

bool SlotFsm::apply(SlotCommand cmd) {
  switch (cmd) {
    case SlotCommand::EnableSlot:
      if (state_ != SlotState::Disabled) return false;
      state_ = SlotState::Enabled;
      return true;
    case SlotCommand::DisableSlot:
      if (state_ == SlotState::Disabled) return false;
      state_ = SlotState::Disabled;
      return true;
    case SlotCommand::AddrDevBsr0:
      if (state_ != SlotState::Enabled && state_ != SlotState::Default) return false;
      state_ = SlotState::Addressed;
      return true;
    case SlotCommand::AddrDevBsr1:
      if (state_ != SlotState::Enabled) return false;
      state_ = SlotState::Default;
      return true;
    case SlotCommand::ConfigureEnd:
      if (state_ != SlotState::Addressed) return false;
      state_ = SlotState::Configured;
      return true;
    case SlotCommand::DeconfigureEnd:
      if (state_ != SlotState::Configured) return false;
      state_ = SlotState::Addressed;
      return true;
    case SlotCommand::StopEnd:
      // Endpoint stopped: QEMU's storage device needs reconfiguration
      // before further endpoint commands, so the slot drops to Addressed.
      if (state_ != SlotState::Configured) return false;
      state_ = SlotState::Addressed;
      return true;
    case SlotCommand::ResetDevice:
      if (state_ != SlotState::Addressed && state_ != SlotState::Configured) return false;
      state_ = SlotState::Default;
      return true;
  }
  return false;
}

Trace generate_slot_trace(const SlotDriverConfig& config) {
  TraceRecorder rec;
  const VarIndex cmd = rec.declare_cat(
      "cmd",
      {"__start", "CR_ENABLE_SLOT", "CR_DISABLE_SLOT", "CR_ADDR_DEV_BSR0",
       "CR_ADDR_DEV_BSR1", "CR_CONFIG_END", "CR_DECONFIG_END", "CR_STOP_END",
       "CR_RESET_DEVICE"},
      "__start");
  // Initial observation: the slot before any command, so the first command
  // becomes a proper transition of the learned model.
  rec.commit();

  SlotFsm fsm;
  const auto issue = [&](SlotCommand c) {
    if (!fsm.apply(c)) {
      throw std::logic_error(std::string("slot driver issued invalid command ") +
                             slot_command_name(c) + " in state " +
                             slot_state_name(fsm.state()));
    }
    rec.set_sym(cmd, slot_command_name(c));
    rec.commit();
  };

  for (std::size_t session = 0; session < config.sessions; ++session) {
    issue(SlotCommand::EnableSlot);
    issue(SlotCommand::AddrDevBsr0);
    for (std::size_t i = 0; i < config.stop_cycles; ++i) {
      issue(SlotCommand::ConfigureEnd);
      issue(SlotCommand::StopEnd);
    }
    issue(SlotCommand::ConfigureEnd);
    if (config.exercise_reset) {
      issue(SlotCommand::ResetDevice);
      issue(SlotCommand::AddrDevBsr0);
      issue(SlotCommand::ConfigureEnd);
    }
    issue(SlotCommand::DisableSlot);
  }
  return rec.take();
}

}  // namespace t2m::sim
