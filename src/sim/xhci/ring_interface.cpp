#include "src/sim/xhci/ring_interface.h"

#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m::sim {

namespace {

/// Internal transaction engine: emits one event per ring operation.
class RingSession {
public:
  explicit RingSession(TraceRecorder& rec, VarIndex op) : rec_(rec), op_(op) {}

  void emit(const char* event) {
    rec_.set_sym(op_, event);
    rec_.commit();
  }

  /// Host controller writes a port-status-change event on the event ring.
  void port_status_change() {
    emit("xhci_write");
    emit("ErPSC");
    emit("CCSuccess");
  }

  /// Driver queues a command TRB; controller fetches it, executes and posts
  /// a command-completion event.
  void command(const char* command_trb) {
    emit("xhci_ring_fetch");
    emit(command_trb);
    emit("xhci_write");
    emit("ErCC");
    emit("CCSuccess");
  }

  /// Control transfer: setup/data/status stages on the control endpoint.
  void control_transfer() {
    emit("xhci_ring_fetch");
    emit("TRSetup");
    emit("TRData");
    emit("TRStatus");
    emit("xhci_write");
    emit("ErTransfer");
    emit("CCSuccess");
  }

  /// Bulk transfer: a normal TRB followed by the status stage.
  void bulk_transfer() {
    emit("xhci_ring_fetch");
    emit("TRNormal");
    emit("TRStatus");
    emit("xhci_write");
    emit("ErTransfer");
    emit("CCSuccess");
  }

  /// Ring wrap: the controller fetches the link TRB at the segment end.
  void ring_wrap() {
    emit("xhci_ring_fetch");
    emit("TRBReserved");
  }

private:
  TraceRecorder& rec_;
  VarIndex op_;
};

}  // namespace

Trace generate_usb_attach_trace(const RingInterfaceConfig& config) {
  TraceRecorder rec;
  const VarIndex op = rec.declare_cat(
      "op",
      {"__start", "xhci_ring_fetch", "xhci_write", "CrES", "CrAD", "CrCE", "TRSetup",
       "TRData", "TRStatus", "TRNormal", "TRBReserved", "ErCC", "ErPSC", "ErTransfer",
       "CCSuccess"},
      "__start");
  rec.commit();  // idle interface before the attach, see slot_fsm.cpp
  RingSession session(rec, op);
  Rng rng(config.seed);

  // Attach: the hub reports the new device, then enumeration commands run.
  session.port_status_change();
  session.command("CrES");  // Enable Slot
  session.command("CrAD");  // Address Device
  session.command("CrCE");  // Configure Endpoint

  // Storage session: interleave control and bulk transfers. Control
  // transfers (descriptor reads) front-load the session, as a real
  // enumeration would.
  std::size_t controls_left = config.control_transfers;
  std::size_t bulks_left = config.bulk_transfers;
  std::size_t since_wrap = 0;
  while (controls_left + bulks_left > 0) {
    const bool do_control =
        controls_left > 0 && (bulks_left == 0 || controls_left * 6 >= bulks_left);
    if (do_control) {
      session.control_transfer();
      --controls_left;
    } else {
      session.bulk_transfer();
      --bulks_left;
    }
    ++since_wrap;
    if (config.ring_wrap_every != 0 && since_wrap >= config.ring_wrap_every) {
      session.ring_wrap();
      since_wrap = 0;
    }
  }

  // Detach: port change plus the slot teardown command.
  session.port_status_change();
  session.command("CrES");
  return rec.take();
}

}  // namespace t2m::sim
