#ifndef T2M_SIM_XHCI_RING_INTERFACE_H
#define T2M_SIM_XHCI_RING_INTERFACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace t2m::sim {

/// Command-ring / event-ring transaction engine: the QEMU USB interface
/// substitute for the paper's "USB Attach" benchmark. The driver attaches a
/// virtual storage device and runs a session; every ring fetch and ring
/// write is recorded together with the TRB (Transfer Request Block) type it
/// carries, using the vocabulary of Fig. 3:
///
///   xhci_ring_fetch, xhci_write        ring operations
///   CrES, CrAD, CrCE                   command TRBs (enable slot, address
///                                      device, configure endpoint)
///   TRSetup, TRData, TRStatus, TRNormal transfer TRBs
///   TRBReserved                        link TRB at ring wrap
///   ErCC, ErPSC, ErTransfer            event TRBs (command completion,
///                                      port status change, transfer)
///   CCSuccess                          completion code
struct RingInterfaceConfig {
  std::size_t control_transfers = 5;
  std::size_t bulk_transfers = 32;
  /// Insert a link TRB (TRBReserved) after this many transfers (ring wrap);
  /// 0 disables.
  std::size_t ring_wrap_every = 12;
  std::uint64_t seed = 3;
};

/// Runs the attach session and returns the event trace (single categorical
/// variable "op"); default configuration yields the paper's 259 events.
Trace generate_usb_attach_trace(const RingInterfaceConfig& config = {});

}  // namespace t2m::sim

#endif  // T2M_SIM_XHCI_RING_INTERFACE_H
