#ifndef T2M_SIM_XHCI_SLOT_FSM_H
#define T2M_SIM_XHCI_SLOT_FSM_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace t2m::sim {

/// xHCI device-slot states (Intel xHCI spec, section 4.5.3).
enum class SlotState : std::uint8_t {
  Disabled,
  Enabled,
  Default,
  Addressed,
  Configured,
};

/// Slot-level commands observed at the command ring. Names follow the
/// paper's Fig. 1 labels.
enum class SlotCommand : std::uint8_t {
  EnableSlot,     // CR_ENABLE_SLOT
  DisableSlot,    // CR_DISABLE_SLOT
  AddrDevBsr0,    // CR_ADDR_DEV with BSR=0 (Enabled -> Addressed)
  AddrDevBsr1,    // CR_ADDR_DEV with BSR=1 (Enabled -> Default)
  ConfigureEnd,   // CR_CONFIG_END (Configure Endpoint)
  DeconfigureEnd, // CR_CONFIG_END with DC=1 (back to Addressed)
  StopEnd,        // CR_STOP_END (Stop Endpoint; slot stays Configured)
  ResetDevice,    // CR_RESET_DEVICE (Addressed/Configured -> Default)
};

const char* slot_command_name(SlotCommand cmd);
const char* slot_state_name(SlotState state);

/// The slot state machine as QEMU implements it: commands either advance the
/// state per the datasheet diagram or are rejected (returning false) when
/// issued from the wrong state.
class SlotFsm {
public:
  SlotState state() const { return state_; }
  bool apply(SlotCommand cmd);
  void hard_reset() { state_ = SlotState::Disabled; }

private:
  SlotState state_ = SlotState::Disabled;
};

/// The "application load": a driver session against a virtual USB storage
/// device. Attach, address, configure, run transfers with periodic endpoint
/// stops, occasionally reset the device and re-configure, finally disable.
/// Produces the paper's 39-command slot trace by default.
struct SlotDriverConfig {
  std::size_t sessions = 3;           ///< attach/detach cycles
  std::size_t stop_cycles = 3;        ///< CONFIG_END / STOP_END repetitions
  bool exercise_reset = true;
};

/// Executes the driver script against a SlotFsm and records the accepted
/// commands as a single categorical-variable trace ("cmd").
Trace generate_slot_trace(const SlotDriverConfig& config = {});

}  // namespace t2m::sim

#endif  // T2M_SIM_XHCI_SLOT_FSM_H
