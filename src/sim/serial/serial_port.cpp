#include "src/sim/serial/serial_port.h"

#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m::sim {

bool SerialPort::read() {
  if (!can_read()) return false;
  --length_;
  return true;
}

bool SerialPort::write() {
  if (!can_write()) return false;
  ++length_;
  return true;
}

bool SerialPort::reset() {
  if (length_ == 0) return false;  // reset of an empty queue is a no-op
  length_ = 0;
  return true;
}

Trace generate_serial_trace(const SerialPortConfig& config) {
  TraceRecorder rec;
  const VarIndex ev = rec.declare_cat("ev", {"idle", "read", "write", "reset"}, "idle");
  const VarIndex x = rec.declare_int("x", 0);

  SerialPort port(config.capacity);
  Rng rng(config.seed);
  rec.commit();  // initial idle observation (empty queue)
  std::size_t emitted = 0;
  while (emitted < config.operations) {
    const double roll = rng.unit();
    const char* op;
    bool applied;
    const std::int64_t before = port.length();
    if (roll < config.p_write) {
      op = "write";
      applied = port.write();
    } else if (roll < config.p_write + config.p_read) {
      op = "read";
      applied = port.read();
    } else {
      op = "reset";
      applied = port.reset();
    }
    if (!applied) continue;  // rejected ops leave no trace rows

    rec.set_sym(ev, op);
    rec.set_int(x, before);
    rec.commit();
    rec.set_sym(ev, "idle");
    rec.set_int(x, port.length());
    rec.commit();
    ++emitted;
  }
  return rec.take();
}

}  // namespace t2m::sim
