#ifndef T2M_SIM_SERIAL_SERIAL_PORT_H
#define T2M_SIM_SERIAL_SERIAL_PORT_H

#include <cstdint>

#include "src/automaton/nfa.h"
#include "src/trace/trace.h"

namespace t2m::sim {

/// QEMU serial I/O port substitute: a bounded FIFO with read, write and
/// reset operations. The trace records the Boolean-style operation events
/// alongside the numeric queue length, two rows per operation (the operation
/// row, then the effect row with the updated length), which is what makes
/// event edges (`read`) and data edges (`x' = x - 1`) alternate in the
/// learned model (Fig. 2b).
struct SerialPortConfig {
  std::int64_t capacity = 16;
  std::size_t operations = 1038;  ///< two trace rows each => 2076 observations
  std::uint64_t seed = 11;
  double p_write = 0.46;
  double p_read = 0.44;  ///< remainder resets (paper: "frequent resets")
};

/// The FIFO device model itself, usable directly by library clients.
class SerialPort {
public:
  explicit SerialPort(std::int64_t capacity) : capacity_(capacity) {}

  std::int64_t length() const { return length_; }
  std::int64_t capacity() const { return capacity_; }
  bool can_read() const { return length_ > 0; }
  bool can_write() const { return length_ < capacity_; }

  /// Each returns true when the operation applied (reads on an empty queue
  /// and writes on a full one are rejected, mirroring the device).
  bool read();
  bool write();
  bool reset();

private:
  std::int64_t capacity_;
  std::int64_t length_ = 0;
};

Trace generate_serial_trace(const SerialPortConfig& config = {});

}  // namespace t2m::sim

#endif  // T2M_SIM_SERIAL_SERIAL_PORT_H
