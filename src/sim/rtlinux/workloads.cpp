#include "src/sim/rtlinux/workloads.h"

namespace t2m::sim {

SchedulerSimConfig pi_stress_load(std::size_t events) {
  SchedulerSimConfig config;
  config.min_events = events;
  config.seed = 42;
  config.p_preempt = 0.35;
  config.p_early_wake = 0.0;
  return config;
}

SchedulerSimConfig pi_stress_with_corner_module(std::size_t events) {
  SchedulerSimConfig config = pi_stress_load(events);
  config.seed = 43;
  config.p_early_wake = 0.08;
  return config;
}

Trace generate_pi_stress_trace(std::size_t events) {
  return generate_sched_trace(pi_stress_load(events));
}

Trace generate_full_coverage_sched_trace(std::size_t events) {
  return generate_sched_trace(pi_stress_with_corner_module(events));
}

}  // namespace t2m::sim
