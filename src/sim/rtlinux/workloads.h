#ifndef T2M_SIM_RTLINUX_WORKLOADS_H
#define T2M_SIM_RTLINUX_WORKLOADS_H

#include "src/sim/rtlinux/scheduler.h"

namespace t2m::sim {

/// The paper's two system loads for the PREEMPT_RT experiment:
///
/// * pi_stress from rt-tests: heavy priority-inversion stressing, plenty of
///   preemption and blocking, but wakeups never race the suspension path —
///   some reference-model states stay uncovered.
/// * the additional corner-case kernel module: injects wakeups between
///   set_state_sleepable and the suspending switch, covering the
///   set_state_runnable path and completing the 8-state model of Fig. 6.
SchedulerSimConfig pi_stress_load(std::size_t events = 20165);
SchedulerSimConfig pi_stress_with_corner_module(std::size_t events = 20165);

/// Traces for both loads.
Trace generate_pi_stress_trace(std::size_t events = 20165);
Trace generate_full_coverage_sched_trace(std::size_t events = 20165);

}  // namespace t2m::sim

#endif  // T2M_SIM_RTLINUX_WORKLOADS_H
