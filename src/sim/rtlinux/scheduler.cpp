#include "src/sim/rtlinux/scheduler.h"

#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m::sim {

namespace {

/// Thread states of the monitored task, as the kernel model distinguishes
/// them. The simulator enforces legal event orderings by construction.
enum class TaskState {
  WaitingCpu,  // runnable, off CPU
  Running,     // on CPU
  Sleepable,   // on CPU, marked about-to-block
  Suspended,   // off CPU, sleeping
};

}  // namespace

Trace SchedulerSim::run() {
  TraceRecorder rec;
  std::vector<std::string> symbols = sched_event_names();
  symbols.insert(symbols.begin(), "__start");
  const VarIndex ev = rec.declare_cat("event", std::move(symbols), "__start");
  rec.commit();  // thread exists but has not been scheduled yet
  Rng rng(config_.seed);

  const auto emit = [&](const char* name) {
    rec.set_sym(ev, name);
    rec.commit();
  };

  TaskState state = TaskState::WaitingCpu;
  while (rec.committed() < config_.min_events) {
    switch (state) {
      case TaskState::WaitingCpu:
        // The scheduler picks the monitored thread.
        emit("sched_switch_in");
        state = TaskState::Running;
        break;

      case TaskState::Running:
        if (rng.chance(config_.p_preempt)) {
          // A higher-priority task becomes runnable: the tick handler flags
          // the thread, the scheduler runs and switches it out preempted.
          emit("set_need_resched");
          emit("sched_entry");
          emit("sched_switch_preempt");
          state = TaskState::WaitingCpu;
        } else {
          // The thread finishes its burst and prepares to block.
          emit("set_state_sleepable");
          state = TaskState::Sleepable;
        }
        break;

      case TaskState::Sleepable:
        if (rng.chance(config_.p_early_wake)) {
          // Corner case: the wakeup races in before the thread suspends, so
          // it flips itself back to runnable and keeps the CPU.
          emit("sched_waking");
          emit("set_state_runnable");
          state = TaskState::Running;
        } else {
          emit("sched_entry");
          emit("sched_switch_suspend");
          state = TaskState::Suspended;
        }
        break;

      case TaskState::Suspended:
        // Timer/IRQ context delivers the wakeup; the thread queues for CPU.
        emit("sched_waking");
        state = TaskState::WaitingCpu;
        break;
    }
  }
  return rec.take();
}

Trace generate_sched_trace(const SchedulerSimConfig& config) {
  return SchedulerSim(config).run();
}

}  // namespace t2m::sim
