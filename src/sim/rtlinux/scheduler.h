#ifndef T2M_SIM_RTLINUX_SCHEDULER_H
#define T2M_SIM_RTLINUX_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace t2m::sim {

/// Event vocabulary of the PREEMPT_RT thread model (de Oliveira et al.,
/// EWiLi'18), as traced by ftrace for the thread under analysis.
inline const std::vector<std::string>& sched_event_names() {
  static const std::vector<std::string> names = {
      "sched_switch_in",       // thread scheduled onto the CPU
      "sched_switch_suspend",  // context switch out, thread going to sleep
      "sched_switch_preempt",  // context switch out, thread still runnable
      "sched_waking",          // another context wakes the thread
      "sched_entry",           // scheduler invoked while thread owns the CPU
      "set_state_sleepable",   // thread marks itself about-to-block
      "set_state_runnable",    // thread reverts to runnable (wake raced in)
      "set_need_resched",      // preemption flag raised against the thread
  };
  return names;
}

/// Single-core preemptive scheduler simulation. One monitored RT thread
/// executes blocking cycles; a higher-priority thread preempts it; a waker
/// (timer/IRQ context) delivers wakeups, occasionally racing the thread's
/// own suspension (the corner case the paper needed an extra kernel module
/// to exercise). Events are emitted for the monitored thread only, matching
/// the paper's per-thread ftrace setup.
struct SchedulerSimConfig {
  std::size_t min_events = 20165;  ///< stop at the end of the cycle reaching this
  std::uint64_t seed = 42;
  /// Probability a running burst ends in preemption rather than blocking.
  double p_preempt = 0.35;
  /// Probability a wakeup races the thread between set_state_sleepable and
  /// the suspending context switch (0 = never; the pi_stress-only load).
  double p_early_wake = 0.0;
};

class SchedulerSim {
public:
  explicit SchedulerSim(const SchedulerSimConfig& config) : config_(config) {}

  /// Runs the simulation and returns the monitored thread's event trace
  /// (single categorical variable "event").
  Trace run();

private:
  SchedulerSimConfig config_;
};

Trace generate_sched_trace(const SchedulerSimConfig& config = {});

}  // namespace t2m::sim

#endif  // T2M_SIM_RTLINUX_SCHEDULER_H
