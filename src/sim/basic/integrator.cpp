#include "src/sim/basic/integrator.h"

#include <algorithm>

#include "src/trace/recorder.h"
#include "src/util/rng.h"

namespace t2m::sim {

Trace generate_integrator_trace(const IntegratorConfig& config) {
  TraceRecorder rec;
  const VarIndex ip_var = rec.declare_int("ip", 0);
  const VarIndex op_var = rec.declare_int("op", 0);

  Rng rng(config.seed);
  std::int64_t ip = 0;
  std::int64_t op = 0;
  for (std::size_t i = 0; i < config.length; ++i) {
    rec.set_int(ip_var, ip);
    rec.set_int(op_var, op);
    rec.commit();
    // Anti-windup integration: saturate the accumulator.
    op = std::clamp(op + ip, -config.saturation, config.saturation);
    // Lazy random walk of the input over {-1, 0, 1}, stepping through 0:
    // jumps of 2 never occur, like a bandwidth-limited physical signal.
    if (!rng.chance(config.persistence)) {
      if (ip == 0) {
        ip = rng.chance(0.5) ? 1 : -1;
      } else {
        ip = 0;
      }
    }
  }
  return rec.take();
}

}  // namespace t2m::sim
