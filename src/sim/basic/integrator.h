#ifndef T2M_SIM_BASIC_INTEGRATOR_H
#define T2M_SIM_BASIC_INTEGRATOR_H

#include <cstdint>

#include "src/trace/trace.h"

namespace t2m::sim {

/// The paper's anti-windup integrator: output op accumulates the input ip,
/// saturating at +/-saturation. The input is restricted to {-1, 0, 1} and
/// follows a lazy random walk that moves through 0 (so mode switches always
/// enter or leave saturation cleanly, as a physical signal would). The trace
/// observes (ip, op) pairs; Fig. 4 expects a 3-state model with predicates
/// op' = op + ip, op' = op, and the merged saturation guard.
struct IntegratorConfig {
  std::int64_t saturation = 5;
  std::size_t length = 32768;  ///< number of observations
  std::uint64_t seed = 7;
  /// Probability the input keeps its value at each step.
  double persistence = 0.85;
};

Trace generate_integrator_trace(const IntegratorConfig& config = {});

/// Variable name of the input (marked as an input in AbstractionConfig).
inline const char* integrator_input_var() { return "ip"; }

}  // namespace t2m::sim

#endif  // T2M_SIM_BASIC_INTEGRATOR_H
