#ifndef T2M_SIM_BASIC_COUNTER_H
#define T2M_SIM_BASIC_COUNTER_H

#include <cstdint>

#include "src/trace/trace.h"

namespace t2m::sim {

/// The paper's counter benchmark: a program counting 1 up to a threshold T
/// and back down to 1, repeated; the trace observes the counter value. With
/// T = 128 and length 447 this is the Table I/II "Counter" row, and the
/// expected learned model is Fig. 5 (4 states, predicates x' = x+1,
/// x >= 128, x' = x-1, x <= 1).
struct CounterConfig {
  std::int64_t threshold = 128;
  std::size_t length = 447;  ///< number of observations to record
  std::int64_t start = 1;
};

Trace generate_counter_trace(const CounterConfig& config = {});

}  // namespace t2m::sim

#endif  // T2M_SIM_BASIC_COUNTER_H
