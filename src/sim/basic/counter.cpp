#include "src/sim/basic/counter.h"

#include <stdexcept>

#include "src/trace/recorder.h"

namespace t2m::sim {

Trace generate_counter_trace(const CounterConfig& config) {
  if (config.threshold <= config.start) {
    throw std::invalid_argument("counter: threshold must exceed start");
  }
  TraceRecorder rec;
  const VarIndex x = rec.declare_int("x", config.start);

  std::int64_t value = config.start;
  std::int64_t direction = 1;
  for (std::size_t i = 0; i < config.length; ++i) {
    rec.set_int(x, value);
    rec.commit();
    if (value >= config.threshold) direction = -1;
    if (value <= config.start) direction = 1;
    value += direction;
  }
  return rec.take();
}

}  // namespace t2m::sim
