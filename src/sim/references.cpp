#include "src/sim/references.h"

#include <map>
#include <string>
#include <vector>

namespace t2m::sim {

namespace {

/// Small builder: transitions named by label; PredIds interned on the fly.
class RefBuilder {
public:
  RefBuilder& edge(StateId src, const std::string& label, StateId dst) {
    const auto [it, inserted] = ids_.emplace(label, names_.size());
    if (inserted) names_.push_back(label);
    edges_.push_back(Transition{src, it->second, dst});
    return *this;
  }

  Nfa build(std::size_t states, StateId initial = 0) {
    Nfa out(states, initial);
    for (const Transition& t : edges_) out.add_transition(t.src, t.pred, t.dst);
    out.set_pred_names(names_);
    return out;
  }

private:
  std::map<std::string, PredId> ids_;
  std::vector<std::string> names_;
  std::vector<Transition> edges_;
};

}  // namespace

Nfa reference_usb_slot_datasheet() {
  // States: 0 Disabled, 1 Enabled, 2 Default, 3 Addressed, 4 Configured.
  RefBuilder b;
  b.edge(0, "CR_ENABLE_SLOT", 1);
  b.edge(1, "CR_ADDR_DEV_BSR0", 3);
  b.edge(1, "CR_ADDR_DEV_BSR1", 2);
  b.edge(2, "CR_ADDR_DEV_BSR0", 3);
  b.edge(3, "CR_CONFIG_END", 4);
  b.edge(4, "CR_DECONFIG_END", 3);
  b.edge(4, "CR_STOP_END", 3);
  b.edge(3, "CR_RESET_DEVICE", 2);
  b.edge(4, "CR_RESET_DEVICE", 2);
  b.edge(1, "CR_DISABLE_SLOT", 0);
  b.edge(2, "CR_DISABLE_SLOT", 0);
  b.edge(3, "CR_DISABLE_SLOT", 0);
  b.edge(4, "CR_DISABLE_SLOT", 0);
  return b.build(5, 0);
}

Nfa reference_usb_slot_expected() {
  // Fig. 1b: the behaviours the driver load actually exercises.
  RefBuilder b;
  b.edge(0, "CR_ENABLE_SLOT", 1);
  b.edge(1, "CR_ADDR_DEV_BSR0", 2);
  b.edge(2, "CR_CONFIG_END", 3);
  b.edge(3, "CR_STOP_END", 2);
  b.edge(3, "CR_RESET_DEVICE", 1);
  b.edge(3, "CR_DISABLE_SLOT", 0);
  return b.build(4, 0);
}

Nfa reference_counter_model(std::int64_t threshold) {
  // Fig. 5: 0 ascending, 1 at peak, 2 descending, 3 at trough.
  RefBuilder b;
  const std::string up = "x' = x + 1";
  const std::string down = "x' = x - 1";
  const std::string peak = "x >= " + std::to_string(threshold);
  const std::string trough = "x <= 1";
  b.edge(0, up, 0);
  b.edge(0, peak, 1);
  b.edge(1, down, 2);
  b.edge(2, down, 2);
  b.edge(2, trough, 3);
  b.edge(3, up, 0);
  return b.build(4, 0);
}

Nfa reference_sched_thread_model() {
  // Fig. 6 / the simulator's ground truth:
  // 0 WaitingCpu, 1 Running, 2 Sleepable, 3 NeedResched, 4 WokenOnCpu,
  // 5 SchedOutSleep, 6 Suspended, 7 SchedOutPreempt.
  RefBuilder b;
  b.edge(0, "sched_switch_in", 1);
  b.edge(1, "set_state_sleepable", 2);
  b.edge(1, "set_need_resched", 3);
  b.edge(2, "sched_waking", 4);
  b.edge(4, "set_state_runnable", 1);
  b.edge(2, "sched_entry", 5);
  b.edge(5, "sched_switch_suspend", 6);
  b.edge(6, "sched_waking", 0);
  b.edge(3, "sched_entry", 7);
  b.edge(7, "sched_switch_preempt", 0);
  return b.build(8, 0);
}

}  // namespace t2m::sim
