#ifndef T2M_SIM_SYNTHETIC_PATTERN_EVENTS_H
#define T2M_SIM_SYNTHETIC_PATTERN_EVENTS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace t2m::sim {

/// Synthetic million-event workload for the streaming ingest path: a base
/// event cycle with occasional "burst" digressions, i.e. the output of a
/// small automaton run for `events` steps. Long, learnable, and with a
/// window-dedup set bounded by the pattern structure rather than the trace
/// length — exactly the regime the paper's segmentation targets.
struct PatternEventConfig {
  std::size_t events = 1'000'000;   ///< total events emitted
  std::size_t pattern_length = 6;   ///< length of the base cycle
  std::size_t bursts = 2;           ///< number of alternative digressions
  std::size_t burst_length = 3;     ///< events per digression
  double burst_prob = 0.02;         ///< digression probability per cycle end
  std::uint64_t seed = 1;
};

/// Streams the symbol ids of the generated events into `emit`, one call per
/// event, without materialising anything. Symbol id k names event "evk"
/// (base cycle: 0..pattern_length-1; burst b: pattern_length + b*burst_length ..).
void for_each_pattern_event(const PatternEventConfig& config,
                            const std::function<void(std::size_t)>& emit);

/// Spelling of symbol id `sym` ("ev0", "ev1", ...).
std::string pattern_event_name(std::size_t sym);

/// States of the generating automaton — an upper bound (and good initial
/// guess) for the learned state count.
std::size_t pattern_generator_states(const PatternEventConfig& config);

/// Writes the workload as a simplified-ftrace log ("<t>.000000 <event>"),
/// streaming — O(1) memory for any event count.
void write_pattern_event_ftrace(std::ostream& os, const PatternEventConfig& config);

/// Writes the workload in the `# var` text trace format, streaming.
void write_pattern_event_text(std::ostream& os, const PatternEventConfig& config);

/// Materialises the workload as an in-memory Trace (reference path for the
/// differential tests and the ingest comparison bench).
Trace generate_pattern_event_trace(const PatternEventConfig& config);

}  // namespace t2m::sim

#endif  // T2M_SIM_SYNTHETIC_PATTERN_EVENTS_H
