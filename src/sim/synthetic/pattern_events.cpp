#include "src/sim/synthetic/pattern_events.h"

#include <ostream>

#include "src/util/rng.h"

namespace t2m::sim {

void for_each_pattern_event(const PatternEventConfig& config,
                            const std::function<void(std::size_t)>& emit) {
  Rng rng(config.seed);
  const std::size_t p = config.pattern_length == 0 ? 1 : config.pattern_length;
  std::size_t emitted = 0;
  while (emitted < config.events) {
    // One base cycle: ev0 .. ev(p-1).
    for (std::size_t i = 0; i < p && emitted < config.events; ++i, ++emitted) {
      emit(i);
    }
    // Occasional digression into one of the burst sub-patterns, each with
    // its own disjoint symbol block, then back to the cycle start.
    if (config.bursts > 0 && config.burst_length > 0 && rng.chance(config.burst_prob)) {
      const std::size_t b = rng.below(config.bursts);
      const std::size_t base = p + b * config.burst_length;
      for (std::size_t i = 0; i < config.burst_length && emitted < config.events;
           ++i, ++emitted) {
        emit(base + i);
      }
    }
  }
}

std::string pattern_event_name(std::size_t sym) { return "ev" + std::to_string(sym); }

std::size_t pattern_generator_states(const PatternEventConfig& config) {
  const std::size_t p = config.pattern_length == 0 ? 1 : config.pattern_length;
  return p + config.bursts * config.burst_length;
}

void write_pattern_event_ftrace(std::ostream& os, const PatternEventConfig& config) {
  std::size_t t = 0;
  for_each_pattern_event(config, [&](std::size_t sym) {
    os << t++ << ".000000 " << pattern_event_name(sym) << '\n';
  });
}

void write_pattern_event_text(std::ostream& os, const PatternEventConfig& config) {
  os << "# t2m-trace v1\n# var event cat\n";
  for_each_pattern_event(config,
                         [&](std::size_t sym) { os << pattern_event_name(sym) << '\n'; });
}

Trace generate_pattern_event_trace(const PatternEventConfig& config) {
  Schema schema;
  const VarIndex ev = schema.add_cat("event", {}, std::nullopt);
  Trace trace(std::move(schema));
  for_each_pattern_event(config, [&](std::size_t sym) {
    const auto id = trace.mutable_schema().sym_id_intern(ev, pattern_event_name(sym));
    trace.append({Value::of_sym(id)});
  });
  return trace;
}

}  // namespace t2m::sim
