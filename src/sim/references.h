#ifndef T2M_SIM_REFERENCES_H
#define T2M_SIM_REFERENCES_H

#include "src/automaton/nfa.h"

namespace t2m::sim {

/// Hand-coded reference automata, playing the role of the paper's published
/// diagrams: the Intel datasheet slot machine (Fig. 1a), the models the
/// framework is expected to learn (Figs. 1b, 4, 5), and the PREEMPT_RT
/// thread model of [14] (Fig. 6). Edge labels are predicate names, so these
/// compare against learned models via isomorphism (by name) or coverage.

/// Full xHCI slot state machine from the datasheet, including transitions
/// no application load exercises (BSR=1 addressing, deconfiguration).
Nfa reference_usb_slot_datasheet();

/// The 4-state slot model the paper's framework learns (Fig. 1b).
Nfa reference_usb_slot_expected();

/// The 4-state counter model (Fig. 5) for a threshold T.
Nfa reference_counter_model(std::int64_t threshold = 128);

/// The 8-state PREEMPT_RT thread scheduling model (Fig. 6 / ground truth of
/// the scheduler simulator).
Nfa reference_sched_thread_model();

}  // namespace t2m::sim

#endif  // T2M_SIM_REFERENCES_H
