#ifndef T2M_ABSTRACTION_ABSTRACTION_H
#define T2M_ABSTRACTION_ABSTRACTION_H

#include <string>
#include <vector>

#include "src/abstraction/predicate.h"
#include "src/trace/trace.h"

namespace t2m {

/// Which predicate-generation strategy to apply (DESIGN.md section 2).
enum class AbstractionMode {
  Auto,     ///< choose from the schema: Event / Numeric / Mixed
  Event,    ///< all-categorical traces: one destination-event atom per step
  Numeric,  ///< all-numeric traces: windowed update synthesis + mode guards
  Mixed,    ///< categorical + numeric: per-step atoms, pooled update synthesis
};

struct AbstractionConfig {
  /// Sliding window size w in observations (the paper fixes w = 3).
  std::size_t window = 3;
  /// Variables treated as environment inputs: they may appear on the
  /// right-hand side of updates and inside guards, but no update atom is
  /// synthesised for them (the integrator's `ip`).
  std::vector<std::string> input_vars;
  /// Merge guards whose occurrence contexts in P coincide into one
  /// disjunctive predicate (reproduces the paper's integrator predicate).
  bool merge_guards = true;
  /// Maximum AST size for synthesised update expressions. The default (one
  /// binary operator over leaves) keeps updates of the `x' = x + c` /
  /// `op' = op + ip` family while rejecting contrived constant combinations
  /// such as `x' = 127 + (128 - x)` at mode switches, which must become
  /// guards instead.
  std::size_t synth_max_size = 4;
};

/// Turns a concrete trace into the predicate sequence P consumed by the
/// model-construction algorithm. Throws std::invalid_argument when the trace
/// is too short (fewer than two observations) or the mode does not fit the
/// schema.
PredicateSequence abstract_trace(const Trace& trace, const AbstractionConfig& config = {},
                                 AbstractionMode mode = AbstractionMode::Auto);

/// Mode actually selected by Auto for this trace's schema.
AbstractionMode select_mode(const Schema& schema);

}  // namespace t2m

#endif  // T2M_ABSTRACTION_ABSTRACTION_H
