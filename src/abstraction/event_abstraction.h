#ifndef T2M_ABSTRACTION_EVENT_ABSTRACTION_H
#define T2M_ABSTRACTION_EVENT_ABSTRACTION_H

#include "src/abstraction/abstraction.h"

namespace t2m {

/// Mode E: all-categorical traces. Each step (v_t, v_t+1) is labelled by the
/// conjunction of destination atoms `v' = value` over the categorical
/// variables (a single atom for single-variable event traces, which is the
/// common case: USB slot commands, ring operations, sched events). Display
/// names are the bare event spellings so learned models read like the
/// paper's figures.
PredicateSequence abstract_event_trace(const Trace& trace, const AbstractionConfig& config);

}  // namespace t2m

#endif  // T2M_ABSTRACTION_EVENT_ABSTRACTION_H
