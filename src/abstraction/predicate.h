#ifndef T2M_ABSTRACTION_PREDICATE_H
#define T2M_ABSTRACTION_PREDICATE_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/base/schema.h"
#include "src/expr/expr.h"

namespace t2m {

/// The alphabet of a learned model: interned transition predicates. The
/// abstraction layer maps trace steps/windows to PredIds; the learner and the
/// state-merge baseline both consume the resulting predicate sequence.
class PredicateVocab {
public:
  PredicateVocab() = default;

  /// Interns an expression (structural equality) and returns its id.
  PredId intern(const ExprPtr& expr);

  /// Id of `expr` if already interned.
  std::optional<PredId> find(const ExprPtr& expr) const;

  std::size_t size() const { return exprs_.size(); }
  const ExprPtr& expr(PredId id) const { return exprs_.at(id); }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }

  /// Printable name of predicate `id` using `schema` variable names.
  std::string name(PredId id, const Schema& schema) const;
  /// All names, indexed by PredId (for Nfa::set_pred_names).
  std::vector<std::string> names(const Schema& schema) const;

  /// Replaces the expression behind `id` (used by guard merging, which turns
  /// two context-equivalent guards into one disjunction).
  void replace(PredId id, ExprPtr expr);

private:
  std::vector<ExprPtr> exprs_;
  std::unordered_map<ExprPtr, PredId, ExprPtrHash, ExprPtrEqual> index_;
};

/// A predicate sequence P = p1..pk over a vocabulary: the output of trace
/// abstraction and the input of model construction (Algorithm 1, line 14).
struct PredicateSequence {
  PredicateVocab vocab;
  std::vector<PredId> seq;
  /// Optional per-predicate display names overriding the printer (event
  /// abstraction uses bare event names, matching the paper's figures).
  std::vector<std::string> display_names;

  std::size_t length() const { return seq.size(); }

  /// Names for every predicate: display name when set, else printed form.
  std::vector<std::string> names_for(const Schema& schema) const {
    std::vector<std::string> out = vocab.names(schema);
    for (std::size_t i = 0; i < display_names.size() && i < out.size(); ++i) {
      if (!display_names[i].empty()) out[i] = display_names[i];
    }
    return out;
  }
};

/// Drops vocabulary entries that no longer occur in `seq` (artifacts of
/// re-labelling and guard merging) and renumbers the remaining predicates in
/// first-use order.
void compact_sequence(PredicateSequence& p);

}  // namespace t2m

#endif  // T2M_ABSTRACTION_PREDICATE_H
