#ifndef T2M_ABSTRACTION_PRED_STREAM_H
#define T2M_ABSTRACTION_PRED_STREAM_H

#include <optional>

#include "src/abstraction/predicate.h"
#include "src/base/schema.h"

namespace t2m {

/// Single-pass predicate source for the streaming learner. next() yields one
/// interned PredId per trace step, in trace order, abstracting observations
/// as they are consumed instead of materialising the full Trace. After
/// exhaustion, take_preds() surrenders the vocabulary (and display names)
/// accumulated while streaming — its `seq` is left empty; the consumer
/// decides how much of the id sequence, if any, to retain.
class PredStream {
public:
  virtual ~PredStream() = default;

  /// Next predicate id, or nullopt at end of stream. Implementations over
  /// concrete traces throw std::invalid_argument at exhaustion when the
  /// stream held fewer than two observations, mirroring abstract_trace.
  virtual std::optional<PredId> next() = 0;

  /// Vocabulary + display names built during streaming; valid once next()
  /// returned nullopt. Calling it earlier surrenders a partial vocabulary.
  virtual PredicateSequence take_preds() = 0;

  /// Schema the stream interned its observations against (symbol tables are
  /// complete once the stream is exhausted).
  virtual const Schema& schema() const = 0;
};

/// PredStream over an already-abstracted sequence; the reference adapter the
/// differential tests drive the streaming learner with.
class VectorPredStream : public PredStream {
public:
  VectorPredStream(PredicateSequence preds, const Schema& schema)
      : preds_(std::move(preds)), schema_(&schema) {}

  std::optional<PredId> next() override {
    if (pos_ >= preds_.seq.size()) return std::nullopt;
    return preds_.seq[pos_++];
  }

  PredicateSequence take_preds() override {
    PredicateSequence out = std::move(preds_);
    out.seq.clear();
    return out;
  }

  const Schema& schema() const override { return *schema_; }

private:
  PredicateSequence preds_;
  const Schema* schema_;
  std::size_t pos_ = 0;
};

}  // namespace t2m

#endif  // T2M_ABSTRACTION_PRED_STREAM_H
