#include "src/abstraction/event_abstraction.h"

#include <stdexcept>

namespace t2m {

PredicateSequence abstract_event_trace(const Trace& trace, const AbstractionConfig& config) {
  (void)config;  // windowing applies at segmentation time, not here
  const Schema& schema = trace.schema();
  if (!schema.all_categorical()) {
    throw std::invalid_argument("event abstraction requires all-categorical schema");
  }
  if (trace.size() < 2) {
    throw std::invalid_argument("event abstraction: trace needs at least two observations");
  }

  PredicateSequence out;
  for (std::size_t step = 0; step < trace.num_steps(); ++step) {
    const Valuation& next = trace.step_next(step);
    std::vector<ExprPtr> atoms;
    std::string display;
    for (VarIndex v = 0; v < schema.size(); ++v) {
      atoms.push_back(
          Expr::eq(Expr::var_ref(v, /*primed=*/true), Expr::constant(next[v])));
      if (!display.empty()) display += " & ";
      display += schema.format_value(v, next[v]);
    }
    const PredId id = out.vocab.intern(Expr::conj(std::move(atoms)));
    if (out.display_names.size() <= id) out.display_names.resize(id + 1);
    out.display_names[id] = display;
    out.seq.push_back(id);
  }
  return out;
}

}  // namespace t2m
