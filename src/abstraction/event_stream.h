#ifndef T2M_ABSTRACTION_EVENT_STREAM_H
#define T2M_ABSTRACTION_EVENT_STREAM_H

#include <optional>
#include <string>
#include <unordered_map>

#include "src/abstraction/pred_stream.h"
#include "src/trace/mmap_io.h"
#include "src/util/hash.h"

namespace t2m {

/// Push-based streaming counterpart of abstract_event_trace: feed one
/// observation at a time; each observation after the first yields the PredId
/// of the step ending there. The predicate expression, interning order and
/// display names are byte-identical to running abstract_event_trace over the
/// materialised trace (both depend only on the destination observation), so
/// the two paths are interchangeable and differential-testable.
class EventStreamAbstractor {
public:
  /// `schema` is read per call (not stored) because streaming readers intern
  /// new symbols into their schema as lines are consumed.
  std::optional<PredId> push(const Schema& schema, const Valuation& obs);

  /// Marks the stream as a continuation of an earlier one: the next push is
  /// treated as a step destination (yielding a PredId) instead of the
  /// trace's first observation. The sharded-ingest merge replays per-shard
  /// vocabularies through one global abstractor this way — the caller then
  /// owns the all-categorical precondition the first regular push would
  /// have checked. No-op once an observation was pushed.
  void prime() {
    if (observations_ == 0) observations_ = 1;
  }

  /// Observations pushed so far.
  std::size_t observations() const { return observations_; }

  /// Vocabulary + display names accumulated so far; `seq` is empty.
  PredicateSequence take();

private:
  struct ValuationHash {
    std::size_t operator()(const Valuation& v) const {
      std::uint64_t h = 0x51ed270b9f1c3f2dULL ^ v.size();
      for (const Value& x : v) {
        h = hash_combine(h, static_cast<std::uint64_t>(x.kind()));
        h = hash_combine(h, static_cast<std::uint64_t>(x.raw()));
      }
      return static_cast<std::size_t>(h);
    }
  };

  PredicateSequence preds_;
  /// The step predicate depends only on the destination valuation, so
  /// repeated observations (the whole point of a long trace) skip the Expr
  /// construction, interning and display formatting entirely — the memo
  /// yields the same ids in the same first-occurrence order.
  std::unordered_map<Valuation, PredId, ValuationHash> memo_;
  std::size_t observations_ = 0;
};

/// PredStream over a simplified/full-shape ftrace log served by a
/// LineReader: parses each line, interns the event symbol into a
/// single-variable categorical schema and abstracts the step — one pass,
/// holding one observation, never the trace. Equivalent to
/// read_ftrace + abstract_event_trace.
class FtracePredStream : public PredStream {
public:
  explicit FtracePredStream(LineReader& lines, std::string task_filter = "");

  std::optional<PredId> next() override;
  PredicateSequence take_preds() override { return abstractor_.take(); }
  const Schema& schema() const override { return schema_; }

private:
  LineReader& lines_;
  std::string task_filter_;
  Schema schema_;
  VarIndex ev_ = 0;
  EventStreamAbstractor abstractor_;
  // Parse buffers reused across next() calls — one allocation amortised
  // over the million-event loop, as the batch reader's loop-hoisted locals.
  std::string task_, event_;
  bool done_ = false;
};

/// PredStream over the `# var` text trace format (all-categorical schemas
/// only — the event abstraction's domain). Header and rows are parsed
/// exactly as read_trace_text does, including its error behaviour, but rows
/// are abstracted as they are read instead of collected.
class TextTracePredStream : public PredStream {
public:
  explicit TextTracePredStream(LineReader& lines);

  std::optional<PredId> next() override;
  PredicateSequence take_preds() override { return abstractor_.take(); }
  const Schema& schema() const override { return schema_; }

private:
  LineReader& lines_;
  Schema schema_;
  EventStreamAbstractor abstractor_;
  bool header_done_ = false;
  bool done_ = false;
};

}  // namespace t2m

#endif  // T2M_ABSTRACTION_EVENT_STREAM_H
