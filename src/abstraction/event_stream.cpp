#include "src/abstraction/event_stream.h"

#include <stdexcept>
#include <utility>

#include "src/trace/ftrace_io.h"
#include "src/trace/text_io.h"
#include "src/util/string_utils.h"

namespace t2m {

std::optional<PredId> EventStreamAbstractor::push(const Schema& schema,
                                                  const Valuation& obs) {
  if (observations_ == 0 && !schema.all_categorical()) {
    throw std::invalid_argument("event abstraction requires all-categorical schema");
  }
  ++observations_;
  if (observations_ == 1) return std::nullopt;  // first observation: no step yet

  const auto hit = memo_.find(obs);
  if (hit != memo_.end()) return hit->second;

  std::vector<ExprPtr> atoms;
  std::string display;
  for (VarIndex v = 0; v < schema.size(); ++v) {
    atoms.push_back(
        Expr::eq(Expr::var_ref(v, /*primed=*/true), Expr::constant(obs[v])));
    if (!display.empty()) display += " & ";
    display += schema.format_value(v, obs[v]);
  }
  const PredId id = preds_.vocab.intern(Expr::conj(std::move(atoms)));
  if (preds_.display_names.size() <= id) preds_.display_names.resize(id + 1);
  preds_.display_names[id] = std::move(display);
  memo_.emplace(obs, id);
  return id;
}

PredicateSequence EventStreamAbstractor::take() { return std::move(preds_); }

FtracePredStream::FtracePredStream(LineReader& lines, std::string task_filter)
    : lines_(lines), task_filter_(std::move(task_filter)) {
  ev_ = schema_.add_cat("event", {}, std::nullopt);
}

std::optional<PredId> FtracePredStream::next() {
  if (done_) return std::nullopt;
  std::string_view line;
  while (lines_.next(line)) {
    if (!parse_ftrace_line(line, task_, event_)) continue;
    if (!task_filter_.empty() && task_ != task_filter_) continue;
    const auto sym = schema_.sym_id_intern(ev_, event_);
    const auto id = abstractor_.push(schema_, {Value::of_sym(sym)});
    if (id) return id;
  }
  done_ = true;
  if (abstractor_.observations() < 2) {
    throw std::invalid_argument("event abstraction: trace needs at least two observations");
  }
  return std::nullopt;
}

TextTracePredStream::TextTracePredStream(LineReader& lines) : lines_(lines) {}

std::optional<PredId> TextTracePredStream::next() {
  if (done_) return std::nullopt;
  std::string_view raw;
  while (lines_.next(raw)) {
    const std::string_view trimmed = trim(raw);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      const auto fields = split_ws(trimmed.substr(1));
      if (!fields.empty() && fields[0] == "var") {
        if (header_done_) {
          throw std::invalid_argument("trace: '# var' after first data row");
        }
        parse_trace_var_decl(schema_, fields);
      }
      continue;
    }
    header_done_ = true;
    const auto fields = split_ws(trimmed);
    if (fields.size() != schema_.size()) {
      throw std::invalid_argument("trace: row width " + std::to_string(fields.size()) +
                                  " does not match schema width " +
                                  std::to_string(schema_.size()));
    }
    Valuation v(schema_.size());
    for (VarIndex i = 0; i < schema_.size(); ++i) {
      if (schema_.var(i).type == VarType::Cat) {
        v[i] = Value::of_sym(schema_.sym_id_intern(i, fields[i]));
      } else {
        v[i] = schema_.parse_value(i, fields[i]);
      }
    }
    const auto id = abstractor_.push(schema_, v);
    if (id) return id;
  }
  done_ = true;
  if (abstractor_.observations() < 2) {
    throw std::invalid_argument("event abstraction: trace needs at least two observations");
  }
  return std::nullopt;
}

}  // namespace t2m
