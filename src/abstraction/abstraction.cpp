#include "src/abstraction/abstraction.h"

#include <stdexcept>

#include "src/abstraction/event_abstraction.h"
#include "src/abstraction/mixed_abstraction.h"
#include "src/abstraction/numeric_abstraction.h"
#include "src/obs/trace.h"

namespace t2m {

AbstractionMode select_mode(const Schema& schema) {
  if (schema.all_categorical()) return AbstractionMode::Event;
  if (schema.all_numeric()) return AbstractionMode::Numeric;
  return AbstractionMode::Mixed;
}

PredicateSequence abstract_trace(const Trace& trace, const AbstractionConfig& config,
                                 AbstractionMode mode) {
  if (trace.size() < 2) {
    throw std::invalid_argument("abstract_trace: trace needs at least two observations");
  }
  if (mode == AbstractionMode::Auto) mode = select_mode(trace.schema());
  T2M_SPAN("abstract.trace", "observations", trace.size());
  switch (mode) {
    case AbstractionMode::Event:
      return abstract_event_trace(trace, config);
    case AbstractionMode::Numeric:
      return abstract_numeric_trace(trace, config);
    case AbstractionMode::Mixed:
      return abstract_mixed_trace(trace, config);
    case AbstractionMode::Auto:
      break;
  }
  throw std::logic_error("abstract_trace: unreachable");
}

}  // namespace t2m
