#ifndef T2M_ABSTRACTION_NUMERIC_ABSTRACTION_H
#define T2M_ABSTRACTION_NUMERIC_ABSTRACTION_H

#include "src/abstraction/abstraction.h"

namespace t2m {

/// Mode N: all-numeric traces. One predicate per sliding window of `w`
/// observations (Algorithm 1, lines 9-13):
///
/// * homogeneous window — the enumerative synthesiser finds, for every state
///   variable, one small update expression consistent with all steps in the
///   window; the predicate is the conjunction of `x' = e(X)` atoms. Among
///   minimal-size candidates the one explaining the most steps trace-wide
///   wins, so `op' = op + ip` beats `op' = op + 1` even in windows where the
///   input happens to be constant.
/// * heterogeneous window (mode switch) — no such expression exists; the
///   predicate becomes the smallest guard separating the window's centre
///   observation from the centres of all homogeneous windows (`x >= 128`).
///
/// Guards whose occurrence contexts in P coincide are merged into one
/// disjunction when config.merge_guards is set.
PredicateSequence abstract_numeric_trace(const Trace& trace,
                                         const AbstractionConfig& config);

}  // namespace t2m

#endif  // T2M_ABSTRACTION_NUMERIC_ABSTRACTION_H
