#include "src/abstraction/mixed_abstraction.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/expr/eval.h"
#include "src/expr/simplify.h"
#include "src/synth/cegis.h"
#include "src/synth/ite_chain.h"
#include "src/util/log.h"

namespace t2m {

namespace {

/// Change signature of a step: categorical (src, dst) symbol pairs plus a
/// changed/unchanged flag per numeric variable. Steps sharing a signature
/// pool their update-synthesis examples.
using StepSignature = std::vector<std::int64_t>;

class MixedAbstractor {
public:
  MixedAbstractor(const Trace& trace, const AbstractionConfig& config)
      : trace_(trace), schema_(trace.schema()), config_(config) {
    for (VarIndex v = 0; v < schema_.size(); ++v) {
      const bool is_input =
          std::find(config_.input_vars.begin(), config_.input_vars.end(),
                    schema_.var(v).name) != config_.input_vars.end();
      if (schema_.var(v).type == VarType::Cat) {
        cat_vars_.push_back(v);
      } else if (!is_input) {
        num_vars_.push_back(v);
      }
    }
  }

  PredicateSequence run() {
    if (trace_.size() < 2) {
      throw std::invalid_argument("mixed abstraction: trace needs two observations");
    }
    // Group step indices by change signature.
    std::map<StepSignature, std::vector<std::size_t>> groups;
    for (std::size_t t = 0; t < trace_.num_steps(); ++t) {
      groups[signature_of(t)].push_back(t);
    }
    // One predicate per signature group.
    std::map<StepSignature, PredId> pred_of;
    for (const auto& [sig, steps] : groups) {
      pred_of.emplace(sig, build_predicate(steps));
    }
    for (std::size_t t = 0; t < trace_.num_steps(); ++t) {
      result_.seq.push_back(pred_of.at(signature_of(t)));
    }
    return std::move(result_);
  }

private:
  StepSignature signature_of(std::size_t t) const {
    const Valuation& cur = trace_.step_cur(t);
    const Valuation& next = trace_.step_next(t);
    StepSignature sig;
    for (const VarIndex v : cat_vars_) {
      sig.push_back(cur[v].raw());
      sig.push_back(next[v].raw());
    }
    for (const VarIndex v : num_vars_) {
      sig.push_back(cur[v] == next[v] ? 0 : 1);
    }
    return sig;
  }

  PredId build_predicate(const std::vector<std::size_t>& steps) {
    const std::size_t t0 = steps.front();
    const Valuation& cur = trace_.step_cur(t0);
    const Valuation& next = trace_.step_next(t0);

    std::vector<ExprPtr> atoms;
    std::string display;
    bool events_only = true;

    // Categorical atoms: destination value, idle destination suppressed.
    std::vector<ExprPtr> suppressed;
    for (const VarIndex v : cat_vars_) {
      if (cur[v] == next[v]) continue;
      const auto& info = schema_.var(v);
      const ExprPtr atom = Expr::eq(Expr::var_ref(v, true), Expr::constant(next[v]));
      if (info.default_sym && next[v].as_sym() == *info.default_sym) {
        suppressed.push_back(atom);
        continue;
      }
      atoms.push_back(atom);
      if (!display.empty()) display += " & ";
      display += schema_.format_value(v, next[v]);
    }

    // Numeric update atoms from the pooled examples of the signature group.
    for (const VarIndex x : num_vars_) {
      bool changed = false;
      for (const std::size_t t : steps) {
        if (trace_.step_cur(t)[x] != trace_.step_next(t)[x]) {
          changed = true;
          break;
        }
      }
      if (!changed) continue;
      events_only = false;
      std::vector<UpdateExample> pool;
      pool.reserve(steps.size());
      for (const std::size_t t : steps) {
        pool.push_back(UpdateExample{trace_.step_cur(t), trace_.step_next(t)[x]});
      }
      if (ExprPtr rhs = synthesize_update(x, pool)) {
        atoms.push_back(Expr::update_of(x, std::move(rhs)));
      } else {
        log_warn() << "mixed abstraction: no update expression for "
                   << schema_.var(x).name << " (signature group of " << steps.size()
                   << " steps); atom omitted";
      }
    }

    if (atoms.empty()) {
      // Only idle-destination events (or nothing) changed: keep the
      // suppressed atoms if any, otherwise an explicit stutter.
      atoms = suppressed.empty()
                  ? std::vector<ExprPtr>{Expr::bool_const(true)}
                  : std::move(suppressed);
      events_only = false;
    }

    const PredId id = result_.vocab.intern(simplify(Expr::conj(std::move(atoms))));
    if (events_only && !display.empty()) {
      if (result_.display_names.size() <= id) result_.display_names.resize(id + 1);
      result_.display_names[id] = display;
    }
    return id;
  }

  ExprPtr synthesize_update(VarIndex x, const std::vector<UpdateExample>& pool) {
    Grammar grammar = Grammar::for_updates(schema_, x, pool);
    grammar.max_size = config_.synth_max_size;
    // Leaves restricted to numeric variables (Grammar::for_updates already
    // does this); CEGIS keeps the signatures small on big pools.
    const CegisSynth cegis(schema_, grammar);
    if (ExprPtr rhs = cegis.synthesize(pool)) return rhs;
    // Trivial-but-exact fallback.
    const IteChainSynth fallback(schema_);
    return fallback.synthesize(pool);
  }

  const Trace& trace_;
  const Schema& schema_;
  AbstractionConfig config_;
  std::vector<VarIndex> cat_vars_;
  std::vector<VarIndex> num_vars_;
  PredicateSequence result_;
};

}  // namespace

PredicateSequence abstract_mixed_trace(const Trace& trace, const AbstractionConfig& config) {
  return MixedAbstractor(trace, config).run();
}

}  // namespace t2m
