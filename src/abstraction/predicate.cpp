#include "src/abstraction/predicate.h"

#include <stdexcept>

#include "src/expr/printer.h"

namespace t2m {

PredId PredicateVocab::intern(const ExprPtr& expr) {
  if (!expr) throw std::invalid_argument("PredicateVocab::intern: null expression");
  const auto it = index_.find(expr);
  if (it != index_.end()) return it->second;
  const PredId id = exprs_.size();
  exprs_.push_back(expr);
  index_.emplace(expr, id);
  return id;
}

std::optional<PredId> PredicateVocab::find(const ExprPtr& expr) const {
  const auto it = index_.find(expr);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string PredicateVocab::name(PredId id, const Schema& schema) const {
  return to_string(*expr(id), schema);
}

std::vector<std::string> PredicateVocab::names(const Schema& schema) const {
  std::vector<std::string> out;
  out.reserve(exprs_.size());
  for (const auto& e : exprs_) out.push_back(to_string(*e, schema));
  return out;
}

void PredicateVocab::replace(PredId id, ExprPtr expr) {
  if (id >= exprs_.size()) throw std::out_of_range("PredicateVocab::replace");
  index_.erase(exprs_[id]);
  exprs_[id] = std::move(expr);
  index_.emplace(exprs_[id], id);
}

void compact_sequence(PredicateSequence& p) {
  PredicateVocab fresh;
  std::vector<std::string> fresh_names;
  std::vector<PredId> remap(p.vocab.size(), static_cast<PredId>(-1));
  for (PredId& id : p.seq) {
    if (remap[id] == static_cast<PredId>(-1)) {
      remap[id] = fresh.intern(p.vocab.expr(id));
      if (fresh_names.size() <= remap[id]) fresh_names.resize(remap[id] + 1);
      if (id < p.display_names.size()) fresh_names[remap[id]] = p.display_names[id];
    }
    id = remap[id];
  }
  p.vocab = std::move(fresh);
  p.display_names = std::move(fresh_names);
}

}  // namespace t2m
