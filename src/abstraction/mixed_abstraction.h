#ifndef T2M_ABSTRACTION_MIXED_ABSTRACTION_H
#define T2M_ABSTRACTION_MIXED_ABSTRACTION_H

#include "src/abstraction/abstraction.h"

namespace t2m {

/// Mode M: traces mixing categorical events with numeric data (the serial
/// port benchmark). Each step is labelled with a conjunction of atoms:
///
/// * categorical variables that change contribute `v' = value` atoms, with
///   the schema's default ("idle") destination suppressed, so operation
///   steps read as bare events (`read`) and effect steps carry only data;
/// * numeric state variables that change contribute `x' = e(X)` atoms where
///   `e` is synthesised (CEGIS over the enumerative engine) from the pool of
///   all steps sharing this step's change signature — every read effect in
///   the trace jointly yields `x' = x - 1`, every reset `x' = 0`.
PredicateSequence abstract_mixed_trace(const Trace& trace, const AbstractionConfig& config);

}  // namespace t2m

#endif  // T2M_ABSTRACTION_MIXED_ABSTRACTION_H
