#include "src/abstraction/numeric_abstraction.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "src/expr/eval.h"
#include "src/expr/simplify.h"
#include "src/synth/enumerative.h"
#include "src/synth/guard_synth.h"
#include "src/util/log.h"

namespace t2m {

namespace {

/// Sentinel PredId used in occurrence contexts at sequence boundaries.
constexpr PredId kBoundary = static_cast<PredId>(-1);

class NumericAbstractor {
public:
  NumericAbstractor(const Trace& trace, const AbstractionConfig& config)
      : trace_(trace), schema_(trace.schema()), config_(config) {
    for (VarIndex v = 0; v < schema_.size(); ++v) {
      if (!schema_.var(v).is_numeric()) {
        throw std::invalid_argument("numeric abstraction: categorical variable " +
                                    schema_.var(v).name);
      }
      const bool is_input =
          std::find(config_.input_vars.begin(), config_.input_vars.end(),
                    schema_.var(v).name) != config_.input_vars.end();
      if (!is_input) state_vars_.push_back(v);
    }
    if (state_vars_.empty()) {
      throw std::invalid_argument("numeric abstraction: no state variables");
    }
  }

  PredicateSequence run() {
    const std::size_t n = trace_.size();
    if (n < 2) {
      throw std::invalid_argument("numeric abstraction: trace needs two observations");
    }
    w_ = std::max<std::size_t>(2, std::min(config_.window, n));
    const std::size_t windows = n + 1 - w_;
    center_offset_ = (w_ - 1) / 2;

    // Deduplicate windows by content; remember one occurrence per key.
    std::map<std::vector<Value>, std::size_t> key_index;
    std::vector<std::size_t> key_occurrence;          // key -> first window index
    std::vector<std::size_t> window_key(windows);     // window -> key
    for (std::size_t i = 0; i < windows; ++i) {
      const auto [it, inserted] = key_index.emplace(window_key_of(i), key_occurrence.size());
      if (inserted) key_occurrence.push_back(i);
      window_key[i] = it->second;
    }

    // Pass 1 -- discovery: grow the per-variable update vocabulary from all
    // unique windows (order-independent thanks to pass 2).
    for (const std::size_t i : key_occurrence) {
      for (const VarIndex x : state_vars_) discover_rhs(x, i);
    }
    // Rank discovered updates by trace-wide explanatory power.
    for (auto& [x, vocab] : rhs_vocab_) {
      std::stable_sort(vocab.begin(), vocab.end(),
                       [](const RankedRhs& a, const RankedRhs& b) {
                         return a.global_fit > b.global_fit;
                       });
    }

    // Pass 2 -- labelling: each unique window gets its best explanation;
    // windows no update law explains are heterogeneous (mode switches).
    std::vector<std::int64_t> key_label(key_occurrence.size());
    std::vector<std::size_t> hetero_keys;  // key ids
    std::set<Valuation> homog_centers;
    for (std::size_t k = 0; k < key_occurrence.size(); ++k) {
      if (ExprPtr pred = label_window(key_occurrence[k])) {
        key_label[k] = static_cast<std::int64_t>(result_.vocab.intern(pred));
        homog_centers.insert(center_of(key_occurrence[k]));
      } else {
        key_label[k] = -static_cast<std::int64_t>(hetero_keys.size()) - 1;
        hetero_keys.push_back(k);
      }
    }

    // Pass 3 -- guards for the heterogeneous windows.
    std::vector<PredId> hetero_pred(hetero_keys.size());
    for (std::size_t h = 0; h < hetero_keys.size(); ++h) {
      hetero_pred[h] =
          guard_predicate(center_of(key_occurrence[hetero_keys[h]]), homog_centers);
    }

    result_.seq.reserve(windows);
    for (std::size_t i = 0; i < windows; ++i) {
      const std::int64_t label = key_label[window_key[i]];
      result_.seq.push_back(label >= 0
                                ? static_cast<PredId>(label)
                                : hetero_pred[static_cast<std::size_t>(-label - 1)]);
    }

    if (config_.merge_guards) merge_guards();
    compact_sequence(result_);
    return std::move(result_);
  }

private:
  struct RankedRhs {
    ExprPtr expr;
    std::size_t global_fit = 0;
  };

  std::vector<Value> window_key_of(std::size_t i) const {
    std::vector<Value> key;
    key.reserve(w_ * schema_.size());
    for (std::size_t t = i; t < i + w_; ++t) {
      const Valuation& obs = trace_.obs(t);
      key.insert(key.end(), obs.begin(), obs.end());
    }
    return key;
  }

  Valuation center_of(std::size_t i) const { return trace_.obs(i + center_offset_); }

  std::vector<UpdateExample> window_examples(VarIndex x, std::size_t i) const {
    std::vector<UpdateExample> examples;
    examples.reserve(w_ - 1);
    for (std::size_t t = i; t + 1 < i + w_; ++t) {
      examples.push_back(UpdateExample{trace_.obs(t), trace_.obs(t + 1)[x]});
    }
    return examples;
  }

  bool fits(const ExprPtr& rhs, const std::vector<UpdateExample>& examples) const {
    for (const UpdateExample& ex : examples) {
      if (eval_value(*rhs, ex.input, ex.input) != ex.output) return false;
    }
    return true;
  }

  std::size_t global_fit(const ExprPtr& rhs, VarIndex x) const {
    std::size_t count = 0;
    for (std::size_t t = 0; t < trace_.num_steps(); ++t) {
      if (eval_value(*rhs, trace_.step_cur(t), trace_.step_cur(t)) ==
          trace_.step_next(t)[x]) {
        ++count;
      }
    }
    return count;
  }

  /// Discovery for variable x at window i: if no known update fits, run the
  /// synthesiser and keep the minimal candidate with the best trace-wide fit.
  void discover_rhs(VarIndex x, std::size_t i) {
    const auto examples = window_examples(x, i);
    for (const RankedRhs& known : rhs_vocab_[x]) {
      if (fits(known.expr, examples)) return;
    }
    Grammar grammar = Grammar::for_updates(schema_, x, examples);
    grammar.max_size = config_.synth_max_size;
    // An update law must depend on the variable's own current value:
    // `op' = 5` or `op' = ip + 4` describe the saturation mode, not a law,
    // and such windows must fall through to guard synthesis.
    grammar.solution_must_reference = x;
    const EnumerativeSynth engine(schema_, grammar);
    std::vector<ExprPtr> candidates = engine.synthesize_all(examples);
    if (candidates.empty()) return;  // heterogeneous for x (so far)

    std::size_t best = 0;
    std::size_t best_score = global_fit(candidates[0], x);
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      const std::size_t score = global_fit(candidates[c], x);
      if (score > best_score) {
        best = c;
        best_score = score;
      }
    }
    rhs_vocab_[x].push_back(RankedRhs{simplify(candidates[best]), best_score});
    log_debug() << "numeric abstraction: new update for " << schema_.var(x).name
                << " (global fit " << best_score << ")";
  }

  /// Labelling: conjunction of the best-fitting update per state variable,
  /// or nullptr when some variable has no fitting update (mode switch).
  ExprPtr label_window(std::size_t i) const {
    std::vector<ExprPtr> atoms;
    for (const VarIndex x : state_vars_) {
      const auto examples = window_examples(x, i);
      const ExprPtr* found = nullptr;
      const auto it = rhs_vocab_.find(x);
      if (it != rhs_vocab_.end()) {
        for (const RankedRhs& known : it->second) {
          if (fits(known.expr, examples)) {
            found = &known.expr;
            break;
          }
        }
      }
      if (!found) return nullptr;
      atoms.push_back(Expr::update_of(x, *found));
    }
    return simplify(Expr::conj(std::move(atoms)));
  }

  PredId guard_predicate(const Valuation& center, const std::set<Valuation>& homog_centers) {
    std::vector<GuardExample> examples;
    examples.push_back(GuardExample{center, true});
    for (const Valuation& negative : homog_centers) {
      if (negative == center) continue;
      examples.push_back(GuardExample{negative, false});
    }
    const GuardSynth synth(schema_);
    if (ExprPtr guard = synth.synthesize(examples)) {
      const PredId id = result_.vocab.intern(guard);
      guard_ids_.insert(id);
      return id;
    }
    // Fallback: an exact description of the centre observation. Always
    // sound, never concise; only reached when the guard language cannot
    // separate the centre from the regular-mode observations.
    log_warn() << "numeric abstraction: guard synthesis failed; "
                  "falling back to exact centre description";
    std::vector<ExprPtr> atoms;
    for (VarIndex v = 0; v < schema_.size(); ++v) {
      atoms.push_back(Expr::eq(Expr::var_ref(v, false), Expr::constant(center[v])));
    }
    return result_.vocab.intern(Expr::conj(std::move(atoms)));
  }

  /// Merges guards with identical occurrence contexts into one disjunction.
  void merge_guards() {
    if (guard_ids_.size() < 2) return;
    std::map<PredId, std::set<std::pair<PredId, PredId>>> contexts;
    for (std::size_t j = 0; j < result_.seq.size(); ++j) {
      const PredId p = result_.seq[j];
      if (guard_ids_.count(p) == 0) continue;
      const PredId prev = j > 0 ? result_.seq[j - 1] : kBoundary;
      const PredId next = j + 1 < result_.seq.size() ? result_.seq[j + 1] : kBoundary;
      contexts[p].emplace(prev, next);
    }
    std::map<std::set<std::pair<PredId, PredId>>, std::vector<PredId>> groups;
    for (const auto& [p, ctx] : contexts) groups[ctx].push_back(p);
    std::map<PredId, PredId> remap;
    for (const auto& [ctx, members] : groups) {
      if (members.size() < 2) continue;
      std::vector<ExprPtr> parts;
      for (const PredId p : members) parts.push_back(result_.vocab.expr(p));
      const PredId keeper = members.front();
      result_.vocab.replace(keeper, Expr::disj(std::move(parts)));
      for (std::size_t m = 1; m < members.size(); ++m) remap[members[m]] = keeper;
      log_debug() << "numeric abstraction: merged " << members.size()
                  << " context-equivalent guards";
    }
    if (remap.empty()) return;
    for (PredId& p : result_.seq) {
      const auto it = remap.find(p);
      if (it != remap.end()) p = it->second;
    }
  }

  const Trace& trace_;
  const Schema& schema_;
  AbstractionConfig config_;
  std::vector<VarIndex> state_vars_;
  std::size_t w_ = 3;
  std::size_t center_offset_ = 1;
  std::map<VarIndex, std::vector<RankedRhs>> rhs_vocab_;
  std::set<PredId> guard_ids_;
  PredicateSequence result_;
};

}  // namespace

PredicateSequence abstract_numeric_trace(const Trace& trace,
                                         const AbstractionConfig& config) {
  return NumericAbstractor(trace, config).run();
}

}  // namespace t2m
