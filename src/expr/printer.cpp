#include "src/expr/printer.h"

namespace t2m {

namespace {

int precedence(ExprOp op) {
  switch (op) {
    case ExprOp::Or: return 1;
    case ExprOp::And: return 2;
    case ExprOp::Eq:
    case ExprOp::Ne:
    case ExprOp::Lt:
    case ExprOp::Le:
    case ExprOp::Gt:
    case ExprOp::Ge: return 3;
    case ExprOp::Add:
    case ExprOp::Sub: return 4;
    case ExprOp::Mul: return 5;
    case ExprOp::Neg:
    case ExprOp::Not: return 6;
    default: return 7;
  }
}

class Printer {
public:
  explicit Printer(const Schema* schema) : schema_(schema) {}

  std::string render(const Expr& e) { return visit(e, 0); }

private:
  std::string var_name(const Expr& e) const {
    std::string name;
    if (schema_ != nullptr && e.var() < schema_->size()) {
      name = schema_->var(e.var()).name;
    } else {
      // Built char-wise: GCC 12's -Wrestrict false-fires on the
      // string-literal concatenation forms at -O2 (PR105651).
      name = std::to_string(e.var());
      name.insert(name.begin(), 'v');
    }
    if (e.primed()) name.push_back('\'');
    return name;
  }

  /// Renders a Const whose value may be a symbol of categorical variable `v`.
  std::string const_for_var(const Expr& cst, VarIndex v) const {
    if (cst.value().is_sym() && schema_ != nullptr && v < schema_->size() &&
        schema_->var(v).type == VarType::Cat) {
      return schema_->sym_name(v, cst.value().as_sym());
    }
    return cst.value().debug_string();
  }

  std::string visit(const Expr& e, int parent_prec) {
    const int prec = precedence(e.op());
    std::string out;
    switch (e.op()) {
      case ExprOp::Const:
        return e.value().debug_string();
      case ExprOp::Var:
        return var_name(e);
      case ExprOp::Neg:
        out = "-";
        out += visit(*e.child(0), prec);
        break;
      case ExprOp::Not:
        out = "!";
        out += visit(*e.child(0), prec);
        break;
      case ExprOp::Ite:
        out = "ite(" + visit(*e.child(0), 0) + ", " + visit(*e.child(1), 0) + ", " +
              visit(*e.child(2), 0) + ")";
        return out;
      default: {
        // Symbol-aware rendering for `var = CONST` / `CONST = var` shapes.
        const Expr& lhs = *e.child(0);
        const Expr& rhs = *e.child(1);
        std::string ls, rs;
        if ((e.op() == ExprOp::Eq || e.op() == ExprOp::Ne) && lhs.op() == ExprOp::Var &&
            rhs.op() == ExprOp::Const) {
          ls = var_name(lhs);
          rs = const_for_var(rhs, lhs.var());
        } else if ((e.op() == ExprOp::Eq || e.op() == ExprOp::Ne) &&
                   rhs.op() == ExprOp::Var && lhs.op() == ExprOp::Const) {
          ls = const_for_var(lhs, rhs.var());
          rs = var_name(rhs);
        } else {
          ls = visit(lhs, prec);
          rs = visit(rhs, prec + 1);  // left-associative
        }
        out = ls + " " + op_symbol(e.op()) + " " + rs;
        break;
      }
    }
    if (prec < parent_prec) out = "(" + out + ")";
    return out;
  }

  const Schema* schema_;
};

}  // namespace

std::string to_string(const Expr& e, const Schema& schema) {
  return Printer(&schema).render(e);
}

std::string to_string(const Expr& e) { return Printer(nullptr).render(e); }

}  // namespace t2m
