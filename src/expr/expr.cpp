#include "src/expr/expr.h"

#include <stdexcept>

namespace t2m {

std::size_t op_arity(ExprOp op) {
  switch (op) {
    case ExprOp::Const:
    case ExprOp::Var:
      return 0;
    case ExprOp::Neg:
    case ExprOp::Not:
      return 1;
    case ExprOp::Ite:
      return 3;
    default:
      return 2;
  }
}

bool op_is_boolean(ExprOp op) {
  switch (op) {
    case ExprOp::Not:
    case ExprOp::Eq:
    case ExprOp::Ne:
    case ExprOp::Lt:
    case ExprOp::Le:
    case ExprOp::Gt:
    case ExprOp::Ge:
    case ExprOp::And:
    case ExprOp::Or:
      return true;
    default:
      return false;
  }
}

const char* op_symbol(ExprOp op) {
  switch (op) {
    case ExprOp::Const: return "<const>";
    case ExprOp::Var: return "<var>";
    case ExprOp::Neg: return "-";
    case ExprOp::Not: return "!";
    case ExprOp::Add: return "+";
    case ExprOp::Sub: return "-";
    case ExprOp::Mul: return "*";
    case ExprOp::Eq: return "=";
    case ExprOp::Ne: return "!=";
    case ExprOp::Lt: return "<";
    case ExprOp::Le: return "<=";
    case ExprOp::Gt: return ">";
    case ExprOp::Ge: return ">=";
    case ExprOp::And: return "&&";
    case ExprOp::Or: return "||";
    case ExprOp::Ite: return "ite";
  }
  return "?";
}

std::size_t Expr::size() const {
  std::size_t total = 1;
  for (const auto& c : children_) total += c->size();
  return total;
}

bool Expr::is_guard() const {
  if (op_ == ExprOp::Var && primed_) return false;
  for (const auto& c : children_) {
    if (!c->is_guard()) return false;
  }
  return true;
}

bool Expr::is_boolean() const {
  if (op_ == ExprOp::Const) return false;  // integer literal by convention
  return op_is_boolean(op_);
}

void Expr::collect_vars(std::set<std::pair<VarIndex, bool>>& out) const {
  if (op_ == ExprOp::Var) out.emplace(var_, primed_);
  for (const auto& c : children_) c->collect_vars(out);
}

bool Expr::equal(const Expr& a, const Expr& b) {
  if (a.op_ != b.op_) return false;
  switch (a.op_) {
    case ExprOp::Const:
      return a.value_ == b.value_;
    case ExprOp::Var:
      return a.var_ == b.var_ && a.primed_ == b.primed_;
    default:
      break;
  }
  if (a.children_.size() != b.children_.size()) return false;
  for (std::size_t i = 0; i < a.children_.size(); ++i) {
    if (!equal(*a.children_[i], *b.children_[i])) return false;
  }
  return true;
}

std::size_t Expr::hash(const Expr& a) {
  std::size_t h = static_cast<std::size_t>(a.op_) * 0x9e3779b97f4a7c15ULL + 1;
  switch (a.op_) {
    case ExprOp::Const:
      h ^= ValueHash{}(a.value_);
      break;
    case ExprOp::Var:
      h ^= a.var_ * 0x100000001b3ULL + (a.primed_ ? 0x8000 : 0);
      break;
    default:
      for (const auto& c : a.children_) {
        h = h * 0x100000001b3ULL ^ hash(*c);
      }
      break;
  }
  return h;
}

ExprPtr Expr::constant(Value v) {
  return ExprPtr(new Expr(ExprOp::Const, v, 0, false, {}));
}

ExprPtr Expr::int_const(std::int64_t v) { return constant(Value::of_int(v)); }
ExprPtr Expr::bool_const(bool v) { return constant(Value::of_bool(v)); }

ExprPtr Expr::var_ref(VarIndex v, bool primed) {
  return ExprPtr(new Expr(ExprOp::Var, Value(), v, primed, {}));
}

ExprPtr Expr::unary(ExprOp op, ExprPtr a) {
  if (op_arity(op) != 1) throw std::invalid_argument("Expr::unary: bad arity");
  return ExprPtr(new Expr(op, Value(), 0, false, {std::move(a)}));
}

ExprPtr Expr::binary(ExprOp op, ExprPtr a, ExprPtr b) {
  if (op_arity(op) != 2) throw std::invalid_argument("Expr::binary: bad arity");
  return ExprPtr(new Expr(op, Value(), 0, false, {std::move(a), std::move(b)}));
}

ExprPtr Expr::ite(ExprPtr c, ExprPtr t, ExprPtr e) {
  return ExprPtr(new Expr(ExprOp::Ite, Value(), 0, false,
                          {std::move(c), std::move(t), std::move(e)}));
}

ExprPtr Expr::conj(std::vector<ExprPtr> parts) {
  if (parts.empty()) return bool_const(true);
  ExprPtr acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = land(std::move(acc), parts[i]);
  }
  return acc;
}

ExprPtr Expr::disj(std::vector<ExprPtr> parts) {
  if (parts.empty()) return bool_const(false);
  ExprPtr acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = lor(std::move(acc), parts[i]);
  }
  return acc;
}

ExprPtr Expr::update_of(VarIndex v, ExprPtr rhs) {
  return eq(var_ref(v, /*primed=*/true), std::move(rhs));
}

}  // namespace t2m
