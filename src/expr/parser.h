#ifndef T2M_EXPR_PARSER_H
#define T2M_EXPR_PARSER_H

#include <string_view>

#include "src/base/schema.h"
#include "src/expr/expr.h"

namespace t2m {

/// Parses the textual predicate grammar produced by the printer:
///
///   expr  := or | or ('||' or)*
///   cmp   := sum (('='|'!='|'<'|'<='|'>'|'>=') sum)?
///   atom  := INT | 'true' | 'false' | var | var "'" | '(' expr ')'
///          | 'ite' '(' expr ',' expr ',' expr ')'
///
/// Variable names resolve against `schema`; an identifier that is not a
/// variable but appears as the comparand of a categorical variable resolves
/// to that variable's symbol. Throws std::invalid_argument on syntax errors.
ExprPtr parse_expr(std::string_view text, const Schema& schema);

}  // namespace t2m

#endif  // T2M_EXPR_PARSER_H
