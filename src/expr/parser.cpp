#include "src/expr/parser.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/string_utils.h"

namespace t2m {

namespace {

enum class TokKind { Int, Ident, Punct, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t int_value = 0;
};

class Lexer {
public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  bool accept_punct(std::string_view p) {
    if (current_.kind == TokKind::Punct && current_.text == p) {
      advance();
      return true;
    }
    return false;
  }

  void expect_punct(std::string_view p) {
    if (!accept_punct(p)) {
      throw std::invalid_argument("parse error: expected '" + std::string(p) +
                                  "' near '" + current_.text + "'");
    }
  }

private:
  void advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{TokKind::End, "<end>", 0};
      return;
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = pos_;
      while (j < text_.size() && std::isdigit(static_cast<unsigned char>(text_[j]))) ++j;
      const std::string digits(text_.substr(pos_, j - pos_));
      std::int64_t value = 0;
      if (!parse_int64(digits, value)) {
        // std::stoll would throw std::out_of_range here — a raw escape from
        // the parser's invalid_argument contract on inputs like 99..9e30.
        throw std::invalid_argument("parse error: integer literal out of range: " +
                                    digits);
      }
      current_ = Token{TokKind::Int, digits, value};
      pos_ = j;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = pos_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) || text_[j] == '_')) {
        ++j;
      }
      current_ = Token{TokKind::Ident, std::string(text_.substr(pos_, j - pos_)), 0};
      pos_ = j;
      return;
    }
    // Multi-character punctuation first.
    static const char* kTwo[] = {"&&", "||", "!=", "<=", ">=", "=="};
    for (const char* two : kTwo) {
      if (text_.substr(pos_, 2) == two) {
        current_ = Token{TokKind::Punct, two, 0};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokKind::Punct, std::string(1, c), 0};
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
public:
  Parser(std::string_view text, const Schema& schema) : lex_(text), schema_(schema) {}

  ExprPtr parse() {
    ExprPtr e = parse_or();
    if (lex_.peek().kind != TokKind::End) {
      throw std::invalid_argument("parse error: trailing input near '" +
                                  lex_.peek().text + "'");
    }
    return e;
  }

private:
  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (lex_.accept_punct("||")) e = Expr::lor(e, parse_and());
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_cmp();
    while (lex_.accept_punct("&&")) e = Expr::land(e, parse_cmp());
    return e;
  }

  std::optional<ExprOp> peek_cmp_op() {
    const Token& t = lex_.peek();
    if (t.kind != TokKind::Punct) return std::nullopt;
    if (t.text == "=" || t.text == "==") return ExprOp::Eq;
    if (t.text == "!=") return ExprOp::Ne;
    if (t.text == "<") return ExprOp::Lt;
    if (t.text == "<=") return ExprOp::Le;
    if (t.text == ">") return ExprOp::Gt;
    if (t.text == ">=") return ExprOp::Ge;
    return std::nullopt;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_sum();
    const auto op = peek_cmp_op();
    if (!op) return lhs;
    lex_.take();
    ExprPtr rhs = parse_sum_with_context(lhs);
    return Expr::binary(*op, std::move(lhs), std::move(rhs));
  }

  /// Parses the comparand; if it is a bare identifier that is not a variable
  /// and `lhs` references a categorical variable, resolve it as a symbol.
  ExprPtr parse_sum_with_context(const ExprPtr& lhs) {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::Ident && !schema_.find(t.text) && t.text != "ite" &&
        t.text != "true" && t.text != "false" && lhs->op() == ExprOp::Var &&
        lhs->var() < schema_.size() && schema_.var(lhs->var()).type == VarType::Cat) {
      const Token ident = lex_.take();
      return Expr::constant(Value::of_sym(schema_.sym_id(lhs->var(), ident.text)));
    }
    return parse_sum();
  }

  ExprPtr parse_sum() {
    ExprPtr e = parse_term();
    while (true) {
      if (lex_.accept_punct("+")) {
        e = Expr::add(e, parse_term());
      } else if (lex_.accept_punct("-")) {
        e = Expr::sub(e, parse_term());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (lex_.accept_punct("*")) e = Expr::mul(e, parse_factor());
    return e;
  }

  ExprPtr parse_factor() {
    if (lex_.accept_punct("-")) return Expr::unary(ExprOp::Neg, parse_factor());
    if (lex_.accept_punct("!")) return Expr::lnot(parse_factor());
    return parse_atom();
  }

  ExprPtr parse_atom() {
    const Token t = lex_.take();
    switch (t.kind) {
      case TokKind::Int:
        return Expr::int_const(t.int_value);
      case TokKind::Ident: {
        if (t.text == "true") return Expr::bool_const(true);
        if (t.text == "false") return Expr::bool_const(false);
        if (t.text == "ite") {
          lex_.expect_punct("(");
          ExprPtr c = parse_or();
          lex_.expect_punct(",");
          ExprPtr then = parse_or();
          lex_.expect_punct(",");
          ExprPtr otherwise = parse_or();
          lex_.expect_punct(")");
          return Expr::ite(std::move(c), std::move(then), std::move(otherwise));
        }
        const auto var = schema_.find(t.text);
        if (!var) {
          throw std::invalid_argument("parse error: unknown identifier '" + t.text + "'");
        }
        const bool primed = lex_.accept_punct("'");
        return Expr::var_ref(*var, primed);
      }
      case TokKind::Punct:
        if (t.text == "(") {
          ExprPtr e = parse_or();
          lex_.expect_punct(")");
          return e;
        }
        break;
      case TokKind::End:
        break;
    }
    throw std::invalid_argument("parse error: unexpected token '" + t.text + "'");
  }

  Lexer lex_;
  const Schema& schema_;
};

}  // namespace

ExprPtr parse_expr(std::string_view text, const Schema& schema) {
  return Parser(text, schema).parse();
}

}  // namespace t2m
