#ifndef T2M_EXPR_SIMPLIFY_H
#define T2M_EXPR_SIMPLIFY_H

#include "src/expr/expr.h"

namespace t2m {

/// Bottom-up algebraic simplification: constant folding, additive/multiplicative
/// identities (x+0, x*1, x*0), double negation, boolean absorption with
/// constants, and `x - x -> 0`. The result is semantically equivalent on all
/// valuations where the input is defined.
ExprPtr simplify(const ExprPtr& e);

}  // namespace t2m

#endif  // T2M_EXPR_SIMPLIFY_H
