#include "src/expr/eval.h"

#include <stdexcept>

namespace t2m {

namespace {

std::int64_t int_of(const Value& v, const char* context) {
  if (!v.is_int()) {
    throw std::logic_error(std::string("eval: expected integer operand in ") + context);
  }
  return v.as_int();
}

}  // namespace

Value eval_value(const Expr& e, const Valuation& cur, const Valuation& next) {
  switch (e.op()) {
    case ExprOp::Const:
      return e.value();
    case ExprOp::Var: {
      const Valuation& v = e.primed() ? next : cur;
      if (e.var() >= v.size()) throw std::out_of_range("eval: variable index out of range");
      return v[e.var()];
    }
    case ExprOp::Neg:
      return Value::of_int(-int_of(eval_value(*e.child(0), cur, next), "neg"));
    case ExprOp::Not:
      return Value::of_bool(int_of(eval_value(*e.child(0), cur, next), "not") == 0);
    case ExprOp::Add:
    case ExprOp::Sub:
    case ExprOp::Mul: {
      const std::int64_t a = int_of(eval_value(*e.child(0), cur, next), "arith");
      const std::int64_t b = int_of(eval_value(*e.child(1), cur, next), "arith");
      switch (e.op()) {
        case ExprOp::Add: return Value::of_int(a + b);
        case ExprOp::Sub: return Value::of_int(a - b);
        default: return Value::of_int(a * b);
      }
    }
    case ExprOp::Eq:
    case ExprOp::Ne: {
      const Value a = eval_value(*e.child(0), cur, next);
      const Value b = eval_value(*e.child(1), cur, next);
      // Equality is defined across kinds: a symbol never equals an integer.
      const bool eq = (a == b);
      return Value::of_bool(e.op() == ExprOp::Eq ? eq : !eq);
    }
    case ExprOp::Lt:
    case ExprOp::Le:
    case ExprOp::Gt:
    case ExprOp::Ge: {
      const std::int64_t a = int_of(eval_value(*e.child(0), cur, next), "cmp");
      const std::int64_t b = int_of(eval_value(*e.child(1), cur, next), "cmp");
      switch (e.op()) {
        case ExprOp::Lt: return Value::of_bool(a < b);
        case ExprOp::Le: return Value::of_bool(a <= b);
        case ExprOp::Gt: return Value::of_bool(a > b);
        default: return Value::of_bool(a >= b);
      }
    }
    case ExprOp::And: {
      // Short-circuit to keep partial valuations usable.
      if (int_of(eval_value(*e.child(0), cur, next), "and") == 0) return Value::of_bool(false);
      return Value::of_bool(int_of(eval_value(*e.child(1), cur, next), "and") != 0);
    }
    case ExprOp::Or: {
      if (int_of(eval_value(*e.child(0), cur, next), "or") != 0) return Value::of_bool(true);
      return Value::of_bool(int_of(eval_value(*e.child(1), cur, next), "or") != 0);
    }
    case ExprOp::Ite: {
      const bool c = int_of(eval_value(*e.child(0), cur, next), "ite") != 0;
      return eval_value(*e.child(c ? 1 : 2), cur, next);
    }
  }
  throw std::logic_error("eval: unreachable operator");
}

bool eval_bool(const Expr& e, const Valuation& cur, const Valuation& next) {
  const Value v = eval_value(e, cur, next);
  if (!v.is_int()) throw std::logic_error("eval_bool: non-boolean result");
  return v.as_int() != 0;
}

bool eval_guard(const Expr& e, const Valuation& obs) {
  if (!e.is_guard()) throw std::logic_error("eval_guard: expression has primed variables");
  return eval_bool(e, obs, obs);
}

}  // namespace t2m
