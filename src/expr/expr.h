#ifndef T2M_EXPR_EXPR_H
#define T2M_EXPR_EXPR_H

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/schema.h"
#include "src/base/value.h"

namespace t2m {

/// AST node kinds for transition predicates and update expressions.
/// Variables come in unprimed (current observation, x) and primed (next
/// observation, x') flavours, matching the paper's X and X' sets.
enum class ExprOp : std::uint8_t {
  Const,  // literal Value
  Var,    // variable reference (possibly primed)
  Neg,    // integer negation
  Not,    // boolean negation
  Add, Sub, Mul,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
  Ite,    // if-then-else
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree. Nodes are shared freely; all mutation happens
/// by building new trees. Structural equality and hashing support the
/// observational-equivalence tables in the synthesiser and the predicate
/// vocabulary in the abstraction layer.
class Expr {
public:
  ExprOp op() const { return op_; }
  const Value& value() const { return value_; }        // Const
  VarIndex var() const { return var_; }                // Var
  bool primed() const { return primed_; }              // Var
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(std::size_t i) const { return children_.at(i); }

  /// Number of AST nodes; the synthesiser's cost function.
  std::size_t size() const;
  /// True when no primed variable occurs (a guard over the current state).
  bool is_guard() const;
  /// True when the top-level op yields a boolean.
  bool is_boolean() const;
  /// Collects all (var, primed) references.
  void collect_vars(std::set<std::pair<VarIndex, bool>>& out) const;

  /// Structural equality.
  static bool equal(const Expr& a, const Expr& b);
  /// Structural hash, consistent with equal().
  static std::size_t hash(const Expr& a);

  // --- factories ---------------------------------------------------------
  static ExprPtr constant(Value v);
  static ExprPtr int_const(std::int64_t v);
  static ExprPtr bool_const(bool v);
  static ExprPtr var_ref(VarIndex v, bool primed);
  static ExprPtr unary(ExprOp op, ExprPtr a);
  static ExprPtr binary(ExprOp op, ExprPtr a, ExprPtr b);
  static ExprPtr ite(ExprPtr c, ExprPtr t, ExprPtr e);

  // Convenience combinators.
  static ExprPtr add(ExprPtr a, ExprPtr b) { return binary(ExprOp::Add, std::move(a), std::move(b)); }
  static ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(ExprOp::Sub, std::move(a), std::move(b)); }
  static ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(ExprOp::Mul, std::move(a), std::move(b)); }
  static ExprPtr eq(ExprPtr a, ExprPtr b) { return binary(ExprOp::Eq, std::move(a), std::move(b)); }
  static ExprPtr ne(ExprPtr a, ExprPtr b) { return binary(ExprOp::Ne, std::move(a), std::move(b)); }
  static ExprPtr lt(ExprPtr a, ExprPtr b) { return binary(ExprOp::Lt, std::move(a), std::move(b)); }
  static ExprPtr le(ExprPtr a, ExprPtr b) { return binary(ExprOp::Le, std::move(a), std::move(b)); }
  static ExprPtr gt(ExprPtr a, ExprPtr b) { return binary(ExprOp::Gt, std::move(a), std::move(b)); }
  static ExprPtr ge(ExprPtr a, ExprPtr b) { return binary(ExprOp::Ge, std::move(a), std::move(b)); }
  static ExprPtr land(ExprPtr a, ExprPtr b) { return binary(ExprOp::And, std::move(a), std::move(b)); }
  static ExprPtr lor(ExprPtr a, ExprPtr b) { return binary(ExprOp::Or, std::move(a), std::move(b)); }
  static ExprPtr lnot(ExprPtr a) { return unary(ExprOp::Not, std::move(a)); }

  /// Conjunction of `parts` (true for empty, the sole element for one part).
  static ExprPtr conj(std::vector<ExprPtr> parts);
  /// Disjunction of `parts` (false for empty).
  static ExprPtr disj(std::vector<ExprPtr> parts);

  /// The predicate `x' = rhs` for the given variable.
  static ExprPtr update_of(VarIndex v, ExprPtr rhs);

private:
  Expr(ExprOp op, Value value, VarIndex var, bool primed, std::vector<ExprPtr> children)
      : op_(op), value_(value), var_(var), primed_(primed),
        children_(std::move(children)) {}

  ExprOp op_;
  Value value_;
  VarIndex var_ = 0;
  bool primed_ = false;
  std::vector<ExprPtr> children_;
};

/// Arity of an operator (Const/Var: 0, Ite: 3).
std::size_t op_arity(ExprOp op);
/// True for operators producing booleans.
bool op_is_boolean(ExprOp op);
/// Operator spelling used by the printer and parser ("+", ">=", "&&", ...).
const char* op_symbol(ExprOp op);

struct ExprPtrEqual {
  bool operator()(const ExprPtr& a, const ExprPtr& b) const {
    return Expr::equal(*a, *b);
  }
};
struct ExprPtrHash {
  std::size_t operator()(const ExprPtr& a) const { return Expr::hash(*a); }
};

}  // namespace t2m

#endif  // T2M_EXPR_EXPR_H
