#ifndef T2M_EXPR_PRINTER_H
#define T2M_EXPR_PRINTER_H

#include <string>

#include "src/base/schema.h"
#include "src/expr/expr.h"

namespace t2m {

/// Renders `e` using variable names from `schema`; primed variables print
/// with a trailing apostrophe (x'), matching the paper's notation.
/// Categorical comparisons print symbol spellings: `ev' = READ`.
std::string to_string(const Expr& e, const Schema& schema);

/// Schema-less rendering with positional names v0, v1, ... (debugging).
std::string to_string(const Expr& e);

}  // namespace t2m

#endif  // T2M_EXPR_PRINTER_H
