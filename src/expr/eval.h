#ifndef T2M_EXPR_EVAL_H
#define T2M_EXPR_EVAL_H

#include "src/base/value.h"
#include "src/expr/expr.h"

namespace t2m {

/// Evaluates `e` over a pair of observations: unprimed variables read from
/// `cur`, primed variables from `next`. Boolean results are Value ints 0/1.
/// Throws std::logic_error on type errors (e.g. adding symbols) and
/// std::out_of_range when a variable index exceeds the valuation.
Value eval_value(const Expr& e, const Valuation& cur, const Valuation& next);

/// Boolean evaluation; requires a boolean-valued expression.
bool eval_bool(const Expr& e, const Valuation& cur, const Valuation& next);

/// True when predicate `e` holds on the step (cur -> next). Alias of
/// eval_bool with a name matching the paper's terminology.
inline bool holds(const Expr& e, const Valuation& cur, const Valuation& next) {
  return eval_bool(e, cur, next);
}

/// Evaluates a guard (no primed variables) on a single observation.
bool eval_guard(const Expr& e, const Valuation& obs);

}  // namespace t2m

#endif  // T2M_EXPR_EVAL_H
