#include "src/expr/simplify.h"

#include <vector>

namespace t2m {

namespace {

bool is_int_const(const Expr& e, std::int64_t v) {
  return e.op() == ExprOp::Const && e.value().is_int() && e.value().as_int() == v;
}

bool is_const(const Expr& e) { return e.op() == ExprOp::Const; }

ExprPtr fold_binary(ExprOp op, const ExprPtr& a, const ExprPtr& b) {
  const Value va = a->value();
  const Value vb = b->value();
  if (op == ExprOp::Eq) return Expr::bool_const(va == vb);
  if (op == ExprOp::Ne) return Expr::bool_const(va != vb);
  if (!va.is_int() || !vb.is_int()) return nullptr;
  const std::int64_t x = va.as_int();
  const std::int64_t y = vb.as_int();
  switch (op) {
    case ExprOp::Add: return Expr::int_const(x + y);
    case ExprOp::Sub: return Expr::int_const(x - y);
    case ExprOp::Mul: return Expr::int_const(x * y);
    case ExprOp::Lt: return Expr::bool_const(x < y);
    case ExprOp::Le: return Expr::bool_const(x <= y);
    case ExprOp::Gt: return Expr::bool_const(x > y);
    case ExprOp::Ge: return Expr::bool_const(x >= y);
    case ExprOp::And: return Expr::bool_const(x != 0 && y != 0);
    case ExprOp::Or: return Expr::bool_const(x != 0 || y != 0);
    default: return nullptr;
  }
}

}  // namespace

ExprPtr simplify(const ExprPtr& e) {
  switch (e->op()) {
    case ExprOp::Const:
    case ExprOp::Var:
      return e;
    default:
      break;
  }

  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  for (const auto& c : e->children()) kids.push_back(simplify(c));

  switch (e->op()) {
    case ExprOp::Neg:
      if (is_const(*kids[0]) && kids[0]->value().is_int()) {
        return Expr::int_const(-kids[0]->value().as_int());
      }
      if (kids[0]->op() == ExprOp::Neg) return kids[0]->child(0);
      break;
    case ExprOp::Not:
      if (is_const(*kids[0]) && kids[0]->value().is_int()) {
        return Expr::bool_const(kids[0]->value().as_int() == 0);
      }
      if (kids[0]->op() == ExprOp::Not) return kids[0]->child(0);
      break;
    case ExprOp::Add:
      if (is_int_const(*kids[0], 0)) return kids[1];
      if (is_int_const(*kids[1], 0)) return kids[0];
      // Canonical spelling: x + (-c) reads as x - c.
      if (kids[1]->op() == ExprOp::Const && kids[1]->value().is_int() &&
          kids[1]->value().as_int() < 0) {
        return Expr::sub(kids[0], Expr::int_const(-kids[1]->value().as_int()));
      }
      break;
    case ExprOp::Sub:
      if (is_int_const(*kids[1], 0)) return kids[0];
      if (Expr::equal(*kids[0], *kids[1])) return Expr::int_const(0);
      break;
    case ExprOp::Mul:
      if (is_int_const(*kids[0], 0) || is_int_const(*kids[1], 0)) return Expr::int_const(0);
      if (is_int_const(*kids[0], 1)) return kids[1];
      if (is_int_const(*kids[1], 1)) return kids[0];
      break;
    case ExprOp::And:
      if (is_int_const(*kids[0], 0) || is_int_const(*kids[1], 0)) return Expr::bool_const(false);
      if (is_int_const(*kids[0], 1)) return kids[1];
      if (is_int_const(*kids[1], 1)) return kids[0];
      if (Expr::equal(*kids[0], *kids[1])) return kids[0];
      break;
    case ExprOp::Or:
      if (is_int_const(*kids[0], 1) || is_int_const(*kids[1], 1)) return Expr::bool_const(true);
      if (is_int_const(*kids[0], 0)) return kids[1];
      if (is_int_const(*kids[1], 0)) return kids[0];
      if (Expr::equal(*kids[0], *kids[1])) return kids[0];
      break;
    case ExprOp::Ite:
      if (is_const(*kids[0]) && kids[0]->value().is_int()) {
        return kids[0]->value().as_int() != 0 ? kids[1] : kids[2];
      }
      if (Expr::equal(*kids[1], *kids[2])) return kids[1];
      break;
    default:
      break;
  }

  if (op_arity(e->op()) == 2 && is_const(*kids[0]) && is_const(*kids[1])) {
    if (ExprPtr folded = fold_binary(e->op(), kids[0], kids[1])) return folded;
  }

  switch (op_arity(e->op())) {
    case 1:
      return Expr::unary(e->op(), kids[0]);
    case 2:
      return Expr::binary(e->op(), kids[0], kids[1]);
    case 3:
      return Expr::ite(kids[0], kids[1], kids[2]);
    default:
      return e;
  }
}

}  // namespace t2m
