#include "src/base/value.h"

#include <stdexcept>

namespace t2m {

std::int64_t Value::as_int() const {
  if (!is_int()) throw std::logic_error("Value::as_int on symbol value");
  return payload_;
}

bool Value::as_bool() const {
  if (!is_int()) throw std::logic_error("Value::as_bool on symbol value");
  return payload_ != 0;
}

std::int64_t Value::as_sym() const {
  if (!is_sym()) throw std::logic_error("Value::as_sym on integer value");
  return payload_;
}

std::string Value::debug_string() const {
  if (is_int()) return std::to_string(payload_);
  return "sym#" + std::to_string(payload_);
}

}  // namespace t2m
