#include "src/base/schema.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/string_utils.h"

namespace t2m {

VarIndex Schema::add(VarInfo info) {
  if (find(info.name)) {
    throw std::invalid_argument("Schema: duplicate variable name '" + info.name + "'");
  }
  vars_.push_back(std::move(info));
  return vars_.size() - 1;
}

VarIndex Schema::add_int(std::string name) {
  VarInfo info;
  info.name = std::move(name);
  info.type = VarType::Int;
  return add(std::move(info));
}

VarIndex Schema::add_bool(std::string name) {
  VarInfo info;
  info.name = std::move(name);
  info.type = VarType::Bool;
  return add(std::move(info));
}

VarIndex Schema::add_cat(std::string name, std::vector<std::string> symbols,
                         std::optional<std::string> default_symbol) {
  VarInfo info;
  info.name = std::move(name);
  info.type = VarType::Cat;
  info.symbols = std::move(symbols);
  if (default_symbol) {
    const auto it = std::find(info.symbols.begin(), info.symbols.end(), *default_symbol);
    if (it == info.symbols.end()) {
      throw std::invalid_argument("Schema: default symbol '" + *default_symbol +
                                  "' not among symbols of '" + info.name + "'");
    }
    info.default_sym = static_cast<std::int64_t>(it - info.symbols.begin());
  }
  return add(std::move(info));
}

const VarInfo& Schema::var(VarIndex i) const {
  if (i >= vars_.size()) throw std::out_of_range("Schema::var index out of range");
  return vars_[i];
}

std::optional<VarIndex> Schema::find(std::string_view name) const {
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return i;
  }
  return std::nullopt;
}

std::int64_t Schema::sym_id(VarIndex v, std::string_view spelling) const {
  const VarInfo& info = var(v);
  if (info.type != VarType::Cat) {
    throw std::logic_error("Schema::sym_id on non-categorical variable " + info.name);
  }
  for (std::size_t i = 0; i < info.symbols.size(); ++i) {
    if (info.symbols[i] == spelling) return static_cast<std::int64_t>(i);
  }
  throw std::invalid_argument("Schema: unknown symbol '" + std::string(spelling) +
                              "' for variable " + info.name);
}

std::int64_t Schema::sym_id_intern(VarIndex v, std::string_view spelling) {
  VarInfo& info = vars_.at(v);
  if (info.type != VarType::Cat) {
    throw std::logic_error("Schema::sym_id_intern on non-categorical variable " + info.name);
  }
  for (std::size_t i = 0; i < info.symbols.size(); ++i) {
    if (info.symbols[i] == spelling) return static_cast<std::int64_t>(i);
  }
  info.symbols.emplace_back(spelling);
  return static_cast<std::int64_t>(info.symbols.size()) - 1;
}

const std::string& Schema::sym_name(VarIndex v, std::int64_t id) const {
  const VarInfo& info = var(v);
  if (info.type != VarType::Cat) {
    throw std::logic_error("Schema::sym_name on non-categorical variable " + info.name);
  }
  if (id < 0 || static_cast<std::size_t>(id) >= info.symbols.size()) {
    throw std::out_of_range("Schema::sym_name id out of range for " + info.name);
  }
  return info.symbols[static_cast<std::size_t>(id)];
}

Value Schema::parse_value(VarIndex v, std::string_view text) const {
  const VarInfo& info = var(v);
  switch (info.type) {
    case VarType::Int: {
      // Strict parse instead of stoll: a malformed trace row yields a
      // diagnostic naming the variable, not an uncaught exception. The
      // whole token must parse ("12x" is rejected, not truncated to 12).
      std::int64_t parsed = 0;
      if (!parse_int64(text, parsed)) {
        throw std::invalid_argument("Schema: bad integer literal '" + std::string(text) +
                                    "' for variable " + info.name);
      }
      return Value::of_int(parsed);
    }
    case VarType::Bool:
      if (text == "true" || text == "1") return Value::of_bool(true);
      if (text == "false" || text == "0") return Value::of_bool(false);
      throw std::invalid_argument("Schema: bad boolean literal '" + std::string(text) + "'");
    case VarType::Cat:
      return Value::of_sym(sym_id(v, text));
  }
  throw std::logic_error("Schema::parse_value: unreachable");
}

std::string Schema::format_value(VarIndex v, const Value& val) const {
  const VarInfo& info = var(v);
  switch (info.type) {
    case VarType::Int:
      return std::to_string(val.as_int());
    case VarType::Bool:
      return val.as_bool() ? "true" : "false";
    case VarType::Cat:
      return sym_name(v, val.as_sym());
  }
  throw std::logic_error("Schema::format_value: unreachable");
}

bool Schema::all_categorical() const {
  return !vars_.empty() &&
         std::all_of(vars_.begin(), vars_.end(),
                     [](const VarInfo& v) { return v.type == VarType::Cat; });
}

bool Schema::all_numeric() const {
  return !vars_.empty() &&
         std::all_of(vars_.begin(), vars_.end(),
                     [](const VarInfo& v) { return v.is_numeric(); });
}

}  // namespace t2m
