#include "src/base/status.h"

#include <cstring>
#include <exception>
#include <new>

namespace t2m {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::io_error: return "io_error";
    case ErrorCode::parse_error: return "parse_error";
    case ErrorCode::resource_exhausted: return "resource_exhausted";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::internal: return "internal";
  }
  return "internal";
}

int error_code_exit_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return 0;
    case ErrorCode::io_error: return 10;
    case ErrorCode::parse_error: return 11;
    case ErrorCode::resource_exhausted: return 12;
    case ErrorCode::deadline_exceeded: return 13;
    case ErrorCode::internal: return 14;
  }
  return 14;
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::string errno_message(const std::string& what, const std::string& path,
                          int errno_value) {
  std::string out = what;
  if (!path.empty()) {
    out += " ";
    out += path;
  }
  out += " (";
  out += std::strerror(errno_value);
  out += ")";
  return out;
}

Status status_from_current_exception() {
  try {
    throw;
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failed (std::bad_alloc)");
  } catch (const std::invalid_argument& e) {
    return Status::ParseError(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("unknown exception");
  }
}

}  // namespace t2m
