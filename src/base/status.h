#ifndef T2M_BASE_STATUS_H
#define T2M_BASE_STATUS_H

#include <stdexcept>
#include <string>
#include <utility>

namespace t2m {

/// Error taxonomy shared by every public entry point. A failing stage tags its
/// error with the category that decides how the caller degrades: `io_error`
/// and `parse_error` reject the input, `resource_exhausted` and
/// `deadline_exceeded` are graceful give-up verdicts eligible for best-so-far
/// salvage, and `internal` is a bug.
enum class ErrorCode {
  ok = 0,
  io_error,
  parse_error,
  resource_exhausted,
  deadline_exceeded,
  internal,
};

const char* error_code_name(ErrorCode code);

/// Process exit code for a taxonomy category (`t2m` maps verdicts to these).
/// 0 = success, 1 = generic failure (kept for legacy std::exception paths),
/// 2 = usage error; the taxonomy gets the 10..14 band so scripts can
/// distinguish "bad input" from "ran out of budget".
int error_code_exit_status(ErrorCode code);

/// A verdict: either ok() or an ErrorCode plus a human-readable message.
/// Cheap to copy, never throws, usable as a return value from stages that
/// must not unwind (worker threads, C-style loops). [[nodiscard]] at the
/// type level: silently dropping a verdict is always a bug.
class [[nodiscard]] Status {
public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status IoError(std::string m) { return {ErrorCode::io_error, std::move(m)}; }
  static Status ParseError(std::string m) { return {ErrorCode::parse_error, std::move(m)}; }
  static Status ResourceExhausted(std::string m) {
    return {ErrorCode::resource_exhausted, std::move(m)};
  }
  static Status DeadlineExceeded(std::string m) {
    return {ErrorCode::deadline_exceeded, std::move(m)};
  }
  static Status Internal(std::string m) { return {ErrorCode::internal, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::ok; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "io_error: cannot open /tmp/x (No such file or directory)" — the form
  /// printed to stderr and carried by StatusError::what().
  std::string to_string() const;

private:
  ErrorCode code_ = ErrorCode::ok;
  std::string message_;
};

/// Exception carrying a Status across layers that still unwind (trace IO,
/// ingest workers, the SAT stack). Derives from std::runtime_error so
/// pre-taxonomy call sites that catch or EXPECT_THROW runtime_error keep
/// working unchanged.
class StatusError : public std::runtime_error {
public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  StatusError(ErrorCode code, const std::string& message)
      : StatusError(Status(code, message)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

private:
  Status status_;
};

[[noreturn]] inline void throw_status(ErrorCode code, const std::string& message) {
  throw StatusError(code, message);
}

/// Formats "<what>: <path> (<strerror(errno_value)>)" for io_error
/// diagnostics. Reads nothing from the global errno; pass the saved value.
std::string errno_message(const std::string& what, const std::string& path,
                          int errno_value);

/// Maps any in-flight exception to a Status: StatusError keeps its taxonomy,
/// bad_alloc becomes resource_exhausted, invalid_argument becomes parse_error
/// (the pre-taxonomy convention for malformed input), anything else internal.
/// Call from inside a catch block.
Status status_from_current_exception();

}  // namespace t2m

#endif  // T2M_BASE_STATUS_H
