#ifndef T2M_BASE_VALUE_H
#define T2M_BASE_VALUE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace t2m {

/// Kind of a trace value. Integers and booleans share the numeric
/// representation; categorical values are interned symbol ids whose
/// spelling lives in the variable's schema entry.
enum class ValueKind : std::uint8_t { Int, Sym };

/// A single observed value: either a (signed) integer / boolean or a
/// categorical symbol. Values are small and freely copyable.
class Value {
public:
  constexpr Value() noexcept : kind_(ValueKind::Int), payload_(0) {}

  static constexpr Value of_int(std::int64_t v) noexcept {
    return Value(ValueKind::Int, v);
  }
  static constexpr Value of_bool(bool v) noexcept {
    return Value(ValueKind::Int, v ? 1 : 0);
  }
  /// `sym` is an index into the owning variable's symbol table.
  static constexpr Value of_sym(std::int64_t sym) noexcept {
    return Value(ValueKind::Sym, sym);
  }

  constexpr ValueKind kind() const noexcept { return kind_; }
  constexpr bool is_int() const noexcept { return kind_ == ValueKind::Int; }
  constexpr bool is_sym() const noexcept { return kind_ == ValueKind::Sym; }

  /// Numeric payload. For symbols this is the symbol id.
  constexpr std::int64_t raw() const noexcept { return payload_; }

  /// Integer value; requires is_int().
  std::int64_t as_int() const;
  /// Boolean view of an integer value; requires is_int().
  bool as_bool() const;
  /// Symbol id; requires is_sym().
  std::int64_t as_sym() const;

  friend constexpr bool operator==(const Value& a, const Value& b) noexcept {
    return a.kind_ == b.kind_ && a.payload_ == b.payload_;
  }
  friend constexpr bool operator!=(const Value& a, const Value& b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.payload_ < b.payload_;
  }

  /// Debug rendering without schema context ("7" or "sym#3").
  std::string debug_string() const;

private:
  constexpr Value(ValueKind k, std::int64_t p) noexcept : kind_(k), payload_(p) {}

  ValueKind kind_;
  std::int64_t payload_;
};

/// A valuation maps variable indices (position in the schema) to values.
using Valuation = std::vector<Value>;

struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept {
    const auto h = static_cast<std::size_t>(v.raw());
    return h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(v.kind());
  }
};

}  // namespace t2m

#endif  // T2M_BASE_VALUE_H
