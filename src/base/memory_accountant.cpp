#include "src/base/memory_accountant.h"

#include <string>

#include "src/util/failpoint.h"

namespace t2m {

MemoryAccountant& MemoryAccountant::global() {
  static MemoryAccountant* a = new MemoryAccountant();
  return *a;
}

namespace {

std::string overrun_message(std::size_t bytes, std::size_t used,
                            std::size_t limit) {
  return "memory cap exceeded: charge of " + std::to_string(bytes) +
         " bytes would push tracked usage past " + std::to_string(limit) +
         " (currently " + std::to_string(used) + ")";
}

}  // namespace

void MemoryAccountant::charge(std::size_t bytes) {
  if (!try_charge(bytes)) {
    throw_status(ErrorCode::resource_exhausted,
                 overrun_message(bytes, used(), limit()));
  }
}

bool MemoryAccountant::try_charge(std::size_t bytes) {
  if (T2M_FAILPOINT("mem.charge")) return false;
  // order: relaxed throughout — see the header: counters carry no payload,
  // and the fetch_add/fetch_sub pair keeps the balance exact regardless of
  // ordering.
  std::size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t cap = limit_.load(std::memory_order_relaxed);
  if (cap != 0 && now > cap) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  // Peak update may lose a race to a concurrent higher charge; that is fine —
  // peak is a diagnostic, not a correctness value.
  // order: relaxed — see above; the CAS only needs atomicity of the max.
  std::size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryAccountant::reset_for_test() {
  // order: relaxed — test hook; the caller guarantees quiescence.
  used_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  limit_.store(0, std::memory_order_relaxed);
}

}  // namespace t2m
