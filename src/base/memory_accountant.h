#ifndef T2M_BASE_MEMORY_ACCOUNTANT_H
#define T2M_BASE_MEMORY_ACCOUNTANT_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/base/status.h"

namespace t2m {

/// Process-wide accountant for the structures that dominate a learn run's
/// footprint: the SAT clause arena, per-thread scratch arenas, and the
/// segmenter/compliance window-dedup sets. A configurable cap turns
/// allocation pressure into a structured `resource_exhausted` error at the
/// charge site instead of an OOM kill deep inside a container.
///
/// Charges are advisory bookkeeping, not an allocator: call sites charge the
/// capacity they are about to reserve and release what they drop. Hot paths
/// charge capacity deltas (vector doubling → O(log) accountant calls) or
/// batch small charges; see ClauseArena / ScratchArena / StreamingWindowDedup.
///
/// With no limit set (the default) charge() never fails and costs two relaxed
/// atomic ops — byte-identity fingerprint tests run with the accountant
/// compiled in and see no behaviour change.
class MemoryAccountant {
public:
  /// The global instance every tracked structure charges. Leaked singleton:
  /// thread_local arenas release from thread-exit destructors, which must
  /// not race static destruction.
  static MemoryAccountant& global();

  /// 0 = unlimited. Takes effect for subsequent charges; already-charged
  /// bytes are not re-checked.
  // order: relaxed — the accountant is pure bookkeeping: used_/peak_/limit_
  // are independent scalars that never publish other memory, and callers
  // tolerate momentarily stale reads (the cap check re-reads under charge).
  void set_limit(std::size_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// Records `bytes` of planned growth. Throws
  /// StatusError(resource_exhausted) when the charge would exceed the limit
  /// (the charge is rolled back first, so the caller's catch site sees a
  /// consistent accountant). The "mem.charge" failpoint forces the failure
  /// path regardless of the limit.
  void charge(std::size_t bytes);

  /// Non-throwing charge: false (and no charge recorded) on overrun.
  bool try_charge(std::size_t bytes);

  // order: relaxed — see set_limit(): bookkeeping scalars, no payload.
  void release(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // order: relaxed — see set_limit(): advisory reads for reporting.
  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Test hook: clears usage/peak and the limit. Only meaningful when no
  /// tracked structure is alive.
  void reset_for_test();

private:
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> limit_{0};
};

/// RAII charge for block-scoped reservations (shard buffers, merge queues).
class ScopedCharge {
public:
  ScopedCharge() = default;
  explicit ScopedCharge(std::size_t bytes) : bytes_(bytes) {
    MemoryAccountant::global().charge(bytes);
  }
  ~ScopedCharge() {
    if (bytes_ != 0) MemoryAccountant::global().release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ScopedCharge(ScopedCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      if (bytes_ != 0) MemoryAccountant::global().release(bytes_);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }

private:
  std::size_t bytes_ = 0;
};

/// Tracks the charged capacity of one growable structure and charges only
/// deltas. Move-aware: the charge follows the owning structure; moved-from
/// trackers hold zero. Not copyable — copyable owners must charge the copy
/// explicitly.
class ChargeTracker {
public:
  ChargeTracker() = default;
  ~ChargeTracker() { set_charged(0); }
  ChargeTracker(const ChargeTracker&) = delete;
  ChargeTracker& operator=(const ChargeTracker&) = delete;
  ChargeTracker(ChargeTracker&& other) noexcept : charged_(other.charged_) {
    other.charged_ = 0;
  }
  ChargeTracker& operator=(ChargeTracker&& other) noexcept {
    if (this != &other) {
      set_charged(0);
      charged_ = other.charged_;
      other.charged_ = 0;
    }
    return *this;
  }

  /// Adjusts the recorded charge to `bytes`, charging or releasing the
  /// delta. Growth can throw resource_exhausted; shrink never fails.
  void set_charged(std::size_t bytes) {
    if (bytes > charged_) {
      MemoryAccountant::global().charge(bytes - charged_);
    } else if (bytes < charged_) {
      MemoryAccountant::global().release(charged_ - bytes);
    }
    charged_ = bytes;
  }

  std::size_t charged() const { return charged_; }

private:
  std::size_t charged_ = 0;
};

}  // namespace t2m

#endif  // T2M_BASE_MEMORY_ACCOUNTANT_H
