#ifndef T2M_BASE_SCHEMA_H
#define T2M_BASE_SCHEMA_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/value.h"

namespace t2m {

/// Index of a variable within a schema.
using VarIndex = std::size_t;

/// Static type of an observed variable.
enum class VarType : std::uint8_t {
  Int,   ///< signed integer data (queue lengths, counters, ...)
  Bool,  ///< boolean flag, stored as Int 0/1
  Cat,   ///< categorical event/state, stored as interned symbol id
};

/// Per-variable schema entry. Categorical variables own a symbol table
/// mapping symbol ids to their spellings; `default_sym` identifies the
/// "idle"/background value whose atoms are suppressed in mixed abstraction.
struct VarInfo {
  std::string name;
  VarType type = VarType::Int;
  std::vector<std::string> symbols;          // Cat only
  std::optional<std::int64_t> default_sym;   // Cat only

  bool is_numeric() const { return type == VarType::Int || type == VarType::Bool; }
};

/// The set of user-defined variables X = {x1..xk} observed in a trace.
/// A schema is immutable once traces refer to it by reference.
class Schema {
public:
  Schema() = default;

  /// Declares an integer variable; returns its index.
  VarIndex add_int(std::string name);
  /// Declares a boolean variable; returns its index.
  VarIndex add_bool(std::string name);
  /// Declares a categorical variable with the given symbol spellings.
  /// If `default_symbol` names one of them, that symbol is the idle value.
  VarIndex add_cat(std::string name, std::vector<std::string> symbols,
                   std::optional<std::string> default_symbol = std::nullopt);

  std::size_t size() const { return vars_.size(); }
  const VarInfo& var(VarIndex i) const;
  const std::vector<VarInfo>& vars() const { return vars_; }

  /// Index lookup by variable name.
  std::optional<VarIndex> find(std::string_view name) const;

  /// Symbol id for `spelling` of categorical variable `v`; throws if unknown.
  std::int64_t sym_id(VarIndex v, std::string_view spelling) const;
  /// Symbol id, interning the spelling if new (used by trace readers).
  std::int64_t sym_id_intern(VarIndex v, std::string_view spelling);
  /// Spelling of symbol `id` of categorical variable `v`.
  const std::string& sym_name(VarIndex v, std::int64_t id) const;

  /// Value constructed from its textual form according to the variable type.
  Value parse_value(VarIndex v, std::string_view text) const;
  /// Textual form of `val` for variable `v` ("7", "true", "READ").
  std::string format_value(VarIndex v, const Value& val) const;

  /// True when every variable is categorical (mode E traces).
  bool all_categorical() const;
  /// True when every variable is numeric (mode N traces).
  bool all_numeric() const;

private:
  VarIndex add(VarInfo info);

  std::vector<VarInfo> vars_;
};

}  // namespace t2m

#endif  // T2M_BASE_SCHEMA_H
