#ifndef T2M_UTIL_RNG_H
#define T2M_UTIL_RNG_H

#include <cstdint>

namespace t2m {

/// Deterministic xoshiro256** PRNG. Simulators and property tests need
/// reproducible streams independent of the standard library implementation.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return unit() < p; }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace t2m

#endif  // T2M_UTIL_RNG_H
