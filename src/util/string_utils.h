#ifndef T2M_UTIL_STRING_UTILS_H
#define T2M_UTIL_STRING_UTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace t2m {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string format_double(double value, int digits = 3);

}  // namespace t2m

#endif  // T2M_UTIL_STRING_UTILS_H
