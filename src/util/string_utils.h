#ifndef T2M_UTIL_STRING_UTILS_H
#define T2M_UTIL_STRING_UTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace t2m {

/// Splits `text` on `sep`, keeping empty fields. The result always has
/// (number of separators + 1) entries; in particular split("") returns {""}
/// — one empty field, never an empty vector. Callers that want "no fields"
/// for empty input must test text.empty() themselves (see cli.cpp's comma
/// lists) or use split_ws, which drops empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string format_double(double value, int digits = 3);

/// Strict full-token integer parse: optional '+'/'-' sign, then digits;
/// the entire token must be consumed ("12x" is rejected, not truncated) and
/// out-of-range values fail. The one definition of a valid integer literal
/// for CLI flags and trace rows. Returns false without touching errno state
/// guarantees; `value` is unspecified on failure.
bool parse_int64(std::string_view text, std::int64_t& value);

/// Strict full-token floating-point parse; same consumption and sign rules.
bool parse_double(std::string_view text, double& value);

}  // namespace t2m

#endif  // T2M_UTIL_STRING_UTILS_H
