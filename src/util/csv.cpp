#include "src/util/csv.h"

#include <algorithm>
#include <stdexcept>

namespace t2m {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TableWriter: empty header");
}

void TableWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TableWriter: row width " + std::to_string(row.size()) +
                                " does not match header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void TableWriter::write_csv(std::ostream& os) const {
  // RFC 4180: fields containing the separator, quotes or line breaks are
  // quoted, with embedded quotes doubled; everything else passes verbatim.
  const auto emit_field = [&os](const std::string& field) {
    if (field.find_first_of(",\"\n\r") == std::string::npos) {
      os << field;
      return;
    }
    os << '"';
    for (const char c : field) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      emit_field(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void TableWriter::write_ascii(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i] << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace t2m
