#ifndef T2M_UTIL_SYNC_H
#define T2M_UTIL_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

// Clang Thread Safety Analysis shim (docs/concurrency.md). On Clang the
// macros expand to the thread-safety attributes checked by
// -Wthread-safety -Wthread-safety-beta; on GCC (which has none of these
// attributes) they expand to nothing, so the annotated tree stays
// warning-clean under the GCC -Werror wall. The CI clang job is what turns
// the annotations into a merge gate.
//
// The project-rule lint engine (tools/lint_t2m.cpp) forbids the raw
// std::mutex / std::lock_guard / std::condition_variable / std::thread
// vocabulary everywhere outside this header: all lock-based synchronisation
// goes through the annotated t2m::Mutex / t2m::MutexLock / t2m::CondVar
// wrappers below, which is what makes the static certification total — a
// mutex the analysis cannot see is a mutex it cannot check.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define T2M_TSA(x) __attribute__((x))
#endif
#endif
#ifndef T2M_TSA
#define T2M_TSA(x)  // no-op outside Clang
#endif

// The conventional attribute vocabulary (same shape as Abseil's
// thread_annotations.h). #ifndef-guarded so a hypothetical second shim in a
// dependency does not clash.
#ifndef CAPABILITY
#define CAPABILITY(x) T2M_TSA(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY T2M_TSA(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) T2M_TSA(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) T2M_TSA(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) T2M_TSA(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) T2M_TSA(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) T2M_TSA(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) T2M_TSA(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) T2M_TSA(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) T2M_TSA(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) T2M_TSA(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) T2M_TSA(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) T2M_TSA(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) T2M_TSA(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) T2M_TSA(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) T2M_TSA(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS T2M_TSA(no_thread_safety_analysis)
#endif

namespace t2m {

/// Annotated exclusive mutex. Fields it protects are declared
/// `GUARDED_BY(mu_)`, internal helpers that assume it is held are
/// `REQUIRES(mu_)`, and the Clang analysis then proves every access happens
/// under the right lock — at compile time, over every schedule at once.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over a t2m::Mutex (the analysed replacement for
/// std::lock_guard / std::unique_lock). Relockable: unlock()/lock() let a
/// scope shed the lock around slow work — the analysis tracks the handoff,
/// so touching a guarded field in the gap is a compile error.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the lock (e.g. to run a callback that takes other
  /// locks); pair with lock() before the scope ends.
  void unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to t2m::Mutex. Every wait names the mutex and is
/// annotated REQUIRES(mu), so a wait without the annotated lock held — the
/// classic lost-wakeup bug — no longer compiles under the clang job.
///
/// No predicate overloads on purpose: a predicate lambda reading guarded
/// state is opaque to the analysis (it cannot see that wait() invokes it
/// under the lock), so callers write the standard `while (!cond) wait(mu);`
/// loop instead, which the analysis checks exactly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always re-check the condition.
  void wait(Mutex& mu) REQUIRES(mu) {
    // The caller holds mu (typically via MutexLock); adopt its underlying
    // std::mutex for the duration of the wait and hand it straight back —
    // release() keeps the unique_lock from unlocking what the caller owns.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, dur);
    native.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, tp);
    native.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Centralised thread handle: every thread in the tree is created through
/// this alias (the lint engine forbids raw std::thread outside this header),
/// so "what spawns threads" stays a one-grep question — the pool workers and
/// the obs heartbeat are the only production spawners today.
using Thread = std::thread;

}  // namespace t2m

#endif  // T2M_UTIL_SYNC_H
