#include "src/util/failpoint.h"

#include <cstdlib>
#include <unordered_map>

#include "src/util/string_utils.h"
#include "src/util/sync.h"

namespace t2m::failpoint {

namespace detail {
std::atomic<int> g_armed_count{0};
}  // namespace detail

namespace {

struct SiteState {
  FailSpec spec;
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng = 0;  // splitmix64 state for permille mode
  bool armed = false;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, SiteState> sites GUARDED_BY(mu);
};

// Leaked singleton: failpoints are evaluated from thread_local destructors
// and other late shutdown paths, so the registry must outlive static
// destruction order.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t parse_u64_term(const std::string& term, const std::string& value) {
  std::int64_t out = 0;
  if (!parse_int64(value, out) || out < 0) {
    throw_status(ErrorCode::parse_error,
                 "failpoint spec: bad value for '" + term + "': " + value);
  }
  return static_cast<std::uint64_t>(out);
}

// Arms one "name=spec" item; called with the registry lock NOT held.
void arm_item(const std::string& item) {
  auto eq = item.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw_status(ErrorCode::parse_error,
                 "failpoint spec: expected name=spec, got: " + item);
  }
  arm(item.substr(0, eq), item.substr(eq + 1));
}

struct EnvLoader {
  EnvLoader() {
    if (const char* env = std::getenv("T2M_FAILPOINTS")) {
      if (*env != '\0') arm_list(env);
    }
  }
};
// Static initializer: arms T2M_FAILPOINTS before main() runs, so child
// processes spawned by tests inherit faults without code changes.
const EnvLoader g_env_loader;

}  // namespace

FailSpec parse_spec(const std::string& spec) {
  FailSpec out;
  for (const std::string& raw : split(spec, ',')) {
    std::string term(trim(raw));
    if (term.empty()) continue;
    auto eq = term.find('=');
    std::string key = term.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : term.substr(eq + 1);
    if (key == "always") {
      out.always = true;
    } else if (key == "once") {
      out.count = 1;
    } else if (key == "off") {
      out.always = false;
      out.count = 0;
      out.permille = 0;
    } else if (key == "skip") {
      out.skip = parse_u64_term(key, value);
    } else if (key == "count") {
      out.count = parse_u64_term(key, value);
    } else if (key == "permille") {
      std::uint64_t p = parse_u64_term(key, value);
      if (p > 1000) {
        throw_status(ErrorCode::parse_error,
                     "failpoint spec: permille out of range: " + value);
      }
      out.permille = static_cast<std::uint32_t>(p);
    } else if (key == "seed") {
      out.seed = parse_u64_term(key, value);
    } else {
      throw_status(ErrorCode::parse_error,
                   "failpoint spec: unknown term: " + term);
    }
  }
  return out;
}

void arm(const std::string& name, const FailSpec& spec) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  SiteState& s = r.sites[name];
  // order: relaxed — the count is only the any_armed() fast gate; the spec
  // is published by the registry mutex both sides hold.
  if (!s.armed) detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.spec = spec;
  s.evaluations = 0;
  s.fires = 0;
  s.rng = spec.seed;
}

void arm(const std::string& name, const std::string& spec) {
  arm(name, parse_spec(spec));
}

void arm_list(const std::string& list) {
  for (const std::string& raw : split(list, ';')) {
    std::string item(trim(raw));
    if (!item.empty()) arm_item(item);
  }
}

void disarm(const std::string& name) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    // order: relaxed — see arm(): the mutex carries the real publication.
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  for (auto& [name, s] : r.sites) {
    if (s.armed) {
      s.armed = false;
      // order: relaxed — see arm(): the mutex carries the real publication.
      detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t evaluations(const std::string& name) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.evaluations;
}

std::uint64_t fires(const std::string& name) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.fires;
}

namespace detail {

bool should_fail_slow(const char* name) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  auto it = r.sites.find(name);
  if (it == r.sites.end() || !it->second.armed) return false;
  SiteState& s = it->second;
  std::uint64_t n = s.evaluations++;
  if (n < s.spec.skip) return false;
  bool fire = false;
  if (s.spec.always) {
    fire = true;
  } else if (s.spec.permille > 0) {
    fire = splitmix64(s.rng) % 1000 < s.spec.permille;
  } else {
    fire = s.fires < s.spec.count;
  }
  if (fire) ++s.fires;
  return fire;
}

}  // namespace detail

}  // namespace t2m::failpoint
