#include "src/util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <version>

namespace t2m {

namespace {

/// from_chars does not accept the explicit '+' sign that stoll/stod did;
/// strip it when a digit (or, for floats, a '.') follows so "+3" keeps
/// parsing while "+" alone and "+-3" stay invalid.
std::string_view strip_explicit_plus(std::string_view text, bool allow_dot) {
  if (text.size() >= 2 && text[0] == '+' &&
      (std::isdigit(static_cast<unsigned char>(text[1])) || (allow_dot && text[1] == '.'))) {
    text.remove_prefix(1);
  }
  return text;
}

}  // namespace

bool parse_int64(std::string_view text, std::int64_t& value) {
  text = strip_explicit_plus(text, /*allow_dot=*/false);
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  return ec == std::errc() && ptr == end;
}

bool parse_double(std::string_view text, double& value) {
  text = strip_explicit_plus(text, /*allow_dot=*/true);
#if defined(__cpp_lib_to_chars)
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  return ec == std::errc() && ptr == end;
#else
  // Floating-point from_chars is missing on some standard libraries (e.g.
  // Apple's libc++ before LLVM 20): fall back to strtod with a
  // full-consumption and range check. strtod is laxer than from_chars —
  // it skips leading whitespace and accepts hex literals — so reject those
  // shapes up front to keep the strict contract identical across platforms.
  const std::string owned(text);
  if (owned.empty() || std::isspace(static_cast<unsigned char>(owned.front())) ||
      owned.find_first_of("xX") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* parse_end = nullptr;
  value = std::strtod(owned.c_str(), &parse_end);
  return errno != ERANGE && parse_end == owned.c_str() + owned.size();
#endif
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace t2m
