#include "src/util/string_utils.h"

#include <cctype>
#include <cstdio>

namespace t2m {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace t2m
