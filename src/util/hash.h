#ifndef T2M_UTIL_HASH_H
#define T2M_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace t2m {

/// splitmix64 finaliser: cheap, well-mixed 64-bit hash step.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return hash_mix(seed ^ (v + (seed << 6) + (seed >> 2)));
}

/// Odd multiplier for polynomial rolling hashes (mod 2^64), shared by the
/// streaming window dedups in segmentation and compliance. Collisions are
/// resolved by full element comparison, so the constant only affects bucket
/// spread, not correctness.
inline constexpr std::uint64_t kPolyHashBase = 0x100000001b3ULL;

/// Hash functor for vectors of integral ids (predicate windows, words).
/// Used by the hashed-window dedup in segmentation and the compliance and
/// forbidden-chain caches, replacing ordered std::set keys on hot paths.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    std::uint64_t h = 0x2545f4914f6cdd1dULL ^ v.size();
    for (const T& x : v) h = hash_combine(h, static_cast<std::uint64_t>(x));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace t2m

#endif  // T2M_UTIL_HASH_H
