#include "src/util/log.h"

#include <iostream>
#include <mutex>

namespace t2m {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  // One line per call, serialised: concurrent workers must not shear lines.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr << "[t2m " << level_tag(level) << "] " << message << '\n';
}

}  // namespace t2m
