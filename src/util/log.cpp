#include "src/util/log.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <utility>

namespace t2m {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

/// Monotonic process clock for the line prefix; anchored at first use, so
/// t=0 is roughly the first log statement, not machine boot.
double uptime_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

/// Small dense per-thread id ("t00", "t01", ...): stable within a run and
/// readable next to interleaved worker lines, unlike the 15-digit native id.
std::uint32_t thread_log_id() {
  static std::atomic<std::uint32_t> next{0};
  // order: relaxed — the counter only needs uniqueness, not ordering.
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO";
    case LogLevel::Warn:  return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  const MutexLock lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[t2m %s %.6f t%02u] ", level_tag(level),
                uptime_seconds(), thread_log_id());
  std::string line = prefix;
  line += message;
  // One line per call, serialised: concurrent workers must not shear lines,
  // and a sink swap must not race an in-flight write. A span inside this
  // region would recurse through the tracer while the logger lock is held.
  const MutexLock lock(mutex_);  // no-span
  if (sink_) {
    sink_(level, line);
  } else {
    std::cerr << line << '\n';
  }
}

}  // namespace t2m
