#include "src/util/cli.h"

#include <stdexcept>

#include "src/util/string_utils.h"

namespace t2m {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value` when the next token is not itself a flag; else a switch.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::optional<std::string> CliArgs::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& flag, const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

std::int64_t CliArgs::get_int_or(const std::string& flag, std::int64_t fallback) const {
  const auto v = get(flag);
  if (!v || v->empty()) return fallback;
  // Strict parse instead of stoll: malformed or out-of-range input becomes
  // a diagnostic naming the flag, not an uncaught exception crash.
  std::int64_t value = 0;
  if (!parse_int64(*v, value)) {
    throw std::invalid_argument("--" + flag + ": expected an integer, got '" + *v + "'");
  }
  return value;
}

double CliArgs::get_double_or(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v || v->empty()) return fallback;
  double value = 0.0;
  if (!parse_double(*v, value)) {
    throw std::invalid_argument("--" + flag + ": expected a number, got '" + *v + "'");
  }
  return value;
}

}  // namespace t2m
