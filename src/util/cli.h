#ifndef T2M_UTIL_CLI_H
#define T2M_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace t2m {

/// Tiny `--flag value` / `--flag=value` / `--switch` command-line parser used
/// by the example programs, benches, and the t2m tool.
class CliArgs {
public:
  CliArgs(int argc, const char* const* argv);

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const;
  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& flag, std::int64_t fallback) const;
  double get_double_or(const std::string& flag, double fallback) const;

private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace t2m

#endif  // T2M_UTIL_CLI_H
