#ifndef T2M_UTIL_FAILPOINT_H
#define T2M_UTIL_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace t2m::failpoint {

/// Deterministic, seeded fault-injection registry.
///
/// Production code marks injectable failure sites with T2M_FAILPOINT("name")
/// (evaluates to true when the site should fail this time) or the
/// T2M_INJECT_STATUS(name, code, msg) helper that throws a StatusError.
/// Nothing fires unless a spec arms the site, either programmatically
/// (tests call arm()/disarm_all()) or via the T2M_FAILPOINTS environment
/// variable read once at startup.
///
/// Zero-cost when disabled: the macro is a single relaxed atomic load of a
/// global armed-count plus a predictable branch; the registry lock and name
/// lookup only run while at least one failpoint is armed anywhere.
///
/// Spec grammar (env var and arm(name, spec) share it):
///
///   T2M_FAILPOINTS="site.a=always;site.b=count=2;site.c=skip=5,count=1;site.d=permille=250,seed=7"
///
/// Items are ';'-separated `name=spec`; a spec is ','-separated terms:
///   always        fire on every evaluation
///   once          fire on the first evaluation only (count=1)
///   off           never fire (still counts evaluations)
///   skip=K        ignore the first K evaluations
///   count=N       after skipping, fire on at most N evaluations
///   permille=P    after skipping, fire with probability P/1000 per
///                 evaluation (deterministic splitmix64 stream)
///   seed=S        seed for the permille stream (default 1)
struct FailSpec {
  bool always = false;
  std::uint64_t skip = 0;
  /// Max number of fires after `skip`; 0 with !always and !permille = off.
  std::uint64_t count = 0;
  std::uint32_t permille = 0;
  std::uint64_t seed = 1;
};

/// Parses the spec grammar above. Throws StatusError(parse_error) on a
/// malformed term.
FailSpec parse_spec(const std::string& spec);

void arm(const std::string& name, const FailSpec& spec);
void arm(const std::string& name, const std::string& spec);
/// Arms every item of a ';'-separated list ("a=always;b=once").
void arm_list(const std::string& list);
void disarm(const std::string& name);
void disarm_all();

/// Number of times the named site was evaluated / actually fired. Zero for
/// never-armed sites (evaluations are only counted while armed).
std::uint64_t evaluations(const std::string& name);
std::uint64_t fires(const std::string& name);

namespace detail {
extern std::atomic<int> g_armed_count;
bool should_fail_slow(const char* name);
}  // namespace detail

/// True when any failpoint is armed process-wide (fast gate).
inline bool any_armed() {
  // order: relaxed — a pure hot-path gate; arm()/disarm() publish the spec
  // itself under the registry mutex, which should_fail_slow re-acquires.
  return detail::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Evaluates the named site: true when the site should fail now.
inline bool should_fail(const char* name) {
  return any_armed() && detail::should_fail_slow(name);
}

}  // namespace t2m::failpoint

/// Marks an injectable failure site. Usage:
///   if (T2M_FAILPOINT("mmap.map")) { ...simulate the failure... }
#define T2M_FAILPOINT(name) (::t2m::failpoint::should_fail(name))

/// Throws StatusError(code, msg) when the named site fires.
#define T2M_INJECT_STATUS(name, code, msg)                            \
  do {                                                                \
    if (T2M_FAILPOINT(name)) {                                        \
      ::t2m::throw_status((code), std::string(msg) +                  \
                                      " [failpoint " name "]");       \
    }                                                                 \
  } while (0)

#endif  // T2M_UTIL_FAILPOINT_H
