#ifndef T2M_UTIL_WINDOW_DEDUP_H
#define T2M_UTIL_WINDOW_DEDUP_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/memory_accountant.h"
#include "src/util/hash.h"

namespace t2m {

/// One-pass dedup of the sliding length-w windows of a stream: push one
/// element at a time; each completed window is checked against the distinct
/// windows seen so far and materialised only when genuinely new. The
/// mechanism shared by StreamingSegmenter (w = segmentation window) and
/// ComplianceWindowBuilder (w = compliance length l):
///
/// - a w-slot ring buffer holds the current window, so nothing of the
///   stream's past is retained beyond the distinct-window list;
/// - a polynomial rolling hash (kPolyHashBase, mod 2^64) is updated in O(1)
///   per element — the expiring element's contribution base^(w-1) is
///   subtracted before the new one is shifted in;
/// - per-hash bucket chains index into the distinct-window list, and a
///   candidate window is compared element-wise straight out of the ring, so
///   the common duplicate case costs one O(w) compare and zero allocations.
///
/// Memory: the ring + the distinct windows + one bucket entry per distinct
/// window — O(w + dedup set), independent of stream length.
template <typename T>
class StreamingWindowDedup {
public:
  /// `w` must be positive; callers own that validation.
  explicit StreamingWindowDedup(std::size_t w) : w_(w) {
    ring_.resize(w);
    for (std::size_t i = 1; i < w; ++i) drop_coeff_ *= kPolyHashBase;
  }

  void push(T value) {
    const std::size_t slot = count_ % w_;
    if (count_ >= w_) {
      // Expire the element leaving the window before it is overwritten.
      rolling_ -= drop_coeff_ * static_cast<std::uint64_t>(ring_[slot]);
    }
    rolling_ = rolling_ * kPolyHashBase + static_cast<std::uint64_t>(value);
    ring_[slot] = value;
    ++count_;
    if (count_ < w_) return;
    // A full window ends here: dedup against the distinct windows sharing
    // its hash, materialise only when new.
    auto& bucket = buckets_[hash_mix(rolling_)];
    for (const std::uint32_t idx : bucket) {
      if (window_equals(windows_[idx])) return;
    }
    bucket.push_back(static_cast<std::uint32_t>(windows_.size()));
    std::vector<T> window(w_);
    for (std::size_t i = 0; i < w_; ++i) window[i] = ring_[(count_ + i) % w_];
    windows_.push_back(std::move(window));
    // Charge the dedup set's growth in batches: per-window accountant calls
    // would put two atomics on the ingest hot path; pending bytes are flushed
    // every 256 KiB, so a configured cap is enforced with at most that much
    // slack per dedup instance.
    pending_bytes_ += w_ * sizeof(T) + kPerWindowOverhead;
    if (pending_bytes_ >= kChargeBatchBytes) flush_charge();
  }

  /// Total elements pushed.
  std::size_t pushed() const { return count_; }
  /// Distinct windows collected so far, in first-occurrence order.
  const std::vector<std::vector<T>>& windows() const { return windows_; }
  /// Surrenders the distinct-window list; the dedup is spent afterwards.
  std::vector<std::vector<T>> take_windows() { return std::move(windows_); }

  /// The whole stream in push order; only valid while pushed() <= w (the
  /// ring has not wrapped). Serves the short-stream case where the caller
  /// wants the entire sequence as one window.
  std::vector<T> short_prefix() const {
    return {ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_)};
  }

private:
  bool window_equals(const std::vector<T>& window) const {
    // The current window spans pushes count_-w .. count_-1; its oldest
    // element sits at ring index count_ % w (the next write position).
    for (std::size_t i = 0; i < w_; ++i) {
      if (ring_[(count_ + i) % w_] != window[i]) return false;
    }
    return true;
  }

  /// Rough per-distinct-window footprint beyond the elements themselves:
  /// the vector header in windows_ plus a bucket-chain entry.
  static constexpr std::size_t kPerWindowOverhead = 32;
  static constexpr std::size_t kChargeBatchBytes = 256u << 10;

  void flush_charge() {
    charge_.set_charged(charge_.charged() + pending_bytes_);
    pending_bytes_ = 0;
  }

  std::size_t w_;
  std::vector<T> ring_;
  std::size_t count_ = 0;
  std::uint64_t rolling_ = 0;
  std::uint64_t drop_coeff_ = 1;  ///< kPolyHashBase^(w-1)
  std::vector<std::vector<T>> windows_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  std::size_t pending_bytes_ = 0;
  ChargeTracker charge_;  ///< released when the dedup is destroyed
};

}  // namespace t2m

#endif  // T2M_UTIL_WINDOW_DEDUP_H
