#include "src/util/stopwatch.h"

// Header-only component; this translation unit exists so the build exposes a
// stable object for the module and catches header self-containment issues.
