#ifndef T2M_UTIL_LOG_H
#define T2M_UTIL_LOG_H

#include <cstdint>
#include <sstream>
#include <string>

namespace t2m {

/// Severity levels for the library logger, ordered by verbosity.
enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// Minimal logger writing to stderr. Lines are emitted whole under a mutex,
/// so concurrent workers (portfolio races, sharded scans) interleave at line
/// granularity; set_level is still expected at startup, before threads run.
/// The learner emits progress at Debug and per-iteration statistics at
/// Trace; benches usually run with Warn to keep tables clean.
class Logger {
public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::Off; }

  void write(LogLevel level, const std::string& message);

private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
};

namespace detail {

/// RAII line builder: streams parts, emits one log line on destruction.
class LogLine {
public:
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_line(LogLevel level) {
  return detail::LogLine(level, Logger::instance().enabled(level));
}

inline detail::LogLine log_trace() { return log_line(LogLevel::Trace); }
inline detail::LogLine log_debug() { return log_line(LogLevel::Debug); }
inline detail::LogLine log_info() { return log_line(LogLevel::Info); }
inline detail::LogLine log_warn() { return log_line(LogLevel::Warn); }
inline detail::LogLine log_error() { return log_line(LogLevel::Error); }

}  // namespace t2m

#endif  // T2M_UTIL_LOG_H
