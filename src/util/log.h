#ifndef T2M_UTIL_LOG_H
#define T2M_UTIL_LOG_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "src/util/sync.h"

namespace t2m {

/// Severity levels for the library logger, ordered by verbosity.
enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// "trace" -> LogLevel::Trace, ... "off" -> LogLevel::Off; nullopt for
/// anything else. The one parser behind `t2m --log-level`.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// "TRACE", "DEBUG", ... (unpadded).
const char* log_level_name(LogLevel level);

/// Minimal logger writing to stderr (or an installed sink). Lines are
/// emitted whole under a mutex, so concurrent workers (portfolio races,
/// sharded scans) interleave at line granularity, and every line carries a
/// monotonic timestamp (seconds since process start) plus a small per-thread
/// id: `[t2m INFO  12.345678 t03] message`.
///
/// Thread-safety: set_level is an atomic store and may be called at any
/// time from any thread (it used to be startup-only); set_sink swaps the
/// sink under the same mutex that serialises write(), so a test can install
/// a capture sink around a parallel region without racing in-flight lines.
class Logger {
public:
  /// A sink receives the severity and the fully formatted line (prefix
  /// included, no trailing newline). nullptr restores the stderr default.
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static Logger& instance();

  // order: relaxed — the level is an isolated filter value carrying no
  // payload; a marginally stale read only delays a verbosity change by one
  // line.
  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    const LogLevel current = this->level();
    return level >= current && current != LogLevel::Off;
  }

  void set_sink(Sink sink);

  void write(LogLevel level, const std::string& message);

private:
  Logger() = default;

  std::atomic<LogLevel> level_{LogLevel::Warn};
  Mutex mutex_;  ///< serialises write() and sink swaps
  Sink sink_ GUARDED_BY(mutex_);
};

namespace detail {

/// RAII line builder: streams parts, emits one log line on destruction.
class LogLine {
public:
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_line(LogLevel level) {
  return detail::LogLine(level, Logger::instance().enabled(level));
}

inline detail::LogLine log_trace() { return log_line(LogLevel::Trace); }
inline detail::LogLine log_debug() { return log_line(LogLevel::Debug); }
inline detail::LogLine log_info() { return log_line(LogLevel::Info); }
inline detail::LogLine log_warn() { return log_line(LogLevel::Warn); }
inline detail::LogLine log_error() { return log_line(LogLevel::Error); }

}  // namespace t2m

#endif  // T2M_UTIL_LOG_H
