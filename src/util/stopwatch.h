#ifndef T2M_UTIL_STOPWATCH_H
#define T2M_UTIL_STOPWATCH_H

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

namespace t2m {

/// Wall-clock stopwatch used by the learner and the bench harnesses.
class Stopwatch {
public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  std::int64_t elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_)
        .count();
  }

private:
  Clock::time_point start_;
};

/// A soft deadline checked cooperatively by long-running algorithms (SAT
/// search, learner refinement). A default-constructed deadline never expires.
class Deadline {
public:
  Deadline() = default;

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.expiry_ = Stopwatch::Clock::now() +
                std::chrono::duration_cast<Stopwatch::Clock::duration>(
                    std::chrono::duration<double>(seconds));
    return d;
  }
  static Deadline never() { return Deadline(); }

  bool expired() const {
    return expiry_.has_value() && Stopwatch::Clock::now() >= *expiry_;
  }
  bool is_finite() const { return expiry_.has_value(); }

  /// Seconds remaining; +inf for the never-expiring deadline.
  double remaining_seconds() const {
    if (!expiry_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*expiry_ - Stopwatch::Clock::now()).count();
  }

private:
  std::optional<Stopwatch::Clock::time_point> expiry_;
};

}  // namespace t2m

#endif  // T2M_UTIL_STOPWATCH_H
