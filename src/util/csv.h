#ifndef T2M_UTIL_CSV_H
#define T2M_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace t2m {

/// Accumulates rows and renders either CSV (for downstream plotting) or an
/// aligned ASCII table (for terminal output). Bench harnesses use this to
/// print the paper's tables.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t row_count() const { return rows_.size(); }

  /// Renders as comma-separated values, one line per row, header first.
  void write_csv(std::ostream& os) const;
  /// Renders as a column-aligned ASCII table with a rule under the header.
  void write_ascii(std::ostream& os) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace t2m

#endif  // T2M_UTIL_CSV_H
