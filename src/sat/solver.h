#ifndef T2M_SAT_SOLVER_H
#define T2M_SAT_SOLVER_H

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/sat/clause_arena.h"
#include "src/sat/cnf.h"
#include "src/sat/watcher_list.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace t2m::sat {

class Preprocessor;
class ProofLog;
struct PreprocessOptions;

/// Outcome of a solve() call. Unknown is returned when the deadline or
/// conflict budget ran out before a decision was reached.
enum class SolveResult : std::uint8_t { Sat, Unsat, Unknown };

/// Runtime statistics, exposed for the bench harnesses.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t reduces = 0;        ///< learned-clause reduction rounds
  std::uint64_t gc_runs = 0;        ///< arena compactions
  std::uint64_t solves = 0;             ///< solve() calls on this instance
  std::uint64_t assumption_unsats = 0;  ///< Unsat verdicts from a failed assumption
  std::uint64_t simplify_rounds = 0;    ///< root-level simplification passes
  std::uint64_t simplify_removed = 0;   ///< clauses removed as root-satisfied
  std::uint64_t preprocess_rounds = 0;  ///< Preprocessor passes run
  std::uint64_t subsumed_clauses = 0;   ///< clauses removed by subsumption
  std::uint64_t strengthened_lits = 0;  ///< literals removed by self-subsumption
  std::uint64_t eliminated_vars = 0;    ///< variables removed by BVE
  std::size_t arena_bytes = 0;      ///< clause arena size after last solve
  std::size_t peak_arena_bytes = 0; ///< lifetime arena high-water mark

  /// Merges another solver's counters into this one: work counters add up,
  /// high-water marks take the maximum. The aggregation the sharded and
  /// portfolio drivers report instead of one arbitrary worker's numbers.
  SolverStats& operator+=(const SolverStats& other);
};

/// Search-shape knobs the portfolio driver diversifies per racing solver.
/// All defaults reproduce the historical single-configuration behaviour.
/// Apply via Solver::set_config() before encoding: `default_phase` seeds the
/// saved-phase array as variables are created, so flipping it later only
/// affects variables created (or heuristics reset) afterwards.
struct SolverConfig {
  /// Luby restart multiplier (conflicts before the first restart).
  std::uint64_t restart_base = 100;
  /// Initial saved-phase polarity for fresh variables and heuristic resets.
  bool default_phase = false;
  /// Per-mille of decisions that take a random polarity instead of the
  /// saved phase; 0 disables. Deterministic per seed.
  std::uint32_t random_polarity_permille = 0;
  /// Seed for the polarity RNG.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// When set, the solver writes an extended-DRAT trace of every clause it
  /// is handed, learns, strengthens or deletes to this sink, making UNSAT
  /// verdicts independently checkable (see docs/proof_checking.md). Not
  /// owned. Attach via set_config() before adding clauses; logging is pure
  /// output and never changes solver behaviour.
  ProofLog* proof_log = nullptr;
  /// Retain a copy of every problem clause exactly as handed to add_*().
  /// verify_model() then audits SAT verdicts against the original formula
  /// (pre-normalisation, pre-preprocessing) instead of the live database.
  bool keep_originals = false;
};

/// Conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP conflict analysis with
/// recursive clause minimisation, VSIDS branching with phase saving, Luby
/// restarts and LBD/activity-based learned-clause deletion.
///
/// Clauses live in a flat `ClauseArena` (contiguous uint32 buffer addressed
/// by 32-bit offsets) rather than one heap vector per clause; deletion marks
/// clauses dead in place and a compacting garbage collector reclaims the
/// space, rewriting watcher lists and reason references and purging stale
/// watchers of deleted clauses.
///
/// The solver is incremental: clauses may be added between solve() calls
/// (the learner's refinement loop adds forbidden-sequence constraints this
/// way) and solve() accepts assumption literals.
class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();
  /// Creates `count` fresh variables in one batch (one resize of the
  /// per-variable arrays instead of `count` incremental grows; the encoders
  /// allocate one-hot blocks this way). Returns the first of the block.
  Var new_vars(std::size_t count);
  std::size_t num_vars() const { return assign_.size(); }
  std::size_t num_clauses() const { return num_problem_clauses_; }
  std::size_t num_learned() const { return learnts_.size(); }

  /// Adds a clause; returns false if the instance is already unsatisfiable
  /// at the root level (e.g. conflicting unit clauses). `tainted` marks the
  /// clause width-dependent (see ClauseArena): conflicts derived from it
  /// propagate the mark, and export_clauses() refuses tainted clauses.
  bool add_clause(std::span<const Lit> lits, bool tainted = false);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// add_clause for callers that already sorted the literals and removed
  /// duplicates/tautologies (the parallel emission workers): skips the sort
  /// and dedup but still filters against the live root-level assignment, so
  /// splicing stays correct when earlier spliced clauses produced units.
  bool add_clause_presorted(std::span<const Lit> lits, bool tainted = false);

  /// Bulk-add path for the parallel emission splice: like
  /// add_clause_presorted(), but a clause that keeps >= 2 literals after the
  /// root-assignment filter is allocated WITHOUT attaching its watchers —
  /// its ClauseRef is appended to `pending` instead. The caller must attach
  /// everything in `pending` (attach_shard() over a full shard partition)
  /// before the root assignment next advances and before solving. Returns
  /// false — having done nothing — exactly when this clause needs the
  /// ordinary immediate path (it filters down to a unit or empty clause, or
  /// a backtrack to the root is required): the caller then flushes `pending`
  /// and re-adds the clause via add_clause_presorted(). The solver state
  /// after deferred adds + flush is identical to the same sequence of
  /// immediate add_clause_presorted() calls.
  bool add_clause_deferred(std::span<const Lit> lits, bool tainted,
                           std::vector<ClauseRef>& pending);

  /// Attaches the watchers of `refs` (clauses allocated by
  /// add_clause_deferred) that fall into `shard`. A watcher list is owned by
  /// shard `literal_code % num_shards`, so calls with distinct shards touch
  /// disjoint lists and may run concurrently — the only solver mutation
  /// permitted in parallel. Each list still receives its watchers in clause
  /// order, reproducing the serial attach order exactly.
  void attach_shard(std::span<const ClauseRef> refs, std::size_t shard,
                    std::size_t num_shards);

  /// Convenience helpers for the encoders.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// `exactly one of lits` via pairwise at-most-one plus at-least-one.
  bool add_exactly_one(std::span<const Lit> lits);

  /// Solves under the given assumptions. An Unsat verdict under assumptions
  /// leaves the solver usable (only a root-level contradiction is terminal);
  /// final_conflict() then names the assumptions responsible.
  SolveResult solve(std::span<const Lit> assumptions = {});

  /// After an assumption-caused Unsat: the subset of the assumptions that is
  /// jointly inconsistent with the clause database (MiniSat's analyzeFinal).
  /// Empty when the last Unsat was unconditional (root-level).
  const std::vector<Lit>& final_conflict() const { return final_conflict_; }

  /// Root-level simplification: removes clauses satisfied at decision level
  /// zero (and releases their antecedent locks). Called automatically at the
  /// start of solve() when new root facts arrived; exposed for tests.
  void simplify();

  /// Resets the branching heuristics — saved phases to the all-false default
  /// and VSIDS activities to zero — while keeping the clause database and
  /// every learned clause. The incremental encoders call this at structural
  /// growth points: the saved assignment shape and conflict activity of the
  /// old (now unsatisfiable) problem are a misleading prior there, steering
  /// the wider search towards degenerate sibling models, whereas the learned
  /// clauses remain sound and keep their pruning power.
  void reset_branching_heuristics();

  /// Cooperative limits; checked between conflicts.
  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

  /// Cooperative cancellation: a non-owning flag polled at every conflict
  /// (and at solve() entry). When it reads true, solve() returns Unknown at
  /// the next poll, leaving the solver reusable — the portfolio driver's
  /// losing workers are cancelled this way. nullptr disables.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }

  /// Applies search-shape knobs (see SolverConfig). Call before encoding.
  void set_config(const SolverConfig& config);
  const SolverConfig& config() const { return config_; }

  /// Model access after SolveResult::Sat.
  bool model_value(Var v) const;

  /// SAT-verdict audit: replays the model (including values reconstructed
  /// for BVE-eliminated variables) against the formula. With
  /// SolverConfig::keep_originals the audit runs over every clause exactly
  /// as handed to add_*(); otherwise over the live database plus the
  /// elimination stash. Returns internal error naming the first falsified
  /// clause. Call only after solve() returned Sat.
  Status verify_model() const;

  /// Debug auditor: cross-checks the watcher lists against the arena, the
  /// trail/reason invariants, and the frozen/eliminated-variable contract.
  /// O(database); intended for tests and the T2M_CHECK_INVARIANTS env
  /// toggle (checked at solve() boundaries), not for production loops.
  Status check_invariants() const;

  /// Marks a variable untouchable by the preprocessor: it is never
  /// eliminated and clauses are never resolved on it. The encoders freeze
  /// every variable whose value they read back or assume.
  void freeze(Var v);
  bool is_frozen(Var v) const {
    return static_cast<std::size_t>(v) < frozen_.size() &&
           frozen_[static_cast<std::size_t>(v)] != 0;
  }
  bool is_eliminated(Var v) const {
    return static_cast<std::size_t>(v) < eliminated_.size() &&
           eliminated_[static_cast<std::size_t>(v)] != 0;
  }
  std::size_t num_eliminated() const { return num_eliminated_; }

  /// Exports problem + learned clauses suitable for re-seeding a rebuilt
  /// solver: learned clauses with LBD <= `max_lbd` and root-level facts,
  /// skipping anything tainted by a width-dependent input clause.
  std::vector<Clause> export_clauses(std::uint32_t max_lbd) const;

  /// A cheap structural fingerprint of the clause database (order-sensitive
  /// hash over every live clause's literals plus the root trail). Used by
  /// tests to prove parallel emission is byte-identical to serial.
  std::uint64_t clause_fingerprint() const;

  const SolverStats& stats() const { return stats_; }

  /// True if the solver is known unsatisfiable regardless of assumptions.
  bool in_unsat_state() const { return !ok_; }

  /// Compacts the clause arena now (normally triggered automatically when
  /// at least `kGcWasteFraction` of it is dead). Exposed for tests.
  void garbage_collect();

  /// Runs the SatELite-style preprocessor (subsumption, self-subsuming
  /// resolution, bounded variable elimination) at the root level. Must be
  /// called with no assumptions in force; frozen variables are untouched.
  /// Returns false if preprocessing proved the instance unsatisfiable.
  bool preprocess(const PreprocessOptions& opts);

private:
  friend class Preprocessor;
  static constexpr ClauseRef kNoReason = kClauseRefUndef;
  /// Watcher refs of binary clauses carry this tag: propagation then runs
  /// entirely on the watcher (blocker = the other literal) without touching
  /// clause memory. Arena offsets stay well below 2^31, so the bit is free.
  static constexpr ClauseRef kBinaryTag = 0x80000000u;

  // --- core operations ---
  LBool value(Lit l) const {
    const LBool v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? lbool_not(v) : v;
  }
  LBool value(Var v) const { return assign_[static_cast<std::size_t>(v)]; }

  ClauseRef alloc_clause(std::span<const Lit> lits, bool learned,
                         bool tainted = false);
  void attach_clause(ClauseRef cref);
  bool finish_add_clause(std::span<const Lit> lits, bool tainted);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
  /// Collects into final_conflict_ the assumptions that propagated `failed`
  /// to false (plus `failed` itself) by walking reasons down the trail.
  void analyze_final(Lit failed);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch_literal();
  void reduce_learned();
  void maybe_garbage_collect();
  /// True when the clause is the antecedent of its first literal.
  bool locked(ClauseRef cref) const;
  std::uint32_t compute_lbd(std::span<const Lit> lits);
  void bump_var(Var v);
  void bump_clause(ClauseRef cref);
  void decay_activities();

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  int level_of(Var v) const { return level_[static_cast<std::size_t>(v)]; }

  // Heap helpers (max-heap on activity).
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  bool heap_contains(Var v) const {
    return heap_index_[static_cast<std::size_t>(v)] >= 0;
  }

  static std::uint64_t luby(std::uint64_t i);

  // --- state ---
  bool ok_ = true;
  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnts_;
  std::size_t num_problem_clauses_ = 0;
  std::vector<WatcherList> watches_;           // indexed by literal code
  std::vector<LBool> assign_;                  // indexed by var
  std::vector<LBool> saved_phase_;             // phase saving
  std::vector<int> level_;                     // decision level per var
  std::vector<ClauseRef> reason_;              // antecedent per var
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_index_;

  // scratch buffers for add_clause() and analyze()
  Clause add_scratch_;
  Clause add_norm_scratch_;
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<std::uint32_t> lbd_stamp_;  // per-level stamp for LBD counting
  std::uint32_t lbd_stamp_gen_ = 0;

  Deadline deadline_;
  std::uint64_t conflict_budget_ = 0;  // 0 = unlimited
  /// Cooperative cancellation: polled with relaxed loads at solve entry and
  /// every conflict. The flag carries no data — result visibility comes from
  /// the joining structure (TaskGroup) on the raising side.
  const std::atomic<bool>* stop_ = nullptr;
  SolverConfig config_;
  Rng polarity_rng_;

  // --- proof logging / model auditing ---
  ProofLog* plog_ = nullptr;            // = config_.proof_log (hot-path copy)
  std::vector<Clause> originals_;       // as handed to add_*(); keep_originals
  std::vector<Lit> log_scratch_;        // literal buffer for log_remove()
  /// Retains/logs a problem clause exactly as the caller handed it.
  void record_axiom(std::span<const Lit> lits);
  /// Emits a deletion line for a live arena clause.
  void log_remove(ClauseRef cref);
  /// The single gateway to ok_ = false: logs the empty clause first, so a
  /// checker replaying the proof reaches its own root conflict in lockstep.
  void set_unsat();
  std::vector<Lit> final_conflict_;    // assumption core of the last Unsat
  std::size_t simplified_up_to_ = 0;   // root trail size at the last simplify()

  // --- preprocessing state ---
  std::vector<char> frozen_;      // per-var: never eliminated
  std::vector<char> eliminated_;  // per-var: removed by BVE
  std::size_t num_eliminated_ = 0;
  /// Clauses of each eliminated variable, stashed in elimination order so
  /// reconstruct_model() can extend a model of the reduced formula to the
  /// original one by replaying them in reverse.
  struct ElimRecord {
    Var var;
    std::vector<Clause> clauses;  // every original clause mentioning var
  };
  std::vector<ElimRecord> elim_stash_;
  /// Values reconstructed for eliminated variables after a Sat verdict.
  /// Kept apart from assign_: they are model-specific, not entailed facts,
  /// so they must not participate in propagation.
  std::vector<LBool> elim_model_;
  void reconstruct_model();

  // --- width-taint tracking ---
  /// Per-var: the root-level fact on this variable was derived (transitively)
  /// from a tainted clause. Consulted when analyze() skips level-0 literals.
  std::vector<char> root_taint_;
  bool analyze_taint_ = false;  // accumulator for the conflict being analyzed
  bool root_tainted(Var v) const {
    return root_taint_[static_cast<std::size_t>(v)] != 0;
  }

  SolverStats stats_;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_SOLVER_H
