#ifndef T2M_SAT_SOLVER_H
#define T2M_SAT_SOLVER_H

#include <cstdint>
#include <span>
#include <vector>

#include "src/sat/cnf.h"
#include "src/util/stopwatch.h"

namespace t2m::sat {

/// Outcome of a solve() call. Unknown is returned when the deadline or
/// conflict budget ran out before a decision was reached.
enum class SolveResult : std::uint8_t { Sat, Unsat, Unknown };

/// Runtime statistics, exposed for the bench harnesses.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
};

/// Conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP conflict analysis with
/// recursive clause minimisation, VSIDS branching with phase saving, Luby
/// restarts and activity-based learned-clause deletion.
///
/// The solver is incremental: clauses may be added between solve() calls
/// (the learner's refinement loop adds forbidden-sequence constraints this
/// way) and solve() accepts assumption literals.
class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();
  std::size_t num_vars() const { return assign_.size(); }
  std::size_t num_clauses() const { return num_problem_clauses_; }

  /// Adds a clause; returns false if the instance is already unsatisfiable
  /// at the root level (e.g. conflicting unit clauses).
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Convenience helpers for the encoders.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// `exactly one of lits` via pairwise at-most-one plus at-least-one.
  bool add_exactly_one(std::span<const Lit> lits);

  /// Solves under the given assumptions.
  SolveResult solve(std::span<const Lit> assumptions = {});

  /// Cooperative limits; checked between conflicts.
  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

  /// Model access after SolveResult::Sat.
  bool model_value(Var v) const;

  const SolverStats& stats() const { return stats_; }

  /// True if the solver is known unsatisfiable regardless of assumptions.
  bool in_unsat_state() const { return !ok_; }

private:
  struct ClauseData {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef clause = kNoReason;
    Lit blocker = Lit::undef();
  };

  // --- core operations ---
  LBool value(Lit l) const {
    const LBool v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? lbool_not(v) : v;
  }
  LBool value(Var v) const { return assign_[static_cast<std::size_t>(v)]; }

  void attach_clause(ClauseRef cref);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch_literal();
  void reduce_learned();
  void bump_var(Var v);
  void bump_clause(ClauseData& c);
  void decay_activities();
  void rebuild_order_heap();

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  int level_of(Var v) const { return level_[static_cast<std::size_t>(v)]; }

  // Heap helpers (max-heap on activity).
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  bool heap_contains(Var v) const {
    return heap_index_[static_cast<std::size_t>(v)] >= 0;
  }

  static std::uint64_t luby(std::uint64_t i);

  // --- state ---
  bool ok_ = true;
  std::vector<ClauseData> clauses_;
  std::size_t num_problem_clauses_ = 0;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
  std::vector<LBool> assign_;                  // indexed by var
  std::vector<LBool> saved_phase_;             // phase saving
  std::vector<int> level_;                     // decision level per var
  std::vector<ClauseRef> reason_;              // antecedent per var
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_index_;

  // scratch buffers for analyze()
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;

  Deadline deadline_;
  std::uint64_t conflict_budget_ = 0;  // 0 = unlimited
  std::size_t live_learned_ = 0;
  SolverStats stats_;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_SOLVER_H
