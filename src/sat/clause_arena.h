#ifndef T2M_SAT_CLAUSE_ARENA_H
#define T2M_SAT_CLAUSE_ARENA_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/memory_accountant.h"
#include "src/sat/cnf.h"
#include "src/util/failpoint.h"

namespace t2m::sat {

/// Offset of a clause within the arena's word buffer. 32 bits address
/// 16 GiB of clause storage, far beyond any instance we encode.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kClauseRefUndef = 0xFFFFFFFFu;

/// MiniSat-style flat clause storage: every clause lives contiguously in one
/// `uint32_t` buffer and is addressed by its word offset.
///
/// Layout per clause (32-bit words):
///
///   [header]              size << 4 | learned(1) | deleted(2) | reloced(4)
///                                   | tainted(8)
///   [activity]  (learned) IEEE float, bit_cast
///   [lbd]       (learned) literal-block distance at learn time
///   [lit 0..size-1]       Lit codes
///
/// The `tainted` bit marks clauses whose derivation (transitively) used a
/// width-dependent input clause — the persistent encoder's at-least-one
/// clause is the only one — so the learned-clause re-seeding across capacity
/// rebuilds can refuse to export them (see docs/preprocessing.md).
///
/// Deleted clauses stay in place (their watchers are dropped lazily) until
/// garbage_collect() copies the live clauses into a fresh arena. During that
/// copy the old clause's first payload word is overwritten with the
/// forwarding reference and the `reloced` bit is set, so every owner
/// (watcher lists, reason refs, clause lists) can be rewritten by a simple
/// lookup regardless of traversal order.
class ClauseArena {
public:
  static constexpr std::uint32_t kLearnedBit = 1u;
  static constexpr std::uint32_t kDeletedBit = 2u;
  static constexpr std::uint32_t kRelocedBit = 4u;
  static constexpr std::uint32_t kTaintedBit = 8u;

  ClauseRef alloc(std::span<const Lit> lits, bool learned, bool tainted = false) {
    T2M_INJECT_STATUS("arena.alloc", ErrorCode::resource_exhausted,
                      "clause arena allocation failed");
    const auto cref = static_cast<ClauseRef>(mem_.size());
    mem_.push_back((static_cast<std::uint32_t>(lits.size()) << 4) |
                   (learned ? kLearnedBit : 0u) | (tainted ? kTaintedBit : 0u));
    if (learned) {
      mem_.push_back(std::bit_cast<std::uint32_t>(0.0f));  // activity
      mem_.push_back(0);                                   // lbd
    }
    for (const Lit l : lits) {
      mem_.push_back(static_cast<std::uint32_t>(l.code()));
    }
    if (mem_.size() > peak_words_) peak_words_ = mem_.size();
    update_charge();
    return cref;
  }

  // --- header access ------------------------------------------------------
  std::size_t size(ClauseRef c) const { return mem_[c] >> 4; }
  bool learned(ClauseRef c) const { return (mem_[c] & kLearnedBit) != 0; }
  bool deleted(ClauseRef c) const { return (mem_[c] & kDeletedBit) != 0; }
  bool tainted(ClauseRef c) const { return (mem_[c] & kTaintedBit) != 0; }

  /// Marks the clause dead; its words are reclaimed at the next GC.
  void mark_deleted(ClauseRef c) {
    assert(!deleted(c));
    mem_[c] |= kDeletedBit;
    wasted_ += words_of(c);
  }

  // --- literal access -----------------------------------------------------
  std::size_t lits_offset(ClauseRef c) const {
    return c + 1 + (learned(c) ? 2 : 0);
  }
  /// Pointer to the clause's literal codes (valid until the next alloc/GC).
  std::uint32_t* lit_codes(ClauseRef c) { return mem_.data() + lits_offset(c); }
  const std::uint32_t* lit_codes(ClauseRef c) const {
    return mem_.data() + lits_offset(c);
  }
  Lit lit(ClauseRef c, std::size_t i) const {
    return Lit::from_code(static_cast<std::int32_t>(lit_codes(c)[i]));
  }

  // --- learned-clause metadata -------------------------------------------
  float activity(ClauseRef c) const {
    assert(learned(c));
    return std::bit_cast<float>(mem_[c + 1]);
  }
  void set_activity(ClauseRef c, float a) {
    assert(learned(c));
    mem_[c + 1] = std::bit_cast<std::uint32_t>(a);
  }
  std::uint32_t lbd(ClauseRef c) const {
    assert(learned(c));
    return mem_[c + 2];
  }
  void set_lbd(ClauseRef c, std::uint32_t v) {
    assert(learned(c));
    mem_[c + 2] = v;
  }

  // --- garbage collection -------------------------------------------------
  /// Copies the clause into `to` (once; subsequent calls return the same
  /// forwarding reference) and returns its new reference.
  ClauseRef relocate(ClauseRef c, ClauseArena& to) {
    if ((mem_[c] & kRelocedBit) != 0) return mem_[c + 1];
    assert(!deleted(c));
    const std::size_t n = words_of(c);
    const auto nc = static_cast<ClauseRef>(to.mem_.size());
    to.mem_.insert(to.mem_.end(), mem_.begin() + c, mem_.begin() + c + n);
    to.update_charge();
    mem_[c] |= kRelocedBit;
    mem_[c + 1] = nc;
    return nc;
  }

  void reserve_words(std::size_t words) {
    mem_.reserve(words);
    update_charge();
  }
  /// Carries the lifetime high-water mark across a GC swap.
  void inherit_peak(const ClauseArena& from) {
    if (from.peak_words_ > peak_words_) peak_words_ = from.peak_words_;
  }

  // --- accounting ---------------------------------------------------------
  std::size_t size_words() const { return mem_.size(); }
  std::size_t wasted_words() const { return wasted_; }
  std::size_t size_bytes() const { return mem_.size() * sizeof(std::uint32_t); }
  std::size_t peak_bytes() const { return peak_words_ * sizeof(std::uint32_t); }

private:
  std::size_t words_of(ClauseRef c) const {
    return 1 + (learned(c) ? 2 : 0) + size(c);
  }

  /// Syncs the global memory accountant with the buffer's capacity. The
  /// vector doubles, so this reaches the accountant O(log size) times; when
  /// a configured cap is overrun the charge throws resource_exhausted (the
  /// just-performed push_back stays — the learn run is unwinding anyway).
  void update_charge() {
    const std::size_t cap_bytes = mem_.capacity() * sizeof(std::uint32_t);
    if (cap_bytes != charge_.charged()) charge_.set_charged(cap_bytes);
  }

  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
  std::size_t peak_words_ = 0;
  // Makes the arena move-only; the charge follows the buffer across the GC
  // swap (`arena_ = std::move(to)`).
  ChargeTracker charge_;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_CLAUSE_ARENA_H
