#include "src/sat/var_remap.h"

#include <stdexcept>

namespace t2m::sat {

void VarRemap::map(Var from, Var to) {
  if (from < 0 || to < 0) {
    throw std::invalid_argument("VarRemap::map: negative variable");
  }
  if (static_cast<std::size_t>(from) >= to_.size()) {
    to_.resize(static_cast<std::size_t>(from) + 1, -1);
  }
  if (to_[static_cast<std::size_t>(from)] < 0) ++mapped_;
  to_[static_cast<std::size_t>(from)] = to;
}

bool VarRemap::map_clause(std::span<const Lit> in, Clause& out) const {
  out.clear();
  out.reserve(in.size());
  for (const Lit l : in) {
    const Lit m = map_lit(l);
    if (m.is_undef()) return false;
    out.push_back(m);
  }
  return true;
}

}  // namespace t2m::sat
