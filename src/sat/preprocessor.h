#ifndef T2M_SAT_PREPROCESSOR_H
#define T2M_SAT_PREPROCESSOR_H

#include <cstdint>
#include <vector>

#include "src/sat/cnf.h"
#include "src/sat/solver.h"
#include "src/util/stopwatch.h"

namespace t2m::sat {

/// Knobs for Solver::preprocess(). The occurrence limits are the standard
/// SatELite guards against quadratic blow-up on very frequent literals; the
/// defaults are sized for the CSP encodings this repo produces (millions of
/// mostly-binary clauses over a few hot guard literals).
struct PreprocessOptions {
  bool subsumption = true;       ///< remove clauses implied by a subset clause
  bool strengthen = true;        ///< self-subsuming resolution (literal removal)
  bool bve = true;               ///< bounded variable elimination
  std::size_t max_rounds = 3;    ///< outer subsume/strengthen + BVE iterations
  /// Literals whose occurrence list is longer than this are never used to
  /// seed a subsumption walk or a strengthening scan.
  std::size_t max_occurrences = 400;
  /// Variables occurring (either polarity) more often than this are never
  /// BVE candidates.
  std::size_t max_var_occurrences = 40;
  /// An elimination producing any resolvent longer than this is skipped.
  std::size_t max_resolvent_size = 64;
  /// Allowed growth in clause count per elimination (0 = SatELite's
  /// "never more clauses than before" rule).
  std::size_t grow = 0;
  /// Upper bound on subset-check work across the whole run; preprocessing
  /// stops early (soundly) when exhausted.
  std::uint64_t work_budget = 50'000'000;
  /// Cooperative wall-clock bound: when it expires mid-run the passes stop
  /// early through the same sound path as work-budget exhaustion (the
  /// database stays equivalence-preserving, just less reduced). Defaults to
  /// never expiring.
  Deadline deadline;
};

/// SatELite-style CNF preprocessor operating on a Solver's root-level
/// database: occurrence-list backward subsumption, self-subsuming
/// resolution, and bounded variable elimination with model reconstruction.
///
/// Soundness contract (see docs/preprocessing.md):
///  - Variables the owner reads back, assumes, or will mention in later
///    add_clause() calls must be frozen (Solver::freeze) beforehand; frozen
///    and root-assigned variables are never eliminated.
///  - Subsumption and strengthening preserve logical equivalence exactly.
///  - Elimination preserves equisatisfiability; the eliminated variable's
///    clauses are stashed and Solver::reconstruct_model() extends any model
///    of the reduced formula back over the eliminated variables.
///  - Width-taint flags propagate: a strengthened clause or resolvent is
///    tainted iff any clause it was derived from was.
///
/// Invoked via Solver::preprocess(); the class is separate so the occurrence
/// index and work queues don't live inside the solver between calls.
class Preprocessor {
public:
  Preprocessor(Solver& solver, const PreprocessOptions& opts);

  /// Runs the configured passes and writes the reduced database back into
  /// the solver. Returns false if the instance was proven unsatisfiable.
  bool run();

private:
  // Working representation: every clause (including the root trail, carried
  // as unit clauses so units subsume and strengthen uniformly) as a sorted
  // literal vector plus a 64-bit variable-signature for cheap non-subset
  // rejection.
  struct PClause {
    Clause lits;  // sorted by Lit order, duplicate-free
    std::uint64_t sig = 0;
    bool tainted = false;
    bool deleted = false;
  };

  static std::uint64_t signature(const Clause& lits);
  bool contains(const PClause& c, Lit l) const;
  /// True when a ⊆ b (both sorted).
  static bool subset(const Clause& a, const Clause& b);

  void snapshot();
  bool subsume_and_strengthen();
  bool strengthen_clause(std::size_t target, Lit remove, bool from_tainted);
  bool eliminate_variables();
  bool try_eliminate(Var v);
  bool resolve(const PClause& a, const PClause& b, Var v, Clause& out) const;
  void add_derived_clause(Clause lits, bool tainted);
  bool writeback();

  std::vector<std::uint32_t>& occ(Lit l) {
    return occur_[static_cast<std::size_t>(l.code())];
  }

  /// Proof-trace hooks (no-ops when the owning solver has no proof sink).
  /// Every derivation the passes make is logged in dependency order: a
  /// strengthened clause or resolvent is added (checkably) before the
  /// clauses it was derived from are deleted.
  void log_derived(const Clause& lits);
  void log_deleted(const Clause& lits);

  Solver& s_;
  const PreprocessOptions& opts_;
  std::vector<PClause> clauses_;
  std::vector<std::vector<std::uint32_t>> occur_;  // by literal code
  std::vector<std::uint32_t> queue_;               // subsumption worklist
  std::vector<char> queued_;
  /// Amortised deadline poll: reads the clock every 256th call and converts
  /// an expired deadline into work-budget exhaustion, the existing sound
  /// early-stop every pass already honours.
  void poll_deadline() {
    // Polls on the first call (deterministic for already-expired deadlines)
    // and every 256th after that.
    if ((deadline_ticks_++ % 256u) != 0 || !opts_.deadline.is_finite()) return;
    if (opts_.deadline.expired()) work_ = opts_.work_budget;
  }

  std::vector<char> var_gone_;  // eliminated during this run
  std::vector<Solver::ElimRecord> stash_;
  std::uint64_t deadline_ticks_ = 0;
  std::uint64_t work_ = 0;
  bool unsat_ = false;
  std::uint64_t subsumed_ = 0;
  std::uint64_t strengthened_ = 0;
  std::uint64_t eliminated_ = 0;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_PREPROCESSOR_H
