#ifndef T2M_SAT_PROOF_LOG_H
#define T2M_SAT_PROOF_LOG_H

#include <cstdint>
#include <iosfwd>
#include <span>

#include "src/sat/cnf.h"

namespace t2m::sat {

/// Sink for an extended-DRAT proof trace, the artifact that makes the
/// solver's UNSAT verdicts independently checkable (see
/// docs/proof_checking.md). Plain text, one event per line, literals in
/// DIMACS numbering (var+1, negative = negated):
///
///   <lits> 0        lemma addition — must be RUP (or RAT on its first
///                   literal) with respect to the formula so far; the
///                   checker verifies this before admitting it
///   d <lits> 0      clause deletion — advisory; the checker drops a
///                   matching clause and skips silently when none matches
///   i <lits> 0      incremental axiom — extends the formula unchecked
///                   (the solver logs every problem clause it is handed
///                   this way, so a proof is self-contained and covers
///                   clauses added between solve() calls)
///   c restart 0     a fresh solver instance took over the log: the
///                   checker resets its clause database
///   c solve <n> 0             epoch begin (n = solve() ordinal)
///   c assume <lits> 0         the epoch's assumption literals
///   c conclude unsat <lits> 0 the epoch ended Unsat with this (possibly
///                             empty) assumption-closed conflict clause;
///                             the checker requires the clause to be in
///                             its database and every literal to negate a
///                             declared assumption
///   c conclude sat 0          epoch ended Sat (model checked separately
///                             by Solver::verify_model)
///   c conclude unknown 0      epoch gave up (deadline/budget/cancel)
///
/// The writer is sequential: one solver owns the log at a time (the
/// portfolio driver strips it from racing lanes). Logging is pure output —
/// attaching a log never changes solver behaviour (clause fingerprints are
/// byte-identical with and without it; asserted by bench_check).
class ProofLog {
public:
  explicit ProofLog(std::ostream& os) : os_(os) {}
  ProofLog(const ProofLog&) = delete;
  ProofLog& operator=(const ProofLog&) = delete;

  /// Lemma addition ("a" line; the empty span derives the empty clause).
  void add(std::span<const Lit> lits);
  void add_empty() { add({}); }
  /// Clause deletion ("d" line).
  void remove(std::span<const Lit> lits);
  /// Incremental axiom ("i" line).
  void axiom(std::span<const Lit> lits);

  /// Instance boundary: the next lines describe a fresh solver.
  void restart();
  void begin_solve(std::uint64_t ordinal, std::span<const Lit> assumptions);
  /// `conflict` holds the negations of the failed assumption core; empty
  /// for an unconditional (root-level) Unsat.
  void conclude_unsat(std::span<const Lit> conflict);
  void conclude_sat();
  void conclude_unknown();

  std::uint64_t events() const { return events_; }

private:
  void write_clause_line(const char* prefix, std::span<const Lit> lits);

  std::ostream& os_;
  std::uint64_t events_ = 0;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_PROOF_LOG_H
