#ifndef T2M_SAT_CNF_H
#define T2M_SAT_CNF_H

#include <cstdint>
#include <string>
#include <vector>

namespace t2m::sat {

/// A boolean variable index (0-based).
using Var = std::int32_t;

/// A literal: variable with polarity, encoded as 2*var + (negated ? 1 : 0).
/// The encoding makes literals usable directly as array indices for the
/// watch lists.
class Lit {
public:
  constexpr Lit() noexcept : code_(-2) {}
  constexpr Lit(Var v, bool negated) noexcept : code_(2 * v + (negated ? 1 : 0)) {}

  static constexpr Lit from_code(std::int32_t code) noexcept {
    Lit l;
    l.code_ = code;
    return l;
  }
  static constexpr Lit undef() noexcept { return Lit(); }

  constexpr Var var() const noexcept { return code_ >> 1; }
  constexpr bool negated() const noexcept { return (code_ & 1) != 0; }
  constexpr std::int32_t code() const noexcept { return code_; }
  constexpr bool is_undef() const noexcept { return code_ < 0; }

  constexpr Lit operator~() const noexcept { return from_code(code_ ^ 1); }

  friend constexpr bool operator==(Lit a, Lit b) noexcept { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Lit a, Lit b) noexcept { return a.code_ != b.code_; }
  friend constexpr bool operator<(Lit a, Lit b) noexcept { return a.code_ < b.code_; }

  std::string debug_string() const {
    if (is_undef()) return "lit?";
    // Built char-wise: GCC 12's -Wrestrict false-fires on the literal
    // concatenation form at -O2 (PR105651).
    std::string s = std::to_string(var() + 1);
    if (negated()) s.insert(s.begin(), '-');
    return s;
  }

private:
  std::int32_t code_;
};

/// Positive literal of `v`.
constexpr Lit pos(Var v) noexcept { return Lit(v, false); }
/// Negative literal of `v`.
constexpr Lit neg(Var v) noexcept { return Lit(v, true); }

/// A disjunction of literals.
using Clause = std::vector<Lit>;

/// Ternary assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_of(bool b) { return b ? LBool::True : LBool::False; }
inline LBool lbool_not(LBool v) {
  if (v == LBool::Undef) return v;
  return v == LBool::True ? LBool::False : LBool::True;
}

}  // namespace t2m::sat

#endif  // T2M_SAT_CNF_H
