#include "src/sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/sat/proof_log.h"

namespace t2m::sat {

namespace {

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kVarRescaleLimit = 1e100;
// Clause activities are stored as 32-bit floats in the arena header, so the
// rescale threshold must sit well inside float range.
constexpr float kClauseRescaleLimit = 1e20f;
// GC triggers when at least this fraction of the arena is dead words.
constexpr std::size_t kGcWasteDenominator = 5;  // 1/5 = 20%

// Failpoint-style toggle: with T2M_CHECK_INVARIANTS set in the environment,
// every solve() boundary runs the full invariant audit and throws on a
// violation. Read once — the audit is for test/debug processes.
bool invariant_audit_enabled() {
  static const bool enabled = std::getenv("T2M_CHECK_INVARIANTS") != nullptr;
  return enabled;
}

}  // namespace

SolverStats& SolverStats::operator+=(const SolverStats& other) {
  decisions += other.decisions;
  propagations += other.propagations;
  conflicts += other.conflicts;
  restarts += other.restarts;
  learned_clauses += other.learned_clauses;
  learned_literals += other.learned_literals;
  reduces += other.reduces;
  gc_runs += other.gc_runs;
  solves += other.solves;
  assumption_unsats += other.assumption_unsats;
  simplify_rounds += other.simplify_rounds;
  simplify_removed += other.simplify_removed;
  preprocess_rounds += other.preprocess_rounds;
  subsumed_clauses += other.subsumed_clauses;
  strengthened_lits += other.strengthened_lits;
  eliminated_vars += other.eliminated_vars;
  // Gauges, not counters: a summed snapshot would describe no real arena.
  arena_bytes = std::max(arena_bytes, other.arena_bytes);
  peak_arena_bytes = std::max(peak_arena_bytes, other.peak_arena_bytes);
  return *this;
}

Solver::Solver() = default;

void Solver::set_config(const SolverConfig& config) {
  config_ = config;
  polarity_rng_ = Rng(config.seed);
  plog_ = config.proof_log;
  // A fresh instance taking over the log stream: tell the checker to drop
  // the previous instance's clause database (capacity rebuilds reuse one
  // stream across solver generations).
  if (plog_ != nullptr) plog_->restart();
}

void Solver::record_axiom(std::span<const Lit> lits) {
  if (config_.keep_originals) originals_.emplace_back(lits.begin(), lits.end());
  if (plog_ != nullptr) plog_->axiom(lits);
}

void Solver::log_remove(ClauseRef cref) {
  if (plog_ == nullptr) return;
  log_scratch_.clear();
  const std::size_t size = arena_.size(cref);
  for (std::size_t i = 0; i < size; ++i) log_scratch_.push_back(arena_.lit(cref, i));
  plog_->remove(log_scratch_);
}

void Solver::set_unsat() {
  ok_ = false;
  if (plog_ != nullptr) plog_->add_empty();
}

Var Solver::new_var() { return new_vars(1); }

Var Solver::new_vars(std::size_t count) {
  const Var first = static_cast<Var>(assign_.size());
  const std::size_t n = assign_.size() + count;
  assign_.resize(n, LBool::Undef);
  saved_phase_.resize(n, lbool_of(config_.default_phase));
  level_.resize(n, 0);
  reason_.resize(n, kNoReason);
  activity_.resize(n, 0.0);
  heap_index_.resize(n, -1);
  seen_.resize(n, 0);
  frozen_.resize(n, 0);
  eliminated_.resize(n, 0);
  root_taint_.resize(n, 0);
  elim_model_.resize(n, LBool::Undef);
  watches_.resize(2 * n);
  heap_.reserve(n);
  for (Var v = first; v < static_cast<Var>(n); ++v) {
    heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);  // O(1): fresh activity 0 never rises
  }
  return first;
}

ClauseRef Solver::alloc_clause(std::span<const Lit> lits, bool learned, bool tainted) {
  const ClauseRef cref = arena_.alloc(lits, learned, tainted);
  stats_.arena_bytes = arena_.size_bytes();
  stats_.peak_arena_bytes = arena_.peak_bytes();
  return cref;
}

bool Solver::add_clause(std::span<const Lit> lits, bool tainted) {
  if (!ok_) return false;
  record_axiom(lits);
  // Incremental use: always add at the root level.
  if (decision_level() > 0) backtrack(0);

  // Normalise: sort, drop duplicates and root-false literals, detect
  // tautologies and root-satisfied clauses. Scratch buffers are members so
  // the encoder's bulk clause feeding does no per-call allocation.
  add_scratch_.assign(lits.begin(), lits.end());
  std::sort(add_scratch_.begin(), add_scratch_.end());
  Clause& norm = add_norm_scratch_;
  norm.clear();
  Lit prev = Lit::undef();
  for (const Lit l : add_scratch_) {
    if (l.is_undef() || static_cast<std::size_t>(l.var()) >= assign_.size()) {
      throw std::invalid_argument("Solver::add_clause: literal over unknown variable");
    }
    if (is_eliminated(l.var())) {
      throw std::logic_error("Solver::add_clause: literal over eliminated variable");
    }
    if (l == prev) continue;
    if (!prev.is_undef() && l == ~prev) return true;  // tautology
    const LBool v = value(l);
    if (v == LBool::True) return true;  // already satisfied at root
    if (v == LBool::False) {
      // Dropping a root-false literal resolves the clause with that root
      // fact, so the stored clause inherits the fact's width-taint.
      if (root_tainted(l.var())) tainted = true;
      prev = l;
      continue;
    }
    norm.push_back(l);
    prev = l;
  }
  return finish_add_clause(norm, tainted);
}

bool Solver::add_clause_presorted(std::span<const Lit> lits, bool tainted) {
  if (!ok_) return false;
  record_axiom(lits);
  if (decision_level() > 0) backtrack(0);
  // The caller guarantees sorted, duplicate-free, non-tautological input
  // (the parallel emission workers construct clauses that way), so only the
  // root-assignment filter from add_clause() remains.
  Clause& norm = add_norm_scratch_;
  norm.clear();
  for (const Lit l : lits) {
    if (l.is_undef() || static_cast<std::size_t>(l.var()) >= assign_.size()) {
      throw std::invalid_argument("Solver::add_clause_presorted: unknown variable");
    }
    const LBool v = value(l);
    if (v == LBool::True) return true;
    if (v == LBool::False) {
      if (root_tainted(l.var())) tainted = true;
      continue;
    }
    norm.push_back(l);
  }
  return finish_add_clause(norm, tainted);
}

bool Solver::add_clause_deferred(std::span<const Lit> lits, bool tainted,
                                 std::vector<ClauseRef>& pending) {
  if (!ok_) return true;  // nothing to do, nothing to flush
  if (decision_level() > 0) return false;  // rare: immediate path backtracks
  Clause& norm = add_norm_scratch_;
  norm.clear();
  for (const Lit l : lits) {
    if (l.is_undef() || static_cast<std::size_t>(l.var()) >= assign_.size()) {
      throw std::invalid_argument("Solver::add_clause_deferred: unknown variable");
    }
    const LBool v = value(l);
    if (v == LBool::True) {
      record_axiom(lits);
      return true;
    }
    if (v == LBool::False) {
      if (root_tainted(l.var())) tainted = true;
      continue;
    }
    norm.push_back(l);
  }
  // A unit or empty remainder advances the root assignment, which would
  // invalidate the deferred-attach invariant (every pending clause's
  // literals are unassigned): make the caller flush and re-add immediately.
  // No axiom is recorded on that path — the add_clause_presorted() retry
  // records it exactly once.
  if (norm.size() <= 1) return false;
  record_axiom(lits);
  const ClauseRef cref = alloc_clause(norm, /*learned=*/false, tainted);
  problem_clauses_.push_back(cref);
  ++num_problem_clauses_;
  pending.push_back(cref);
  return true;
}

void Solver::attach_shard(std::span<const ClauseRef> refs, std::size_t shard,
                          std::size_t num_shards) {
  // Contiguous block partition of the literal space (not code % num_shards):
  // neighbouring WatcherLists share cache lines, so an interleaved partition
  // would false-share on almost every concurrent push.
  const std::size_t n = watches_.size();
  const auto owner = [n, num_shards](std::size_t code) {
    return code * num_shards / n;
  };
  for (const ClauseRef cref : refs) {
    const Lit l0 = arena_.lit(cref, 0);
    const Lit l1 = arena_.lit(cref, 1);
    const ClauseRef ref = arena_.size(cref) == 2 ? (cref | kBinaryTag) : cref;
    const auto c0 = static_cast<std::size_t>((~l0).code());
    const auto c1 = static_cast<std::size_t>((~l1).code());
    if (owner(c0) == shard) watches_[c0].push_back(Watcher{ref, l1});
    if (owner(c1) == shard) watches_[c1].push_back(Watcher{ref, l0});
  }
}

bool Solver::finish_add_clause(std::span<const Lit> lits, bool tainted) {
  if (lits.empty()) {
    set_unsat();
    return false;
  }
  if (lits.size() == 1) {
    if (tainted) root_taint_[static_cast<std::size_t>(lits[0].var())] = 1;
    enqueue(lits[0], kNoReason);
    if (propagate() != kNoReason) set_unsat();
    return ok_;
  }
  const ClauseRef cref = alloc_clause(lits, /*learned=*/false, tainted);
  problem_clauses_.push_back(cref);
  ++num_problem_clauses_;
  attach_clause(cref);
  return true;
}

bool Solver::add_exactly_one(std::span<const Lit> lits) {
  if (lits.empty()) {
    // "Exactly one of nothing" is an unsatisfiable constraint: record it as
    // an (empty) axiom so the logged empty clause below stays checkable.
    record_axiom({});
    set_unsat();
    return false;
  }
  bool ok = add_clause(lits);
  for (std::size_t i = 0; i < lits.size() && ok; ++i) {
    for (std::size_t j = i + 1; j < lits.size() && ok; ++j) {
      ok = add_binary(~lits[i], ~lits[j]);
    }
  }
  return ok;
}

void Solver::attach_clause(ClauseRef cref) {
  assert(arena_.size(cref) >= 2);
  const Lit l0 = arena_.lit(cref, 0);
  const Lit l1 = arena_.lit(cref, 1);
  const ClauseRef ref = arena_.size(cref) == 2 ? (cref | kBinaryTag) : cref;
  watches_[static_cast<std::size_t>((~l0).code())].push_back(Watcher{ref, l1});
  watches_[static_cast<std::size_t>((~l1).code())].push_back(Watcher{ref, l0});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assign_[v] = lbool_of(!l.negated());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
  // Root-level facts are permanent; record whether this one's derivation
  // used a width-tainted clause so conflict analysis can consult it after
  // simplify() clears the root reasons. Callers enqueueing at the root with
  // kNoReason set root_taint_ themselves beforehand.
  if (trail_lim_.empty() && reason != kNoReason && !root_taint_[v]) {
    bool t = arena_.tainted(reason);
    const std::size_t size = arena_.size(reason);
    for (std::size_t i = 0; i < size && !t; ++i) {
      const Var qv = arena_.lit(reason, i).var();
      if (qv != l.var() && root_tainted(qv)) t = true;
    }
    if (t) root_taint_[v] = 1;
  }
}

ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      // Blocker check avoids touching the clause when already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      // Binary fast path: the whole clause is (blocker | ~p); no clause
      // memory is touched. Binary clauses are never deleted (reduce_learned
      // skips size <= 2), so no deleted check is needed here.
      if ((w.clause & kBinaryTag) != 0) {
        const ClauseRef cref = w.clause & ~kBinaryTag;
        if (value(w.blocker) == LBool::False) {
          // Conflict: restore remaining watchers and report.
          for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
          ws.resize(keep);
          propagate_head_ = trail_.size();
          return cref;
        }
        // Implied: make the blocker the clause's first literal, as conflict
        // analysis expects the asserting literal at position 0.
        std::uint32_t* blits = arena_.lit_codes(cref);
        if (blits[0] != static_cast<std::uint32_t>(w.blocker.code())) {
          std::swap(blits[0], blits[1]);
        }
        ws[keep++] = w;
        enqueue(w.blocker, cref);
        continue;
      }
      if (arena_.deleted(w.clause)) continue;  // stale watcher, purged at GC
      const std::size_t size = arena_.size(w.clause);
      std::uint32_t* lits = arena_.lit_codes(w.clause);
      // Ensure the false literal (~p) sits at position 1.
      const auto false_code = static_cast<std::uint32_t>((~p).code());
      if (lits[0] == false_code) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_code);
      // First literal satisfied?
      const Lit first = Lit::from_code(static_cast<std::int32_t>(lits[0]));
      if (value(first) == LBool::True) {
        ws[keep++] = Watcher{w.clause, first};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < size; ++k) {
        const Lit lk = Lit::from_code(static_cast<std::int32_t>(lits[k]));
        if (value(lk) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>((~lk).code())].push_back(
              Watcher{w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (value(first) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      ws[keep++] = w;
      enqueue(first, w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::bump_var(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > kVarRescaleLimit) {
    for (auto& act : activity_) act *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_update(v);
}

void Solver::bump_clause(ClauseRef cref) {
  const float bumped = arena_.activity(cref) + static_cast<float>(clause_inc_);
  arena_.set_activity(cref, bumped);
  if (bumped > kClauseRescaleLimit) {
    for (const ClauseRef c : learnts_) {
      if (arena_.deleted(c)) continue;
      arena_.set_activity(c, arena_.activity(c) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_activities() {
  var_inc_ /= kVarDecay;
  clause_inc_ /= kClauseDecay;
}

std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  // Called after backtracking, so stale per-var levels may exceed the
  // current decision level; grow the stamp array as needed.
  ++lbd_stamp_gen_;
  std::uint32_t count = 0;
  for (const Lit l : lits) {
    const auto lev = static_cast<std::size_t>(level_of(l.var()));
    if (lev >= lbd_stamp_.size()) lbd_stamp_.resize(lev + 1, 0);
    if (lbd_stamp_[lev] != lbd_stamp_gen_) {
      lbd_stamp_[lev] = lbd_stamp_gen_;
      ++count;
    }
  }
  return count;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::undef());  // slot for the asserting literal
  analyze_taint_ = false;

  int counter = 0;
  Lit p = Lit::undef();
  std::size_t trail_index = trail_.size();
  ClauseRef reason = conflict;

  do {
    assert(reason != kNoReason);
    if (arena_.learned(reason)) bump_clause(reason);
    if (arena_.tainted(reason)) analyze_taint_ = true;
    const std::size_t size = arena_.size(reason);
    const std::size_t start = p.is_undef() ? 0 : 1;
    for (std::size_t i = start; i < size; ++i) {
      const Lit q = arena_.lit(reason, i);
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_of(q.var()) == 0) {
        // Skipping a level-0 literal resolves against that root fact, so the
        // learnt clause inherits its width-taint.
        if (level_of(q.var()) == 0 && root_taint_[qv] != 0) analyze_taint_ = true;
        continue;
      }
      seen_[qv] = 1;
      bump_var(q.var());
      if (level_of(q.var()) >= decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[static_cast<std::size_t>(trail_[trail_index - 1].var())]) {
      --trail_index;
    }
    --trail_index;
    p = trail_[trail_index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    reason = reason_[static_cast<std::size_t>(p.var())];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Conflict-clause minimisation: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (static_cast<std::uint32_t>(level_of(learnt[i].var())) & 31u);
  }
  std::vector<Lit> all_marked(learnt.begin(), learnt.end());
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Lit l = learnt[i];
    if (reason_[static_cast<std::size_t>(l.var())] == kNoReason ||
        !literal_redundant(l, abstract_levels)) {
      learnt[keep++] = l;
    }
  }
  learnt.resize(keep);

  // Clear seen flags for every literal marked above, dropped ones included.
  for (const Lit l : all_marked) {
    if (!l.is_undef()) seen_[static_cast<std::size_t>(l.var())] = 0;
  }

  // Compute the backtrack level: highest level below the current one.
  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_of(learnt[i].var()) > level_of(learnt[max_i].var())) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_of(learnt[1].var());
  }
}

void Solver::analyze_final(Lit failed) {
  final_conflict_.clear();
  final_conflict_.push_back(failed);
  // `failed` is an assumption whose negation holds on the trail. If it was
  // falsified at the root there is no assumption core beyond itself; else
  // walk the reasons backwards, collecting the assumption decisions that
  // seeded the propagation. Every decision level below the failure is an
  // assumption level, so decisions found on the walk are assumptions.
  if (decision_level() == 0 || level_of(failed.var()) == 0) return;
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  for (std::size_t i = trail_.size(); i > trail_lim_[0]; --i) {
    const Lit l = trail_[i - 1];
    const auto v = static_cast<std::size_t>(l.var());
    if (!seen_[v]) continue;
    seen_[v] = 0;
    const ClauseRef r = reason_[v];
    if (r == kNoReason) {
      final_conflict_.push_back(l);
      continue;
    }
    // Position 0 of a reason clause is the propagated literal itself.
    const std::size_t size = arena_.size(r);
    for (std::size_t j = 1; j < size; ++j) {
      const Lit q = arena_.lit(r, j);
      if (level_of(q.var()) > 0) seen_[static_cast<std::size_t>(q.var())] = 1;
    }
  }
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::vector<Var> cleared;
  // Taint picked up on this walk only matters if the literal really is
  // redundant (only then are these reasons resolved into the learnt clause).
  bool taint = false;
  while (!analyze_stack_.empty()) {
    const Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[static_cast<std::size_t>(cur.var())];
    if (r == kNoReason) {
      for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
      return false;
    }
    if (arena_.tainted(r)) taint = true;
    const std::size_t size = arena_.size(r);
    for (std::size_t i = 1; i < size; ++i) {
      const Lit q = arena_.lit(r, i);
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_of(q.var()) == 0) {
        if (level_of(q.var()) == 0 && root_taint_[qv] != 0) taint = true;
        continue;
      }
      const bool level_plausible =
          (abstract_levels & (1u << (static_cast<std::uint32_t>(level_of(q.var())) & 31u))) != 0;
      if (reason_[qv] != kNoReason && level_plausible) {
        seen_[qv] = 1;
        cleared.push_back(q.var());
        analyze_stack_.push_back(q);
      } else {
        for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
        return false;
      }
    }
  }
  // Keep the transient marks: they are cleared by the caller's loop only for
  // kept literals, so clear them here for safety.
  for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
  if (taint) analyze_taint_ = true;
  return true;
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t lim = trail_lim_[static_cast<std::size_t>(target_level)];
  for (std::size_t i = trail_.size(); i > lim; --i) {
    const Lit l = trail_[i - 1];
    const auto v = static_cast<std::size_t>(l.var());
    saved_phase_[v] = assign_[v];
    assign_[v] = LBool::Undef;
    reason_[v] = kNoReason;
    if (!heap_contains(l.var())) heap_insert(l.var());
  }
  trail_.resize(lim);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (is_eliminated(v)) continue;  // decided by reconstruct_model() instead
    if (value(v) == LBool::Undef) {
      // Portfolio diversification: occasionally take a coin-flip polarity
      // instead of the saved phase (deterministic per configured seed).
      if (config_.random_polarity_permille != 0 &&
          polarity_rng_.next() % 1000 < config_.random_polarity_permille) {
        return Lit(v, (polarity_rng_.next() & 1) != 0);
      }
      const bool negate = saved_phase_[static_cast<std::size_t>(v)] != LBool::True;
      return Lit(v, negate);
    }
  }
  return Lit::undef();
}

bool Solver::locked(ClauseRef cref) const {
  const Lit l0 = arena_.lit(cref, 0);
  return value(l0) == LBool::True &&
         reason_[static_cast<std::size_t>(l0.var())] == cref;
}

void Solver::reduce_learned() {
  ++stats_.reduces;
  T2M_SPAN_SCOPE(reduce_span, "solver.reduce", "learned", learnts_.size());
  const std::size_t learned_before = learnts_.size();
  // Deletion candidates: learned, not glue (LBD <= 2 is kept forever), not
  // binary, not currently the antecedent of an assignment.
  std::vector<ClauseRef> cands;
  cands.reserve(learnts_.size());
  for (const ClauseRef c : learnts_) {
    if (arena_.deleted(c) || arena_.size(c) <= 2) continue;
    if (arena_.lbd(c) <= 2) continue;
    if (locked(c)) continue;
    cands.push_back(c);
  }
  // Worst first: high LBD, then low activity.
  std::sort(cands.begin(), cands.end(), [this](ClauseRef a, ClauseRef b) {
    const std::uint32_t la = arena_.lbd(a);
    const std::uint32_t lb = arena_.lbd(b);
    if (la != lb) return la > lb;
    return arena_.activity(a) < arena_.activity(b);
  });
  for (std::size_t i = 0; i < cands.size() / 2; ++i) {
    log_remove(cands[i]);
    arena_.mark_deleted(cands[i]);
  }
  // Compact the learned list; dead watchers linger until the next GC.
  std::erase_if(learnts_, [this](ClauseRef c) { return arena_.deleted(c); });
  reduce_span.arg("removed", learned_before - learnts_.size());
}

void Solver::reset_branching_heuristics() {
  // Backtrack first: solve() can return Unsat under assumptions while still
  // at the failing decision level, and backtrack() phase-saves the trail —
  // resetting before unwinding would restore the refuted assignment.
  backtrack(0);
  std::fill(saved_phase_.begin(), saved_phase_.end(), lbool_of(config_.default_phase));
  std::fill(activity_.begin(), activity_.end(), 0.0);
  var_inc_ = 1.0;
  // With all activities equal any permutation is a valid heap; sorting
  // restores the exact layout a fresh solver starts from.
  std::sort(heap_.begin(), heap_.end());
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    heap_index_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
  }
}

void Solver::simplify() {
  assert(decision_level() == 0);
  if (trail_.size() == simplified_up_to_) return;  // no new root facts
  simplified_up_to_ = trail_.size();
  ++stats_.simplify_rounds;
  T2M_SPAN("solver.simplify", "root_facts", trail_.size());
  // Root assignments are permanent, so their antecedents are never walked
  // again; clearing the reasons unlocks those clauses for removal.
  for (const Lit l : trail_) reason_[static_cast<std::size_t>(l.var())] = kNoReason;
  const auto root_satisfied = [this](ClauseRef c) {
    const std::size_t size = arena_.size(c);
    for (std::size_t i = 0; i < size; ++i) {
      const Lit l = arena_.lit(c, i);
      if (value(l) == LBool::True && level_of(l.var()) == 0) return true;
    }
    return false;
  };
  const auto drop_satisfied = [&](std::vector<ClauseRef>& list) {
    std::erase_if(list, [&](ClauseRef c) {
      if (arena_.deleted(c) || !root_satisfied(c)) return false;
      // Watchers of deleted clauses are purged lazily: the non-binary
      // propagation path checks the deleted bit, and a root-satisfied binary
      // can never fire again (its blocker stays true), so both kinds are
      // safe to drop in place until the next GC sweeps the watcher lists.
      log_remove(c);
      arena_.mark_deleted(c);
      ++stats_.simplify_removed;
      return true;
    });
  };
  const std::size_t problem_before = problem_clauses_.size();
  drop_satisfied(problem_clauses_);
  num_problem_clauses_ -= problem_before - problem_clauses_.size();
  drop_satisfied(learnts_);
  maybe_garbage_collect();
}

void Solver::maybe_garbage_collect() {
  if (arena_.wasted_words() * kGcWasteDenominator >= arena_.size_words() &&
      arena_.wasted_words() > 0) {
    garbage_collect();
  }
}

void Solver::garbage_collect() {
  T2M_SPAN("solver.gc", "wasted_words", arena_.wasted_words());
  ClauseArena to;
  to.reserve_words(arena_.size_words() - arena_.wasted_words());
  to.inherit_peak(arena_);

  // Watcher lists: purge watchers of deleted clauses, forward the rest.
  for (auto& ws : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : ws) {
      const ClauseRef tag = w.clause & kBinaryTag;
      const ClauseRef cref = w.clause & ~kBinaryTag;
      if (arena_.deleted(cref)) continue;
      ws[keep++] = Watcher{arena_.relocate(cref, to) | tag, w.blocker};
    }
    ws.resize(keep);
  }
  // Reason references of assigned variables.
  for (const Lit l : trail_) {
    auto& r = reason_[static_cast<std::size_t>(l.var())];
    if (r == kNoReason) continue;
    assert(!arena_.deleted(r));
    r = arena_.relocate(r, to);
  }
  // Clause lists.
  for (auto& c : problem_clauses_) c = arena_.relocate(c, to);
  std::size_t keep = 0;
  for (const ClauseRef c : learnts_) {
    if (arena_.deleted(c)) continue;
    learnts_[keep++] = arena_.relocate(c, to);
  }
  learnts_.resize(keep);

  arena_ = std::move(to);
  ++stats_.gc_runs;
  stats_.arena_bytes = arena_.size_bytes();
  stats_.peak_arena_bytes = arena_.peak_bytes();
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth's formulation of the Luby sequence.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) <= i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) <= i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
  ++stats_.solves;
  T2M_SPAN_SCOPE(solve_span, "solver.solve", "epoch", stats_.solves, "clauses",
                 num_problem_clauses_);
  final_conflict_.clear();
  if (invariant_audit_enabled()) {
    if (const Status audit = check_invariants(); !audit.ok()) {
      throw StatusError(audit);
    }
  }
  if (plog_ != nullptr) plog_->begin_solve(stats_.solves, assumptions);
  if (!ok_) {
    if (plog_ != nullptr) plog_->conclude_unsat({});
    return SolveResult::Unsat;
  }
  // order: relaxed — the stop flag is a pure signal with no payload: the
  // caller that raised it synchronises with this solver's results through
  // the TaskGroup join, never through the flag itself (docs/concurrency.md).
  if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
    if (plog_ != nullptr) plog_->conclude_unknown();
    return SolveResult::Unknown;
  }
  backtrack(0);
  if (propagate() != kNoReason) {
    set_unsat();
    if (plog_ != nullptr) plog_->conclude_unsat({});
    return SolveResult::Unsat;
  }
  simplify();
  // No heap rebuild: new_var() inserts every variable and backtrack()
  // re-inserts unassigned ones, so the heap always contains all unassigned
  // variables; pick_branch_literal() skips stale assigned entries lazily.

  std::uint64_t conflicts_total = 0;
  std::uint64_t restart_number = 0;
  std::uint64_t restart_limit = config_.restart_base * luby(restart_number);
  std::uint64_t conflicts_since_restart = 0;
  std::size_t max_learned = 4000 + num_problem_clauses_ / 2;
  std::vector<Lit> learnt;

  // Runs on every exit path of the search loop: flushes the conflicts not
  // yet reported at a restart boundary into the live progress counters and
  // stamps the epoch span with its totals. Declared after the span so it is
  // destroyed first, while the span is still open for arg().
  std::uint64_t conflicts_reported = 0;
  struct EpochObs {
    decltype(solve_span)& span;
    const std::uint64_t& total;
    const std::uint64_t& reported;
    const std::uint64_t& restarts;
    const std::uint64_t restarts_before;
    ~EpochObs() {
      obs::Progress::global().add_conflicts(total - reported);
      span.arg("conflicts", total);
      span.arg("restarts", restarts - restarts_before);
    }
  } epoch_obs{solve_span, conflicts_total, conflicts_reported, stats_.restarts,
              stats_.restarts};

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_total;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        set_unsat();
        if (plog_ != nullptr) plog_->conclude_unsat({});
        return SolveResult::Unsat;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      // Learned clauses are logged before being acted on: each is RUP with
      // respect to the database the checker has replayed up to this point.
      if (plog_ != nullptr) plog_->add(learnt);
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        if (analyze_taint_) {
          root_taint_[static_cast<std::size_t>(learnt[0].var())] = 1;
        }
        enqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef cref = alloc_clause(learnt, /*learned=*/true, analyze_taint_);
        arena_.set_activity(cref, static_cast<float>(clause_inc_));
        arena_.set_lbd(cref, compute_lbd(learnt));
        learnts_.push_back(cref);
        attach_clause(cref);
        enqueue(learnt[0], cref);
        ++stats_.learned_clauses;
        stats_.learned_literals += learnt.size();
      }
      decay_activities();

      // The stop flag is a relaxed load, cheap enough to poll every conflict
      // — cancellation latency is what makes a portfolio race worth running.
      // order: relaxed — pure signal; see the solve-entry check above.
      if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
        if (plog_ != nullptr) plog_->conclude_unknown();
        return SolveResult::Unknown;
      }
      if ((conflicts_total & 255) == 0 && deadline_.expired()) {
        if (plog_ != nullptr) plog_->conclude_unknown();
        return SolveResult::Unknown;
      }
      if (conflict_budget_ != 0 && conflicts_total >= conflict_budget_) {
        if (plog_ != nullptr) plog_->conclude_unknown();
        return SolveResult::Unknown;
      }
      if (learnts_.size() > max_learned) {
        reduce_learned();
        maybe_garbage_collect();
        max_learned += max_learned / 10;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      ++restart_number;
      restart_limit = config_.restart_base * luby(restart_number);
      conflicts_since_restart = 0;
      // Restart boundaries double as progress ticks: cheap (they arrive at
      // Luby intervals, not per conflict) yet frequent enough for a live
      // conflict count during a long epoch.
      obs::Progress::global().add_conflicts(conflicts_total - conflicts_reported);
      conflicts_reported = conflicts_total;
      T2M_TRACE_COUNTER("solver.conflicts",
                        static_cast<std::int64_t>(stats_.conflicts));
      backtrack(0);
      continue;
    }

    // Assumption handling: honour pending assumptions as forced decisions.
    Lit next = Lit::undef();
    while (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::True) {
        trail_lim_.push_back(trail_.size());  // dummy level, already satisfied
        continue;
      }
      if (value(a) == LBool::False) {
        analyze_final(a);
        ++stats_.assumption_unsats;
        if (plog_ != nullptr) {
          // The epoch's certificate: the negation of the failed assumption
          // core is implied by the database (the reason walk in
          // analyze_final() is a unit-propagation derivation), so it is
          // logged as a checked lemma and then cited by the conclusion.
          log_scratch_.clear();
          for (const Lit l : final_conflict_) log_scratch_.push_back(~l);
          plog_->add(log_scratch_);
          plog_->conclude_unsat(log_scratch_);
        }
        return SolveResult::Unsat;
      }
      next = a;
      break;
    }

    if (next.is_undef()) {
      // Every assigned variable sits on the trail exactly once, so a full
      // trail means a total assignment (eliminated variables never get
      // assigned by search) — skip draining the order heap.
      if (trail_.size() == num_vars() - num_eliminated_) {
        reconstruct_model();
        if (plog_ != nullptr) plog_->conclude_sat();
        return SolveResult::Sat;
      }
      ++stats_.decisions;
      next = pick_branch_literal();
      if (next.is_undef()) {
        reconstruct_model();
        if (plog_ != nullptr) plog_->conclude_sat();
        return SolveResult::Sat;  // all variables assigned
      }
    }

    trail_lim_.push_back(trail_.size());
    enqueue(next, kNoReason);
  }
}

bool Solver::model_value(Var v) const {
  const LBool val = assign_.at(static_cast<std::size_t>(v));
  if (val == LBool::Undef) {
    if (is_eliminated(v)) {
      const LBool rec = elim_model_.at(static_cast<std::size_t>(v));
      if (rec != LBool::Undef) return rec == LBool::True;
    }
    throw std::logic_error("Solver::model_value: unassigned var");
  }
  return val == LBool::True;
}

Status Solver::verify_model() const {
  // Model lookup spanning both live assignments and the values
  // reconstruct_model() derived for BVE-eliminated variables.
  const auto lit_true = [this](Lit l) {
    const auto v = static_cast<std::size_t>(l.var());
    if (v >= assign_.size()) return false;
    const LBool b = assign_[v] != LBool::Undef ? assign_[v] : elim_model_[v];
    if (b == LBool::Undef) return false;
    return l.negated() ? b == LBool::False : b == LBool::True;
  };
  const auto audit = [&](std::span<const Lit> lits, const char* what) {
    for (const Lit l : lits) {
      if (lit_true(l)) return Status::Ok();
    }
    // Built with += throughout: GCC 12's -Wrestrict false-fires on the
    // temporary-concatenation forms at -O2 (PR105651).
    std::string msg = "verify_model: ";
    msg += what;
    msg += " clause unsatisfied:";
    for (const Lit l : lits) {
      msg.push_back(' ');
      msg += l.debug_string();
    }
    return Status::Internal(std::move(msg));
  };
  if (config_.keep_originals) {
    // Every clause as handed in, including those later subsumed,
    // strengthened, or removed by variable elimination.
    for (const Clause& c : originals_) {
      if (Status s = audit(c, "original"); !s.ok()) return s;
    }
    return Status::Ok();
  }
  // Fallback: the live database plus the elimination stash (the original
  // clauses BVE removed — reconstruct_model() must have satisfied them).
  std::vector<Lit> lits;
  for (const ClauseRef c : problem_clauses_) {
    if (arena_.deleted(c)) continue;
    lits.clear();
    const std::size_t size = arena_.size(c);
    for (std::size_t i = 0; i < size; ++i) lits.push_back(arena_.lit(c, i));
    if (Status s = audit(lits, "problem"); !s.ok()) return s;
  }
  for (const ElimRecord& rec : elim_stash_) {
    for (const Clause& c : rec.clauses) {
      if (Status s = audit(c, "eliminated"); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

Status Solver::check_invariants() const {
  const auto fail = [](std::string msg) {
    return Status::Internal("check_invariants: " + std::move(msg));
  };
  const std::size_t n = assign_.size();
  if (level_.size() != n || reason_.size() != n || saved_phase_.size() != n ||
      frozen_.size() != n || eliminated_.size() != n || root_taint_.size() != n ||
      elim_model_.size() != n || seen_.size() != n || activity_.size() != n ||
      heap_index_.size() != n || watches_.size() != 2 * n) {
    return fail("per-variable array sizes disagree");
  }
  if (problem_clauses_.size() != num_problem_clauses_) {
    return fail("problem clause count drifted from its list");
  }
  if (propagate_head_ > trail_.size()) return fail("propagate head past trail end");
  for (std::size_t i = 0; i < trail_lim_.size(); ++i) {
    if (trail_lim_[i] > trail_.size() ||
        (i > 0 && trail_lim_[i] < trail_lim_[i - 1])) {
      return fail("decision-level marks not monotone within the trail");
    }
  }

  // Trail: each literal assigned true exactly once, its recorded level
  // matching its trail position, its reason (if any) live and asserting it.
  std::vector<char> on_trail(n, 0);
  std::size_t next_lim = 0;
  int cur_level = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    while (next_lim < trail_lim_.size() && trail_lim_[next_lim] == i) {
      ++cur_level;
      ++next_lim;
    }
    const Lit l = trail_[i];
    const auto v = static_cast<std::size_t>(l.var());
    if (l.is_undef() || v >= n) return fail("trail literal over unknown variable");
    if (value(l) != LBool::True) {
      return fail("trail literal not assigned true: " + l.debug_string());
    }
    if (on_trail[v] != 0) {
      return fail("variable on trail twice: " + std::to_string(l.var()));
    }
    on_trail[v] = 1;
    if (level_of(l.var()) != cur_level) {
      return fail("recorded level disagrees with trail position for " +
                  l.debug_string());
    }
    const ClauseRef r = reason_[v];
    if (r != kNoReason) {
      if (arena_.deleted(r)) return fail("reason clause is deleted");
      if (arena_.size(r) < 2) return fail("reason clause shorter than 2");
      if (arena_.lit(r, 0) != l) {
        return fail("reason clause does not assert its trail literal " +
                    l.debug_string());
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (assign_[v] != LBool::Undef && on_trail[v] == 0) {
      return fail("assigned variable missing from trail: " + std::to_string(v));
    }
  }

  // Watchers <-> arena: every watcher either points at a deleted clause
  // (stale, purged at GC) or watches one of the clause's first two literals
  // with a blocker from the clause; the binary tag must match the size.
  std::unordered_map<ClauseRef, int> watch_count;
  for (std::size_t code = 0; code < watches_.size(); ++code) {
    const Lit watched = ~Lit::from_code(static_cast<std::int32_t>(code));
    for (const Watcher& w : watches_[code]) {
      const ClauseRef cref = w.clause & ~kBinaryTag;
      const bool tagged = (w.clause & kBinaryTag) != 0;
      if (cref >= arena_.size_words()) return fail("watcher ref outside arena");
      if (arena_.deleted(cref)) continue;  // stale watcher awaiting GC
      const std::size_t size = arena_.size(cref);
      if (size < 2) return fail("watched clause shorter than 2");
      if (tagged != (size == 2)) return fail("binary tag disagrees with size");
      if (arena_.lit(cref, 0) != watched && arena_.lit(cref, 1) != watched) {
        return fail("watcher not on the clause's first two literals");
      }
      bool blocker_in_clause = false;
      for (std::size_t i = 0; i < size && !blocker_in_clause; ++i) {
        blocker_in_clause = arena_.lit(cref, i) == w.blocker;
      }
      if (!blocker_in_clause) return fail("watcher blocker not in clause");
      ++watch_count[cref];
    }
  }
  const auto check_list = [&](const std::vector<ClauseRef>& list, bool learned,
                              const char* what) {
    for (const ClauseRef c : list) {
      if (arena_.learned(c) != learned) {
        return fail(std::string(what) + " list holds a clause with the wrong "
                                        "learned flag");
      }
      if (arena_.deleted(c)) continue;
      if (arena_.size(c) >= 2 && watch_count[c] != 2) {
        return fail(std::string(what) + " clause not watched exactly twice");
      }
      const std::size_t size = arena_.size(c);
      for (std::size_t i = 0; i < size; ++i) {
        if (is_eliminated(arena_.lit(c, i).var())) {
          return fail(std::string(what) + " clause mentions an eliminated "
                                          "variable");
        }
      }
    }
    return Status::Ok();
  };
  if (Status s = check_list(problem_clauses_, false, "problem"); !s.ok()) return s;
  if (Status s = check_list(learnts_, true, "learned"); !s.ok()) return s;

  // Variable contracts: frozen vars are never eliminated; eliminated vars
  // never carry an assignment (reconstruct_model() keeps their values in a
  // separate array precisely so they cannot propagate).
  std::size_t eliminated_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (eliminated_[v] != 0) {
      ++eliminated_count;
      if (frozen_[v] != 0) {
        return fail("frozen variable eliminated: " + std::to_string(v));
      }
      if (assign_[v] != LBool::Undef) {
        return fail("eliminated variable assigned: " + std::to_string(v));
      }
    }
  }
  if (eliminated_count != num_eliminated_ ||
      elim_stash_.size() != num_eliminated_) {
    return fail("eliminated-variable count disagrees with flags/stash");
  }

  // Branching heap: index array and heap agree; activity max-heap property.
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Var v = heap_[i];
    if (v < 0 || static_cast<std::size_t>(v) >= n ||
        heap_index_[static_cast<std::size_t>(v)] != static_cast<std::int32_t>(i)) {
      return fail("heap index array out of sync");
    }
    if (i > 0) {
      const Var parent = heap_[(i - 1) / 2];
      if (activity_[static_cast<std::size_t>(parent)] <
          activity_[static_cast<std::size_t>(v)]) {
        return fail("heap order violated");
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t idx = heap_index_[v];
    if (idx >= 0 && (static_cast<std::size_t>(idx) >= heap_.size() ||
                     heap_[static_cast<std::size_t>(idx)] != static_cast<Var>(v))) {
      return fail("heap index points at the wrong slot");
    }
  }
  return Status::Ok();
}

void Solver::freeze(Var v) {
  if (v < 0 || static_cast<std::size_t>(v) >= assign_.size()) {
    throw std::invalid_argument("Solver::freeze: unknown variable");
  }
  if (is_eliminated(v)) {
    throw std::logic_error("Solver::freeze: variable already eliminated");
  }
  frozen_[static_cast<std::size_t>(v)] = 1;
}

void Solver::reconstruct_model() {
  if (elim_stash_.empty()) return;
  const auto lit_satisfied = [this](Lit l) {
    const auto v = static_cast<std::size_t>(l.var());
    const LBool b = assign_[v] != LBool::Undef ? assign_[v] : elim_model_[v];
    return l.negated() ? b == LBool::False : b == LBool::True;
  };
  // Replay eliminations in reverse: each record's clauses mention only the
  // eliminated variable itself, live variables, and variables eliminated
  // later (already reconstructed by the time we get here). Setting v true
  // exactly when some positive-occurrence clause is otherwise false cannot
  // break a negative-occurrence clause: if both a positive and a negative
  // clause were otherwise false, their resolvent (added at elimination time)
  // would be false under the reduced model — contradiction.
  for (auto it = elim_stash_.rbegin(); it != elim_stash_.rend(); ++it) {
    const auto v = static_cast<std::size_t>(it->var);
    elim_model_[v] = LBool::False;
    for (const Clause& c : it->clauses) {
      bool positive = false;
      bool satisfied = false;
      for (const Lit l : c) {
        if (l.var() == it->var) {
          positive = !l.negated();
          continue;
        }
        if (lit_satisfied(l)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && positive) {
        elim_model_[v] = LBool::True;
        break;
      }
    }
  }
}

std::vector<Clause> Solver::export_clauses(std::uint32_t max_lbd) const {
  std::vector<Clause> out;
  // Root facts first: permanent, width-independent unless tainted.
  for (const Lit l : trail_) {
    if (level_of(l.var()) != 0) break;  // trail is level-ordered
    if (root_tainted(l.var())) continue;
    out.push_back(Clause{l});
  }
  for (const ClauseRef c : learnts_) {
    if (arena_.deleted(c) || arena_.tainted(c)) continue;
    if (arena_.lbd(c) > max_lbd) continue;
    Clause lits;
    const std::size_t size = arena_.size(c);
    lits.reserve(size);
    for (std::size_t i = 0; i < size; ++i) lits.push_back(arena_.lit(c, i));
    out.push_back(std::move(lits));
  }
  return out;
}

std::uint64_t Solver::clause_fingerprint() const {
  // FNV-1a over the structural content: variable count, the root trail in
  // assignment order, and every live problem clause's header + literals in
  // database order. Order-sensitive by design — byte-identical emission is
  // the property under test.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(num_vars());
  for (const Lit l : trail_) {
    if (level_of(l.var()) != 0) break;
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code())));
  }
  for (const ClauseRef c : problem_clauses_) {
    if (arena_.deleted(c)) continue;
    const std::size_t size = arena_.size(c);
    mix(size);
    mix(arena_.tainted(c) ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) {
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(arena_.lit(c, i).code())));
    }
  }
  return h;
}

// --- activity-ordered max-heap ------------------------------------------

void Solver::heap_insert(Var v) {
  if (heap_contains(v)) return;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
  const std::int32_t i = heap_index_[static_cast<std::size_t>(v)];
  if (i < 0) return;
  heap_sift_up(static_cast<std::size_t>(i));
}

Var Solver::heap_pop() {
  const Var top = heap_.front();
  heap_index_[static_cast<std::size_t>(top)] = -1;
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_index_[static_cast<std::size_t>(heap_.front())] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= act) break;
    heap_[i] = heap_[parent];
    heap_index_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[right])] >
            activity_[static_cast<std::size_t>(heap_[left])]) {
      best = right;
    }
    if (activity_[static_cast<std::size_t>(heap_[best])] <= act) break;
    heap_[i] = heap_[best];
    heap_index_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = best;
  }
  heap_[i] = v;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

}  // namespace t2m::sat
