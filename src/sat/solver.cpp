#include "src/sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace t2m::sat {

namespace {

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr std::uint64_t kRestartBase = 100;

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::Undef);
  saved_phase_.push_back(LBool::False);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  if (!ok_) return false;
  // Incremental use: always add at the root level.
  if (decision_level() > 0) backtrack(0);

  // Normalise: sort, drop duplicates and root-false literals, detect
  // tautologies and root-satisfied clauses.
  Clause c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  Clause norm;
  norm.reserve(c.size());
  Lit prev = Lit::undef();
  for (const Lit l : c) {
    if (l.is_undef() || static_cast<std::size_t>(l.var()) >= assign_.size()) {
      throw std::invalid_argument("Solver::add_clause: literal over unknown variable");
    }
    if (l == prev) continue;
    if (!prev.is_undef() && l == ~prev) return true;  // tautology
    const LBool v = value(l);
    if (v == LBool::True) return true;  // already satisfied at root
    if (v == LBool::False) {
      prev = l;
      continue;  // root-false literal dropped
    }
    norm.push_back(l);
    prev = l;
  }

  if (norm.empty()) {
    ok_ = false;
    return false;
  }
  if (norm.size() == 1) {
    enqueue(norm[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }

  clauses_.push_back(ClauseData{std::move(norm), 0.0, false, false});
  ++num_problem_clauses_;
  attach_clause(static_cast<ClauseRef>(clauses_.size()) - 1);
  return true;
}

bool Solver::add_exactly_one(std::span<const Lit> lits) {
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  bool ok = add_clause(lits);
  for (std::size_t i = 0; i < lits.size() && ok; ++i) {
    for (std::size_t j = i + 1; j < lits.size() && ok; ++j) {
      ok = add_binary(~lits[i], ~lits[j]);
    }
  }
  return ok;
}

void Solver::attach_clause(ClauseRef cref) {
  const ClauseData& c = clauses_[static_cast<std::size_t>(cref)];
  assert(c.lits.size() >= 2);
  watches_[static_cast<std::size_t>((~c.lits[0]).code())].push_back(
      Watcher{cref, c.lits[1]});
  watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(
      Watcher{cref, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assign_[v] = lbool_of(!l.negated());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      // Blocker check avoids touching the clause when already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      ClauseData& c = clauses_[static_cast<std::size_t>(w.clause)];
      if (c.deleted) continue;  // lazily drop watchers of deleted clauses
      // Ensure the false literal (~p) sits at position 1.
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      // First literal satisfied?
      if (value(c.lits[0]) == LBool::True) {
        ws[keep++] = Watcher{w.clause, c.lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(
              Watcher{w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (value(c.lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      ws[keep++] = w;
      enqueue(c.lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::bump_var(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > kRescaleLimit) {
    for (auto& act : activity_) act *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_update(v);
}

void Solver::bump_clause(ClauseData& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescaleLimit) {
    for (auto& cl : clauses_) {
      if (cl.learned) cl.activity *= 1e-100;
    }
    clause_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() {
  var_inc_ /= kVarDecay;
  clause_inc_ /= kClauseDecay;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::undef());  // slot for the asserting literal

  int counter = 0;
  Lit p = Lit::undef();
  std::size_t trail_index = trail_.size();
  ClauseRef reason = conflict;

  do {
    assert(reason != kNoReason);
    ClauseData& c = clauses_[static_cast<std::size_t>(reason)];
    if (c.learned) bump_clause(c);
    const std::size_t start = p.is_undef() ? 0 : 1;
    for (std::size_t i = start; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_of(q.var()) == 0) continue;
      seen_[qv] = 1;
      bump_var(q.var());
      if (level_of(q.var()) >= decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[static_cast<std::size_t>(trail_[trail_index - 1].var())]) {
      --trail_index;
    }
    --trail_index;
    p = trail_[trail_index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    reason = reason_[static_cast<std::size_t>(p.var())];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Conflict-clause minimisation: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (static_cast<std::uint32_t>(level_of(learnt[i].var())) & 31u);
  }
  std::vector<Lit> all_marked(learnt.begin(), learnt.end());
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Lit l = learnt[i];
    if (reason_[static_cast<std::size_t>(l.var())] == kNoReason ||
        !literal_redundant(l, abstract_levels)) {
      learnt[keep++] = l;
    }
  }
  learnt.resize(keep);

  // Clear seen flags for every literal marked above, dropped ones included.
  for (const Lit l : all_marked) {
    if (!l.is_undef()) seen_[static_cast<std::size_t>(l.var())] = 0;
  }

  // Compute the backtrack level: highest level below the current one.
  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_of(learnt[i].var()) > level_of(learnt[max_i].var())) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_of(learnt[1].var());
  }
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::vector<Var> cleared;
  while (!analyze_stack_.empty()) {
    const Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[static_cast<std::size_t>(cur.var())];
    if (r == kNoReason) {
      for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
      return false;
    }
    const ClauseData& c = clauses_[static_cast<std::size_t>(r)];
    for (std::size_t i = 1; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_of(q.var()) == 0) continue;
      const bool level_plausible =
          (abstract_levels & (1u << (static_cast<std::uint32_t>(level_of(q.var())) & 31u))) != 0;
      if (reason_[qv] != kNoReason && level_plausible) {
        seen_[qv] = 1;
        cleared.push_back(q.var());
        analyze_stack_.push_back(q);
      } else {
        for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
        return false;
      }
    }
  }
  // Keep the transient marks: they are cleared by the caller's loop only for
  // kept literals, so clear them here for safety.
  for (const Var v : cleared) seen_[static_cast<std::size_t>(v)] = 0;
  return true;
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t lim = trail_lim_[static_cast<std::size_t>(target_level)];
  for (std::size_t i = trail_.size(); i > lim; --i) {
    const Lit l = trail_[i - 1];
    const auto v = static_cast<std::size_t>(l.var());
    saved_phase_[v] = assign_[v];
    assign_[v] = LBool::Undef;
    reason_[v] = kNoReason;
    if (!heap_contains(l.var())) heap_insert(l.var());
  }
  trail_.resize(lim);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      const bool negate = saved_phase_[static_cast<std::size_t>(v)] != LBool::True;
      return Lit(v, negate);
    }
  }
  return Lit::undef();
}

void Solver::reduce_learned() {
  // Collect learned, non-reason clauses and delete the low-activity half.
  std::vector<ClauseRef> learned;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    const ClauseData& c = clauses_[i];
    if (!c.learned || c.deleted || c.lits.size() <= 2) continue;
    learned.push_back(static_cast<ClauseRef>(i));
  }
  std::sort(learned.begin(), learned.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<std::size_t>(a)].activity <
           clauses_[static_cast<std::size_t>(b)].activity;
  });
  std::vector<char> is_reason(clauses_.size(), 0);
  for (const Lit l : trail_) {
    const ClauseRef r = reason_[static_cast<std::size_t>(l.var())];
    if (r != kNoReason) is_reason[static_cast<std::size_t>(r)] = 1;
  }
  for (std::size_t i = 0; i < learned.size() / 2; ++i) {
    const ClauseRef cref = learned[i];
    if (is_reason[static_cast<std::size_t>(cref)]) continue;
    clauses_[static_cast<std::size_t>(cref)].deleted = true;
    clauses_[static_cast<std::size_t>(cref)].lits.clear();
    clauses_[static_cast<std::size_t>(cref)].lits.shrink_to_fit();
  }
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth's formulation of the Luby sequence.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) <= i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) <= i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
  if (!ok_) return SolveResult::Unsat;
  backtrack(0);
  if (propagate() != kNoReason) {
    ok_ = false;
    return SolveResult::Unsat;
  }
  rebuild_order_heap();

  std::uint64_t conflicts_total = 0;
  std::uint64_t restart_number = 0;
  std::uint64_t restart_limit = kRestartBase * luby(restart_number);
  std::uint64_t conflicts_since_restart = 0;
  std::size_t max_learned = 4000 + num_problem_clauses_ / 2;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_total;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return SolveResult::Unsat;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        clauses_.push_back(ClauseData{learnt, clause_inc_, true, false});
        const auto cref = static_cast<ClauseRef>(clauses_.size()) - 1;
        attach_clause(cref);
        enqueue(learnt[0], cref);
        ++stats_.learned_clauses;
        stats_.learned_literals += learnt.size();
      }
      decay_activities();

      if ((conflicts_total & 255) == 0 && deadline_.expired()) return SolveResult::Unknown;
      if (conflict_budget_ != 0 && conflicts_total >= conflict_budget_) {
        return SolveResult::Unknown;
      }
      ++live_learned_;
      if (live_learned_ > max_learned) {
        reduce_learned();
        live_learned_ /= 2;
        max_learned += max_learned / 10;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      ++restart_number;
      restart_limit = kRestartBase * luby(restart_number);
      conflicts_since_restart = 0;
      backtrack(0);
      continue;
    }

    // Assumption handling: honour pending assumptions as forced decisions.
    Lit next = Lit::undef();
    while (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::True) {
        trail_lim_.push_back(trail_.size());  // dummy level, already satisfied
        continue;
      }
      if (value(a) == LBool::False) return SolveResult::Unsat;
      next = a;
      break;
    }

    if (next.is_undef()) {
      ++stats_.decisions;
      next = pick_branch_literal();
      if (next.is_undef()) return SolveResult::Sat;  // all variables assigned
    }

    trail_lim_.push_back(trail_.size());
    enqueue(next, kNoReason);
  }
}

bool Solver::model_value(Var v) const {
  const LBool val = assign_.at(static_cast<std::size_t>(v));
  if (val == LBool::Undef) throw std::logic_error("Solver::model_value: unassigned var");
  return val == LBool::True;
}

// --- activity-ordered max-heap ------------------------------------------

void Solver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_index_.begin(), heap_index_.end(), -1);
  for (Var v = 0; v < static_cast<Var>(assign_.size()); ++v) {
    if (value(v) == LBool::Undef) heap_insert(v);
  }
}

void Solver::heap_insert(Var v) {
  if (heap_contains(v)) return;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
  const std::int32_t i = heap_index_[static_cast<std::size_t>(v)];
  if (i < 0) return;
  heap_sift_up(static_cast<std::size_t>(i));
}

Var Solver::heap_pop() {
  const Var top = heap_.front();
  heap_index_[static_cast<std::size_t>(top)] = -1;
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_index_[static_cast<std::size_t>(heap_.front())] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= act) break;
    heap_[i] = heap_[parent];
    heap_index_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[right])] >
            activity_[static_cast<std::size_t>(heap_[left])]) {
      best = right;
    }
    if (activity_[static_cast<std::size_t>(heap_[best])] <= act) break;
    heap_[i] = heap_[best];
    heap_index_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = best;
  }
  heap_[i] = v;
  heap_index_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

}  // namespace t2m::sat
