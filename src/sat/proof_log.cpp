#include "src/sat/proof_log.h"

#include <ostream>

namespace t2m::sat {

namespace {

void write_lits(std::ostream& os, std::span<const Lit> lits) {
  for (const Lit l : lits) {
    os << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
  }
  os << "0\n";
}

}  // namespace

void ProofLog::write_clause_line(const char* prefix, std::span<const Lit> lits) {
  ++events_;
  os_ << prefix;
  write_lits(os_, lits);
}

void ProofLog::add(std::span<const Lit> lits) { write_clause_line("", lits); }

void ProofLog::remove(std::span<const Lit> lits) { write_clause_line("d ", lits); }

void ProofLog::axiom(std::span<const Lit> lits) { write_clause_line("i ", lits); }

void ProofLog::restart() {
  ++events_;
  os_ << "c restart 0\n";
}

void ProofLog::begin_solve(std::uint64_t ordinal, std::span<const Lit> assumptions) {
  ++events_;
  os_ << "c solve " << ordinal << " 0\n";
  if (!assumptions.empty()) {
    ++events_;
    os_ << "c assume ";
    write_lits(os_, assumptions);
  }
}

void ProofLog::conclude_unsat(std::span<const Lit> conflict) {
  ++events_;
  os_ << "c conclude unsat ";
  write_lits(os_, conflict);
}

void ProofLog::conclude_sat() {
  ++events_;
  os_ << "c conclude sat 0\n";
}

void ProofLog::conclude_unknown() {
  ++events_;
  os_ << "c conclude unknown 0\n";
}

}  // namespace t2m::sat
