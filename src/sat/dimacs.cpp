#include "src/sat/dimacs.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/base/status.h"
#include "src/util/string_utils.h"

namespace t2m::sat {

CnfFormula read_dimacs(std::istream& is) {
  CnfFormula formula;
  std::size_t declared_clauses = 0;
  bool have_header = false;
  std::string line;
  Clause current;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      const auto fields = split_ws(line);
      std::int64_t vars = 0, clauses = 0;
      // Strict: exactly "p cnf <vars> <clauses>". Extra header fields used
      // to slip through and desynchronise the counts below.
      if (fields.size() != 4 || fields[0] != "p" || fields[1] != "cnf" ||
          !parse_int64(fields[2], vars) || !parse_int64(fields[3], clauses) ||
          vars < 0 || clauses < 0) {
        throw_status(ErrorCode::parse_error,
                     "read_dimacs: malformed header: " + line);
      }
      if (have_header) {
        throw_status(ErrorCode::parse_error,
                     "read_dimacs: duplicate 'p cnf' header: " + line);
      }
      formula.num_vars = static_cast<std::size_t>(vars);
      declared_clauses = static_cast<std::size_t>(clauses);
      have_header = true;
      continue;
    }
    if (!have_header) {
      throw_status(ErrorCode::parse_error,
                   "read_dimacs: clause data before 'p cnf' header: " + line);
    }
    // Checked token-by-token parse: `istream >> long long` used to stop
    // silently at the first garbage token, dropping the rest of the line.
    for (const std::string& token : split_ws(line)) {
      std::int64_t lit = 0;
      if (!parse_int64(token, lit) || lit <= -(std::int64_t{1} << 31) ||
          lit >= (std::int64_t{1} << 31)) {
        throw_status(ErrorCode::parse_error,
                     "read_dimacs: malformed literal '" + token +
                         "' in line: " + line);
      }
      if (lit == 0) {
        formula.clauses.push_back(current);
        current.clear();
        continue;
      }
      const auto v = static_cast<Var>(std::llabs(lit) - 1);
      if (static_cast<std::size_t>(v) >= formula.num_vars) {
        formula.num_vars = static_cast<std::size_t>(v) + 1;
      }
      current.push_back(Lit(v, lit < 0));
    }
  }
  if (!have_header) {
    throw_status(ErrorCode::parse_error, "read_dimacs: missing 'p cnf' header");
  }
  if (!current.empty()) {
    // A clause without its 0 terminator is a truncated file; silently
    // keeping the fragment used to shorten the formula it encodes.
    throw_status(ErrorCode::parse_error,
                 "read_dimacs: unterminated clause at end of input");
  }
  if (formula.clauses.size() != declared_clauses) {
    throw_status(ErrorCode::parse_error,
                 "read_dimacs: header declares " +
                     std::to_string(declared_clauses) + " clauses, found " +
                     std::to_string(formula.clauses.size()));
  }
  return formula;
}

void write_dimacs(std::ostream& os, const CnfFormula& formula) {
  os << "p cnf " << formula.num_vars << ' ' << formula.clauses.size() << '\n';
  for (const Clause& clause : formula.clauses) {
    for (const Lit lit : clause) {
      os << (lit.negated() ? -(lit.var() + 1) : (lit.var() + 1)) << ' ';
    }
    os << "0\n";
  }
}

bool load_into_solver(const CnfFormula& formula, Solver& solver) {
  const std::size_t base = solver.num_vars();
  for (std::size_t i = 0; i < formula.num_vars; ++i) solver.new_var();
  bool ok = true;
  Clause shifted;
  for (const Clause& clause : formula.clauses) {
    shifted.clear();
    for (const Lit lit : clause) {
      shifted.push_back(Lit(static_cast<Var>(base) + lit.var(), lit.negated()));
    }
    ok = solver.add_clause(shifted) && ok;
  }
  return ok;
}

}  // namespace t2m::sat
