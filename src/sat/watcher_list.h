#ifndef T2M_SAT_WATCHER_LIST_H
#define T2M_SAT_WATCHER_LIST_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "src/sat/clause_arena.h"
#include "src/sat/cnf.h"

namespace t2m::sat {

/// One entry of a literal's watch list: the watching clause plus a cached
/// "blocker" literal whose satisfaction lets propagation skip the clause.
struct Watcher {
  ClauseRef clause = kClauseRefUndef;
  Lit blocker = Lit::undef();
};
static_assert(sizeof(Watcher) == 8);

/// Watch list with inline small-buffer storage.
///
/// A fresh CSP encoding touches every literal's watch list once or twice;
/// with `std::vector` that first push is a malloc per list, which dominated
/// the encode+propagate microbench. The first `kInlineWatchers` watchers
/// live inside the list object itself (one 32-byte struct, half a cache
/// line), so lists only hit the heap beyond that — and the per-literal array
/// of lists stays contiguous for the propagation loop.
///
/// Only the operations the solver needs are provided: push, indexed access,
/// shrinking resize, and iteration. Watchers are trivially copyable, so
/// spills and moves are raw memcpy.
class WatcherList {
public:
  static constexpr std::uint32_t kInlineWatchers = 3;

  WatcherList() = default;
  WatcherList(const WatcherList&) = delete;
  WatcherList& operator=(const WatcherList&) = delete;

  WatcherList(WatcherList&& other) noexcept : size_(other.size_), cap_(other.cap_) {
    if (other.on_heap()) {
      heap_ = other.heap_;
    } else {
      std::memcpy(inline_, other.inline_, size_ * sizeof(Watcher));
    }
    other.size_ = 0;
    other.cap_ = kInlineWatchers;
  }

  WatcherList& operator=(WatcherList&& other) noexcept {
    if (this != &other) {
      if (on_heap()) std::free(heap_);
      size_ = other.size_;
      cap_ = other.cap_;
      if (other.on_heap()) {
        heap_ = other.heap_;
      } else {
        std::memcpy(inline_, other.inline_, size_ * sizeof(Watcher));
      }
      other.size_ = 0;
      other.cap_ = kInlineWatchers;
    }
    return *this;
  }

  ~WatcherList() {
    if (on_heap()) std::free(heap_);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Watcher& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const Watcher& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  Watcher* begin() { return data(); }
  Watcher* end() { return data() + size_; }
  const Watcher* begin() const { return data(); }
  const Watcher* end() const { return data() + size_; }

  void push_back(const Watcher& w) {
    if (size_ == cap_) grow();
    data()[size_++] = w;
  }

  /// Shrink only (the propagation loop compacts in place).
  void resize(std::size_t n) {
    assert(n <= size_);
    size_ = static_cast<std::uint32_t>(n);
  }

  void clear() { size_ = 0; }

private:
  bool on_heap() const { return cap_ > kInlineWatchers; }
  Watcher* data() { return on_heap() ? heap_ : reinterpret_cast<Watcher*>(inline_); }
  const Watcher* data() const {
    return on_heap() ? heap_ : reinterpret_cast<const Watcher*>(inline_);
  }

  void grow() {
    const std::uint32_t new_cap = cap_ * 2;
    auto* fresh = static_cast<Watcher*>(std::malloc(new_cap * sizeof(Watcher)));
    if (fresh == nullptr) throw std::bad_alloc();
    std::memcpy(fresh, data(), size_ * sizeof(Watcher));
    if (on_heap()) std::free(heap_);
    heap_ = fresh;
    cap_ = new_cap;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineWatchers;
  union {
    alignas(Watcher) unsigned char inline_[kInlineWatchers * sizeof(Watcher)];
    Watcher* heap_;
  };
};

}  // namespace t2m::sat

#endif  // T2M_SAT_WATCHER_LIST_H
