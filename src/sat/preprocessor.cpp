#include "src/sat/preprocessor.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sat/proof_log.h"
#include "src/util/failpoint.h"

namespace t2m::sat {

// --- Solver entry point ---------------------------------------------------

bool Solver::preprocess(const PreprocessOptions& opts) {
  if (!ok_) return false;
  backtrack(0);
  if (propagate() != kNoReason) {
    set_unsat();
    return false;
  }
  simplify();
  ++stats_.preprocess_rounds;
  Preprocessor pp(*this, opts);
  return pp.run();
}

// --- Preprocessor ---------------------------------------------------------

Preprocessor::Preprocessor(Solver& solver, const PreprocessOptions& opts)
    : s_(solver), opts_(opts) {}

void Preprocessor::log_derived(const Clause& lits) {
  if (s_.plog_ != nullptr) s_.plog_->add(lits);
}

void Preprocessor::log_deleted(const Clause& lits) {
  if (s_.plog_ != nullptr) s_.plog_->remove(lits);
}

std::uint64_t Preprocessor::signature(const Clause& lits) {
  std::uint64_t sig = 0;
  for (const Lit l : lits) {
    sig |= 1ULL << (static_cast<std::uint32_t>(l.var()) & 63u);
  }
  return sig;
}

bool Preprocessor::contains(const PClause& c, Lit l) const {
  return std::binary_search(c.lits.begin(), c.lits.end(), l);
}

bool Preprocessor::subset(const Clause& a, const Clause& b) {
  // Both sorted; linear merge walk.
  std::size_t j = 0;
  for (const Lit l : a) {
    while (j < b.size() && b[j] < l) ++j;
    if (j == b.size() || b[j] != l) return false;
    ++j;
  }
  return true;
}

void Preprocessor::snapshot() {
  occur_.assign(2 * s_.num_vars(), {});
  var_gone_.assign(s_.num_vars(), 0);
  clauses_.reserve(s_.problem_clauses_.size());
  Clause lits;
  for (const ClauseRef c : s_.problem_clauses_) {
    if (s_.arena_.deleted(c)) continue;
    const std::size_t size = s_.arena_.size(c);
    lits.clear();
    bool tainted = s_.arena_.tainted(c);
    bool satisfied = false;
    for (std::size_t i = 0; i < size; ++i) {
      const Lit l = s_.arena_.lit(c, i);
      const LBool v = s_.value(l);
      if (v == LBool::True) {
        satisfied = true;  // possible when facts arrived after simplify()
        break;
      }
      if (v == LBool::False) {
        // Stripping a root-false literal resolves against that root fact.
        if (s_.root_tainted(l.var())) tainted = true;
        continue;
      }
      lits.push_back(l);
    }
    if (satisfied) continue;
    std::sort(lits.begin(), lits.end());
    if (lits.empty()) {
      unsat_ = true;
      return;
    }
    const auto idx = static_cast<std::uint32_t>(clauses_.size());
    PClause pc;
    pc.lits = lits;
    pc.sig = signature(lits);
    pc.tainted = tainted;
    clauses_.push_back(std::move(pc));
    for (const Lit l : lits) occ(l).push_back(idx);
  }
  queue_.reserve(clauses_.size());
  queued_.assign(clauses_.size(), 1);
  for (std::uint32_t i = 0; i < clauses_.size(); ++i) queue_.push_back(i);
}

bool Preprocessor::strengthen_clause(std::size_t target, Lit remove, bool from_tainted) {
  PClause& d = clauses_[target];
  Clause before;
  if (s_.plog_ != nullptr) before = d.lits;
  const auto it = std::lower_bound(d.lits.begin(), d.lits.end(), remove);
  assert(it != d.lits.end() && *it == remove);
  d.lits.erase(it);
  d.sig = signature(d.lits);
  if (from_tainted) d.tainted = true;
  ++strengthened_;
  if (d.lits.empty()) {
    // The empty clause itself is logged once, by writeback()'s unsat path;
    // by then the checker has already derived the conflict from the two
    // opposing unit lemmas logged on the way here.
    unsat_ = true;
    return false;
  }
  // Self-subsuming resolution step: the shortened clause is RUP against the
  // seed clause plus this clause's previous logged version, so add it first
  // and retire the previous version after.
  log_derived(d.lits);
  log_deleted(before);
  if (!queued_[target]) {
    queued_[target] = 1;
    queue_.push_back(static_cast<std::uint32_t>(target));
  }
  return true;
}

bool Preprocessor::subsume_and_strengthen() {
  bool changed = false;
  std::size_t head = 0;
  while (head < queue_.size() && work_ < opts_.work_budget && !unsat_) {
    poll_deadline();
    const std::uint32_t idx = queue_[head++];
    queued_[idx] = 0;
    if (clauses_[idx].deleted) continue;
    // Copy the seed's literals: strengthening other clauses never touches
    // clause `idx`, but clauses_ itself is stable here (no push_back), so a
    // reference is fine.
    const PClause& c = clauses_[idx];

    if (opts_.subsumption) {
      // Backward subsumption seeded from the least-occurring literal.
      Lit best = c.lits[0];
      for (const Lit l : c.lits) {
        if (occ(l).size() < occ(best).size()) best = l;
      }
      for (const std::uint32_t d_idx : occ(best)) {
        if (d_idx == idx) continue;
        PClause& d = clauses_[d_idx];
        if (d.deleted || d.lits.size() < c.lits.size()) continue;
        if ((c.sig & ~d.sig) != 0) continue;
        work_ += c.lits.size();
        if (!subset(c.lits, d.lits)) continue;
        d.deleted = true;
        log_deleted(d.lits);
        ++subsumed_;
        changed = true;
      }
    }

    if (opts_.strengthen) {
      // Self-subsuming resolution: if C with one literal flipped is a subset
      // of D, resolution on that literal shortens D.
      for (std::size_t li = 0; li < c.lits.size() && !unsat_; ++li) {
        const Lit flip = ~c.lits[li];
        auto& candidates = occ(flip);
        if (candidates.size() > opts_.max_occurrences) continue;
        for (const std::uint32_t d_idx : candidates) {
          if (d_idx == idx) continue;
          PClause& d = clauses_[d_idx];
          if (d.deleted || d.lits.size() < c.lits.size()) continue;
          if (!contains(d, flip)) continue;  // stale occurrence
          const std::uint64_t flip_sig = 1ULL << (static_cast<std::uint32_t>(flip.var()) & 63u);
          if ((c.sig & ~(d.sig | flip_sig)) != 0) continue;
          work_ += c.lits.size();
          // Check C \ {l} ∪ {flip} ⊆ D, i.e. every literal of C except
          // position li is in D (flip is, by the occurrence list).
          bool sub = true;
          for (std::size_t k = 0; k < c.lits.size() && sub; ++k) {
            if (k == li) continue;
            if (!contains(d, c.lits[k])) sub = false;
          }
          if (!sub) continue;
          if (!strengthen_clause(d_idx, flip, c.tainted)) return changed;
          changed = true;
        }
      }
    }
  }
  return changed;
}

bool Preprocessor::resolve(const PClause& a, const PClause& b, Var v, Clause& out) const {
  // Resolvent of a (contains v) and b (contains ~v); false when tautological.
  out.clear();
  out.reserve(a.lits.size() + b.lits.size() - 2);
  for (const Lit l : a.lits) {
    if (l.var() != v) out.push_back(l);
  }
  for (const Lit l : b.lits) {
    if (l.var() != v) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  Lit prev = Lit::undef();
  std::size_t keep = 0;
  for (const Lit l : out) {
    if (l == prev) continue;
    if (!prev.is_undef() && l == ~prev) return false;  // tautology
    out[keep++] = l;
    prev = l;
  }
  out.resize(keep);
  return true;
}

void Preprocessor::add_derived_clause(Clause lits, bool tainted) {
  // Fault-injection site for every derivation the preprocessor produces
  // (BVE resolvents). The learner must turn the escape into a structured
  // failed verdict, never a crash.
  T2M_INJECT_STATUS("preprocess.derive", ErrorCode::internal,
                    "injected preprocessor derivation failure");
  // BVE resolvent: RUP against its two parents, which are still in the
  // checker's database (try_eliminate logs parent deletions only after
  // every resolvent is in).
  log_derived(lits);
  const auto idx = static_cast<std::uint32_t>(clauses_.size());
  PClause pc;
  pc.sig = signature(lits);
  pc.tainted = tainted;
  pc.lits = std::move(lits);
  for (const Lit l : pc.lits) occ(l).push_back(idx);
  clauses_.push_back(std::move(pc));
  queued_.push_back(1);
  queue_.push_back(idx);
}

bool Preprocessor::try_eliminate(Var v) {
  // Gather verified live occurrences of each polarity.
  std::vector<std::uint32_t> pos_idx;
  std::vector<std::uint32_t> neg_idx;
  for (const std::uint32_t i : occ(pos(v))) {
    const PClause& c = clauses_[i];
    if (c.deleted || !contains(c, pos(v))) continue;
    if (pos_idx.size() >= opts_.max_var_occurrences) return false;
    pos_idx.push_back(i);
  }
  for (const std::uint32_t i : occ(neg(v))) {
    const PClause& c = clauses_[i];
    if (c.deleted || !contains(c, neg(v))) continue;
    if (neg_idx.size() >= opts_.max_var_occurrences) return false;
    neg_idx.push_back(i);
  }
  const std::size_t before = pos_idx.size() + neg_idx.size();
  if (before == 0) return false;  // unused var, nothing to do

  // Count (and collect) non-tautological resolvents; bail out when the
  // database would grow or any resolvent is too long.
  std::vector<std::pair<Clause, bool>> resolvents;
  Clause scratch;
  for (const std::uint32_t pi : pos_idx) {
    for (const std::uint32_t ni : neg_idx) {
      work_ += clauses_[pi].lits.size() + clauses_[ni].lits.size();
      if (work_ >= opts_.work_budget) return false;
      if (!resolve(clauses_[pi], clauses_[ni], v, scratch)) continue;
      if (scratch.size() > opts_.max_resolvent_size) return false;
      resolvents.emplace_back(scratch, clauses_[pi].tainted || clauses_[ni].tainted);
      if (resolvents.size() > before + opts_.grow) return false;
    }
  }

  // Commit: stash the originals for model reconstruction, delete them, and
  // install the resolvents.
  Solver::ElimRecord rec;
  rec.var = v;
  rec.clauses.reserve(before);
  for (const std::uint32_t i : pos_idx) {
    rec.clauses.push_back(clauses_[i].lits);
    clauses_[i].deleted = true;
  }
  for (const std::uint32_t i : neg_idx) {
    rec.clauses.push_back(clauses_[i].lits);
    clauses_[i].deleted = true;
  }
  stash_.push_back(std::move(rec));
  for (auto& [lits, tainted] : resolvents) {
    if (lits.empty()) {
      // Empty-clause logging is deferred to writeback(); the checker has
      // already hit the root conflict from the parents' derivations.
      unsat_ = true;
      return true;
    }
    add_derived_clause(std::move(lits), tainted);
  }
  // All resolvents are in the (checker's) database; the parents may go now.
  for (const Clause& parent : stash_.back().clauses) log_deleted(parent);
  var_gone_[static_cast<std::size_t>(v)] = 1;
  ++eliminated_;
  return true;
}

bool Preprocessor::eliminate_variables() {
  // Cheapest-first: candidate variables ordered by total occurrence count so
  // the pure-literal and low-degree wins come before borderline cases.
  std::vector<std::pair<std::size_t, Var>> cands;
  const auto n = static_cast<Var>(s_.num_vars());
  for (Var v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s_.is_frozen(v) || s_.is_eliminated(v) || var_gone_[vi] != 0) continue;
    if (s_.value(v) != LBool::Undef) continue;  // root-assigned
    const std::size_t occs = occ(pos(v)).size() + occ(neg(v)).size();
    if (occs == 0 || occs > 2 * opts_.max_var_occurrences) continue;
    cands.emplace_back(occs, v);
  }
  std::sort(cands.begin(), cands.end());
  bool changed = false;
  for (const auto& [occs, v] : cands) {
    poll_deadline();
    if (work_ >= opts_.work_budget || unsat_) break;
    if (try_eliminate(v)) changed = true;
  }
  return changed;
}

bool Preprocessor::writeback() {
  if (unsat_) {
    s_.set_unsat();
    return false;
  }

  // Record the eliminations on the solver.
  for (Var v = 0; v < static_cast<Var>(var_gone_.size()); ++v) {
    if (var_gone_[static_cast<std::size_t>(v)] == 0) continue;
    s_.eliminated_[static_cast<std::size_t>(v)] = 1;
    ++s_.num_eliminated_;
    ++s_.stats_.eliminated_vars;
  }
  for (auto& rec : stash_) s_.elim_stash_.push_back(std::move(rec));
  s_.stats_.subsumed_clauses += subsumed_;
  s_.stats_.strengthened_lits += strengthened_;

  // Rebuild the clause database: fresh arena, fresh watcher lists.
  for (auto& ws : s_.watches_) ws.clear();
  for (const Lit l : s_.trail_) {
    s_.reason_[static_cast<std::size_t>(l.var())] = kClauseRefUndef;
  }
  s_.propagate_head_ = s_.trail_.size();

  ClauseArena fresh;
  fresh.inherit_peak(s_.arena_);

  // Learned clauses survive unless they mention an eliminated variable
  // (they are implied, so dropping is always sound).
  std::vector<ClauseRef> new_learnts;
  new_learnts.reserve(s_.learnts_.size());
  Clause lits;
  for (const ClauseRef c : s_.learnts_) {
    if (s_.arena_.deleted(c)) continue;
    const std::size_t size = s_.arena_.size(c);
    lits.clear();
    bool drop = false;
    for (std::size_t i = 0; i < size; ++i) {
      const Lit l = s_.arena_.lit(c, i);
      if (var_gone_[static_cast<std::size_t>(l.var())] != 0) {
        drop = true;
        break;
      }
      lits.push_back(l);
    }
    if (drop) {
      s_.log_remove(c);
      continue;
    }
    const ClauseRef nc = fresh.alloc(lits, /*learned=*/true, s_.arena_.tainted(c));
    fresh.set_activity(nc, s_.arena_.activity(c));
    fresh.set_lbd(nc, s_.arena_.lbd(c));
    new_learnts.push_back(nc);
  }

  std::vector<ClauseRef> new_problem;
  std::vector<std::pair<Lit, bool>> units;  // derived root facts + taint
  for (const PClause& c : clauses_) {
    if (c.deleted) continue;
    if (c.lits.size() == 1) {
      units.emplace_back(c.lits[0], c.tainted);
      continue;
    }
    new_problem.push_back(fresh.alloc(c.lits, /*learned=*/false, c.tainted));
  }

  s_.arena_ = std::move(fresh);
  s_.problem_clauses_ = std::move(new_problem);
  s_.num_problem_clauses_ = s_.problem_clauses_.size();
  s_.learnts_ = std::move(new_learnts);
  for (const ClauseRef c : s_.problem_clauses_) s_.attach_clause(c);
  for (const ClauseRef c : s_.learnts_) s_.attach_clause(c);

  // Derived units become root facts now.
  for (const auto& [l, tainted] : units) {
    const LBool v = s_.value(l);
    if (v == LBool::True) continue;
    if (v == LBool::False) {
      s_.set_unsat();
      return false;
    }
    if (tainted) s_.root_taint_[static_cast<std::size_t>(l.var())] = 1;
    s_.enqueue(l, kClauseRefUndef);
  }
  if (s_.propagate() != kClauseRefUndef) {
    s_.set_unsat();
    return false;
  }
  s_.simplified_up_to_ = 0;  // force a simplify() pass on the next solve
  s_.stats_.arena_bytes = s_.arena_.size_bytes();
  s_.stats_.peak_arena_bytes = s_.arena_.peak_bytes();
  return true;
}

bool Preprocessor::run() {
  snapshot();
  if (!unsat_) {
    for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
      bool changed = false;
      if (opts_.subsumption || opts_.strengthen) {
        T2M_SPAN("preprocess.subsume", "round", round);
        changed |= subsume_and_strengthen();
      }
      if (unsat_ || work_ >= opts_.work_budget) break;
      if (opts_.bve) {
        T2M_SPAN("preprocess.bve", "round", round);
        changed |= eliminate_variables();
      }
      if (unsat_ || work_ >= opts_.work_budget || !changed) break;
    }
  }
  obs::count("preprocess.subsumed", static_cast<std::uint64_t>(subsumed_));
  obs::count("preprocess.strengthened", static_cast<std::uint64_t>(strengthened_));
  obs::count("preprocess.eliminated", static_cast<std::uint64_t>(eliminated_));
  T2M_SPAN("preprocess.writeback");
  return writeback();
}

}  // namespace t2m::sat
