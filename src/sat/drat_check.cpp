#include "src/sat/drat_check.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace t2m::sat {

namespace {

/// Forward proof checker: a minimal unit-propagation engine (two watched
/// literals, no heuristics, no learning) plus a clause database keyed by
/// sorted literals for deletion matching and conclusion lookups. Everything
/// the solver claims is re-derived here from first principles — the checker
/// shares no code with the solver's propagation loop on purpose.
class Checker {
public:
  explicit Checker(const DratCheckOptions& options) : options_(options) {}

  DratCheckResult run(const CnfFormula& cnf, std::istream& proof) {
    for (const Clause& c : cnf.clauses) {
      ++result_.axioms;
      add_to_db(c);
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(proof, line)) {
      ++line_no;
      if (!process_line(line, line_no)) {
        result_.ok = false;
        result_.error_line = line_no;
        return result_;
      }
    }
    if (options_.require_empty_clause && !result_.empty_clause_derived) {
      result_.ok = false;
      result_.error = "proof ends without deriving the empty clause";
      result_.error_line = line_no;
      return result_;
    }
    result_.ok = true;
    return result_;
  }

private:
  struct DbClause {
    std::vector<Lit> lits;
    bool active = true;
  };

  LBool value(Lit l) const {
    LBool v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? lbool_not(v) : v;
  }

  void ensure_var(Var v) {
    const std::size_t need = static_cast<std::size_t>(v) + 1;
    if (assign_.size() < need) {
      assign_.resize(need, LBool::Undef);
      watches_.resize(2 * need);
    }
  }

  void enqueue(Lit l) {
    assign_[static_cast<std::size_t>(l.var())] = lbool_of(!l.negated());
    trail_.push_back(l);
  }

  /// Unit propagation from the current queue head; false on conflict.
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      const Lit false_lit = ~p;
      auto& wl = watches_[static_cast<std::size_t>(false_lit.code())];
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < wl.size()) {
        const std::size_t ci = wl[i++];
        DbClause& c = clauses_[ci];
        if (!c.active) continue;  // deleted: drop the stale watch lazily
        if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
        if (value(c.lits[0]) == LBool::True) {
          wl[j++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.lits.size(); ++k) {
          if (value(c.lits[k]) != LBool::False) {
            std::swap(c.lits[1], c.lits[k]);
            watches_[static_cast<std::size_t>(c.lits[1].code())].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        wl[j++] = ci;  // keep watching false_lit
        if (value(c.lits[0]) == LBool::False) {
          while (i < wl.size()) wl[j++] = wl[i++];
          wl.resize(j);
          return false;
        }
        enqueue(c.lits[0]);
      }
      wl.resize(j);
    }
    return true;
  }

  /// Reverse unit propagation: true iff asserting the negation of every
  /// literal in `cl` on top of the root assignment yields a conflict.
  bool rup(const std::vector<Lit>& cl) {
    if (root_conflict_) return true;  // everything is implied
    const std::size_t saved = trail_.size();
    bool conflict = false;
    for (const Lit l : cl) {
      ensure_var(l.var());
      const LBool v = value(~l);
      if (v == LBool::False) {  // ~l contradicts the assignment so far
        conflict = true;
        break;
      }
      if (v == LBool::Undef) enqueue(~l);
    }
    if (!conflict) conflict = !propagate();
    for (std::size_t k = trail_.size(); k > saved; --k) {
      assign_[static_cast<std::size_t>(trail_[k - 1].var())] = LBool::Undef;
    }
    trail_.resize(saved);
    qhead_ = saved;
    return conflict;
  }

  /// RAT fallback on the lemma's first literal: every resolvent with a
  /// database clause containing the negated pivot must itself be RUP.
  bool rat(const std::vector<Lit>& lemma) {
    if (lemma.empty()) return false;
    const Lit pivot = lemma[0];
    const Lit npivot = ~pivot;
    for (const DbClause& c : clauses_) {
      if (!c.active) continue;
      if (std::find(c.lits.begin(), c.lits.end(), npivot) == c.lits.end()) {
        continue;
      }
      std::vector<Lit> resolvent;
      resolvent.reserve(lemma.size() + c.lits.size());
      for (const Lit l : lemma) {
        if (l != pivot) resolvent.push_back(l);
      }
      for (const Lit l : c.lits) {
        if (l != npivot) resolvent.push_back(l);
      }
      if (!rup(resolvent)) return false;
    }
    return true;
  }

  static std::vector<std::int32_t> sorted_codes(const std::vector<Lit>& lits) {
    std::vector<std::int32_t> key;
    key.reserve(lits.size());
    for (const Lit l : lits) key.push_back(l.code());
    std::sort(key.begin(), key.end());
    return key;
  }

  /// Admits `lits` into the database: registers it for deletion/conclusion
  /// lookups, installs watches, and applies its root-level consequences.
  void add_to_db(std::vector<Lit> lits) {
    // Normalize like the solver's add_clause: duplicate literals are
    // dropped and tautologies skipped outright. Axiom lines carry the
    // caller's raw clauses, and a duplicated literal breaks two-watched
    // propagation (both watches can land on copies of one literal, so a
    // unit clause never propagates); a tautology is dead weight the solver
    // never installed either.
    std::size_t out = 0;
    for (std::size_t k = 0; k < lits.size(); ++k) {
      bool dup = false;
      for (std::size_t m = 0; m < out; ++m) {
        if (lits[m] == lits[k]) {
          dup = true;
          break;
        }
        if (lits[m] == ~lits[k]) return;  // tautology
      }
      if (!dup) lits[out++] = lits[k];
    }
    lits.resize(out);
    for (const Lit l : lits) ensure_var(l.var());
    const std::size_t idx = clauses_.size();
    clauses_.push_back(DbClause{std::move(lits), true});
    DbClause& c = clauses_[idx];
    index_[sorted_codes(c.lits)].push_back(idx);
    if (root_conflict_) return;
    if (c.lits.empty()) {
      root_conflict_ = true;
      result_.empty_clause_derived = true;
      return;
    }
    // Move up to two non-false literals to the watch positions.
    std::size_t nf = 0;
    for (std::size_t k = 0; k < c.lits.size() && nf < 2; ++k) {
      if (value(c.lits[k]) != LBool::False) std::swap(c.lits[nf++], c.lits[k]);
    }
    if (c.lits.size() >= 2) {
      watches_[static_cast<std::size_t>(c.lits[0].code())].push_back(idx);
      watches_[static_cast<std::size_t>(c.lits[1].code())].push_back(idx);
    }
    if (nf == 0) {  // falsified outright by the root assignment
      root_conflict_ = true;
      result_.empty_clause_derived = true;
      return;
    }
    if (nf == 1 && value(c.lits[0]) == LBool::Undef) {
      enqueue(c.lits[0]);
      if (!propagate()) {
        root_conflict_ = true;
        result_.empty_clause_derived = true;
      }
    }
  }

  void delete_clause(const std::vector<Lit>& lits) {
    // Unit (and empty) deletions are ignored, as in drat-trim: their root
    // propagations are never retracted, so honoring the deletion would
    // leave the assignment unsupported.
    if (lits.size() <= 1) {
      ++result_.skipped_deletions;
      return;
    }
    const auto it = index_.find(sorted_codes(lits));
    if (it != index_.end()) {
      for (auto idx_it = it->second.begin(); idx_it != it->second.end(); ++idx_it) {
        if (clauses_[*idx_it].active) {
          clauses_[*idx_it].active = false;
          it->second.erase(idx_it);
          ++result_.deletions;
          return;
        }
      }
    }
    ++result_.skipped_deletions;  // advisory: no matching live clause
  }

  bool has_active_clause(const std::vector<Lit>& lits) const {
    const auto it = index_.find(sorted_codes(lits));
    if (it == index_.end()) return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [this](std::size_t idx) { return clauses_[idx].active; });
  }

  void restart_instance() {
    ++result_.restarts;
    clauses_.clear();
    index_.clear();
    for (auto& wl : watches_) wl.clear();
    std::fill(assign_.begin(), assign_.end(), LBool::Undef);
    trail_.clear();
    qhead_ = 0;
    root_conflict_ = false;
    result_.empty_clause_derived = false;
    assumptions_.clear();
  }

  /// One proof line. Returns false (with result_.error set) on the first
  /// lemma or marker that does not check out.
  bool process_line(const std::string& line, std::size_t line_no) {
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) return true;  // blank line
    if (tok == "c") return process_marker(ss, line);
    const char kind = (tok == "d") ? 'd' : (tok == "i") ? 'i' : 'a';
    std::vector<Lit> lits;
    if (kind == 'a') {
      // The first token is already a literal.
      std::int32_t first = 0;
      std::istringstream first_ss(tok);
      if (!(first_ss >> first)) {
        result_.error = "unparsable proof line: " + line;
        return false;
      }
      if (first != 0) lits.push_back(lit_of(first));
      if (first == 0) return finish_lemma(std::move(lits), line_no);
    }
    std::int32_t n = 0;
    bool terminated = false;
    while (ss >> n) {
      if (n == 0) {
        terminated = true;
        break;
      }
      lits.push_back(lit_of(n));
    }
    if (!terminated) {
      result_.error = "proof line missing 0 terminator: " + line;
      return false;
    }
    switch (kind) {
      case 'd':
        delete_clause(lits);
        return true;
      case 'i':
        ++result_.axioms;
        add_to_db(std::move(lits));
        return true;
      default:
        return finish_lemma(std::move(lits), line_no);
    }
  }

  bool finish_lemma(std::vector<Lit> lits, std::size_t line_no) {
    if (!rup(lits)) {
      if (!rat(lits)) {
        std::ostringstream msg;
        msg << "lemma at line " << line_no << " is neither RUP nor RAT:";
        for (const Lit l : lits) msg << ' ' << l.debug_string();
        result_.error = msg.str();
        return false;
      }
      ++result_.rat_lemmas;
    }
    ++result_.lemmas_checked;
    add_to_db(std::move(lits));
    return true;
  }

  bool process_marker(std::istringstream& ss, const std::string& line) {
    std::string word;
    if (!(ss >> word)) return true;  // bare comment
    if (word == "restart") {
      restart_instance();
      return true;
    }
    if (word == "solve") {
      assumptions_.clear();
      return true;
    }
    if (word == "assume") {
      assumptions_.clear();
      std::int32_t n = 0;
      while (ss >> n) {
        if (n == 0) break;
        const Lit l = lit_of(n);
        ensure_var(l.var());
        assumptions_.insert(l.code());
      }
      return true;
    }
    if (word == "conclude") return process_conclusion(ss, line);
    return true;  // any other "c" line is a comment
  }

  bool process_conclusion(std::istringstream& ss, const std::string& line) {
    std::string verdict;
    if (!(ss >> verdict)) {
      result_.error = "malformed conclusion: " + line;
      return false;
    }
    if (verdict == "sat") {
      if (root_conflict_) {
        result_.error = "sat conclusion but the formula is unit-propagation "
                        "refutable at root level";
        return false;
      }
      ++result_.epochs_concluded_sat;
      return true;
    }
    if (verdict == "unknown") {
      ++result_.epochs_concluded_unknown;
      return true;
    }
    if (verdict != "unsat") {
      result_.error = "unrecognized conclusion: " + line;
      return false;
    }
    std::vector<Lit> conflict;
    std::int32_t n = 0;
    while (ss >> n) {
      if (n == 0) break;
      conflict.push_back(lit_of(n));
    }
    if (conflict.empty()) {
      if (!root_conflict_) {
        result_.error = "unconditional unsat conclusion without a derived "
                        "empty clause";
        return false;
      }
    } else {
      for (const Lit l : conflict) {
        if (assumptions_.find((~l).code()) == assumptions_.end()) {
          result_.error = "unsat conclusion literal " + l.debug_string() +
                          " does not negate a declared assumption";
          return false;
        }
      }
      if (!root_conflict_ && !has_active_clause(conflict)) {
        result_.error = "unsat conclusion clause is not in the verified "
                        "database: " + line;
        return false;
      }
    }
    ++result_.epochs_concluded_unsat;
    return true;
  }

  static Lit lit_of(std::int32_t dimacs) {
    const Var v = (dimacs > 0 ? dimacs : -dimacs) - 1;
    return Lit(v, dimacs < 0);
  }

  DratCheckOptions options_;
  DratCheckResult result_;

  std::vector<DbClause> clauses_;
  std::map<std::vector<std::int32_t>, std::vector<std::size_t>> index_;
  std::vector<std::vector<std::size_t>> watches_;  // indexed by Lit::code
  std::vector<LBool> assign_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  bool root_conflict_ = false;
  std::set<std::int32_t> assumptions_;  // current epoch, by Lit::code
};

}  // namespace

DratCheckResult check_drat(const CnfFormula& cnf, std::istream& proof,
                           const DratCheckOptions& options) {
  Checker checker(options);
  return checker.run(cnf, proof);
}

}  // namespace t2m::sat
