#ifndef T2M_SAT_DRAT_CHECK_H
#define T2M_SAT_DRAT_CHECK_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/sat/dimacs.h"

namespace t2m::sat {

struct DratCheckOptions {
  /// Tool mode: additionally require that the proof derives the empty
  /// clause (an unconditional UNSAT certificate). Off for incremental
  /// traces, where per-epoch `c conclude unsat` markers carry the verdicts.
  bool require_empty_clause = false;
};

/// Outcome of a forward proof check. `ok` means every lemma admitted by the
/// proof was verified (RUP, or RAT on its first literal) and every epoch
/// conclusion was validated; `error`/`error_line` describe the first
/// failing lemma or marker otherwise.
struct [[nodiscard]] DratCheckResult {
  bool ok = false;
  std::string error;
  std::size_t error_line = 0;  ///< 1-based line in the proof stream

  std::uint64_t lemmas_checked = 0;  ///< "a" lines verified (RUP or RAT)
  std::uint64_t rat_lemmas = 0;      ///< lemmas that needed the RAT fallback
  std::uint64_t axioms = 0;          ///< "i" lines + input CNF clauses
  std::uint64_t deletions = 0;       ///< "d" lines applied
  std::uint64_t skipped_deletions = 0;  ///< "d" lines with no matching clause
  std::uint64_t restarts = 0;

  /// True once the empty clause was derived (or an axiom set conflicted
  /// under unit propagation) for the current instance.
  bool empty_clause_derived = false;

  // Epoch markers validated (see ProofLog's format).
  std::uint64_t epochs_concluded_unsat = 0;
  std::uint64_t epochs_concluded_sat = 0;
  std::uint64_t epochs_concluded_unknown = 0;
};

/// Forward-checks an extended-DRAT proof stream against `cnf` (which may be
/// empty when the proof is self-contained via "i" axiom lines). Processes
/// the stream in order: axioms extend the formula unchecked, each lemma is
/// verified by reverse unit propagation (with a RAT fallback on its first
/// literal) before it is admitted, deletions shrink the database, and epoch
/// markers are validated — a `c conclude unsat <lits>` requires the
/// conflict clause to be present in the database and every literal to be
/// the negation of a declared assumption of the current epoch.
DratCheckResult check_drat(const CnfFormula& cnf, std::istream& proof,
                           const DratCheckOptions& options = {});

}  // namespace t2m::sat

#endif  // T2M_SAT_DRAT_CHECK_H
