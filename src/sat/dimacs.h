#ifndef T2M_SAT_DIMACS_H
#define T2M_SAT_DIMACS_H

#include <iosfwd>
#include <vector>

#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace t2m::sat {

/// A plain CNF formula for interchange with DIMACS files and brute-force
/// checking in tests.
struct CnfFormula {
  std::size_t num_vars = 0;
  std::vector<Clause> clauses;
};

/// Reads a DIMACS CNF document ("p cnf V C" header, clauses terminated by 0).
/// Strict: the header must have exactly those four fields and appear once,
/// before any clause; a trailing clause missing its 0 terminator and a
/// clause count disagreeing with the header are rejected rather than
/// silently truncating the formula. Unit (and empty) clauses round-trip
/// through write_dimacs() unchanged. Throws StatusError with
/// ErrorCode::parse_error on malformed input.
CnfFormula read_dimacs(std::istream& is);

/// Writes `formula` in DIMACS format.
void write_dimacs(std::ostream& os, const CnfFormula& formula);

/// Loads a formula into a fresh region of `solver` (creating variables) and
/// returns false if the formula is root-level unsatisfiable.
bool load_into_solver(const CnfFormula& formula, Solver& solver);

}  // namespace t2m::sat

#endif  // T2M_SAT_DIMACS_H
