#ifndef T2M_SAT_VAR_REMAP_H
#define T2M_SAT_VAR_REMAP_H

#include <span>
#include <vector>

#include "src/sat/cnf.h"

namespace t2m::sat {

/// A partial variable renaming between two solver instances, used to carry
/// exported clauses across a capacity rebuild: the encoder registers every
/// variable of the old solver that has a structural counterpart in the new
/// one (same state bit, same activation guard, same successor slot, ...),
/// and clauses mentioning any unregistered variable are dropped rather than
/// guessed at.
class VarRemap {
public:
  /// Registers `from` (old solver) -> `to` (new solver).
  void map(Var from, Var to);

  bool has(Var from) const {
    return from >= 0 && static_cast<std::size_t>(from) < to_.size() &&
           to_[static_cast<std::size_t>(from)] >= 0;
  }
  /// Mapped variable, or -1 when unregistered.
  Var map_var(Var from) const {
    return has(from) ? to_[static_cast<std::size_t>(from)] : -1;
  }
  Lit map_lit(Lit l) const {
    const Var v = map_var(l.var());
    return v < 0 ? Lit::undef() : Lit(v, l.negated());
  }

  /// Maps a whole clause; returns false (leaving `out` unspecified) when any
  /// literal's variable is unregistered.
  bool map_clause(std::span<const Lit> in, Clause& out) const;

  std::size_t size() const { return mapped_; }

private:
  std::vector<Var> to_;  // indexed by old var; -1 = unregistered
  std::size_t mapped_ = 0;
};

}  // namespace t2m::sat

#endif  // T2M_SAT_VAR_REMAP_H
