#include "src/core/segmentation.h"

#include <stdexcept>
#include <unordered_set>

#include "src/util/hash.h"

namespace t2m {

std::vector<Segment> segment_sequence(const std::vector<PredId>& seq, std::size_t w) {
  if (w == 0) throw std::invalid_argument("segment_sequence: window must be positive");
  std::vector<Segment> out;
  if (seq.empty()) return out;
  if (seq.size() <= w) {
    out.push_back(seq);
    return out;
  }
  // Hashed window dedup: O(n * w) over million-event traces, versus the
  // O(n * w * log n) of an ordered set. Output keeps first-occurrence order.
  std::unordered_set<Segment, VectorHash> seen;
  seen.reserve(seq.size() - w + 1);
  for (std::size_t i = 0; i + w <= seq.size(); ++i) {
    Segment window(seq.begin() + static_cast<std::ptrdiff_t>(i),
                   seq.begin() + static_cast<std::ptrdiff_t>(i + w));
    if (seen.insert(window).second) out.push_back(std::move(window));
  }
  return out;
}

std::vector<Segment> whole_sequence(const std::vector<PredId>& seq) {
  if (seq.empty()) return {};
  return {seq};
}

std::size_t total_transitions(const std::vector<Segment>& segments) {
  std::size_t total = 0;
  for (const Segment& s : segments) total += s.size();
  return total;
}

}  // namespace t2m
