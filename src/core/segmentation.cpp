#include "src/core/segmentation.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "src/obs/trace.h"
#include "src/util/hash.h"

namespace t2m {

std::vector<Segment> segment_sequence(const std::vector<PredId>& seq, std::size_t w) {
  if (w == 0) throw std::invalid_argument("segment_sequence: window must be positive");
  T2M_SPAN("segment.sequence", "length", seq.size(), "window", w);
  std::vector<Segment> out;
  if (seq.empty()) return out;
  if (seq.size() <= w) {
    out.push_back(seq);
    return out;
  }
  // Hashed window dedup: O(n * w) over million-event traces, versus the
  // O(n * w * log n) of an ordered set. Output keeps first-occurrence order.
  std::unordered_set<Segment, VectorHash> seen;
  seen.reserve(seq.size() - w + 1);
  for (std::size_t i = 0; i + w <= seq.size(); ++i) {
    Segment window(seq.begin() + static_cast<std::ptrdiff_t>(i),
                   seq.begin() + static_cast<std::ptrdiff_t>(i + w));
    if (seen.insert(window).second) out.push_back(std::move(window));
  }
  return out;
}

std::vector<Segment> whole_sequence(const std::vector<PredId>& seq) {
  if (seq.empty()) return {};
  return {seq};
}

StreamingSegmenter::StreamingSegmenter(std::size_t w) : w_(w), dedup_(std::max<std::size_t>(w, 1)) {
  if (w == 0) throw std::invalid_argument("StreamingSegmenter: window must be positive");
}

std::vector<Segment> StreamingSegmenter::take() {
  if (dedup_.pushed() == 0) return {};
  if (dedup_.pushed() < w_) {
    // Short stream: the whole sequence forms one segment, exactly as
    // segment_sequence returns for seq.size() <= w. (pushed == w already
    // produced that single window via the main path.)
    return {dedup_.short_prefix()};
  }
  return dedup_.take_windows();
}

std::size_t total_transitions(const std::vector<Segment>& segments) {
  std::size_t total = 0;
  for (const Segment& s : segments) total += s.size();
  return total;
}

}  // namespace t2m
