#ifndef T2M_CORE_CSP_ENCODER_H
#define T2M_CORE_CSP_ENCODER_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/core/segmentation.h"
#include "src/sat/preprocessor.h"
#include "src/sat/solver.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"

namespace t2m {

/// Memoised chain enumeration for forbidden words.
///
/// Encoding a forbidden word w requires enumerating every chain of encoded
/// transitions labelled by w — a product over the per-predicate transition
/// groups that is exponential in |w|. The enumeration depends only on the
/// segment layout (which transition reads which predicate between which
/// state variables), NOT on the state count N, so the learner shares one
/// cache across its N-increment loop: re-encoding the accumulated forbidden
/// words into a fresh N+1 CSP reuses the cached chains and only emits the
/// (cheap, N-dependent) clauses. Sound only while the segment layout is
/// fixed, which holds for the whole of one learn_from_sequence() run.
class ForbiddenChainCache {
public:
  /// One dst/src state-variable adjacency along a chain.
  using SvPair = std::pair<std::uint32_t, std::uint32_t>;
  /// One chain of transitions labelled by the word: |word|-1 adjacencies.
  using Chain = std::vector<SvPair>;

  /// Returns the cached chains for `word`, or null when absent.
  const std::vector<Chain>* find(const std::vector<PredId>& word) const {
    const auto it = entries_.find(word);
    return it == entries_.end() ? nullptr : &it->second;
  }
  std::vector<Chain>& emplace(const std::vector<PredId>& word) {
    return entries_[word];
  }
  /// Drops a partially enumerated entry (budget overflow): a truncated chain
  /// set must never be shared, it would silently under-constrain other CSPs.
  void erase(const std::vector<PredId>& word) { entries_.erase(word); }
  std::size_t size() const { return entries_.size(); }

private:
  std::unordered_map<std::vector<PredId>, std::vector<Chain>, VectorHash> entries_;
};

/// How the "at most one transition per (state, predicate)" condition
/// (Algorithm 1, line 29) is encoded:
enum class DeterminismEncoding : std::uint8_t {
  /// Paper-faithful: one constraint per PAIR of transitions with the same
  /// predicate, O(m^2 N^3) clauses — this is the encoding whose cost the
  /// segmentation study (Table I, Fig. 7) measures.
  Pairwise,
  /// Our improvement: auxiliary one-hot successor functions succ(state,
  /// pred), O(m N^2) clauses. Ablated in bench_ablation_encoding.
  Successor,
};

struct CspOptions {
  DeterminismEncoding encoding = DeterminismEncoding::Successor;
  /// Pin the first segment's first state variable to state 0 (= q0). Sound
  /// symmetry breaking: states are interchangeable under renaming.
  bool pin_initial = true;
  /// Abort encoding beyond this many clauses; solve() then reports Unknown.
  /// The pairwise encoding of an unsegmented long trace is O(m^2 N^3) --
  /// this cap is what turns the paper's ">16 hours" rows into a clean
  /// "intractable" verdict instead of memory exhaustion.
  std::size_t max_clauses = 5000000;
  /// 0: fixed-N CSP (the fresh-per-N reference — one-hot blocks of exactly
  /// `num_states` columns, no guards). Otherwise the persistent encoding:
  /// blocks span `state_capacity` columns, each column k owns a guard
  /// variable act_k, and grow_to() activates further columns so one solver
  /// instance (learned clauses, VSIDS activity, saved phases) serves the
  /// whole N-increment loop.
  std::size_t state_capacity = 0;
  /// Search-shape knobs applied to the underlying solver before encoding
  /// (restart schedule, phase default, random polarity — the axes the
  /// portfolio driver diversifies per racing configuration).
  sat::SolverConfig solver;
  /// Worker threads for clause emission. Chunk boundaries never change the
  /// clause order (chunks are spliced into the solver in index order), so
  /// the encoding is byte-identical at every thread count.
  std::size_t threads = 1;
  /// Star-compress length-2 forbidden words: instead of one binary clause
  /// per (transition-of-p, transition-of-q) pair and column, introduce
  /// shared per-(predicate, side) flag variables z so each word costs one
  /// binary per column plus group-membership binaries amortised across
  /// words. Turns the |A|x|B| chain product into |A|+|B|+1.
  bool compress_forbidden = true;
  /// Run SatELite-style preprocessing (subsumption, self-subsuming
  /// resolution, bounded variable elimination) on the encoded CNF before
  /// the first solve. Structural variables are frozen automatically.
  bool preprocess = false;
  sat::PreprocessOptions preprocess_opts;
  /// Cooperative wall-clock bound on clause emission (construction and
  /// grow_to): workers and the splice poll it, and an expiry throws a
  /// structured deadline_exceeded StatusError — the learner converts that
  /// into its timed-out verdict (salvaging the best model so far) instead of
  /// letting a huge encoding blow straight through the run's time budget.
  /// Defaults to never expiring. Distinct from solve()'s per-call deadline,
  /// which bounds the search itself.
  Deadline deadline;
};

/// The automaton-existence hypothesis of Algorithm 1 (lines 18-33), encoded
/// directly to CNF over our CDCL solver instead of a C program over CBMC.
///
/// Unknowns: one state variable per segment position (w+1 per segment of
/// length w), each one-hot over {0..N-1}. Constraints: segment chaining (by
/// variable sharing), per-predicate determinism, and any forbidden
/// transition sequences added by the compliance refinement loop.
///
/// solve() == Sat  <=>  an N-state automaton embedding all segments exists
/// (the paper's CBMC counterexample case).
///
/// Persistent mode (options.state_capacity > 0) keeps ONE sat::Solver alive
/// across state counts. Soundness of the guarded encoding:
///  - Every constraint except "use at least one state" is a negative
///    (monotone) condition: at-most-one, determinism and forbidden-word
///    clauses over columns >= N are vacuously satisfiable by leaving those
///    columns false, so emitting them only up to the active width N and
///    appending the new columns' clauses at grow time never changes the
///    verdict for smaller N.
///  - The at-least-one clause spans the full capacity once; guard binaries
///    (act_k | ~x_{sv,k}) under the per-solve assumptions {act_0..act_{N-1},
///    ~act_N..~act_{C-1}} force the inactive columns false, restricting it
///    to exactly the active width. Clauses learned under those assumptions
///    carry ~act_k antecedents and become vacuous once column k activates.
class AutomatonCsp {
public:
  AutomatonCsp(const std::vector<Segment>& segments, std::size_t num_preds,
               std::size_t num_states, const CspOptions& options = {});

  /// Forbids any path labelled `word` (compliance refinement, line 44).
  /// Length-2 words use direct binary clauses; longer words introduce
  /// auxiliary state-equality variables (memoised per state-variable pair).
  void add_forbidden_sequence(const std::vector<PredId>& word);

  /// Shares a chain cache across CSP instances (non-owning; the learner
  /// keeps one per learn_from_sequence run). Must only be shared between
  /// CSPs built from the same segment layout.
  void set_chain_cache(ForbiddenChainCache* cache) { chain_cache_ = cache; }

  /// Persistent mode: raises the active state count to `n` in place, keeping
  /// the solver (learned clauses, activities, phases) intact. Only the
  /// clauses of the newly activated columns are emitted. Returns false when
  /// `n` exceeds the allocated capacity (the caller then rebuilds) or the
  /// CSP is a fixed-N instance.
  bool grow_to(std::size_t n);

  /// Runs the solver; Unknown on deadline expiry.
  sat::SolveResult solve(const Deadline& deadline = Deadline::never());

  /// Cooperative cancellation, forwarded to the solver: when the flag reads
  /// true, the next solve() poll returns Unknown. The portfolio driver
  /// threads one flag through every racing worker's CSPs.
  void set_stop_flag(const std::atomic<bool>* stop) { solver_.set_stop_flag(stop); }

  /// After solve() == Unsat in persistent mode: true when the verdict
  /// provably holds for EVERY state count, so the learner can stop growing N
  /// instead of re-solving to the budget. Sound reasoning: while a capacity
  /// column is still inactive (N < capacity), that column's variables appear
  /// in no at-most-one/determinism/forbidden clause — any automaton of any
  /// size could park a state there for free — so an Unsat whose assumption
  /// core needs no inactive-column guard (no ~act_k) and no acceptance-block
  /// guard can only stem from width-independent facts (e.g. a forbidden
  /// single-predicate word's unit contradiction). A root-level Unsat is the
  /// empty-core case of the same argument. At N == capacity the verdict may
  /// merely be width-capped, so this conservatively reports false there.
  bool unsat_for_all_states() const;

  /// Excludes the current satisfying assignment (over the state variables)
  /// so the next solve() yields a structurally different automaton. Used by
  /// the trace-acceptance refinement. Requires last solve() == Sat. In
  /// persistent mode the blocking clause is guarded per state count, so it
  /// expires when N grows — exactly matching the fresh-per-N behaviour of
  /// discarding blocks along with the CSP.
  void block_current_model();

  /// Decodes the model into an automaton (requires last solve() == Sat).
  /// The NFA has exactly `num_states` states; unreachable ones are kept so
  /// the state count reports the paper's N.
  Nfa extract_model() const;

  /// True once any emission path hit the clause budget: the encoding is
  /// incomplete and solve() reports Unknown. The learner surfaces this as
  /// LearnResult::budget_exceeded rather than a timeout.
  bool overflowed() const { return overflowed_; }

  /// Imports the re-usable learned clauses of a previous (smaller-capacity)
  /// CSP over the same segment layout: width-independent (untainted) learned
  /// clauses and root facts are renamed through a VarRemap built from the
  /// structural correspondence (state bits, guards, successor slots,
  /// equality and star variables); clauses mentioning anything without a
  /// counterpart are dropped. Call after re-adding the forbidden words, so
  /// the equality/star layouts exist. Returns the number imported.
  std::size_t reseed_from(const AutomatonCsp& old);

  /// Structural hash of the emitted problem clauses + root facts (see
  /// Solver::clause_fingerprint); proves emission determinism in tests.
  std::uint64_t encoding_fingerprint() const { return solver_.clause_fingerprint(); }

  std::size_t num_states() const { return num_states_; }
  std::size_t state_capacity() const { return capacity_; }
  bool persistent() const { return !act_.empty(); }
  std::size_t num_transitions() const { return preds_of_transition_.size(); }
  /// Distinct state-variable pairs with an equality aux var (for tests).
  std::size_t num_equality_vars() const { return equality_cache_.size(); }
  const sat::SolverStats& solver_stats() const { return solver_.stats(); }
  std::size_t num_clauses() const { return solver_.num_clauses(); }
  std::size_t num_vars() const { return solver_.num_vars(); }

private:
  /// SAT literal for "state variable `sv` equals state `k`".
  sat::Lit state_lit(std::size_t sv, std::size_t k) const;
  std::size_t decode_state(std::size_t sv) const;
  /// Fills decoded_ with the assigned state of every one-hot block in one
  /// pass over the model, so repeated decode_state() lookups during model
  /// extraction and blocking are O(1) instead of an O(N) scan each.
  void decode_model() const;
  /// Emits every N-dependent clause of columns [lo, hi): one-hot at-most-one
  /// pairs, determinism, and the column extensions of accumulated forbidden
  /// words and equality variables. Construction activates [0, N); grow_to()
  /// activates [N, n).
  void activate_columns(std::size_t lo, std::size_t hi);
  void encode_determinism_pairwise(std::size_t lo, std::size_t hi);
  void encode_determinism_successor(std::size_t lo, std::size_t hi);
  void encode_forbidden_pair(const std::vector<ForbiddenChainCache::Chain>& chains,
                             std::size_t lo, std::size_t hi);
  /// Star-compression support: index of the z-flag block for the given
  /// predicate/side (creating it, with its membership binaries over the
  /// active columns, on first use).
  std::size_t star_block(PredId pred, bool src_side);
  void encode_star_columns(std::size_t lo, std::size_t hi);
  void set_overflowed(const char* where);
  /// Emits the equality semantics of `e` over columns [lo, hi).
  void encode_equality_columns(sat::Var e, std::size_t sv_a, std::size_t sv_b,
                               std::size_t lo, std::size_t hi);
  /// Variable forced to track `state_var_a == state_var_b`; memoised per
  /// (sv_a, sv_b) so repeated adjacencies across forbidden chains reuse one
  /// aux var instead of minting a fresh one plus 2N duplicate clauses.
  sat::Var equality_var(std::size_t sv_a, std::size_t sv_b);
  /// Enumerates (and caches) the transition chains labelled by `word`.
  const std::vector<ForbiddenChainCache::Chain>& chains_for(
      const std::vector<PredId>& word);

  bool clause_budget_ok() const { return solver_.num_clauses() <= options_.max_clauses; }

  std::size_t num_preds_;
  std::size_t num_states_;   ///< active state count N
  std::size_t capacity_;     ///< allocated one-hot width (== N when fixed)
  CspOptions options_;
  bool overflowed_ = false;
  sat::Solver solver_;

  // Flattened transition table: transition i reads predicate
  // preds_of_transition_[i] between state variables src_var_[i], dst_var_[i].
  std::vector<PredId> preds_of_transition_;
  std::vector<std::size_t> src_var_;
  std::vector<std::size_t> dst_var_;
  std::size_t num_state_vars_ = 0;
  /// First SAT var of each state variable's one-hot block (capacity_ wide).
  std::vector<sat::Var> block_base_;
  /// Transitions grouped by predicate (for determinism and forbidding).
  std::vector<std::vector<std::size_t>> transitions_with_pred_;
  /// Persistent mode: per-column guard variables (empty when fixed-N).
  std::vector<sat::Var> act_;
  /// Successor-encoding aux blocks, one capacity_^2 block per used predicate
  /// (kVarUndef for unused predicates).
  std::vector<sat::Var> succ_base_;
  /// Length-2 forbidden words already encoded, re-extended at grow time.
  /// (Longer words reduce to equality variables, which are extended via
  /// the equality list; their chain clause itself is width-independent.)
  std::vector<std::vector<PredId>> forbidden_pairs_;
  /// Flattened transition order (by predicate, then group order): the item
  /// space of the chunked determinism emission.
  std::vector<std::uint32_t> trans_order_;
  /// Star-compression flag blocks: one capacity_-wide one-per-column var
  /// block per (predicate, side) that ever appeared in a compressed
  /// forbidden pair. `svs` is the deduplicated member state-variable list.
  struct StarBlock {
    PredId pred;
    bool src_side;
    sat::Var base;
    std::vector<std::uint32_t> svs;
  };
  std::vector<StarBlock> star_blocks_;
  std::unordered_map<std::uint32_t, std::size_t> star_index_;  // pred*2+side
  /// Compressed forbidden pairs as (dst-block, src-block) index pairs; their
  /// per-column conflict binaries are re-extended at grow time.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> star_words_;
  /// Per-state-count guard variable for acceptance-blocking clauses.
  std::unordered_map<std::size_t, sat::Var> block_guard_;
  /// Memoised equality aux vars, keyed by sv_a * num_state_vars_ + sv_b.
  /// The map answers lookups; the vector preserves insertion order so
  /// grow-time extension is deterministic.
  std::unordered_map<std::uint64_t, sat::Var> equality_cache_;
  std::vector<std::pair<std::uint64_t, sat::Var>> equality_list_;
  /// Preprocessing runs lazily at the next solve() after construction.
  bool needs_preprocess_ = true;
  /// Shared cross-N chain cache (optional); falls back to a local one.
  ForbiddenChainCache* chain_cache_ = nullptr;
  ForbiddenChainCache local_chain_cache_;
  /// One-pass model decode cache (valid while decoded_valid_).
  mutable std::vector<std::uint32_t> decoded_;
  mutable bool decoded_valid_ = false;
  /// Assumption scratch for persistent solves.
  std::vector<sat::Lit> assumptions_;

  static constexpr sat::Var kVarUndef = -1;
};

}  // namespace t2m

#endif  // T2M_CORE_CSP_ENCODER_H
