#ifndef T2M_CORE_CSP_ENCODER_H
#define T2M_CORE_CSP_ENCODER_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/core/segmentation.h"
#include "src/sat/solver.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"

namespace t2m {

/// Memoised chain enumeration for forbidden words.
///
/// Encoding a forbidden word w requires enumerating every chain of encoded
/// transitions labelled by w — a product over the per-predicate transition
/// groups that is exponential in |w|. The enumeration depends only on the
/// segment layout (which transition reads which predicate between which
/// state variables), NOT on the state count N, so the learner shares one
/// cache across its N-increment loop: re-encoding the accumulated forbidden
/// words into a fresh N+1 CSP reuses the cached chains and only emits the
/// (cheap, N-dependent) clauses. Sound only while the segment layout is
/// fixed, which holds for the whole of one learn_from_sequence() run.
class ForbiddenChainCache {
public:
  /// One dst/src state-variable adjacency along a chain.
  using SvPair = std::pair<std::uint32_t, std::uint32_t>;
  /// One chain of transitions labelled by the word: |word|-1 adjacencies.
  using Chain = std::vector<SvPair>;

  /// Returns the cached chains for `word`, or null when absent.
  const std::vector<Chain>* find(const std::vector<PredId>& word) const {
    const auto it = entries_.find(word);
    return it == entries_.end() ? nullptr : &it->second;
  }
  std::vector<Chain>& emplace(const std::vector<PredId>& word) {
    return entries_[word];
  }
  std::size_t size() const { return entries_.size(); }

private:
  std::unordered_map<std::vector<PredId>, std::vector<Chain>, VectorHash> entries_;
};

/// How the "at most one transition per (state, predicate)" condition
/// (Algorithm 1, line 29) is encoded:
enum class DeterminismEncoding : std::uint8_t {
  /// Paper-faithful: one constraint per PAIR of transitions with the same
  /// predicate, O(m^2 N^3) clauses — this is the encoding whose cost the
  /// segmentation study (Table I, Fig. 7) measures.
  Pairwise,
  /// Our improvement: auxiliary one-hot successor functions succ(state,
  /// pred), O(m N^2) clauses. Ablated in bench_ablation_encoding.
  Successor,
};

struct CspOptions {
  DeterminismEncoding encoding = DeterminismEncoding::Successor;
  /// Pin the first segment's first state variable to state 0 (= q0). Sound
  /// symmetry breaking: states are interchangeable under renaming.
  bool pin_initial = true;
  /// Abort encoding beyond this many clauses; solve() then reports Unknown.
  /// The pairwise encoding of an unsegmented long trace is O(m^2 N^3) --
  /// this cap is what turns the paper's ">16 hours" rows into a clean
  /// "intractable" verdict instead of memory exhaustion.
  std::size_t max_clauses = 5000000;
};

/// The automaton-existence hypothesis of Algorithm 1 (lines 18-33), encoded
/// directly to CNF over our CDCL solver instead of a C program over CBMC.
///
/// Unknowns: one state variable per segment position (w+1 per segment of
/// length w), each one-hot over {0..N-1}. Constraints: segment chaining (by
/// variable sharing), per-predicate determinism, and any forbidden
/// transition sequences added by the compliance refinement loop.
///
/// solve() == Sat  <=>  an N-state automaton embedding all segments exists
/// (the paper's CBMC counterexample case).
class AutomatonCsp {
public:
  AutomatonCsp(const std::vector<Segment>& segments, std::size_t num_preds,
               std::size_t num_states, const CspOptions& options = {});

  /// Forbids any path labelled `word` (compliance refinement, line 44).
  /// Length-2 words use direct binary clauses; longer words introduce
  /// auxiliary state-equality variables (memoised per state-variable pair).
  void add_forbidden_sequence(const std::vector<PredId>& word);

  /// Shares a chain cache across CSP instances (non-owning; the learner
  /// keeps one per learn_from_sequence run). Must only be shared between
  /// CSPs built from the same segment layout.
  void set_chain_cache(ForbiddenChainCache* cache) { chain_cache_ = cache; }

  /// Runs the solver; Unknown on deadline expiry.
  sat::SolveResult solve(const Deadline& deadline = Deadline::never());

  /// Excludes the current satisfying assignment (over the state variables)
  /// so the next solve() yields a structurally different automaton. Used by
  /// the trace-acceptance refinement. Requires last solve() == Sat.
  void block_current_model();

  /// Decodes the model into an automaton (requires last solve() == Sat).
  /// The NFA has exactly `num_states` states; unreachable ones are kept so
  /// the state count reports the paper's N.
  Nfa extract_model() const;

  std::size_t num_states() const { return num_states_; }
  std::size_t num_transitions() const { return preds_of_transition_.size(); }
  /// Distinct state-variable pairs with an equality aux var (for tests).
  std::size_t num_equality_vars() const { return equality_cache_.size(); }
  const sat::SolverStats& solver_stats() const { return solver_.stats(); }
  std::size_t num_clauses() const { return solver_.num_clauses(); }
  std::size_t num_vars() const { return solver_.num_vars(); }

private:
  /// SAT literal for "state variable `sv` equals state `k`".
  sat::Lit state_lit(std::size_t sv, std::size_t k) const;
  std::size_t decode_state(std::size_t sv) const;
  void encode_one_hot();
  void encode_determinism_pairwise();
  void encode_determinism_successor();
  /// Variable forced to track `state_var_a == state_var_b`; memoised per
  /// (sv_a, sv_b) so repeated adjacencies across forbidden chains reuse one
  /// aux var instead of minting a fresh one plus 2N duplicate clauses.
  sat::Var equality_var(std::size_t sv_a, std::size_t sv_b);
  /// Enumerates (and caches) the transition chains labelled by `word`.
  const std::vector<ForbiddenChainCache::Chain>& chains_for(
      const std::vector<PredId>& word);

  bool clause_budget_ok() const { return solver_.num_clauses() <= options_.max_clauses; }

  std::size_t num_preds_;
  std::size_t num_states_;
  CspOptions options_;
  bool overflowed_ = false;
  sat::Solver solver_;

  // Flattened transition table: transition i reads predicate
  // preds_of_transition_[i] between state variables src_var_[i], dst_var_[i].
  std::vector<PredId> preds_of_transition_;
  std::vector<std::size_t> src_var_;
  std::vector<std::size_t> dst_var_;
  std::size_t num_state_vars_ = 0;
  /// First SAT var of each state variable's one-hot block.
  std::vector<sat::Var> block_base_;
  /// Transitions grouped by predicate (for determinism and forbidding).
  std::vector<std::vector<std::size_t>> transitions_with_pred_;
  /// Memoised equality aux vars, keyed by sv_a * num_state_vars_ + sv_b.
  std::unordered_map<std::uint64_t, sat::Var> equality_cache_;
  /// Shared cross-N chain cache (optional); falls back to a local one.
  ForbiddenChainCache* chain_cache_ = nullptr;
  ForbiddenChainCache local_chain_cache_;
};

}  // namespace t2m

#endif  // T2M_CORE_CSP_ENCODER_H
