#include "src/core/csp_encoder.h"

#include <functional>
#include <stdexcept>

#include "src/util/log.h"

namespace t2m {

AutomatonCsp::AutomatonCsp(const std::vector<Segment>& segments, std::size_t num_preds,
                           std::size_t num_states, const CspOptions& options)
    : num_preds_(num_preds), num_states_(num_states), options_(options) {
  if (num_states_ == 0) throw std::invalid_argument("AutomatonCsp: zero states");

  // Lay out state variables: each segment of length w owns w+1 of them,
  // chained implicitly by sharing (dst of transition j is src of j+1).
  for (const Segment& segment : segments) {
    if (segment.empty()) continue;
    const std::size_t first_var = num_state_vars_;
    num_state_vars_ += segment.size() + 1;
    for (std::size_t j = 0; j < segment.size(); ++j) {
      preds_of_transition_.push_back(segment[j]);
      src_var_.push_back(first_var + j);
      dst_var_.push_back(first_var + j + 1);
    }
  }

  // One-hot blocks, allocated as one contiguous batch.
  block_base_.resize(num_state_vars_);
  const sat::Var blocks_base = solver_.new_vars(num_state_vars_ * num_states_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    block_base_[sv] = blocks_base + static_cast<sat::Var>(sv * num_states_);
  }
  encode_one_hot();

  transitions_with_pred_.resize(num_preds_);
  for (std::size_t i = 0; i < preds_of_transition_.size(); ++i) {
    transitions_with_pred_.at(preds_of_transition_[i]).push_back(i);
  }

  if (options_.pin_initial && num_state_vars_ > 0) {
    solver_.add_unit(state_lit(0, 0));
  }

  switch (options_.encoding) {
    case DeterminismEncoding::Pairwise:
      encode_determinism_pairwise();
      break;
    case DeterminismEncoding::Successor:
      encode_determinism_successor();
      break;
  }
}

sat::Lit AutomatonCsp::state_lit(std::size_t sv, std::size_t k) const {
  return sat::pos(block_base_.at(sv) + static_cast<sat::Var>(k));
}

void AutomatonCsp::encode_one_hot() {
  std::vector<sat::Lit> lits(num_states_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    for (std::size_t k = 0; k < num_states_; ++k) lits[k] = state_lit(sv, k);
    solver_.add_exactly_one(lits);
  }
}

void AutomatonCsp::encode_determinism_pairwise() {
  // For every pair of transitions sharing a predicate: equal sources force
  // equal destinations. Clauses (~srcA=k | ~srcB=k | ~dstA=k1 | ~dstB=k2)
  // for k1 != k2 -- the paper's "wrong transition" condition, line 29.
  for (const auto& group : transitions_with_pred_) {
    for (std::size_t a_i = 0; a_i < group.size(); ++a_i) {
      if (!clause_budget_ok()) {
        overflowed_ = true;
        log_warn() << "AutomatonCsp: clause budget exceeded (pairwise encoding of "
                   << preds_of_transition_.size() << " transitions); giving up";
        return;
      }
      for (std::size_t b_i = a_i + 1; b_i < group.size(); ++b_i) {
        const std::size_t a = group[a_i];
        const std::size_t b = group[b_i];
        if (src_var_[a] == src_var_[b] && dst_var_[a] == dst_var_[b]) continue;
        for (std::size_t k = 0; k < num_states_; ++k) {
          for (std::size_t k1 = 0; k1 < num_states_; ++k1) {
            for (std::size_t k2 = 0; k2 < num_states_; ++k2) {
              if (k1 == k2) continue;
              solver_.add_clause({~state_lit(src_var_[a], k), ~state_lit(src_var_[b], k),
                                  ~state_lit(dst_var_[a], k1),
                                  ~state_lit(dst_var_[b], k2)});
            }
          }
        }
      }
    }
  }
}

void AutomatonCsp::encode_determinism_successor() {
  // succ(k, p): one-hot successor state of state k under predicate p. Any
  // transition with predicate p leaving state k must land on succ(k, p);
  // at-most-one on the block enforces determinism in O(m N^2) clauses.
  for (std::size_t p = 0; p < num_preds_; ++p) {
    if (transitions_with_pred_[p].empty()) continue;
    if (!clause_budget_ok()) {
      overflowed_ = true;
      log_warn() << "AutomatonCsp: clause budget exceeded (successor encoding)";
      return;
    }
    const sat::Var succ_base = solver_.new_vars(num_states_ * num_states_);
    const auto succ = [&](std::size_t k, std::size_t k2) {
      return sat::pos(succ_base + static_cast<sat::Var>(k * num_states_ + k2));
    };
    for (std::size_t k = 0; k < num_states_; ++k) {
      // at-most-one successor per (k, p)
      for (std::size_t i = 0; i < num_states_; ++i) {
        for (std::size_t j = i + 1; j < num_states_; ++j) {
          solver_.add_binary(~succ(k, i), ~succ(k, j));
        }
      }
    }
    for (const std::size_t t : transitions_with_pred_[p]) {
      for (std::size_t k = 0; k < num_states_; ++k) {
        for (std::size_t k2 = 0; k2 < num_states_; ++k2) {
          // (src=k & dst=k2) -> succ(k, k2)
          solver_.add_ternary(~state_lit(src_var_[t], k), ~state_lit(dst_var_[t], k2),
                              succ(k, k2));
        }
      }
    }
  }
}

sat::Var AutomatonCsp::equality_var(std::size_t sv_a, std::size_t sv_b) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(sv_a) * num_state_vars_ + sv_b;
  const auto it = equality_cache_.find(key);
  if (it != equality_cache_.end()) return it->second;
  const sat::Var e = solver_.new_var();
  for (std::size_t k = 0; k < num_states_; ++k) {
    // (a=k & b=k) -> e
    solver_.add_ternary(~state_lit(sv_a, k), ~state_lit(sv_b, k), sat::pos(e));
    // (e & a=k) -> b=k
    solver_.add_ternary(~sat::pos(e), ~state_lit(sv_a, k), state_lit(sv_b, k));
  }
  equality_cache_.emplace(key, e);
  return e;
}

const std::vector<ForbiddenChainCache::Chain>& AutomatonCsp::chains_for(
    const std::vector<PredId>& word) {
  ForbiddenChainCache& cache = chain_cache_ ? *chain_cache_ : local_chain_cache_;
  if (const auto* hit = cache.find(word)) return *hit;
  // Enumerate every chain of transitions labelled by `word`, recording the
  // consecutive dst/src state-variable adjacencies. This is the exponential
  // part of the encoding; everything emitted from it is N-independent, so
  // the result is cached across state-count increments.
  std::vector<ForbiddenChainCache::Chain>& chains = cache.emplace(word);
  std::vector<std::size_t> chain(word.size());
  const std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (depth == word.size()) {
      ForbiddenChainCache::Chain adj;
      adj.reserve(word.size() - 1);
      for (std::size_t i = 0; i + 1 < word.size(); ++i) {
        adj.emplace_back(static_cast<std::uint32_t>(dst_var_[chain[i]]),
                         static_cast<std::uint32_t>(src_var_[chain[i + 1]]));
      }
      chains.push_back(std::move(adj));
      return;
    }
    for (const std::size_t t : transitions_with_pred_.at(word[depth])) {
      chain[depth] = t;
      recurse(depth + 1);
    }
  };
  recurse(0);
  return chains;
}

void AutomatonCsp::add_forbidden_sequence(const std::vector<PredId>& word) {
  if (word.empty()) return;
  if (word.size() == 1) {
    // A single forbidden predicate cannot occur at all; with segments fixed
    // this is only satisfiable if no transition uses it.
    if (!transitions_with_pred_.at(word[0]).empty()) {
      // Force root-level conflict: the instance has no such automaton.
      const sat::Var v = solver_.new_var();
      solver_.add_unit(sat::pos(v));
      solver_.add_unit(sat::neg(v));
    }
    return;
  }
  const std::vector<ForbiddenChainCache::Chain>& chains = chains_for(word);
  if (word.size() == 2) {
    // No transition labelled word[0] may feed one labelled word[1]:
    // for all pairs (a, b): dst(a) != src(b).
    for (const ForbiddenChainCache::Chain& adj : chains) {
      for (std::size_t k = 0; k < num_states_; ++k) {
        solver_.add_binary(~state_lit(adj[0].first, k), ~state_lit(adj[0].second, k));
      }
    }
    return;
  }
  // General case: for every chain of transitions labelled by `word`, at
  // least one consecutive dst/src pair must differ. Auxiliary equality
  // variables keep this polynomial per chain.
  std::vector<sat::Lit> clause;
  for (const ForbiddenChainCache::Chain& adj : chains) {
    clause.clear();
    clause.reserve(adj.size());
    for (const auto& [dst_sv, src_sv] : adj) {
      clause.push_back(~sat::pos(equality_var(dst_sv, src_sv)));
    }
    solver_.add_clause(clause);
  }
}

sat::SolveResult AutomatonCsp::solve(const Deadline& deadline) {
  if (overflowed_) return sat::SolveResult::Unknown;
  solver_.set_deadline(deadline);
  return solver_.solve();
}

void AutomatonCsp::block_current_model() {
  std::vector<sat::Lit> clause;
  clause.reserve(num_state_vars_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    clause.push_back(~state_lit(sv, decode_state(sv)));
  }
  solver_.add_clause(clause);
}

std::size_t AutomatonCsp::decode_state(std::size_t sv) const {
  for (std::size_t k = 0; k < num_states_; ++k) {
    if (solver_.model_value(block_base_[sv] + static_cast<sat::Var>(k))) return k;
  }
  throw std::logic_error("AutomatonCsp::decode_state: no state set (not SAT?)");
}

Nfa AutomatonCsp::extract_model() const {
  Nfa model(num_states_, options_.pin_initial && num_state_vars_ > 0 ? decode_state(0) : 0);
  for (std::size_t t = 0; t < preds_of_transition_.size(); ++t) {
    model.add_transition(decode_state(src_var_[t]), preds_of_transition_[t],
                         decode_state(dst_var_[t]));
  }
  return model;
}

}  // namespace t2m
