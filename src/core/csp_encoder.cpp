#include "src/core/csp_encoder.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>

#include "src/base/status.h"
#include "src/obs/trace.h"
#include "src/parallel/scratch_arena.h"
#include "src/parallel/thread_pool.h"
#include "src/sat/var_remap.h"
#include "src/util/log.h"

namespace t2m {

namespace {

constexpr std::uint32_t kNoDecodedState = std::numeric_limits<std::uint32_t>::max();

/// One worker chunk's clause output. Literal payloads live in the chunk's
/// own bump arena (no allocator contention between workers); the entry list
/// preserves emission order for the deterministic splice.
struct ChunkBuf {
  par::ScratchArena arena;
  struct Entry {
    const sat::Lit* lits;
    std::uint32_t len;
    bool tainted;
  };
  std::vector<Entry> entries;
  std::atomic<bool> ready{false};
  /// Worker stopped early on the shared soft budget; the splice rebuilds the
  /// chunk synchronously if it still needs it (see run_emission).
  bool truncated = false;

  void emit(std::initializer_list<sat::Lit> lits, bool tainted = false) {
    emit_span({lits.begin(), lits.size()}, tainted);
  }
  void emit_span(std::span<const sat::Lit> lits, bool tainted = false) {
    sat::Lit* out = arena.alloc_array<sat::Lit>(lits.size());
    std::copy(lits.begin(), lits.end(), out);
    // Workers do no solver-dependent normalisation (the live root state
    // changes while earlier chunks splice), but sorting is pure — it feeds
    // Solver::add_clause_presorted.
    std::sort(out, out + lits.size());
    entries.push_back({out, static_cast<std::uint32_t>(lits.size()), tainted});
  }
  void clear() {
    entries.clear();
    arena.reset();
  }
};

/// Chunked clause emission with a deterministic splice.
///
/// `build(item, buf)` must be a pure function of the item index (no solver
/// reads): workers run chunks of the item space [0, n_items) concurrently,
/// and the main thread splices finished chunks into the solver strictly in
/// chunk-index order, normalising against the live root-level assignment as
/// it goes. Item order within a chunk and chunk order together reproduce the
/// serial order exactly, so the clause database is byte-identical at every
/// thread count — chunk boundaries only decide who builds what.
///
/// The clause budget is enforced exactly at the splice (one check per
/// clause); workers additionally watch a shared approximate counter so a
/// hopeless over-budget emission stops buffering early instead of
/// materialising gigabytes. A chunk truncated by that soft stop is rebuilt
/// synchronously if the splice reaches it still under budget (possible when
/// many buffered clauses were root-satisfied and not counted).
///
/// Returns false when the budget was hit; the caller marks the CSP
/// overflowed.
template <typename BuildFn>
bool run_emission(sat::Solver& solver, std::size_t max_clauses, std::size_t threads,
                  std::size_t n_items, const Deadline& deadline,
                  const BuildFn& build) {
  if (n_items == 0) return true;
  const std::size_t soft_cap = max_clauses + max_clauses / 4 + 16384;

  // Amortised deadline poll shared by workers and the serial walk: one clock
  // read per 64 items. An expiry throws deadline_exceeded — from a worker it
  // is rethrown at the fork-join; either way the half-built CSP is discarded
  // by the learner, which converts the escape into its timed-out verdict.
  const auto check_deadline = [&deadline](std::size_t i) {
    if (!deadline.is_finite() || (i & 63u) != 0) return;
    if (deadline.expired()) {
      throw_status(ErrorCode::deadline_exceeded,
                   "clause emission exceeded the learn deadline");
    }
  };

  const auto splice = [&](const ChunkBuf& buf) -> bool {
    for (const ChunkBuf::Entry& e : buf.entries) {
      if (solver.num_clauses() >= max_clauses) return false;
      solver.add_clause_presorted({e.lits, e.len}, e.tainted);
    }
    return true;
  };

  if (threads <= 1 || n_items == 1) {
    // Same item walk, spliced incrementally so memory stays bounded even
    // when the emission is destined to overflow.
    T2M_SPAN("encode.emit_serial", "items", n_items);
    ChunkBuf buf;
    for (std::size_t i = 0; i < n_items; ++i) {
      check_deadline(i);
      build(i, buf);
      if (buf.entries.size() >= 65536 ||
          solver.num_clauses() + buf.entries.size() > soft_cap) {
        if (!splice(buf)) return false;
        buf.clear();
      }
    }
    return splice(buf);
  }

  const std::size_t chunks = std::min(n_items, threads * 4);
  const std::size_t per_chunk = (n_items + chunks - 1) / chunks;
  std::vector<std::unique_ptr<ChunkBuf>> bufs(chunks);
  for (auto& b : bufs) b = std::make_unique<ChunkBuf>();

  std::atomic<std::size_t> approx_total{solver.num_clauses()};
  par::ThreadPool& pool = par::ThreadPool::global();
  pool.ensure_size(threads);

  // Deferred watcher attachment: the splice thread only root-filters and
  // allocates each clause (Solver::add_clause_deferred); the watcher pushes —
  // the cache-hostile half of a serial add — happen at flush points, sharded
  // across the pool by literal code. Shards own disjoint watcher lists and
  // each list is filled in clause order, so the flushed state is identical to
  // immediate attachment. Flushes are forced whenever the root assignment is
  // about to advance (a spliced clause filtered down to a unit), and once at
  // the end; every exit path below flushes before returning.
  std::vector<sat::ClauseRef> pending;
  const auto flush_pending = [&solver, &pool, &pending, threads] {
    if (pending.empty()) return;
    // Small flushes (the unit-triggered ones early in an emission) are not
    // worth a fork-join; the big final flush uses the whole pool. Every
    // shard scans all of `pending`, so sharding beyond the machine's real
    // core count only multiplies that scan.
    const std::size_t shards = std::min(
        {threads, par::hardware_threads(), 1 + pending.size() / 16384});
    if (shards <= 1) {
      solver.attach_shard(pending, 0, 1);
    } else {
      par::TaskGroup attach(pool);
      for (std::size_t s = 1; s < shards; ++s) {
        attach.run([&solver, &pending, s, shards] {
          solver.attach_shard(pending, s, shards);
        });
      }
      solver.attach_shard(pending, 0, shards);
      attach.wait();
    }
    pending.clear();
  };
  const auto splice_deferred = [&](const ChunkBuf& buf) -> bool {
    for (const ChunkBuf::Entry& e : buf.entries) {
      if (solver.num_clauses() >= max_clauses) return false;
      const std::span<const sat::Lit> lits{e.lits, e.len};
      if (!solver.add_clause_deferred(lits, e.tainted, pending)) {
        flush_pending();
        solver.add_clause_presorted(lits, e.tainted);
      }
    }
    return true;
  };

  par::TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    ChunkBuf* buf = bufs[c].get();
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n_items, begin + per_chunk);
    group.run([&build, &approx_total, &check_deadline, buf, c, begin, end, soft_cap] {
      T2M_SPAN("encode.emit_chunk", "chunk", c, "items", end - begin);
      std::size_t counted = 0;
      for (std::size_t i = begin; i < end; ++i) {
        check_deadline(i);
        build(i, *buf);
        const std::size_t delta = buf->entries.size() - counted;
        counted = buf->entries.size();
        // order: relaxed — an approximate cross-chunk total for a soft cap;
        // slight over-emission past the cap is by design.
        if (approx_total.fetch_add(delta, std::memory_order_relaxed) + delta > soft_cap) {
          buf->truncated = true;
          break;
        }
      }
      // order: release publishes buf->entries / buf->truncated; pairs with
      // the splicer's acquire loads of ready below.
      buf->ready.store(true, std::memory_order_release);
    });
  }

  // Pipelined splice: consume chunk c while later chunks are still being
  // built, helping the pool whenever c isn't ready yet.
  T2M_SPAN("encode.splice", "chunks", chunks);
  bool ok = true;
  for (std::size_t c = 0; c < chunks && ok; ++c) {
    // order: acquire pairs with the emitter's release store of ready, making
    // the chunk's entries fully visible before the splice reads them.
    while (!bufs[c]->ready.load(std::memory_order_acquire)) {
      if (!pool.help_one()) {
        if (group.done()) break;  // a task died; group.wait() rethrows below
        std::this_thread::yield();
      }
    }
    // order: acquire — same pairing as the spin above (a dead task path).
    if (!bufs[c]->ready.load(std::memory_order_acquire)) break;
    if (bufs[c]->truncated) {
      ChunkBuf full;
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(n_items, begin + per_chunk);
      for (std::size_t i = begin; i < end; ++i) build(i, full);
      ok = splice_deferred(full);
    } else {
      ok = splice_deferred(*bufs[c]);
    }
    bufs[c].reset();  // release the chunk's arena before later chunks land
  }
  flush_pending();
  group.wait();
  return ok;
}

}  // namespace

AutomatonCsp::AutomatonCsp(const std::vector<Segment>& segments, std::size_t num_preds,
                           std::size_t num_states, const CspOptions& options)
    : num_preds_(num_preds),
      num_states_(num_states),
      capacity_(options.state_capacity == 0 ? num_states
                                            : std::max(num_states, options.state_capacity)),
      options_(options) {
  if (num_states_ == 0) throw std::invalid_argument("AutomatonCsp: zero states");
  T2M_SPAN("encode.build", "states", num_states_, "capacity", capacity_, "segments",
           segments.size());
  // Before any new_vars: default_phase seeds the phase array as variables
  // are created.
  solver_.set_config(options_.solver);

  // Lay out state variables: each segment of length w owns w+1 of them,
  // chained implicitly by sharing (dst of transition j is src of j+1).
  for (const Segment& segment : segments) {
    if (segment.empty()) continue;
    const std::size_t first_var = num_state_vars_;
    num_state_vars_ += segment.size() + 1;
    for (std::size_t j = 0; j < segment.size(); ++j) {
      preds_of_transition_.push_back(segment[j]);
      src_var_.push_back(first_var + j);
      dst_var_.push_back(first_var + j + 1);
    }
  }

  // One-hot blocks, allocated as one contiguous batch of capacity_ columns.
  block_base_.resize(num_state_vars_);
  const sat::Var blocks_base = solver_.new_vars(num_state_vars_ * capacity_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    block_base_[sv] = blocks_base + static_cast<sat::Var>(sv * capacity_);
  }

  const bool is_persistent = options_.state_capacity > 0;
  if (is_persistent) {
    const sat::Var act_base = solver_.new_vars(capacity_);
    act_.resize(capacity_);
    for (std::size_t k = 0; k < capacity_; ++k) {
      act_[k] = act_base + static_cast<sat::Var>(k);
    }
  }

  transitions_with_pred_.resize(num_preds_);
  for (std::size_t i = 0; i < preds_of_transition_.size(); ++i) {
    transitions_with_pred_.at(preds_of_transition_[i]).push_back(i);
  }
  trans_order_.reserve(preds_of_transition_.size());
  for (const auto& group : transitions_with_pred_) {
    for (const std::size_t t : group) trans_order_.push_back(static_cast<std::uint32_t>(t));
  }

  // Successor aux blocks span the full capacity so their layout survives
  // grow_to(); only used predicates get one.
  succ_base_.assign(num_preds_, kVarUndef);
  if (options_.encoding == DeterminismEncoding::Successor) {
    for (std::size_t p = 0; p < num_preds_; ++p) {
      if (transitions_with_pred_[p].empty()) continue;
      succ_base_[p] = solver_.new_vars(capacity_ * capacity_);
    }
  }

  // Frozen-variable contract (docs/preprocessing.md): every variable the
  // encoder reads back (state bits), assumes (guards), or re-mentions in
  // later emissions (guards, successor blocks in persistent mode) must never
  // be eliminated by the preprocessor. Successor blocks of a fixed-N CSP are
  // internal after construction and stay eliminable.
  const auto freeze_range = [this](sat::Var base, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      solver_.freeze(base + static_cast<sat::Var>(i));
    }
  };
  freeze_range(blocks_base, num_state_vars_ * capacity_);
  if (is_persistent) {
    freeze_range(act_.front(), capacity_);
    for (std::size_t p = 0; p < num_preds_; ++p) {
      if (succ_base_[p] != kVarUndef) freeze_range(succ_base_[p], capacity_ * capacity_);
    }
  }

  // At-least-one over the full block width (tainted: it is the one clause
  // of the encoding whose literal set depends on the capacity, so nothing
  // derived from it may be re-seeded into a differently-sized rebuild). In
  // persistent mode the guard binaries (act_k | ~x) restrict it to the
  // active columns under the per-solve assumptions; in fixed mode the width
  // IS the state count.
  const std::size_t cap = capacity_;
  const std::size_t n0 = num_states_;
  if (!run_emission(solver_, options_.max_clauses, options_.threads, num_state_vars_,
                    options_.deadline,
                    [&](std::size_t sv, ChunkBuf& buf) {
                      sat::Lit* alo = buf.arena.alloc_array<sat::Lit>(cap);
                      for (std::size_t k = 0; k < cap; ++k) alo[k] = state_lit(sv, k);
                      buf.emit_span({alo, cap}, /*tainted=*/true);
                      if (!act_.empty()) {
                        // Guard binaries only for columns that can ever be
                        // inactive: N only grows, so the first n0 columns
                        // never need deactivating.
                        for (std::size_t k = n0; k < cap; ++k) {
                          buf.emit({sat::pos(act_[k]), ~state_lit(sv, k)});
                        }
                      }
                    })) {
    set_overflowed("one-hot at-least-one");
    return;
  }

  if (options_.pin_initial && num_state_vars_ > 0) {
    solver_.add_unit(state_lit(0, 0));
  }

  activate_columns(0, num_states_);
}

sat::Lit AutomatonCsp::state_lit(std::size_t sv, std::size_t k) const {
  return sat::pos(block_base_.at(sv) + static_cast<sat::Var>(k));
}

void AutomatonCsp::set_overflowed(const char* where) {
  overflowed_ = true;
  log_warn() << "AutomatonCsp: clause budget exceeded (" << where << "); giving up";
}

bool AutomatonCsp::grow_to(std::size_t n) {
  if (!persistent()) return false;
  if (n <= num_states_) return true;
  if (n > capacity_) return false;
  T2M_SPAN("encode.grow", "from", num_states_, "to", n);
  const std::size_t lo = num_states_;
  num_states_ = n;
  decoded_valid_ = false;
  // Learned clauses carry over; the branching heuristics do not — phases and
  // activities encode the shape of the just-refuted (N-1)-state search and
  // bias the wider problem towards degenerate sibling models.
  solver_.reset_branching_heuristics();
  activate_columns(lo, n);
  return true;
}

void AutomatonCsp::activate_columns(std::size_t lo, std::size_t hi) {
  if (overflowed_) return;
  // At-most-one pairs whose larger column is new, chunked by state variable.
  if (!run_emission(solver_, options_.max_clauses, options_.threads, num_state_vars_,
                    options_.deadline,
                    [&](std::size_t sv, ChunkBuf& buf) {
                      for (std::size_t j = std::max<std::size_t>(lo, 1); j < hi; ++j) {
                        for (std::size_t i = 0; i < j; ++i) {
                          buf.emit({~state_lit(sv, i), ~state_lit(sv, j)});
                        }
                      }
                    })) {
    set_overflowed("one-hot at-most-one");
    return;
  }

  switch (options_.encoding) {
    case DeterminismEncoding::Pairwise:
      encode_determinism_pairwise(lo, hi);
      break;
    case DeterminismEncoding::Successor:
      encode_determinism_successor(lo, hi);
      break;
  }
  if (overflowed_) return;

  // Column extensions of everything the refinement loop accumulated so far
  // (no-ops during construction, when the containers are still empty). Order
  // is fixed: star blocks, star conflict binaries, direct forbidden pairs,
  // then equality variables in insertion order.
  encode_star_columns(lo, hi);
  if (overflowed_) return;
  for (const auto& word : forbidden_pairs_) {
    encode_forbidden_pair(chains_for(word), lo, hi);
    if (overflowed_) return;
  }
  for (const auto& [key, e] : equality_list_) {
    if (solver_.num_clauses() >= options_.max_clauses) {
      set_overflowed("equality extension");
      return;
    }
    encode_equality_columns(e, key / num_state_vars_, key % num_state_vars_, lo, hi);
  }
}

void AutomatonCsp::encode_determinism_pairwise(std::size_t lo, std::size_t hi) {
  // For every pair of transitions sharing a predicate: equal sources force
  // equal destinations. Clauses (~srcA=k | ~srcB=k | ~dstA=k1 | ~dstB=k2)
  // for k1 != k2 -- the paper's "wrong transition" condition, line 29.
  // Only tuples touching a column in [lo, hi) are new. Chunked over the
  // flattened (group, first-transition) item space; each item emits the
  // pairs of one transition against its group successors.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> items;  // (pred, a_i)
  for (std::size_t p = 0; p < transitions_with_pred_.size(); ++p) {
    const std::size_t n = transitions_with_pred_[p].size();
    for (std::size_t a_i = 0; a_i + 1 < n; ++a_i) {
      items.emplace_back(static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(a_i));
    }
  }
  if (!run_emission(
          solver_, options_.max_clauses, options_.threads, items.size(),
          options_.deadline,
          [&](std::size_t idx, ChunkBuf& buf) {
            const auto& group = transitions_with_pred_[items[idx].first];
            const std::size_t a_i = items[idx].second;
            const std::size_t a = group[a_i];
            for (std::size_t b_i = a_i + 1; b_i < group.size(); ++b_i) {
              const std::size_t b = group[b_i];
              if (src_var_[a] == src_var_[b] && dst_var_[a] == dst_var_[b]) continue;
              for (std::size_t k = 0; k < hi; ++k) {
                for (std::size_t k1 = 0; k1 < hi; ++k1) {
                  for (std::size_t k2 = 0; k2 < hi; ++k2) {
                    if (k1 == k2) continue;
                    if (k < lo && k1 < lo && k2 < lo) continue;  // already emitted
                    buf.emit({~state_lit(src_var_[a], k), ~state_lit(src_var_[b], k),
                              ~state_lit(dst_var_[a], k1), ~state_lit(dst_var_[b], k2)});
                  }
                }
              }
            }
          })) {
    set_overflowed("pairwise encoding");
  }
}

void AutomatonCsp::encode_determinism_successor(std::size_t lo, std::size_t hi) {
  // succ(k, p): one-hot successor state of state k under predicate p. Any
  // transition with predicate p leaving state k must land on succ(k, p);
  // at-most-one on the block enforces determinism in O(m N^2) clauses.
  std::vector<std::uint32_t> used_preds;
  for (std::size_t p = 0; p < num_preds_; ++p) {
    if (!transitions_with_pred_[p].empty()) used_preds.push_back(static_cast<std::uint32_t>(p));
  }
  // Phase 1: at-most-one per (source state, predicate) successor block; for
  // sources already active only the pairs reaching into the new columns are
  // missing.
  if (!run_emission(solver_, options_.max_clauses, options_.threads, used_preds.size(),
                    options_.deadline,
                    [&](std::size_t pi, ChunkBuf& buf) {
                      const sat::Var succ_base = succ_base_[used_preds[pi]];
                      const auto succ = [&](std::size_t k, std::size_t k2) {
                        return sat::pos(succ_base + static_cast<sat::Var>(k * capacity_ + k2));
                      };
                      for (std::size_t k = 0; k < hi; ++k) {
                        for (std::size_t j = k < lo ? lo : 1; j < hi; ++j) {
                          for (std::size_t i = 0; i < j; ++i) {
                            buf.emit({~succ(k, i), ~succ(k, j)});
                          }
                        }
                      }
                    })) {
    set_overflowed("successor at-most-one");
    return;
  }
  // Phase 2: the transition links, chunked over the flattened transition
  // order (by predicate, then group order).
  if (!run_emission(solver_, options_.max_clauses, options_.threads, trans_order_.size(),
                    options_.deadline,
                    [&](std::size_t ti, ChunkBuf& buf) {
                      const std::size_t t = trans_order_[ti];
                      const sat::Var succ_base = succ_base_[preds_of_transition_[t]];
                      for (std::size_t k = 0; k < hi; ++k) {
                        for (std::size_t k2 = 0; k2 < hi; ++k2) {
                          if (k < lo && k2 < lo) continue;  // already emitted
                          // (src=k & dst=k2) -> succ(k, k2)
                          buf.emit({~state_lit(src_var_[t], k), ~state_lit(dst_var_[t], k2),
                                    sat::pos(succ_base +
                                             static_cast<sat::Var>(k * capacity_ + k2))});
                        }
                      }
                    })) {
    set_overflowed("successor encoding");
  }
}

void AutomatonCsp::encode_equality_columns(sat::Var e, std::size_t sv_a,
                                           std::size_t sv_b, std::size_t lo,
                                           std::size_t hi) {
  // Vacuous for inactive columns: both clause shapes contain ~x_{a,k}, and
  // the guard assumptions hold those literals true until column k activates.
  for (std::size_t k = lo; k < hi; ++k) {
    // (a=k & b=k) -> e
    solver_.add_ternary(~state_lit(sv_a, k), ~state_lit(sv_b, k), sat::pos(e));
    // (e & a=k) -> b=k
    solver_.add_ternary(~sat::pos(e), ~state_lit(sv_a, k), state_lit(sv_b, k));
  }
}

sat::Var AutomatonCsp::equality_var(std::size_t sv_a, std::size_t sv_b) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(sv_a) * num_state_vars_ + sv_b;
  const auto it = equality_cache_.find(key);
  if (it != equality_cache_.end()) return it->second;
  const sat::Var e = solver_.new_var();
  solver_.freeze(e);  // re-mentioned by grow-time column extension
  encode_equality_columns(e, sv_a, sv_b, 0, num_states_);
  equality_cache_.emplace(key, e);
  equality_list_.emplace_back(key, e);
  return e;
}

std::size_t AutomatonCsp::star_block(PredId pred, bool src_side) {
  const std::uint32_t key = static_cast<std::uint32_t>(pred) * 2 + (src_side ? 1 : 0);
  const auto it = star_index_.find(key);
  if (it != star_index_.end()) return it->second;

  StarBlock blk;
  blk.pred = pred;
  blk.src_side = src_side;
  for (const std::size_t t : transitions_with_pred_.at(pred)) {
    blk.svs.push_back(static_cast<std::uint32_t>(src_side ? src_var_[t] : dst_var_[t]));
  }
  std::sort(blk.svs.begin(), blk.svs.end());
  blk.svs.erase(std::unique(blk.svs.begin(), blk.svs.end()), blk.svs.end());
  blk.base = solver_.new_vars(capacity_);
  for (std::size_t k = 0; k < capacity_; ++k) {
    solver_.freeze(blk.base + static_cast<sat::Var>(k));
  }
  // Membership binaries over the active columns: z_k is set whenever any
  // member state variable uses column k. One direction suffices — z is only
  // consumed negatively by the conflict binaries, so a spuriously-true z
  // can always be avoided by the solver; setting z exactly to the
  // disjunction witnesses satisfiability both ways.
  for (const std::uint32_t sv : blk.svs) {
    for (std::size_t k = 0; k < num_states_; ++k) {
      solver_.add_binary(~state_lit(sv, k), sat::pos(blk.base + static_cast<sat::Var>(k)));
    }
  }
  const std::size_t idx = star_blocks_.size();
  star_blocks_.push_back(std::move(blk));
  star_index_.emplace(key, idx);
  return idx;
}

void AutomatonCsp::encode_star_columns(std::size_t lo, std::size_t hi) {
  for (const StarBlock& blk : star_blocks_) {
    if (solver_.num_clauses() >= options_.max_clauses) {
      set_overflowed("star membership extension");
      return;
    }
    for (const std::uint32_t sv : blk.svs) {
      for (std::size_t k = lo; k < hi; ++k) {
        solver_.add_binary(~state_lit(sv, k), sat::pos(blk.base + static_cast<sat::Var>(k)));
      }
    }
  }
  for (const auto& [a, b] : star_words_) {
    if (solver_.num_clauses() >= options_.max_clauses) {
      set_overflowed("star conflict extension");
      return;
    }
    const sat::Var za = star_blocks_[a].base;
    const sat::Var zb = star_blocks_[b].base;
    for (std::size_t k = lo; k < hi; ++k) {
      solver_.add_binary(sat::neg(za + static_cast<sat::Var>(k)),
                         sat::neg(zb + static_cast<sat::Var>(k)));
    }
  }
}

const std::vector<ForbiddenChainCache::Chain>& AutomatonCsp::chains_for(
    const std::vector<PredId>& word) {
  ForbiddenChainCache& cache = chain_cache_ ? *chain_cache_ : local_chain_cache_;
  if (const auto* hit = cache.find(word)) return *hit;
  // Enumerate every chain of transitions labelled by `word`, recording the
  // consecutive dst/src state-variable adjacencies. This is the exponential
  // part of the encoding; everything emitted from it is N-independent, so
  // the result is cached across state-count increments. The enumeration is
  // budget-capped: every chain emits at least one clause, so a chain count
  // beyond max_clauses can only end in overflow anyway — give up before the
  // product materialises (unsegmented input makes even a length-2 word
  // quadratic in its occurrence counts).
  std::vector<ForbiddenChainCache::Chain>& chains = cache.emplace(word);
  std::vector<std::size_t> chain(word.size());
  bool truncated = false;
  const std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (truncated) return;
    if (depth == word.size()) {
      if (chains.size() >= options_.max_clauses) {
        truncated = true;
        return;
      }
      ForbiddenChainCache::Chain adj;
      adj.reserve(word.size() - 1);
      for (std::size_t i = 0; i + 1 < word.size(); ++i) {
        adj.emplace_back(static_cast<std::uint32_t>(dst_var_[chain[i]]),
                         static_cast<std::uint32_t>(src_var_[chain[i + 1]]));
      }
      chains.push_back(std::move(adj));
      return;
    }
    for (const std::size_t t : transitions_with_pred_.at(word[depth])) {
      chain[depth] = t;
      recurse(depth + 1);
    }
  };
  recurse(0);
  if (truncated) {
    cache.erase(word);  // a partial chain set must not be shared
    set_overflowed("forbidden-word chain enumeration");
    static const std::vector<ForbiddenChainCache::Chain> kNoChains;
    return kNoChains;
  }
  return chains;
}

void AutomatonCsp::encode_forbidden_pair(
    const std::vector<ForbiddenChainCache::Chain>& chains, std::size_t lo,
    std::size_t hi) {
  // No transition labelled word[0] may feed one labelled word[1]:
  // for all pairs (a, b): dst(a) != src(b). Chunked by chain.
  if (!run_emission(solver_, options_.max_clauses,
                    chains.size() >= 4096 ? options_.threads : 1, chains.size(),
                    options_.deadline,
                    [&](std::size_t ci, ChunkBuf& buf) {
                      const ForbiddenChainCache::Chain& adj = chains[ci];
                      for (std::size_t k = lo; k < hi; ++k) {
                        buf.emit({~state_lit(adj[0].first, k), ~state_lit(adj[0].second, k)});
                      }
                    })) {
    set_overflowed("forbidden pair");
  }
}

void AutomatonCsp::add_forbidden_sequence(const std::vector<PredId>& word) {
  if (word.empty() || overflowed_) return;
  if (word.size() == 1) {
    // A single forbidden predicate cannot occur at all; with segments fixed
    // this is only satisfiable if no transition uses it.
    if (!transitions_with_pred_.at(word[0]).empty()) {
      // Force root-level conflict: the instance has no such automaton.
      const sat::Var v = solver_.new_var();
      solver_.add_unit(sat::pos(v));
      solver_.add_unit(sat::neg(v));
    }
    return;
  }
  if (word.size() == 2) {
    const std::size_t na = transitions_with_pred_.at(word[0]).size();
    const std::size_t nb = transitions_with_pred_.at(word[1]).size();
    if (na == 0 || nb == 0) return;  // no such path exists, nothing to forbid
    // Star compression pays off as soon as the pair product beats the
    // (amortisable) membership cost; below that the direct binaries are
    // smaller and need no aux vars. Crucially the star path never
    // materialises the |A|x|B| chain product at all — on an unsegmented
    // trace that product alone can exceed the whole clause budget.
    if (options_.compress_forbidden && na * nb >= na + nb + 2) {
      const std::size_t a = star_block(word[0], /*src_side=*/false);
      const std::size_t b = star_block(word[1], /*src_side=*/true);
      const sat::Var za = star_blocks_[a].base;
      const sat::Var zb = star_blocks_[b].base;
      for (std::size_t k = 0; k < num_states_; ++k) {
        solver_.add_binary(sat::neg(za + static_cast<sat::Var>(k)),
                           sat::neg(zb + static_cast<sat::Var>(k)));
      }
      star_words_.emplace_back(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
      return;
    }
    const std::vector<ForbiddenChainCache::Chain>& chains = chains_for(word);
    encode_forbidden_pair(chains, 0, num_states_);
    // Overflowed words are not recorded: grow_to would only re-run a chain
    // enumeration already known to be too large.
    if (!overflowed_) forbidden_pairs_.push_back(word);
    return;
  }
  const std::vector<ForbiddenChainCache::Chain>& chains = chains_for(word);
  // General case: for every chain of transitions labelled by `word`, at
  // least one consecutive dst/src pair must differ. Auxiliary equality
  // variables keep this polynomial per chain. The clause itself is
  // width-independent; the equality variables are extended per column at
  // grow time.
  std::vector<sat::Lit> clause;
  std::size_t since_check = 0;
  for (const ForbiddenChainCache::Chain& adj : chains) {
    if (++since_check >= 1024) {
      since_check = 0;
      if (solver_.num_clauses() >= options_.max_clauses) {
        set_overflowed("forbidden word");
        return;
      }
    }
    clause.clear();
    clause.reserve(adj.size());
    for (const auto& [dst_sv, src_sv] : adj) {
      clause.push_back(~sat::pos(equality_var(dst_sv, src_sv)));
    }
    solver_.add_clause(clause);
  }
}

std::size_t AutomatonCsp::reseed_from(const AutomatonCsp& old) {
  // Only meaningful across a capacity rebuild over the same segment layout.
  if (old.num_state_vars_ != num_state_vars_ || old.num_preds_ != num_preds_ ||
      old.preds_of_transition_.size() != preds_of_transition_.size()) {
    return 0;
  }
  sat::VarRemap remap;
  const std::size_t kmin = std::min(old.capacity_, capacity_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    for (std::size_t k = 0; k < kmin; ++k) {
      remap.map(old.block_base_[sv] + static_cast<sat::Var>(k),
                block_base_[sv] + static_cast<sat::Var>(k));
    }
  }
  for (std::size_t k = 0; k < std::min({old.act_.size(), act_.size()}); ++k) {
    remap.map(old.act_[k], act_[k]);
  }
  for (std::size_t p = 0; p < num_preds_; ++p) {
    if (old.succ_base_[p] == kVarUndef || succ_base_[p] == kVarUndef) continue;
    for (std::size_t k = 0; k < kmin; ++k) {
      for (std::size_t k2 = 0; k2 < kmin; ++k2) {
        remap.map(old.succ_base_[p] + static_cast<sat::Var>(k * old.capacity_ + k2),
                  succ_base_[p] + static_cast<sat::Var>(k * capacity_ + k2));
      }
    }
  }
  for (const auto& [key, e_old] : old.equality_list_) {
    const auto it = equality_cache_.find(key);
    if (it != equality_cache_.end()) remap.map(e_old, it->second);
  }
  for (const auto& [key, old_idx] : old.star_index_) {
    const auto it = star_index_.find(key);
    if (it == star_index_.end()) continue;
    const sat::Var old_base = old.star_blocks_[old_idx].base;
    const sat::Var new_base = star_blocks_[it->second].base;
    for (std::size_t k = 0; k < kmin; ++k) {
      remap.map(old_base + static_cast<sat::Var>(k), new_base + static_cast<sat::Var>(k));
    }
  }
  // Acceptance-block guards are deliberately unmapped: their clauses are
  // model exclusions for a specific (state count, solver) pair.

  std::size_t imported = 0;
  sat::Clause mapped;
  for (const sat::Clause& c : old.solver_.export_clauses(/*max_lbd=*/2)) {
    if (!remap.map_clause(c, mapped)) continue;
    solver_.add_clause(mapped);
    ++imported;
  }
  return imported;
}

sat::SolveResult AutomatonCsp::solve(const Deadline& deadline) {
  if (overflowed_) return sat::SolveResult::Unknown;
  if (needs_preprocess_) {
    needs_preprocess_ = false;
    if (options_.preprocess) {
      // The preprocessor shares this solve call's deadline: an expired (or
      // near-expired) deadline degrades to a shorter, still-sound
      // preprocessing pass instead of an unguarded stall before the search
      // even starts.
      sat::PreprocessOptions opts = options_.preprocess_opts;
      opts.deadline = deadline;
      T2M_SPAN("encode.preprocess", "clauses", solver_.num_clauses());
      solver_.preprocess(opts);
    }
  }
  solver_.set_deadline(deadline);
  decoded_valid_ = false;
  if (!persistent()) return solver_.solve();
  // Guard assumptions select the active width; block guards replay the
  // current N's acceptance blocks and silence the expired ones.
  assumptions_.clear();
  for (std::size_t k = 0; k < capacity_; ++k) {
    assumptions_.push_back(k < num_states_ ? sat::pos(act_[k]) : sat::neg(act_[k]));
  }
  for (const auto& [n, g] : block_guard_) {
    assumptions_.push_back(n == num_states_ ? sat::pos(g) : sat::neg(g));
  }
  return solver_.solve(assumptions_);
}

bool AutomatonCsp::unsat_for_all_states() const {
  if (!persistent()) return false;
  // With no inactive column left, Unsat may only mean "not within this
  // capacity" — the caller's rebuild path handles that case.
  if (num_states_ >= capacity_) return false;
  if (solver_.in_unsat_state()) return true;  // root-level: assumption-free
  const std::vector<sat::Lit>& core = solver_.final_conflict();
  if (core.empty()) return false;  // last solve was not an assumption Unsat
  // act_ was allocated as one contiguous batch, so a range test identifies
  // guard variables; anything else in the core (an acceptance-block guard)
  // expires on growth and voids the proof, as does any ~act_k.
  const sat::Var act_lo = act_.front();
  const sat::Var act_hi = act_.back();
  for (const sat::Lit l : core) {
    const sat::Var v = l.var();
    if (v < act_lo || v > act_hi) return false;
    if (l.negated()) return false;
  }
  return true;
}

void AutomatonCsp::block_current_model() {
  std::vector<sat::Lit> clause;
  clause.reserve(num_state_vars_ + 1);
  if (persistent()) {
    auto [it, inserted] = block_guard_.try_emplace(num_states_, kVarUndef);
    if (inserted) {
      it->second = solver_.new_var();
      solver_.freeze(it->second);  // assumed at every later solve
    }
    clause.push_back(sat::neg(it->second));
  }
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    clause.push_back(~state_lit(sv, decode_state(sv)));
  }
  solver_.add_clause(clause);
}

void AutomatonCsp::decode_model() const {
  decoded_.assign(num_state_vars_, kNoDecodedState);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    for (std::size_t k = 0; k < num_states_; ++k) {
      if (solver_.model_value(block_base_[sv] + static_cast<sat::Var>(k))) {
        decoded_[sv] = static_cast<std::uint32_t>(k);
        break;
      }
    }
  }
  decoded_valid_ = true;
}

std::size_t AutomatonCsp::decode_state(std::size_t sv) const {
  if (!decoded_valid_) decode_model();
  const std::uint32_t k = decoded_.at(sv);
  if (k == kNoDecodedState) {
    throw std::logic_error("AutomatonCsp::decode_state: no state set (not SAT?)");
  }
  return k;
}

Nfa AutomatonCsp::extract_model() const {
  Nfa model(num_states_, options_.pin_initial && num_state_vars_ > 0 ? decode_state(0) : 0);
  for (std::size_t t = 0; t < preds_of_transition_.size(); ++t) {
    model.add_transition(decode_state(src_var_[t]), preds_of_transition_[t],
                         decode_state(dst_var_[t]));
  }
  return model;
}

}  // namespace t2m
