#include "src/core/csp_encoder.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "src/util/log.h"

namespace t2m {

namespace {
constexpr std::uint32_t kNoDecodedState = std::numeric_limits<std::uint32_t>::max();
}  // namespace

AutomatonCsp::AutomatonCsp(const std::vector<Segment>& segments, std::size_t num_preds,
                           std::size_t num_states, const CspOptions& options)
    : num_preds_(num_preds),
      num_states_(num_states),
      capacity_(options.state_capacity == 0 ? num_states
                                            : std::max(num_states, options.state_capacity)),
      options_(options) {
  if (num_states_ == 0) throw std::invalid_argument("AutomatonCsp: zero states");
  // Before any new_vars: default_phase seeds the phase array as variables
  // are created.
  solver_.set_config(options_.solver);

  // Lay out state variables: each segment of length w owns w+1 of them,
  // chained implicitly by sharing (dst of transition j is src of j+1).
  for (const Segment& segment : segments) {
    if (segment.empty()) continue;
    const std::size_t first_var = num_state_vars_;
    num_state_vars_ += segment.size() + 1;
    for (std::size_t j = 0; j < segment.size(); ++j) {
      preds_of_transition_.push_back(segment[j]);
      src_var_.push_back(first_var + j);
      dst_var_.push_back(first_var + j + 1);
    }
  }

  // One-hot blocks, allocated as one contiguous batch of capacity_ columns.
  block_base_.resize(num_state_vars_);
  const sat::Var blocks_base = solver_.new_vars(num_state_vars_ * capacity_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    block_base_[sv] = blocks_base + static_cast<sat::Var>(sv * capacity_);
  }

  const bool is_persistent = options_.state_capacity > 0;
  if (is_persistent) {
    const sat::Var act_base = solver_.new_vars(capacity_);
    act_.resize(capacity_);
    for (std::size_t k = 0; k < capacity_; ++k) {
      act_[k] = act_base + static_cast<sat::Var>(k);
    }
  }

  // At-least-one over the full block width. In persistent mode the guard
  // binaries (act_k | ~x) restrict it to the active columns under the
  // per-solve assumptions; in fixed mode the width IS the state count.
  std::vector<sat::Lit> alo(capacity_);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    for (std::size_t k = 0; k < capacity_; ++k) alo[k] = state_lit(sv, k);
    solver_.add_clause(alo);
    if (is_persistent) {
      // Guard binaries only for columns that can ever be inactive: N only
      // grows, so the first num_states_ columns never need deactivating.
      for (std::size_t k = num_states_; k < capacity_; ++k) {
        solver_.add_binary(sat::pos(act_[k]), ~state_lit(sv, k));
      }
    }
  }

  transitions_with_pred_.resize(num_preds_);
  for (std::size_t i = 0; i < preds_of_transition_.size(); ++i) {
    transitions_with_pred_.at(preds_of_transition_[i]).push_back(i);
  }

  // Successor aux blocks span the full capacity so their layout survives
  // grow_to(); only used predicates get one.
  succ_base_.assign(num_preds_, kVarUndef);
  if (options_.encoding == DeterminismEncoding::Successor) {
    for (std::size_t p = 0; p < num_preds_; ++p) {
      if (transitions_with_pred_[p].empty()) continue;
      succ_base_[p] = solver_.new_vars(capacity_ * capacity_);
    }
  }

  if (options_.pin_initial && num_state_vars_ > 0) {
    solver_.add_unit(state_lit(0, 0));
  }

  activate_columns(0, num_states_);
}

sat::Lit AutomatonCsp::state_lit(std::size_t sv, std::size_t k) const {
  return sat::pos(block_base_.at(sv) + static_cast<sat::Var>(k));
}

bool AutomatonCsp::grow_to(std::size_t n) {
  if (!persistent()) return false;
  if (n <= num_states_) return true;
  if (n > capacity_) return false;
  const std::size_t lo = num_states_;
  num_states_ = n;
  decoded_valid_ = false;
  // Learned clauses carry over; the branching heuristics do not — phases and
  // activities encode the shape of the just-refuted (N-1)-state search and
  // bias the wider problem towards degenerate sibling models.
  solver_.reset_branching_heuristics();
  activate_columns(lo, n);
  return true;
}

void AutomatonCsp::activate_columns(std::size_t lo, std::size_t hi) {
  // At-most-one pairs whose larger column is new.
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    if (!clause_budget_ok()) {
      overflowed_ = true;
      log_warn() << "AutomatonCsp: clause budget exceeded (one-hot encoding)";
      return;
    }
    for (std::size_t j = std::max<std::size_t>(lo, 1); j < hi; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        solver_.add_binary(~state_lit(sv, i), ~state_lit(sv, j));
      }
    }
  }

  switch (options_.encoding) {
    case DeterminismEncoding::Pairwise:
      encode_determinism_pairwise(lo, hi);
      break;
    case DeterminismEncoding::Successor:
      encode_determinism_successor(lo, hi);
      break;
  }
  if (overflowed_) return;

  // Column extensions of everything the refinement loop accumulated so far
  // (no-ops during construction, when both containers are still empty).
  for (const auto& word : forbidden_pairs_) {
    encode_forbidden_pair(chains_for(word), lo, hi);
    if (overflowed_) return;
  }
  for (const auto& [key, e] : equality_cache_) {
    if (!clause_budget_ok()) {
      overflowed_ = true;
      log_warn() << "AutomatonCsp: clause budget exceeded (equality extension)";
      return;
    }
    encode_equality_columns(e, key / num_state_vars_, key % num_state_vars_, lo, hi);
  }
}

void AutomatonCsp::encode_determinism_pairwise(std::size_t lo, std::size_t hi) {
  // For every pair of transitions sharing a predicate: equal sources force
  // equal destinations. Clauses (~srcA=k | ~srcB=k | ~dstA=k1 | ~dstB=k2)
  // for k1 != k2 -- the paper's "wrong transition" condition, line 29.
  // Only tuples touching a column in [lo, hi) are new.
  for (const auto& group : transitions_with_pred_) {
    for (std::size_t a_i = 0; a_i < group.size(); ++a_i) {
      if (!clause_budget_ok()) {
        overflowed_ = true;
        log_warn() << "AutomatonCsp: clause budget exceeded (pairwise encoding of "
                   << preds_of_transition_.size() << " transitions); giving up";
        return;
      }
      for (std::size_t b_i = a_i + 1; b_i < group.size(); ++b_i) {
        const std::size_t a = group[a_i];
        const std::size_t b = group[b_i];
        if (src_var_[a] == src_var_[b] && dst_var_[a] == dst_var_[b]) continue;
        for (std::size_t k = 0; k < hi; ++k) {
          for (std::size_t k1 = 0; k1 < hi; ++k1) {
            for (std::size_t k2 = 0; k2 < hi; ++k2) {
              if (k1 == k2) continue;
              if (k < lo && k1 < lo && k2 < lo) continue;  // already emitted
              solver_.add_clause({~state_lit(src_var_[a], k), ~state_lit(src_var_[b], k),
                                  ~state_lit(dst_var_[a], k1),
                                  ~state_lit(dst_var_[b], k2)});
            }
          }
        }
      }
    }
  }
}

void AutomatonCsp::encode_determinism_successor(std::size_t lo, std::size_t hi) {
  // succ(k, p): one-hot successor state of state k under predicate p. Any
  // transition with predicate p leaving state k must land on succ(k, p);
  // at-most-one on the block enforces determinism in O(m N^2) clauses.
  for (std::size_t p = 0; p < num_preds_; ++p) {
    if (transitions_with_pred_[p].empty()) continue;
    if (!clause_budget_ok()) {
      overflowed_ = true;
      log_warn() << "AutomatonCsp: clause budget exceeded (successor encoding)";
      return;
    }
    const sat::Var succ_base = succ_base_[p];
    const auto succ = [&](std::size_t k, std::size_t k2) {
      return sat::pos(succ_base + static_cast<sat::Var>(k * capacity_ + k2));
    };
    for (std::size_t k = 0; k < hi; ++k) {
      // at-most-one successor per (k, p); for sources already active only
      // the pairs reaching into the new columns are missing.
      for (std::size_t j = k < lo ? lo : 1; j < hi; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          solver_.add_binary(~succ(k, i), ~succ(k, j));
        }
      }
    }
    for (const std::size_t t : transitions_with_pred_[p]) {
      for (std::size_t k = 0; k < hi; ++k) {
        for (std::size_t k2 = 0; k2 < hi; ++k2) {
          if (k < lo && k2 < lo) continue;  // already emitted
          // (src=k & dst=k2) -> succ(k, k2)
          solver_.add_ternary(~state_lit(src_var_[t], k), ~state_lit(dst_var_[t], k2),
                              succ(k, k2));
        }
      }
    }
  }
}

void AutomatonCsp::encode_equality_columns(sat::Var e, std::size_t sv_a,
                                           std::size_t sv_b, std::size_t lo,
                                           std::size_t hi) {
  // Vacuous for inactive columns: both clause shapes contain ~x_{a,k}, and
  // the guard assumptions hold those literals true until column k activates.
  for (std::size_t k = lo; k < hi; ++k) {
    // (a=k & b=k) -> e
    solver_.add_ternary(~state_lit(sv_a, k), ~state_lit(sv_b, k), sat::pos(e));
    // (e & a=k) -> b=k
    solver_.add_ternary(~sat::pos(e), ~state_lit(sv_a, k), state_lit(sv_b, k));
  }
}

sat::Var AutomatonCsp::equality_var(std::size_t sv_a, std::size_t sv_b) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(sv_a) * num_state_vars_ + sv_b;
  const auto it = equality_cache_.find(key);
  if (it != equality_cache_.end()) return it->second;
  const sat::Var e = solver_.new_var();
  encode_equality_columns(e, sv_a, sv_b, 0, num_states_);
  equality_cache_.emplace(key, e);
  return e;
}

const std::vector<ForbiddenChainCache::Chain>& AutomatonCsp::chains_for(
    const std::vector<PredId>& word) {
  ForbiddenChainCache& cache = chain_cache_ ? *chain_cache_ : local_chain_cache_;
  if (const auto* hit = cache.find(word)) return *hit;
  // Enumerate every chain of transitions labelled by `word`, recording the
  // consecutive dst/src state-variable adjacencies. This is the exponential
  // part of the encoding; everything emitted from it is N-independent, so
  // the result is cached across state-count increments. The enumeration is
  // budget-capped: every chain emits at least one clause, so a chain count
  // beyond max_clauses can only end in overflow anyway — give up before the
  // product materialises (unsegmented input makes even a length-2 word
  // quadratic in its occurrence counts).
  std::vector<ForbiddenChainCache::Chain>& chains = cache.emplace(word);
  std::vector<std::size_t> chain(word.size());
  bool truncated = false;
  const std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (truncated) return;
    if (depth == word.size()) {
      if (chains.size() >= options_.max_clauses) {
        truncated = true;
        return;
      }
      ForbiddenChainCache::Chain adj;
      adj.reserve(word.size() - 1);
      for (std::size_t i = 0; i + 1 < word.size(); ++i) {
        adj.emplace_back(static_cast<std::uint32_t>(dst_var_[chain[i]]),
                         static_cast<std::uint32_t>(src_var_[chain[i + 1]]));
      }
      chains.push_back(std::move(adj));
      return;
    }
    for (const std::size_t t : transitions_with_pred_.at(word[depth])) {
      chain[depth] = t;
      recurse(depth + 1);
    }
  };
  recurse(0);
  if (truncated) {
    cache.erase(word);  // a partial chain set must not be shared
    overflowed_ = true;
    log_warn() << "AutomatonCsp: clause budget exceeded (forbidden-word chain "
                  "enumeration); giving up";
    static const std::vector<ForbiddenChainCache::Chain> kNoChains;
    return kNoChains;
  }
  return chains;
}

void AutomatonCsp::encode_forbidden_pair(
    const std::vector<ForbiddenChainCache::Chain>& chains, std::size_t lo,
    std::size_t hi) {
  // No transition labelled word[0] may feed one labelled word[1]:
  // for all pairs (a, b): dst(a) != src(b).
  std::size_t since_check = 0;
  for (const ForbiddenChainCache::Chain& adj : chains) {
    if (++since_check >= 4096) {
      since_check = 0;
      if (!clause_budget_ok()) {
        overflowed_ = true;
        log_warn() << "AutomatonCsp: clause budget exceeded (forbidden pair)";
        return;
      }
    }
    for (std::size_t k = lo; k < hi; ++k) {
      solver_.add_binary(~state_lit(adj[0].first, k), ~state_lit(adj[0].second, k));
    }
  }
}

void AutomatonCsp::add_forbidden_sequence(const std::vector<PredId>& word) {
  if (word.empty() || overflowed_) return;
  if (word.size() == 1) {
    // A single forbidden predicate cannot occur at all; with segments fixed
    // this is only satisfiable if no transition uses it.
    if (!transitions_with_pred_.at(word[0]).empty()) {
      // Force root-level conflict: the instance has no such automaton.
      const sat::Var v = solver_.new_var();
      solver_.add_unit(sat::pos(v));
      solver_.add_unit(sat::neg(v));
    }
    return;
  }
  const std::vector<ForbiddenChainCache::Chain>& chains = chains_for(word);
  if (word.size() == 2) {
    encode_forbidden_pair(chains, 0, num_states_);
    // Overflowed words are not recorded: grow_to would only re-run a chain
    // enumeration already known to be too large.
    if (!overflowed_) forbidden_pairs_.push_back(word);
    return;
  }
  // General case: for every chain of transitions labelled by `word`, at
  // least one consecutive dst/src pair must differ. Auxiliary equality
  // variables keep this polynomial per chain. The clause itself is
  // width-independent; the equality variables are extended per column at
  // grow time.
  std::vector<sat::Lit> clause;
  std::size_t since_check = 0;
  for (const ForbiddenChainCache::Chain& adj : chains) {
    if (++since_check >= 1024) {
      since_check = 0;
      if (!clause_budget_ok()) {
        overflowed_ = true;
        log_warn() << "AutomatonCsp: clause budget exceeded (forbidden word)";
        return;
      }
    }
    clause.clear();
    clause.reserve(adj.size());
    for (const auto& [dst_sv, src_sv] : adj) {
      clause.push_back(~sat::pos(equality_var(dst_sv, src_sv)));
    }
    solver_.add_clause(clause);
  }
}

sat::SolveResult AutomatonCsp::solve(const Deadline& deadline) {
  if (overflowed_) return sat::SolveResult::Unknown;
  solver_.set_deadline(deadline);
  decoded_valid_ = false;
  if (!persistent()) return solver_.solve();
  // Guard assumptions select the active width; block guards replay the
  // current N's acceptance blocks and silence the expired ones.
  assumptions_.clear();
  for (std::size_t k = 0; k < capacity_; ++k) {
    assumptions_.push_back(k < num_states_ ? sat::pos(act_[k]) : sat::neg(act_[k]));
  }
  for (const auto& [n, g] : block_guard_) {
    assumptions_.push_back(n == num_states_ ? sat::pos(g) : sat::neg(g));
  }
  return solver_.solve(assumptions_);
}

bool AutomatonCsp::unsat_for_all_states() const {
  if (!persistent()) return false;
  // With no inactive column left, Unsat may only mean "not within this
  // capacity" — the caller's rebuild path handles that case.
  if (num_states_ >= capacity_) return false;
  if (solver_.in_unsat_state()) return true;  // root-level: assumption-free
  const std::vector<sat::Lit>& core = solver_.final_conflict();
  if (core.empty()) return false;  // last solve was not an assumption Unsat
  // act_ was allocated as one contiguous batch, so a range test identifies
  // guard variables; anything else in the core (an acceptance-block guard)
  // expires on growth and voids the proof, as does any ~act_k.
  const sat::Var act_lo = act_.front();
  const sat::Var act_hi = act_.back();
  for (const sat::Lit l : core) {
    const sat::Var v = l.var();
    if (v < act_lo || v > act_hi) return false;
    if (l.negated()) return false;
  }
  return true;
}

void AutomatonCsp::block_current_model() {
  std::vector<sat::Lit> clause;
  clause.reserve(num_state_vars_ + 1);
  if (persistent()) {
    auto [it, inserted] = block_guard_.try_emplace(num_states_, kVarUndef);
    if (inserted) it->second = solver_.new_var();
    clause.push_back(sat::neg(it->second));
  }
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    clause.push_back(~state_lit(sv, decode_state(sv)));
  }
  solver_.add_clause(clause);
}

void AutomatonCsp::decode_model() const {
  decoded_.assign(num_state_vars_, kNoDecodedState);
  for (std::size_t sv = 0; sv < num_state_vars_; ++sv) {
    for (std::size_t k = 0; k < num_states_; ++k) {
      if (solver_.model_value(block_base_[sv] + static_cast<sat::Var>(k))) {
        decoded_[sv] = static_cast<std::uint32_t>(k);
        break;
      }
    }
  }
  decoded_valid_ = true;
}

std::size_t AutomatonCsp::decode_state(std::size_t sv) const {
  if (!decoded_valid_) decode_model();
  const std::uint32_t k = decoded_.at(sv);
  if (k == kNoDecodedState) {
    throw std::logic_error("AutomatonCsp::decode_state: no state set (not SAT?)");
  }
  return k;
}

Nfa AutomatonCsp::extract_model() const {
  Nfa model(num_states_, options_.pin_initial && num_state_vars_ > 0 ? decode_state(0) : 0);
  for (std::size_t t = 0; t < preds_of_transition_.size(); ++t) {
    model.add_transition(decode_state(src_var_[t]), preds_of_transition_[t],
                         decode_state(dst_var_[t]));
  }
  return model;
}

}  // namespace t2m
