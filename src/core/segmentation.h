#ifndef T2M_CORE_SEGMENTATION_H
#define T2M_CORE_SEGMENTATION_H

#include <vector>

#include "src/automaton/nfa.h"
#include "src/util/window_dedup.h"

namespace t2m {

/// A segment: a contiguous window of the predicate sequence that the learned
/// automaton must realise as a transition path (Algorithm 1, line 16).
using Segment = std::vector<PredId>;

/// All unique sliding windows of `seq` of length `w` in first-occurrence
/// order. When seq is shorter than w the whole sequence forms one segment.
/// Uniqueness is the scalability lever evaluated in Table I / Fig. 7:
/// repeating trace patterns are processed once.
std::vector<Segment> segment_sequence(const std::vector<PredId>& seq, std::size_t w);

/// The non-segmented encoding: one segment spanning the entire sequence.
std::vector<Segment> whole_sequence(const std::vector<PredId>& seq);

/// One-pass counterpart of segment_sequence for streams too long to
/// materialise: a StreamingWindowDedup (w-slot ring, O(1) rolling-hash
/// updates, in-ring compares, windows materialised only when new — see
/// src/util/window_dedup.h) holds O(w + dedup set) memory independent of
/// stream length. take() finalises and returns segments byte-identical to
/// segment_sequence over the full sequence, including the short-stream case
/// (≤ w events form one whole-sequence segment) and first-occurrence order.
class StreamingSegmenter {
public:
  explicit StreamingSegmenter(std::size_t w);

  void push(PredId p) { dedup_.push(p); }

  /// Finalises the stream and surrenders the segment set. The segmenter is
  /// spent afterwards.
  std::vector<Segment> take();

private:
  std::size_t w_;
  StreamingWindowDedup<PredId> dedup_;
};

/// Total transition count the segments induce (sum of segment lengths).
std::size_t total_transitions(const std::vector<Segment>& segments);

}  // namespace t2m

#endif  // T2M_CORE_SEGMENTATION_H
