#ifndef T2M_CORE_SEGMENTATION_H
#define T2M_CORE_SEGMENTATION_H

#include <vector>

#include "src/automaton/nfa.h"

namespace t2m {

/// A segment: a contiguous window of the predicate sequence that the learned
/// automaton must realise as a transition path (Algorithm 1, line 16).
using Segment = std::vector<PredId>;

/// All unique sliding windows of `seq` of length `w` in first-occurrence
/// order. When seq is shorter than w the whole sequence forms one segment.
/// Uniqueness is the scalability lever evaluated in Table I / Fig. 7:
/// repeating trace patterns are processed once.
std::vector<Segment> segment_sequence(const std::vector<PredId>& seq, std::size_t w);

/// The non-segmented encoding: one segment spanning the entire sequence.
std::vector<Segment> whole_sequence(const std::vector<PredId>& seq);

/// Total transition count the segments induce (sum of segment lengths).
std::size_t total_transitions(const std::vector<Segment>& segments);

}  // namespace t2m

#endif  // T2M_CORE_SEGMENTATION_H
