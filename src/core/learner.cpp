#include "src/core/learner.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include "src/abstraction/event_stream.h"
#include "src/base/memory_accountant.h"
#include "src/core/portfolio.h"
#include "src/core/report.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/parallel/sharded_ingest.h"
#include "src/parallel/thread_pool.h"
#include "src/trace/mmap_io.h"
#include "src/util/failpoint.h"
#include "src/util/log.h"

namespace t2m {

namespace {

/// Applies LearnerConfig::max_memory_bytes to the global accountant for the
/// duration of one public learn call, restoring the previous cap on exit
/// (nesting-safe: learn() delegating to learn_from_sequence() re-applies the
/// same cap and restores it in LIFO order).
class ScopedMemoryLimit {
public:
  explicit ScopedMemoryLimit(std::size_t limit)
      : prev_(MemoryAccountant::global().limit()) {
    if (limit > 0) MemoryAccountant::global().set_limit(limit);
  }
  ~ScopedMemoryLimit() { MemoryAccountant::global().set_limit(prev_); }
  ScopedMemoryLimit(const ScopedMemoryLimit&) = delete;
  ScopedMemoryLimit& operator=(const ScopedMemoryLimit&) = delete;

private:
  std::size_t prev_;
};

/// Folds a structured failure into the verdict the public entry points
/// return instead of unwinding: deadline expiry reports as a timeout,
/// allocation pressure as resource exhaustion; every other code keeps its
/// taxonomy in `status` with no verdict flag beyond !success.
LearnResult failure_result(Status status) {
  LearnResult result;
  switch (status.code()) {
    case ErrorCode::deadline_exceeded:
      result.timed_out = true;
      break;
    case ErrorCode::resource_exhausted:
      result.resource_exhausted = true;
      break;
    default:
      break;
  }
  log_warn() << "learner: run failed: " << status.to_string();
  result.status = std::move(status);
  return result;
}

}  // namespace

LearnStats& LearnStats::operator+=(const LearnStats& other) {
  // Input-shape fields describe the shared artefacts — identical across
  // workers of one run, so max is the faithful merge (and still sensible
  // for heterogeneous merges).
  sequence_length = std::max(sequence_length, other.sequence_length);
  vocabulary_size = std::max(vocabulary_size, other.vocabulary_size);
  segments = std::max(segments, other.segments);
  encoded_transitions = std::max(encoded_transitions, other.encoded_transitions);
  forbidden_words = std::max(forbidden_words, other.forbidden_words);
  // Work counters add up: the aggregate is the total work the run paid for.
  sat_calls += other.sat_calls;
  refinements += other.refinements;
  state_increments += other.state_increments;
  csp_builds += other.csp_builds;
  csp_grows += other.csp_grows;
  reseeded_clauses += other.reseeded_clauses;
  core_stops += other.core_stops;
  sat_conflicts += other.sat_conflicts;
  sat_propagations += other.sat_propagations;
  sat_learned_clauses += other.sat_learned_clauses;
  sat_peak_arena_bytes = std::max(sat_peak_arena_bytes, other.sat_peak_arena_bytes);
  acceptance_relaxed = acceptance_relaxed || other.acceptance_relaxed;
  // Parallel workers overlap in time; their wall clocks don't add.
  abstraction_seconds = std::max(abstraction_seconds, other.abstraction_seconds);
  construction_seconds = std::max(construction_seconds, other.construction_seconds);
  total_seconds = std::max(total_seconds, other.total_seconds);
  return *this;
}

ModelLearner::ModelLearner(LearnerConfig config) : config_(std::move(config)) {}

LearnResult ModelLearner::learn(const Trace& trace, AbstractionMode mode) const {
  const ScopedMemoryLimit mem_limit(config_.max_memory_bytes);
  const Stopwatch total;
  try {
    AbstractionConfig abs_config = config_.abstraction;
    abs_config.window = config_.window;

    const Stopwatch abstraction_watch;
    PredicateSequence preds = abstract_trace(trace, abs_config, mode);
    const double abstraction_seconds = abstraction_watch.elapsed_seconds();

    LearnResult result = learn_from_sequence(std::move(preds), trace.schema());
    result.stats.abstraction_seconds = abstraction_seconds;
    result.stats.total_seconds = total.elapsed_seconds();
    return result;
  } catch (const StatusError& e) {
    return failure_result(e.status());
  } catch (const std::bad_alloc&) {
    return failure_result(Status::ResourceExhausted("allocation failed during learn"));
  }
}

LearnResult ModelLearner::learn_from_sequence(PredicateSequence preds,
                                              const Schema& schema) const {
  const ScopedMemoryLimit mem_limit(config_.max_memory_bytes);
  const Stopwatch total;
  try {
    const std::size_t sequence_length = preds.length();
    std::vector<Segment> segments = config_.segmented
                                        ? segment_sequence(preds.seq, config_.window)
                                        : whole_sequence(preds.seq);

    // The trace window set is invariant across all refinement iterations:
    // compute it once and let every compliance check stream against it.
    ComplianceChecker compliance_checker(preds.seq, config_.compliance_length);
    compliance_checker.set_threads(config_.threads);

    // The timeout budgets the CEGIS search: the deadline starts after
    // segmentation and P_l construction, exactly as the streaming path starts
    // it after its ingest pass, so both paths give the search the same budget
    // on the same trace.
    const Deadline deadline = config_.timeout_seconds > 0
                                  ? Deadline::after_seconds(config_.timeout_seconds)
                                  : Deadline::never();
    return run_search(std::move(preds), sequence_length, std::move(segments),
                      compliance_checker, schema, deadline, total);
  } catch (const StatusError& e) {
    return failure_result(e.status());
  } catch (const std::bad_alloc&) {
    return failure_result(Status::ResourceExhausted("allocation failed during learn"));
  }
}

LearnResult ModelLearner::learn_from_stream(PredStream& stream) const {
  const ScopedMemoryLimit mem_limit(config_.max_memory_bytes);
  const Stopwatch total;
  try {
    // One pass: every pulled id goes simultaneously into the window segmenter
    // and the compliance window builder, so P_l and the segment set come from
    // the same stream the abstraction interns its predicates on. The full id
    // sequence is retained only when a downstream consumer needs it.
    const bool keep_sequence = config_.require_trace_acceptance || !config_.segmented;
    const Stopwatch pass_watch;
    // Non-segmented runs take their single segment from the retained sequence;
    // feeding the segmenter would only burn CPU and memory on a discarded set.
    std::optional<StreamingSegmenter> segmenter;
    if (config_.segmented) segmenter.emplace(config_.window);
    ComplianceWindowBuilder window_builder(config_.compliance_length);
    std::vector<PredId> seq;
    std::size_t sequence_length = 0;
    {
      T2M_SPAN_SCOPE(pass_span, "ingest.stream_pass");
      while (const auto id = stream.next()) {
        if (segmenter) segmenter->push(*id);
        window_builder.push(*id);
        if (keep_sequence) seq.push_back(*id);
        ++sequence_length;
      }
      pass_span.arg("steps", sequence_length);
    }
    PredicateSequence preds = stream.take_preds();
    preds.seq = std::move(seq);
    std::vector<Segment> segments =
        segmenter ? segmenter->take() : whole_sequence(preds.seq);
    ComplianceChecker compliance_checker = window_builder.finish();
    compliance_checker.set_threads(config_.threads);
    const double pass_seconds = pass_watch.elapsed_seconds();

    // The timeout budgets the CEGIS search, starting after ingest — matching
    // learn_from_sequence, whose deadline starts after segmentation and P_l
    // construction — so both paths give the search the same budget.
    const Deadline deadline = config_.timeout_seconds > 0
                                  ? Deadline::after_seconds(config_.timeout_seconds)
                                  : Deadline::never();

    LearnResult result = run_search(std::move(preds), sequence_length, std::move(segments),
                                    compliance_checker, stream.schema(), deadline, total);
    result.stats.abstraction_seconds = pass_seconds;
    result.stats.total_seconds = total.elapsed_seconds();
    return result;
  } catch (const StatusError& e) {
    return failure_result(e.status());
  } catch (const std::bad_alloc&) {
    return failure_result(Status::ResourceExhausted("allocation failed during learn"));
  }
}

LearnResult ModelLearner::learn_from_ftrace(const std::string& path,
                                            const std::string& task_filter) const {
  if (config_.threads <= 1) {
    const ScopedMemoryLimit mem_limit(config_.max_memory_bytes);
    try {
      LineReader lines(path);
      FtracePredStream stream(lines, task_filter);
      return learn_from_stream(stream);
    } catch (const StatusError& e) {
      return failure_result(e.status());
    } catch (const std::bad_alloc&) {
      return failure_result(Status::ResourceExhausted("allocation failed during learn"));
    }
  }

  const ScopedMemoryLimit mem_limit(config_.max_memory_bytes);
  const Stopwatch total;
  try {
    const Stopwatch pass_watch;
    par::ShardedIngestOptions options;
    options.window = config_.window;
    options.compliance_length = config_.compliance_length;
    options.threads = config_.threads;
    options.segmented = config_.segmented;
    options.keep_sequence = config_.require_trace_acceptance || !config_.segmented;
    options.task_filter = task_filter;
    // The ingest gets its own full-timeout deadline so a pathological scan
    // or merge cannot hang past the configured budget; the search deadline
    // below still starts after ingest, matching the other entry points.
    options.deadline = config_.timeout_seconds > 0
                           ? Deadline::after_seconds(config_.timeout_seconds)
                           : Deadline::never();
    par::ShardedIngestResult ingest = par::sharded_ftrace_ingest_file(path, options);
    log_debug() << "learner: sharded ingest over " << ingest.shards_used << " shard(s), "
                << ingest.sequence_length << " steps";

    std::vector<Segment> segments = config_.segmented
                                        ? std::move(ingest.segments)
                                        : whole_sequence(ingest.preds.seq);
    ComplianceChecker compliance_checker = std::move(ingest.compliance);
    compliance_checker.set_threads(config_.threads);
    const double pass_seconds = pass_watch.elapsed_seconds();

    const Deadline deadline = config_.timeout_seconds > 0
                                  ? Deadline::after_seconds(config_.timeout_seconds)
                                  : Deadline::never();
    LearnResult result =
        run_search(std::move(ingest.preds), ingest.sequence_length, std::move(segments),
                   compliance_checker, ingest.schema, deadline, total);
    result.stats.abstraction_seconds = pass_seconds;
    result.stats.total_seconds = total.elapsed_seconds();
    return result;
  } catch (const StatusError& e) {
    return failure_result(e.status());
  } catch (const std::bad_alloc&) {
    return failure_result(Status::ResourceExhausted("allocation failed during learn"));
  }
}

LearnResult ModelLearner::run_search(PredicateSequence preds, std::size_t sequence_length,
                                     std::vector<Segment> segments,
                                     const ComplianceChecker& compliance_checker,
                                     const Schema& schema, const Deadline& deadline,
                                     const Stopwatch& total) const {
  // The search is the phase worth watching: arm the progress counters (when
  // enabled) against this run's deadline and publish the final counters into
  // the metrics registry on every exit path.
  if (obs::Progress::global().enabled()) obs::Progress::global().begin_run(deadline);
  T2M_SPAN_SCOPE(run_span, "learn.run", "segments", segments.size(), "portfolio",
                 config_.portfolio);
  LearnResult result =
      config_.portfolio > 1
          ? run_portfolio(preds, sequence_length, segments, compliance_checker, schema,
                          deadline, total)
          : run_search_single(std::move(preds), sequence_length, segments,
                              compliance_checker, schema, deadline, total);
  run_span.arg("success", result.success);
  run_span.arg("states", result.states);
  publish_learn_metrics(result);
  return result;
}

LearnResult ModelLearner::run_portfolio(const PredicateSequence& preds,
                                        std::size_t sequence_length,
                                        const std::vector<Segment>& segments,
                                        const ComplianceChecker& compliance_checker,
                                        const Schema& schema, const Deadline& deadline,
                                        const Stopwatch& total) const {
  const std::vector<PortfolioVariant> variants =
      portfolio_configs(config_, config_.portfolio);
  const std::size_t k = variants.size();

  // The race: every worker runs the full CEGIS loop over the shared
  // read-only artefacts with its own solver configuration. (Each lane still
  // copies `preds` — run_search_single materialises its own result from it
  // — a bounded K * O(|P|) cost only paid when the sequence is retained.)
  // The first genuine verdict wins and raises the stop flag; Solver::solve
  // polls it at every conflict, so the losers unwind quickly.
  std::atomic<bool> race_stop{false};
  std::atomic<int> winner{-1};
  std::vector<LearnResult> results(k);
  std::vector<double> walls(k, 0.0);

  par::ThreadPool& pool = par::ThreadPool::global();
  pool.ensure_size(std::min(k, par::ThreadPool::kMaxWorkers));
  // The caller's cancellation flag is relayed into the race at three
  // points: before the lanes launch, at each lane's start, and from the
  // wait loop below — so cancellation works even when the relaying thread
  // is starved on a loaded machine.
  const std::atomic<bool>* outer_stop = config_.stop;
  const auto relay_outer_stop = [outer_stop, &race_stop] {
    // order: relaxed load / release store — both flags are pure signals; the
    // lanes' results reach this thread through the TaskGroup join, and the
    // release store mirrors the winner path so the two raise sites match.
    if (outer_stop != nullptr && outer_stop->load(std::memory_order_relaxed)) {
      race_stop.store(true, std::memory_order_release);
    }
  };
  relay_outer_stop();
  std::vector<Status> lane_errors(k);  // non-ok when the lane body threw
  par::TaskGroup group(pool);
  for (std::size_t i = 0; i < k; ++i) {
    group.run([&, i] {
      relay_outer_stop();
      const Stopwatch wall;
      // Lane fault isolation: an error unwinding one lane (including an
      // injected one) records a per-lane Status and leaves the race — it
      // must not take down the siblings or the process. A failed lane is
      // never crowned; the winner CAS below stays single-shot.
      try {
        T2M_INJECT_STATUS("portfolio.lane", ErrorCode::internal,
                          "injected portfolio lane failure");
        // Every span this lane emits (solver epochs, compliance, encoding)
        // lands on its own named track, so the Perfetto view shows one
        // contiguous timeline per configuration even though lanes share
        // pool workers.
        const obs::TrackScope lane_track("lane " + variants[i].name);
        T2M_SPAN_SCOPE(lane_span, "portfolio.lane", "lane", variants[i].name);
        LearnerConfig config = variants[i].config;
        config.stop = &race_stop;
        const ModelLearner worker(config);
        LearnResult r = worker.run_search_single(preds, sequence_length, segments,
                                                 compliance_checker, schema, deadline,
                                                 total);
        // A verdict was reached only if neither the race's stop flag nor
        // the deadline cut the lane short; a timed-out, budget-overflowed
        // or memory-starved lane must not be crowned (another configuration
        // may still fit).
        if (!r.cancelled && !r.timed_out && !r.budget_exceeded &&
            !r.resource_exhausted) {
          int expected = -1;
          // order: seq_cst (default) — a cold, single-shot crowning; the
          // strongest order keeps the winner index and the stop raise below
          // trivially ordered for every observer, and costs nothing here.
          if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
            // order: release — signal only; results[i] is published to the
            // coordinator by the TaskGroup join, not by this flag.
            race_stop.store(true, std::memory_order_release);
            T2M_INSTANT("portfolio.winner");
          }
        }
        lane_span.arg("cancelled", r.cancelled);
        lane_span.arg("success", r.success);
        if (r.cancelled) T2M_INSTANT("portfolio.cancelled");
        results[i] = std::move(r);
      } catch (const StatusError& e) {
        lane_errors[i] = e.status();
      } catch (const std::exception& e) {
        lane_errors[i] = Status::Internal(std::string("portfolio lane failed: ") + e.what());
      } catch (...) {
        lane_errors[i] = Status::Internal("portfolio lane failed with an unknown exception");
      }
      if (!lane_errors[i].ok()) {
        log_warn() << "learner: portfolio lane '" << variants[i].name
                   << "' failed: " << lane_errors[i].to_string();
      }
      walls[i] = wall.elapsed_seconds();
    });
  }
  // Wait while relaying the caller's cancellation into the race: the lanes
  // poll race_stop (through their solvers), so raising it here preserves
  // the LearnerConfig::stop contract for portfolio runs too.
  //
  // Deliberately no pool.help_one() here (the thread-safety audit flagged
  // it): stealing a lane would capture this coordinator for the lane's whole
  // CEGIS run, during which relay_outer_stop() never fires and the caller's
  // cancellation latency becomes unbounded. The pool was grown to min(k,
  // kMaxWorkers) workers above, so queued lanes drain without our help; a
  // 1 ms poll keeps the relay responsive at negligible cost.
  while (!group.done()) {
    relay_outer_stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group.wait();  // synchronise and surface any lane exception

  // No genuine verdict (outer stop or deadline cancelled every lane):
  // report the first healthy lane that at least ran to its own cutoff
  // uncancelled — a salvaged partial model beats an empty result.
  std::size_t won = 0;
  bool found_fallback = false;
  if (winner.load() >= 0) {
    won = static_cast<std::size_t>(winner.load());
    found_fallback = true;
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      if (!results[i].cancelled && lane_errors[i].ok()) {
        won = i;
        found_fallback = true;
        break;
      }
    }
    // Every lane was cancelled or died: fall back to any healthy lane, then
    // to lane 0 (whose error is surfaced in the result's status below).
    if (!found_fallback) {
      for (std::size_t i = 0; i < k; ++i) {
        if (lane_errors[i].ok()) {
          won = i;
          found_fallback = true;
          break;
        }
      }
    }
  }
  const bool have_verdict = winner.load() >= 0;

  // Per-configuration breakdown from each worker's own numbers, snapshotted
  // before any aggregation.
  std::vector<PortfolioConfigStats> entries(k);
  for (std::size_t i = 0; i < k; ++i) {
    PortfolioConfigStats& e = entries[i];
    e.name = variants[i].name;
    e.winner = have_verdict && i == won;
    e.cancelled = results[i].cancelled;
    e.failed = !lane_errors[i].ok();
    if (e.failed) e.error = lane_errors[i].to_string();
    e.finished = !e.failed && !results[i].cancelled && !results[i].timed_out &&
                 !results[i].budget_exceeded && !results[i].resource_exhausted;
    e.states = results[i].states;
    e.sat_calls = results[i].stats.sat_calls;
    e.sat_conflicts = results[i].stats.sat_conflicts;
    e.sat_propagations = results[i].stats.sat_propagations;
    e.wall_seconds = walls[i];
  }

  LearnResult result = std::move(results[won]);
  if (!found_fallback) {
    // Every lane died: the race as a whole failed. Surface the first lane's
    // error as the run's status — still a returned verdict, not a throw.
    result.status = lane_errors[won];
  }
  // Aggregate the losers' counters into the headline stats — the honest
  // total-work number for the race.
  for (std::size_t i = 0; i < k; ++i) {
    if (i != won) result.stats += results[i].stats;
  }
  result.stats.portfolio = std::move(entries);
  result.stats.total_seconds = total.elapsed_seconds();
  if (have_verdict) {
    log_info() << "learner: portfolio winner '" << variants[won].name << "' of " << k
               << " configurations";
  } else {
    log_info() << "learner: portfolio race ended with no verdict ("
               << (result.cancelled ? "cancelled" : "timed out") << ")";
  }
  return result;
}

LearnResult ModelLearner::run_search_single(PredicateSequence preds,
                                            std::size_t sequence_length,
                                            const std::vector<Segment>& segments,
                                            const ComplianceChecker& compliance_checker,
                                            const Schema& schema, const Deadline& deadline,
                                            const Stopwatch& total) const {
  LearnResult result;
  result.schema = schema;
  result.stats.sequence_length = sequence_length;
  result.stats.vocabulary_size = preds.vocab.size();
  result.stats.segments = segments.size();
  result.stats.encoded_transitions = total_transitions(segments);

  // Trace acceptance needs the materialised sequence; the streaming path
  // omits it exactly when the configuration never consults it.
  const bool check_acceptance = config_.require_trace_acceptance && !preds.seq.empty();

  const auto stopped = [this] {
    // order: relaxed — pure cancellation signal (see docs/concurrency.md).
    return config_.stop != nullptr && config_.stop->load(std::memory_order_relaxed);
  };

  // Forbidden sequences accumulate across N: they are facts about P. Their
  // chain enumeration is N-independent, so one cache serves every CSP this
  // run constructs (see ForbiddenChainCache).
  std::set<std::vector<PredId>> forbidden;
  ForbiddenChainCache chain_cache;

  // Fold a finished CSP's solver counters into the run totals. In the
  // persistent path one CSP spans many state counts, so this runs only when
  // a CSP is retired (capacity rebuild) or the run returns — never twice for
  // the same instance.
  const auto absorb_solver_stats = [&result, &forbidden](const AutomatonCsp& csp) {
    const sat::SolverStats& s = csp.solver_stats();
    result.stats.sat_conflicts += s.conflicts;
    result.stats.sat_propagations += s.propagations;
    result.stats.sat_learned_clauses += s.learned_clauses;
    if (s.peak_arena_bytes > result.stats.sat_peak_arena_bytes) {
      result.stats.sat_peak_arena_bytes = s.peak_arena_bytes;
    }
    result.stats.forbidden_words = forbidden.size();
  };

  // Best-so-far salvage: the last candidate that passed compliance but was
  // blocked by the trace-acceptance strengthening. A run cut short by the
  // deadline, the clause budget, or the memory cap hands this model back
  // tagged `salvaged` instead of returning nothing — it is compliant for
  // the window length it was checked at, just not a full verdict.
  std::optional<Nfa> best_model;
  std::size_t best_states = 0;
  const auto salvage = [&] {
    if (!best_model) return;
    best_model->set_pred_names(preds.names_for(schema));
    result.model = std::move(*best_model);
    result.states = best_states;
    result.salvaged = true;
    best_model.reset();
    log_info() << "learner: salvaged the best " << result.states
               << "-state model from the aborted run";
  };

  const Stopwatch construction_watch;
  std::unique_ptr<AutomatonCsp> csp;
  // (Re)builds the CSP at state count n. Persistent mode allocates headroom
  // columns beyond n so subsequent increments are in-place grows; the shared
  // chain cache keeps re-adding the accumulated forbidden words cheap, and
  // the retired CSP's width-independent learned clauses are carried over
  // (reseed_from) before it is dropped.
  const auto build_csp = [&](std::size_t n) {
    std::unique_ptr<AutomatonCsp> old = std::move(csp);
    if (old) absorb_solver_stats(*old);
    CspOptions options;
    options.encoding = config_.encoding;
    options.solver = config_.solver;
    options.threads = config_.threads;
    options.compress_forbidden = config_.compress_forbidden;
    options.preprocess = config_.preprocess;
    if (config_.max_clauses > 0) options.max_clauses = config_.max_clauses;
    options.state_capacity =
        config_.persistent_solver
            ? std::min(config_.max_states, n + config_.state_headroom)
            : 0;
    {
      T2M_SPAN("learn.build_csp", "n", n);
      csp = std::make_unique<AutomatonCsp>(segments, preds.vocab.size(), n, options);
    }
    csp->set_chain_cache(&chain_cache);
    csp->set_stop_flag(config_.stop);
    // Forbidden words before reseeding: the import needs the new CSP's
    // equality/star variable layout in place to rename against.
    for (const auto& word : forbidden) csp->add_forbidden_sequence(word);
    if (old && config_.persistent_solver && !csp->overflowed()) {
      result.stats.reseeded_clauses += csp->reseed_from(*old);
    }
    ++result.stats.csp_builds;
  };

  // Abandons the run at the current point (deadline expiry or cooperative
  // cancellation), reporting which of the two it was. Uncancelled aborts
  // salvage the best model so far; a cancelled lane lost a portfolio race
  // where another lane owns the verdict, so it hands back nothing.
  const auto abort_run = [&](bool was_stopped) {
    if (csp) absorb_solver_stats(*csp);
    result.timed_out = true;
    result.cancelled = was_stopped;
    if (!was_stopped) salvage();
    result.preds = std::move(preds);
    result.stats.construction_seconds = construction_watch.elapsed_seconds();
    result.stats.total_seconds = total.elapsed_seconds();
    return std::move(result);
  };

  // Deadline expiry and allocation pressure anywhere inside the loop —
  // clause emission, preprocessing, the compliance DFS, an arena grow —
  // surface as structured errors; both become verdicts (with salvage)
  // rather than unwinding out of the learn. Other taxonomies (io, parse,
  // internal) are not this loop's to own and propagate to the entry points.
  try {
  for (std::size_t n = config_.initial_states; n <= config_.max_states; ++n) {
    obs::Progress::global().set_states(n);
    bool grown = false;
    if (csp && config_.persistent_solver) {
      T2M_SPAN("learn.grow", "n", n);
      grown = csp->grow_to(n);
    }
    if (grown) {
      ++result.stats.csp_grows;
    } else {
      build_csp(n);
    }

    bool next_n = false;
    std::size_t acceptance_blocks = 0;
    while (!next_n) {
      if (deadline.expired() || stopped()) return abort_run(stopped());
      ++result.stats.sat_calls;
      obs::Progress::global().add_sat_calls(1);
      sat::SolveResult sat_result;
      {
        T2M_SPAN_SCOPE(solve_span, "learn.solve", "n", n, "call",
                       result.stats.sat_calls);
        sat_result = csp->solve(deadline);
        solve_span.arg("result", sat_result == sat::SolveResult::Sat     ? "sat"
                                 : sat_result == sat::SolveResult::Unsat ? "unsat"
                                                                         : "unknown");
      }
      if (sat_result == sat::SolveResult::Unknown) {
        if (csp->overflowed()) {
          // The encoding itself overran the clause budget: a verdict about
          // the instance's size at this configuration, not a timeout.
          absorb_solver_stats(*csp);
          result.budget_exceeded = true;
          salvage();
          result.preds = std::move(preds);
          result.stats.construction_seconds = construction_watch.elapsed_seconds();
          result.stats.total_seconds = total.elapsed_seconds();
          return result;
        }
        return abort_run(stopped());
      }
      if (sat_result == sat::SolveResult::Unsat) {
        if (config_.core_driven_stop && csp->unsat_for_all_states()) {
          // The assumption core names no inactive-column guard: no state
          // count can satisfy this instance; growing N is provably futile.
          ++result.stats.core_stops;
          log_info() << "learner: Unsat core independent of the state count at N = "
                     << n << "; stopping the search";
          absorb_solver_stats(*csp);
          result.preds = std::move(preds);
          result.stats.construction_seconds = construction_watch.elapsed_seconds();
          result.stats.total_seconds = total.elapsed_seconds();
          return result;
        }
        // No N-state automaton: grow N (Algorithm 1, lines 34-36).
        ++result.stats.state_increments;
        log_debug() << "learner: no " << n << "-state automaton, growing N";
        next_n = true;
        continue;
      }
      // Candidate model: compliance check (lines 38-48).
      Nfa candidate = csp->extract_model();
      const ComplianceResult compliance = compliance_checker.check(candidate);
      bool acceptance_blocked = false;
      if (compliance.compliant && check_acceptance &&
          acceptance_blocks < config_.max_acceptance_blocks) {
        T2M_SPAN("learn.acceptance", "n", n);
        acceptance_blocked = !candidate.accepts(preds.seq);
      }
      if (acceptance_blocked) {
        // Valid per segments and compliance, but this wiring cannot replay
        // the trace; exclude it and look for a sibling model. It is the
        // best model seen so far — keep it for salvage if the run is cut
        // short before a full verdict.
        best_model = std::move(candidate);
        best_states = n;
        ++result.stats.refinements;
        obs::Progress::global().add_refinements(1);
        ++acceptance_blocks;
        if (acceptance_blocks == config_.max_acceptance_blocks) {
          result.stats.acceptance_relaxed = true;
          log_warn() << "learner: acceptance strengthening abandoned after "
                     << acceptance_blocks << " sibling models at N = " << n;
        }
        csp->block_current_model();
        continue;
      }
      if (compliance.compliant) {
        absorb_solver_stats(*csp);
        candidate.set_pred_names(preds.names_for(schema));
        result.success = true;
        result.model = std::move(candidate);
        result.states = n;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        log_info() << "learner: " << n << "-state model found after "
                   << result.stats.sat_calls << " SAT calls";
        return result;
      }
      ++result.stats.refinements;
      obs::Progress::global().add_refinements(1);
      log_debug() << "learner: compliance failed with "
                  << compliance.invalid_sequences.size() << " invalid sequences";
      for (const auto& word : compliance.invalid_sequences) {
        if (forbidden.insert(word).second) csp->add_forbidden_sequence(word);
      }
    }
  }
  } catch (const StatusError& e) {
    const ErrorCode code = e.status().code();
    if (code != ErrorCode::deadline_exceeded && code != ErrorCode::resource_exhausted) {
      throw;
    }
    if (csp) absorb_solver_stats(*csp);
    result.status = e.status();
    if (code == ErrorCode::deadline_exceeded) {
      result.timed_out = true;
    } else {
      result.resource_exhausted = true;
      log_warn() << "learner: " << e.status().to_string();
    }
    salvage();
    result.preds = std::move(preds);
    result.stats.construction_seconds = construction_watch.elapsed_seconds();
    result.stats.total_seconds = total.elapsed_seconds();
    return result;
  } catch (const std::bad_alloc&) {
    if (csp) absorb_solver_stats(*csp);
    result.status = Status::ResourceExhausted("allocation failed during the search");
    result.resource_exhausted = true;
    salvage();
    result.preds = std::move(preds);
    result.stats.construction_seconds = construction_watch.elapsed_seconds();
    result.stats.total_seconds = total.elapsed_seconds();
    return result;
  }

  // Exhausted the state budget.
  if (csp) absorb_solver_stats(*csp);
  result.preds = std::move(preds);
  result.stats.construction_seconds = construction_watch.elapsed_seconds();
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

}  // namespace t2m
