#include "src/core/learner.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/core/compliance.h"
#include "src/core/segmentation.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace t2m {

ModelLearner::ModelLearner(LearnerConfig config) : config_(std::move(config)) {}

LearnResult ModelLearner::learn(const Trace& trace, AbstractionMode mode) const {
  const Stopwatch total;
  AbstractionConfig abs_config = config_.abstraction;
  abs_config.window = config_.window;

  const Stopwatch abstraction_watch;
  PredicateSequence preds = abstract_trace(trace, abs_config, mode);
  const double abstraction_seconds = abstraction_watch.elapsed_seconds();

  LearnResult result = learn_from_sequence(std::move(preds), trace.schema());
  result.stats.abstraction_seconds = abstraction_seconds;
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

LearnResult ModelLearner::learn_from_sequence(PredicateSequence preds,
                                              const Schema& schema) const {
  const Stopwatch total;
  LearnResult result;
  result.stats.sequence_length = preds.length();
  result.stats.vocabulary_size = preds.vocab.size();

  const Deadline deadline = config_.timeout_seconds > 0
                                ? Deadline::after_seconds(config_.timeout_seconds)
                                : Deadline::never();

  const std::vector<Segment> segments = config_.segmented
                                            ? segment_sequence(preds.seq, config_.window)
                                            : whole_sequence(preds.seq);
  result.stats.segments = segments.size();
  result.stats.encoded_transitions = total_transitions(segments);

  // Forbidden sequences accumulate across N: they are facts about P. Their
  // chain enumeration is N-independent, so one cache serves every CSP this
  // run constructs (see ForbiddenChainCache).
  std::set<std::vector<PredId>> forbidden;
  ForbiddenChainCache chain_cache;

  // The trace window set is invariant across all refinement iterations:
  // compute it once and let every compliance check stream against it.
  const ComplianceChecker compliance_checker(preds.seq, config_.compliance_length);

  // Fold a finished CSP's solver counters into the run totals. In the
  // persistent path one CSP spans many state counts, so this runs only when
  // a CSP is retired (capacity rebuild) or the run returns — never twice for
  // the same instance.
  const auto absorb_solver_stats = [&result, &forbidden](const AutomatonCsp& csp) {
    const sat::SolverStats& s = csp.solver_stats();
    result.stats.sat_conflicts += s.conflicts;
    result.stats.sat_propagations += s.propagations;
    result.stats.sat_learned_clauses += s.learned_clauses;
    if (s.peak_arena_bytes > result.stats.sat_peak_arena_bytes) {
      result.stats.sat_peak_arena_bytes = s.peak_arena_bytes;
    }
    result.stats.forbidden_words = forbidden.size();
  };

  const Stopwatch construction_watch;
  std::optional<AutomatonCsp> csp;
  // (Re)builds the CSP at state count n. Persistent mode allocates headroom
  // columns beyond n so subsequent increments are in-place grows; the shared
  // chain cache keeps re-adding the accumulated forbidden words cheap.
  const auto build_csp = [&](std::size_t n) {
    if (csp) absorb_solver_stats(*csp);
    CspOptions options;
    options.encoding = config_.encoding;
    options.state_capacity =
        config_.persistent_solver
            ? std::min(config_.max_states, n + config_.state_headroom)
            : 0;
    csp.emplace(segments, preds.vocab.size(), n, options);
    csp->set_chain_cache(&chain_cache);
    for (const auto& word : forbidden) csp->add_forbidden_sequence(word);
    ++result.stats.csp_builds;
  };

  for (std::size_t n = config_.initial_states; n <= config_.max_states; ++n) {
    if (csp && config_.persistent_solver && csp->grow_to(n)) {
      ++result.stats.csp_grows;
    } else {
      build_csp(n);
    }

    bool next_n = false;
    std::size_t acceptance_blocks = 0;
    while (!next_n) {
      if (deadline.expired()) {
        absorb_solver_stats(*csp);
        result.timed_out = true;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        return result;
      }
      ++result.stats.sat_calls;
      const sat::SolveResult sat_result = csp->solve(deadline);
      if (sat_result == sat::SolveResult::Unknown) {
        absorb_solver_stats(*csp);
        result.timed_out = true;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        return result;
      }
      if (sat_result == sat::SolveResult::Unsat) {
        // No N-state automaton: grow N (Algorithm 1, lines 34-36).
        ++result.stats.state_increments;
        log_debug() << "learner: no " << n << "-state automaton, growing N";
        next_n = true;
        continue;
      }
      // Candidate model: compliance check (lines 38-48).
      Nfa candidate = csp->extract_model();
      const ComplianceResult compliance = compliance_checker.check(candidate);
      if (compliance.compliant && config_.require_trace_acceptance &&
          acceptance_blocks < config_.max_acceptance_blocks &&
          !candidate.accepts(preds.seq)) {
        // Valid per segments and compliance, but this wiring cannot replay
        // the trace; exclude it and look for a sibling model.
        ++result.stats.refinements;
        ++acceptance_blocks;
        if (acceptance_blocks == config_.max_acceptance_blocks) {
          result.stats.acceptance_relaxed = true;
          log_warn() << "learner: acceptance strengthening abandoned after "
                     << acceptance_blocks << " sibling models at N = " << n;
        }
        csp->block_current_model();
        continue;
      }
      if (compliance.compliant) {
        absorb_solver_stats(*csp);
        candidate.set_pred_names(preds.names_for(schema));
        result.success = true;
        result.model = std::move(candidate);
        result.states = n;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        log_info() << "learner: " << n << "-state model found after "
                   << result.stats.sat_calls << " SAT calls";
        return result;
      }
      ++result.stats.refinements;
      log_debug() << "learner: compliance failed with "
                  << compliance.invalid_sequences.size() << " invalid sequences";
      for (const auto& word : compliance.invalid_sequences) {
        if (forbidden.insert(word).second) csp->add_forbidden_sequence(word);
      }
    }
  }

  // Exhausted the state budget.
  if (csp) absorb_solver_stats(*csp);
  result.preds = std::move(preds);
  result.stats.construction_seconds = construction_watch.elapsed_seconds();
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

}  // namespace t2m
