#include "src/core/learner.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/util/log.h"

namespace t2m {

ModelLearner::ModelLearner(LearnerConfig config) : config_(std::move(config)) {}

LearnResult ModelLearner::learn(const Trace& trace, AbstractionMode mode) const {
  const Stopwatch total;
  AbstractionConfig abs_config = config_.abstraction;
  abs_config.window = config_.window;

  const Stopwatch abstraction_watch;
  PredicateSequence preds = abstract_trace(trace, abs_config, mode);
  const double abstraction_seconds = abstraction_watch.elapsed_seconds();

  LearnResult result = learn_from_sequence(std::move(preds), trace.schema());
  result.stats.abstraction_seconds = abstraction_seconds;
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

LearnResult ModelLearner::learn_from_sequence(PredicateSequence preds,
                                              const Schema& schema) const {
  const Stopwatch total;
  const std::size_t sequence_length = preds.length();
  std::vector<Segment> segments = config_.segmented
                                      ? segment_sequence(preds.seq, config_.window)
                                      : whole_sequence(preds.seq);

  // The trace window set is invariant across all refinement iterations:
  // compute it once and let every compliance check stream against it.
  const ComplianceChecker compliance_checker(preds.seq, config_.compliance_length);

  // The timeout budgets the CEGIS search: the deadline starts after
  // segmentation and P_l construction, exactly as the streaming path starts
  // it after its ingest pass, so both paths give the search the same budget
  // on the same trace.
  const Deadline deadline = config_.timeout_seconds > 0
                                ? Deadline::after_seconds(config_.timeout_seconds)
                                : Deadline::never();
  return run_search(std::move(preds), sequence_length, std::move(segments),
                    compliance_checker, schema, deadline, total);
}

LearnResult ModelLearner::learn_from_stream(PredStream& stream) const {
  const Stopwatch total;

  // One pass: every pulled id goes simultaneously into the window segmenter
  // and the compliance window builder, so P_l and the segment set come from
  // the same stream the abstraction interns its predicates on. The full id
  // sequence is retained only when a downstream consumer needs it.
  const bool keep_sequence = config_.require_trace_acceptance || !config_.segmented;
  const Stopwatch pass_watch;
  // Non-segmented runs take their single segment from the retained sequence;
  // feeding the segmenter would only burn CPU and memory on a discarded set.
  std::optional<StreamingSegmenter> segmenter;
  if (config_.segmented) segmenter.emplace(config_.window);
  ComplianceWindowBuilder window_builder(config_.compliance_length);
  std::vector<PredId> seq;
  std::size_t sequence_length = 0;
  while (const auto id = stream.next()) {
    if (segmenter) segmenter->push(*id);
    window_builder.push(*id);
    if (keep_sequence) seq.push_back(*id);
    ++sequence_length;
  }
  PredicateSequence preds = stream.take_preds();
  preds.seq = std::move(seq);
  std::vector<Segment> segments =
      segmenter ? segmenter->take() : whole_sequence(preds.seq);
  const ComplianceChecker compliance_checker = window_builder.finish();
  const double pass_seconds = pass_watch.elapsed_seconds();

  // The timeout budgets the CEGIS search, starting after ingest — matching
  // learn_from_sequence, whose deadline starts after segmentation and P_l
  // construction — so both paths give the search the same budget.
  const Deadline deadline = config_.timeout_seconds > 0
                                ? Deadline::after_seconds(config_.timeout_seconds)
                                : Deadline::never();

  LearnResult result = run_search(std::move(preds), sequence_length, std::move(segments),
                                  compliance_checker, stream.schema(), deadline, total);
  result.stats.abstraction_seconds = pass_seconds;
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

LearnResult ModelLearner::run_search(PredicateSequence preds, std::size_t sequence_length,
                                     std::vector<Segment> segments,
                                     const ComplianceChecker& compliance_checker,
                                     const Schema& schema, const Deadline& deadline,
                                     const Stopwatch& total) const {
  LearnResult result;
  result.stats.sequence_length = sequence_length;
  result.stats.vocabulary_size = preds.vocab.size();
  result.stats.segments = segments.size();
  result.stats.encoded_transitions = total_transitions(segments);

  // Trace acceptance needs the materialised sequence; the streaming path
  // omits it exactly when the configuration never consults it.
  const bool check_acceptance = config_.require_trace_acceptance && !preds.seq.empty();

  // Forbidden sequences accumulate across N: they are facts about P. Their
  // chain enumeration is N-independent, so one cache serves every CSP this
  // run constructs (see ForbiddenChainCache).
  std::set<std::vector<PredId>> forbidden;
  ForbiddenChainCache chain_cache;

  // Fold a finished CSP's solver counters into the run totals. In the
  // persistent path one CSP spans many state counts, so this runs only when
  // a CSP is retired (capacity rebuild) or the run returns — never twice for
  // the same instance.
  const auto absorb_solver_stats = [&result, &forbidden](const AutomatonCsp& csp) {
    const sat::SolverStats& s = csp.solver_stats();
    result.stats.sat_conflicts += s.conflicts;
    result.stats.sat_propagations += s.propagations;
    result.stats.sat_learned_clauses += s.learned_clauses;
    if (s.peak_arena_bytes > result.stats.sat_peak_arena_bytes) {
      result.stats.sat_peak_arena_bytes = s.peak_arena_bytes;
    }
    result.stats.forbidden_words = forbidden.size();
  };

  const Stopwatch construction_watch;
  std::optional<AutomatonCsp> csp;
  // (Re)builds the CSP at state count n. Persistent mode allocates headroom
  // columns beyond n so subsequent increments are in-place grows; the shared
  // chain cache keeps re-adding the accumulated forbidden words cheap.
  const auto build_csp = [&](std::size_t n) {
    if (csp) absorb_solver_stats(*csp);
    CspOptions options;
    options.encoding = config_.encoding;
    options.state_capacity =
        config_.persistent_solver
            ? std::min(config_.max_states, n + config_.state_headroom)
            : 0;
    csp.emplace(segments, preds.vocab.size(), n, options);
    csp->set_chain_cache(&chain_cache);
    for (const auto& word : forbidden) csp->add_forbidden_sequence(word);
    ++result.stats.csp_builds;
  };

  for (std::size_t n = config_.initial_states; n <= config_.max_states; ++n) {
    if (csp && config_.persistent_solver && csp->grow_to(n)) {
      ++result.stats.csp_grows;
    } else {
      build_csp(n);
    }

    bool next_n = false;
    std::size_t acceptance_blocks = 0;
    while (!next_n) {
      if (deadline.expired()) {
        absorb_solver_stats(*csp);
        result.timed_out = true;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        return result;
      }
      ++result.stats.sat_calls;
      const sat::SolveResult sat_result = csp->solve(deadline);
      if (sat_result == sat::SolveResult::Unknown) {
        absorb_solver_stats(*csp);
        result.timed_out = true;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        return result;
      }
      if (sat_result == sat::SolveResult::Unsat) {
        // No N-state automaton: grow N (Algorithm 1, lines 34-36).
        ++result.stats.state_increments;
        log_debug() << "learner: no " << n << "-state automaton, growing N";
        next_n = true;
        continue;
      }
      // Candidate model: compliance check (lines 38-48).
      Nfa candidate = csp->extract_model();
      const ComplianceResult compliance = compliance_checker.check(candidate);
      if (compliance.compliant && check_acceptance &&
          acceptance_blocks < config_.max_acceptance_blocks &&
          !candidate.accepts(preds.seq)) {
        // Valid per segments and compliance, but this wiring cannot replay
        // the trace; exclude it and look for a sibling model.
        ++result.stats.refinements;
        ++acceptance_blocks;
        if (acceptance_blocks == config_.max_acceptance_blocks) {
          result.stats.acceptance_relaxed = true;
          log_warn() << "learner: acceptance strengthening abandoned after "
                     << acceptance_blocks << " sibling models at N = " << n;
        }
        csp->block_current_model();
        continue;
      }
      if (compliance.compliant) {
        absorb_solver_stats(*csp);
        candidate.set_pred_names(preds.names_for(schema));
        result.success = true;
        result.model = std::move(candidate);
        result.states = n;
        result.preds = std::move(preds);
        result.stats.construction_seconds = construction_watch.elapsed_seconds();
        result.stats.total_seconds = total.elapsed_seconds();
        log_info() << "learner: " << n << "-state model found after "
                   << result.stats.sat_calls << " SAT calls";
        return result;
      }
      ++result.stats.refinements;
      log_debug() << "learner: compliance failed with "
                  << compliance.invalid_sequences.size() << " invalid sequences";
      for (const auto& word : compliance.invalid_sequences) {
        if (forbidden.insert(word).second) csp->add_forbidden_sequence(word);
      }
    }
  }

  // Exhausted the state budget.
  if (csp) absorb_solver_stats(*csp);
  result.preds = std::move(preds);
  result.stats.construction_seconds = construction_watch.elapsed_seconds();
  result.stats.total_seconds = total.elapsed_seconds();
  return result;
}

}  // namespace t2m
