#include "src/core/compliance.h"

#include <algorithm>

#include "src/automaton/ops.h"

namespace t2m {

ComplianceResult check_compliance(const Nfa& model, const std::vector<PredId>& seq,
                                  std::size_t l) {
  ComplianceResult result;
  const auto model_seqs = transition_sequences(model, l);
  const auto trace_seqs = subsequences(seq, l);
  result.model_sequences = model_seqs.size();
  result.trace_sequences = trace_seqs.size();
  std::set_difference(model_seqs.begin(), model_seqs.end(), trace_seqs.begin(),
                      trace_seqs.end(),
                      std::inserter(result.invalid_sequences,
                                    result.invalid_sequences.begin()));
  result.compliant = result.invalid_sequences.empty();
  return result;
}

}  // namespace t2m
