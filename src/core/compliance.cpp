#include "src/core/compliance.h"

#include <algorithm>
#include <bit>

#include "src/automaton/ops.h"
#include "src/base/status.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"

namespace t2m {

namespace {

/// Amortised deadline poll shared by both DFS paths: reads the clock every
/// 4096th leaf word and throws the structured timeout that cancels the
/// whole check (the parallel path rethrows it from TaskGroup::wait()).
struct DeadlinePoll {
  const Deadline& deadline;
  std::uint64_t ticks = 0;
  void operator()() {
    if ((ticks++ & 4095u) != 0 || !deadline.is_finite()) return;
    if (deadline.expired()) {
      throw_status(ErrorCode::deadline_exceeded,
                   "compliance check exceeded the learn deadline");
    }
  }
};

}  // namespace

void ComplianceChecker::init_packing(PredId max_pred) {
  bits_ = std::max(1u, static_cast<std::uint32_t>(std::bit_width(
                           static_cast<std::uint64_t>(max_pred))));
  packed_ = bits_ < 64 && l_ * bits_ <= 64;
  if (packed_) {
    const std::uint32_t width = static_cast<std::uint32_t>(l_) * bits_;
    mask_ = width == 64 ? ~0ULL : (1ULL << width) - 1;
  }
}

std::uint64_t ComplianceChecker::pack_word(const std::vector<PredId>& word) const {
  std::uint64_t key = 0;
  for (const PredId p : word) {
    key = ((key << bits_) | static_cast<std::uint64_t>(p)) & mask_;
  }
  return key;
}

ComplianceChecker::ComplianceChecker(const std::vector<PredId>& seq, std::size_t l)
    : l_(l) {
  // Mirror the original subsequences() edge cases: no windows for l == 0 or
  // a sequence shorter than l. The empty window set is served by the
  // generic hashed-vector path; every model word is missing.
  if (l_ == 0 || seq.size() < l_) return;

  PredId max_pred = 0;
  for (const PredId p : seq) max_pred = std::max(max_pred, p);
  init_packing(max_pred);

  if (packed_) {
    packed_windows_.reserve(seq.size());
    // Rolling pack: shift each predicate in and mask to the window width;
    // one pass, no per-window allocation.
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      key = ((key << bits_) | static_cast<std::uint64_t>(seq[i])) & mask_;
      if (i + 1 >= l_) packed_windows_.insert(key);
    }
    trace_windows_ = packed_windows_.size();
  } else {
    vec_windows_.reserve(seq.size());
    for (std::size_t i = 0; i + l_ <= seq.size(); ++i) {
      vec_windows_.insert(std::vector<PredId>(
          seq.begin() + static_cast<std::ptrdiff_t>(i),
          seq.begin() + static_cast<std::ptrdiff_t>(i + l_)));
    }
    trace_windows_ = vec_windows_.size();
  }
}

bool ComplianceChecker::packed_usable(const Nfa& model) const {
  if (!packed_) return false;
  // Every model predicate must fit the per-id bit budget, or packed keys
  // would alias distinct words.
  const std::uint64_t limit = bits_ >= 64 ? ~0ULL : (1ULL << bits_);
  for (const Transition& t : model.transitions()) {
    if (static_cast<std::uint64_t>(t.pred) >= limit) return false;
  }
  return true;
}

void ComplianceChecker::check_packed_range(
    const std::vector<std::vector<std::pair<PredId, StateId>>>& adj, StateId lo,
    StateId hi, std::unordered_set<std::uint64_t>& seen,
    std::set<std::vector<PredId>>& invalid) const {
  // Streaming DFS over packed keys: dedup and membership are both O(1)
  // integer hashing; only missing words are materialised.
  std::vector<PredId> prefix;
  prefix.reserve(l_);
  DeadlinePoll poll{deadline_};
  const auto dfs = [&](auto&& self, StateId state, std::uint64_t key) -> void {
    if (prefix.size() == l_) {
      poll();
      if (seen.insert(key).second && packed_windows_.count(key) == 0) {
        invalid.insert(prefix);
      }
      return;
    }
    for (const auto& [pred, dst] : adj[state]) {
      prefix.push_back(pred);
      self(self, dst, ((key << bits_) | static_cast<std::uint64_t>(pred)) & mask_);
      prefix.pop_back();
    }
  };
  for (StateId s = lo; s < hi; ++s) dfs(dfs, s, 0);
}

void ComplianceChecker::check_vec_range(
    const std::vector<std::vector<std::pair<PredId, StateId>>>& adj, StateId lo,
    StateId hi, std::unordered_set<std::vector<PredId>, VectorHash>& seen,
    std::set<std::vector<PredId>>& invalid) const {
  // Generic path: hashed vector keys. Taken when windows exceed 64 bits
  // or a model predicate is outside the trace's id range.
  std::vector<PredId> prefix;
  prefix.reserve(l_);
  const auto in_trace = [this](const std::vector<PredId>& word) {
    if (!packed_) return vec_windows_.count(word) != 0;
    std::uint64_t key = 0;
    const std::uint64_t limit = bits_ >= 64 ? ~0ULL : (1ULL << bits_);
    for (const PredId p : word) {
      if (static_cast<std::uint64_t>(p) >= limit) return false;  // never seen in trace
      key = ((key << bits_) | static_cast<std::uint64_t>(p)) & mask_;
    }
    return packed_windows_.count(key) != 0;
  };
  DeadlinePoll poll{deadline_};
  const auto dfs = [&](auto&& self, StateId state) -> void {
    if (prefix.size() == l_) {
      poll();
      if (seen.insert(prefix).second && !in_trace(prefix)) {
        invalid.insert(prefix);
      }
      return;
    }
    for (const auto& [pred, dst] : adj[state]) {
      prefix.push_back(pred);
      self(self, dst);
      prefix.pop_back();
    }
  };
  for (StateId s = lo; s < hi; ++s) dfs(dfs, s);
}

namespace {

/// Folds per-chunk accumulators into the result in chunk (= state) order:
/// distinct-word count is the union of the seen sets, missing words the
/// union of the (ordered) invalid sets. One definition for both window
/// representations, so the two DFS paths cannot drift apart.
template <typename SeenSet>
void merge_chunk_results(std::vector<SeenSet>& seen,
                         std::vector<std::set<std::vector<PredId>>>& invalid,
                         ComplianceResult& result) {
  for (std::size_t c = 1; c < seen.size(); ++c) {
    seen[0].insert(seen[c].begin(), seen[c].end());
  }
  result.model_sequences = seen[0].size();
  result.invalid_sequences = std::move(invalid[0]);
  for (std::size_t c = 1; c < invalid.size(); ++c) {
    result.invalid_sequences.merge(invalid[c]);
  }
}

}  // namespace

ComplianceResult ComplianceChecker::check(const Nfa& model) const {
  T2M_SPAN_SCOPE(check_span, "compliance.check", "states", model.num_states());
  ComplianceResult result;
  result.trace_sequences = trace_windows_;

  const auto adj = out_edges(model);
  const std::size_t n_states = model.num_states();
  const std::size_t chunks =
      threads_ <= 1 ? 1 : std::min(threads_, std::max<std::size_t>(n_states, 1));

  // Each chunk DFSes its start-state range into private accumulators; the
  // merge is a set union in chunk (= state) order, which by set semantics
  // yields exactly the sequential single-range result: a word reached from
  // start states in two chunks is classified identically by both, and
  // invalid_sequences is an ordered set either way.
  std::vector<std::set<std::vector<PredId>>> invalid(chunks);
  if (packed_usable(model)) {
    std::vector<std::unordered_set<std::uint64_t>> seen(chunks);
    par::for_chunks(threads_, n_states, chunks,
                    [&](std::size_t c, std::size_t lo, std::size_t hi) {
                      T2M_SPAN("compliance.chunk", "chunk", c, "states", hi - lo);
                      check_packed_range(adj, lo, hi, seen[c], invalid[c]);
                    });
    merge_chunk_results(seen, invalid, result);
  } else {
    std::vector<std::unordered_set<std::vector<PredId>, VectorHash>> seen(chunks);
    par::for_chunks(threads_, n_states, chunks,
                    [&](std::size_t c, std::size_t lo, std::size_t hi) {
                      T2M_SPAN("compliance.chunk", "chunk", c, "states", hi - lo);
                      check_vec_range(adj, lo, hi, seen[c], invalid[c]);
                    });
    merge_chunk_results(seen, invalid, result);
  }

  result.compliant = result.invalid_sequences.empty();
  check_span.arg("compliant", result.compliant);
  check_span.arg("invalid_sequences", result.invalid_sequences.size());
  return result;
}

ComplianceWindowBuilder::ComplianceWindowBuilder(std::size_t l)
    : l_(l), dedup_(std::max<std::size_t>(l, 1)) {}

void ComplianceWindowBuilder::push(PredId p) {
  max_pred_ = std::max(max_pred_, p);
  if (l_ == 0) return;  // no windows, matching the batch constructor
  dedup_.push(p);
}

ComplianceChecker ComplianceChecker::from_windows(std::size_t l, std::size_t pushed,
                                                  std::vector<std::vector<PredId>> windows,
                                                  PredId max_pred) {
  ComplianceChecker checker(l);
  // Mirror the batch constructor's edge cases: l == 0 or a stream shorter
  // than l leaves an empty window set served by the generic path.
  if (l == 0 || pushed < l) return checker;
  checker.init_packing(max_pred);
  if (checker.packed_) {
    checker.packed_windows_.reserve(windows.size());
    for (const auto& window : windows) {
      checker.packed_windows_.insert(checker.pack_word(window));
    }
  } else {
    checker.vec_windows_.reserve(windows.size());
    for (auto& window : windows) checker.vec_windows_.insert(std::move(window));
  }
  checker.trace_windows_ =
      checker.packed_ ? checker.packed_windows_.size() : checker.vec_windows_.size();
  return checker;
}

ComplianceChecker ComplianceWindowBuilder::finish() {
  // Every stream element is covered by at least one window once count >= l,
  // so the maximum over pushed ids equals the batch path's maximum over the
  // whole sequence — the packed-representation decision is identical.
  const std::size_t pushed = dedup_.pushed();
  return ComplianceChecker::from_windows(l_, pushed, dedup_.take_windows(), max_pred_);
}

ComplianceResult check_compliance(const Nfa& model, const std::vector<PredId>& seq,
                                  std::size_t l) {
  return ComplianceChecker(seq, l).check(model);
}

}  // namespace t2m
