#include "src/core/portfolio.h"

#include <algorithm>

namespace t2m {

std::vector<PortfolioVariant> portfolio_configs(const LearnerConfig& base,
                                                std::size_t k) {
  k = std::max<std::size_t>(k, 2);
  std::vector<PortfolioVariant> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    PortfolioVariant v;
    v.config = base;
    v.config.portfolio = 0;  // no recursion: a worker never races again
    v.config.threads = 1;    // the race is the parallelism
    // A proof sink is a sequential text stream owned by one solver: racing
    // lanes would interleave it into garbage, so lanes never log.
    v.config.solver.proof_log = nullptr;
    switch (i % 4) {
      case 0:
        // The caller's own configuration, verbatim.
        v.name = base.persistent_solver ? "persistent" : "fresh";
        break;
      case 1:
        // The opposite solving mode: fresh-per-N and persistent explore the
        // sibling-model space in genuinely different orders (PR 2 notes).
        v.config.persistent_solver = !base.persistent_solver;
        v.name = v.config.persistent_solver ? "persistent" : "fresh";
        break;
      case 2:
        // Agile restarts + inverted phase default.
        v.config.solver.restart_base = 50;
        v.config.solver.default_phase = !base.solver.default_phase;
        v.name = "agile-restarts";
        break;
      case 3:
        // Conservative restarts + a dash of random polarity.
        v.config.solver.restart_base = 400;
        v.config.solver.random_polarity_permille =
            std::max<std::uint32_t>(base.solver.random_polarity_permille, 20);
        v.name = "slow-restarts-random";
        break;
    }
    if (i >= 4) {
      // Further lanes: reseeded randomised copies of the four archetypes.
      v.config.solver.seed = base.solver.seed + 0x9e3779b97f4a7c15ULL * i;
      v.config.solver.random_polarity_permille =
          std::max<std::uint32_t>(v.config.solver.random_polarity_permille, 10);
      v.name += "-s" + std::to_string(i);
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace t2m
