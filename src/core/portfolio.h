#ifndef T2M_CORE_PORTFOLIO_H
#define T2M_CORE_PORTFOLIO_H

#include <string>
#include <vector>

#include "src/core/learner.h"

namespace t2m {

/// One racing configuration of the portfolio CEGIS driver.
struct PortfolioVariant {
  std::string name;
  LearnerConfig config;
};

/// Builds the `k` solver configurations a portfolio learn races (k is
/// clamped to at least 2 — one configuration is not a race). The first
/// variant is the caller's own configuration; the rest diversify along the
/// axes production SAT portfolios use: fresh-per-N vs persistent solving,
/// restart schedule, initial phase, and seeded random polarity. Every
/// variant is single-threaded inside (the race IS the parallelism) and has
/// `portfolio` cleared so workers cannot recurse.
std::vector<PortfolioVariant> portfolio_configs(const LearnerConfig& base,
                                                std::size_t k);

}  // namespace t2m

#endif  // T2M_CORE_PORTFOLIO_H
