#ifndef T2M_CORE_REPORT_H
#define T2M_CORE_REPORT_H

#include <ostream>
#include <string>

#include "src/base/schema.h"
#include "src/core/learner.h"

namespace t2m {

/// Human-readable summary of a learning run: model shape, vocabulary, and
/// the statistics tracked by LearnStats. Used by the CLI and examples.
std::string format_learn_report(const LearnResult& result, const Schema& schema);

/// One-line summary ("4 states, 6 transitions, 4 predicates, 0.12 s").
std::string format_learn_summary(const LearnResult& result);

/// Single-line JSON object for one portfolio lane's outcome.
std::string to_json(const PortfolioConfigStats& lane);

/// Single-line JSON object covering every LearnStats field, the portfolio
/// lane breakdown included. The one stats serialization — `t2m --stats-out`,
/// the bench emitters' "metrics" snapshots and the portfolio lane reporting
/// all go through it, so the key names cannot drift between consumers.
std::string to_json(const LearnStats& stats);

/// Verdict envelope for `t2m --stats-out`: run flags + "stats": to_json(...).
std::string to_json(const LearnResult& result);

/// The flat work-counter fields of the one-record-per-line bench JSON
/// format, emitted as `, "sat_calls": N, ...` (leading separator included).
/// Key names are part of the bench_check contract — shared here so the
/// bench emitters cannot diverge from the checker.
void write_bench_stats_fields(std::ostream& os, const LearnStats& stats);

/// Publishes a finished run's counters into the global obs metrics registry
/// (no-op when metrics are disabled): learn.* counters from LearnStats plus
/// memory-accountant peaks. Called once per run by the learner, which is
/// what keeps per-event accumulation free when observability is off.
void publish_learn_metrics(const LearnResult& result);

}  // namespace t2m

#endif  // T2M_CORE_REPORT_H
