#ifndef T2M_CORE_REPORT_H
#define T2M_CORE_REPORT_H

#include <string>

#include "src/base/schema.h"
#include "src/core/learner.h"

namespace t2m {

/// Human-readable summary of a learning run: model shape, vocabulary, and
/// the statistics tracked by LearnStats. Used by the CLI and examples.
std::string format_learn_report(const LearnResult& result, const Schema& schema);

/// One-line summary ("4 states, 6 transitions, 4 predicates, 0.12 s").
std::string format_learn_summary(const LearnResult& result);

}  // namespace t2m

#endif  // T2M_CORE_REPORT_H
