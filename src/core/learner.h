#ifndef T2M_CORE_LEARNER_H
#define T2M_CORE_LEARNER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/abstraction/abstraction.h"
#include "src/abstraction/pred_stream.h"
#include "src/automaton/nfa.h"
#include "src/base/status.h"
#include "src/core/compliance.h"
#include "src/core/csp_encoder.h"
#include "src/core/segmentation.h"
#include "src/trace/trace.h"
#include "src/util/stopwatch.h"

namespace t2m {

/// Configuration of the end-to-end learner (the paper's tunables).
struct LearnerConfig {
  /// Segmentation window w over the predicate sequence (paper: w = 3).
  std::size_t window = 3;
  /// Compliance-check transition-sequence length l (paper: l = 2).
  std::size_t compliance_length = 2;
  /// Starting number of automaton states N (paper: 2; Table I starts at the
  /// known N for a fair segmented/non-segmented comparison).
  std::size_t initial_states = 2;
  /// Give up beyond this many states.
  std::size_t max_states = 64;
  /// Unique-window segmentation on/off (off = feed P as one chain; the
  /// Table I / Fig. 7 baseline).
  bool segmented = true;
  /// Determinism encoding (see csp_encoder.h).
  DeterminismEncoding encoding = DeterminismEncoding::Successor;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double timeout_seconds = 0.0;
  /// Additionally require the model to accept the whole predicate sequence
  /// P from its initial state (our strengthening over Algorithm 1: segment
  /// embedding plus compliance do not by themselves pin down a wiring that
  /// replays the trace; non-accepting candidates are blocked and re-solved).
  bool require_trace_acceptance = true;
  /// Give up on the acceptance strengthening after this many blocked
  /// candidates per N and return the compliant model instead (the space of
  /// sibling models grows steeply when N exceeds the compliance minimum).
  std::size_t max_acceptance_blocks = 256;
  /// Keep ONE SAT solver alive across the whole N-increment loop (guarded
  /// one-hot encoding + per-solve assumptions, see AutomatonCsp): learned
  /// clauses, VSIDS activity and saved phases survive state-count growth,
  /// and segments/forbidden words are encoded once instead of per N. Off =
  /// the fresh-CSP-per-N reference path (differential-tested against).
  bool persistent_solver = true;
  /// Persistent mode: one-hot columns allocated beyond the starting N, so
  /// the first `state_headroom` increments are assumption flips. Growing
  /// past the headroom rebuilds the CSP once with a larger capacity.
  std::size_t state_headroom = 6;
  /// Assumption-core-driven early stop: when a persistent-mode Unsat core
  /// names no inactive-column guard (AutomatonCsp::unsat_for_all_states),
  /// the instance is Unsat for every state count — stop instead of growing
  /// to max_states blindly.
  bool core_driven_stop = true;
  /// Worker threads for the parallel paths: sharded ingest in
  /// learn_from_ftrace and the partitioned compliance check. 1 = fully
  /// sequential (byte-identical results either way; threading only changes
  /// wall clock).
  std::size_t threads = 1;
  /// Portfolio CEGIS: race this many independently configured solvers
  /// (fresh vs persistent, phase/restart/polarity variations — see
  /// portfolio_configs) over the same artefacts and keep the first verdict,
  /// cancelling the rest. 0/1 = single configuration.
  std::size_t portfolio = 0;
  /// Solver search-shape knobs applied to every CSP this learner builds;
  /// the portfolio driver diversifies them per racing worker.
  sat::SolverConfig solver;
  /// Star-compress length-2 forbidden words (CspOptions::compress_forbidden):
  /// shared per-(predicate, side) flag variables instead of the quadratic
  /// per-transition-pair binaries. The lever that keeps unsegmented long
  /// traces inside the clause budget.
  bool compress_forbidden = true;
  /// Run SatELite-style preprocessing (subsumption, self-subsuming
  /// resolution, bounded variable elimination) on each CSP's CNF before its
  /// first solve (CspOptions::preprocess).
  bool preprocess = false;
  /// Clause budget per CSP; 0 keeps the CspOptions default. Overrunning it
  /// ends the learn with LearnResult::budget_exceeded.
  std::size_t max_clauses = 0;
  /// Cooperative cancellation (non-owning; may be null): polled between
  /// solver calls and inside Solver::solve at every conflict. A learn
  /// aborted this way returns with `cancelled` (and timed_out) set.
  const std::atomic<bool>* stop = nullptr;
  /// Global memory cap in bytes applied (via MemoryAccountant) for the
  /// duration of each public learn call; 0 = unlimited. Overrunning it ends
  /// the learn with LearnResult::resource_exhausted — allocation pressure
  /// becomes a verdict, not a crash. The accountant is process-global, so
  /// concurrent learners share the cap.
  std::size_t max_memory_bytes = 0;
  /// Trace-abstraction settings (window is taken from `window`).
  AbstractionConfig abstraction;
};

/// Outcome of one racing configuration of a portfolio learn.
struct PortfolioConfigStats {
  std::string name;
  bool winner = false;
  bool finished = false;   ///< reached a verdict before cancellation
  bool cancelled = false;  ///< stopped by the race's stop flag
  bool failed = false;     ///< the lane died with an error (see `error`)
  /// Diagnostic for a failed lane ("internal: ..."); empty otherwise. A
  /// crashed lane is cancelled out of the race without touching its
  /// siblings — the portfolio survives it.
  std::string error;
  std::size_t states = 0;
  std::size_t sat_calls = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_propagations = 0;
  double wall_seconds = 0.0;
};

/// Counters describing one learning run.
struct LearnStats {
  std::size_t sequence_length = 0;   ///< |P|
  std::size_t vocabulary_size = 0;   ///< distinct predicates
  std::size_t segments = 0;          ///< unique windows encoded
  std::size_t encoded_transitions = 0;
  std::size_t sat_calls = 0;
  std::size_t refinements = 0;       ///< compliance iterations that added constraints
  std::size_t state_increments = 0;  ///< times N had to grow
  std::size_t forbidden_words = 0;   ///< distinct forbidden sequences learned
  // Solver-reuse trajectory: how often the run could flip assumptions on a
  // live solver versus paying for a fresh encoding.
  std::size_t csp_builds = 0;  ///< CSP constructions (fresh path: one per N)
  std::size_t csp_grows = 0;   ///< in-place state-count growths (persistent path)
  /// Learned clauses carried across capacity rebuilds via
  /// AutomatonCsp::reseed_from (persistent path only).
  std::size_t reseeded_clauses = 0;
  // Aggregated over every CSP solver the run constructed (the perf
  // trajectory counters the bench JSON emitter records).
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_learned_clauses = 0;
  std::size_t sat_peak_arena_bytes = 0;  ///< max clause-arena bytes of any CSP
  /// Times the assumption-core early stop fired (0 or 1 per run): the
  /// persistent solver proved the instance Unsat for every state count.
  std::size_t core_stops = 0;
  /// True when the trace-acceptance strengthening was abandoned after
  /// max_acceptance_blocks sibling models (the result is still compliant).
  bool acceptance_relaxed = false;
  double abstraction_seconds = 0.0;
  double construction_seconds = 0.0;
  double total_seconds = 0.0;
  /// Portfolio runs: one entry per racing configuration (empty otherwise).
  std::vector<PortfolioConfigStats> portfolio;

  /// Merges another run's counters into this one, the aggregation sharded
  /// and portfolio drivers report instead of one arbitrary worker's numbers:
  /// work counters add up, sizes describing the (shared) input and the
  /// wall-clock phases take the maximum (parallel runs overlap), flags OR.
  /// The per-configuration `portfolio` breakdown is left untouched.
  LearnStats& operator+=(const LearnStats& other);
};

// [[nodiscard]]: a learn verdict carries success/salvage flags the caller
// must consult; discarding one hides failed or salvaged runs.
struct [[nodiscard]] LearnResult {
  bool success = false;
  bool timed_out = false;
  /// The run was aborted by the cooperative stop flag (portfolio losers,
  /// caller-driven cancellation); timed_out is also set for compatibility.
  bool cancelled = false;
  /// The CSP encoding overran its clause budget: the instance is intractable
  /// at this budget, which is a verdict about the encoding size — distinct
  /// from timed_out (a wall-clock accident of the machine).
  bool budget_exceeded = false;
  /// The run hit the configured memory cap (LearnerConfig::max_memory_bytes)
  /// or an allocation failed: the budget_exceeded sibling for memory.
  bool resource_exhausted = false;
  /// `model` is the best model accepted so far (it passed compliance when it
  /// was captured), salvaged from a run that timed out, overran its clause
  /// budget, or exhausted memory before reaching a full verdict. Always
  /// paired with one of those three flags; success stays false.
  bool salvaged = false;
  /// Structured detail for failed runs (taxonomy + diagnostic); ok() for
  /// clean verdicts. Entry points return this instead of throwing.
  Status status;
  Nfa model;                 ///< names attached; valid when success or salvaged
  std::size_t states = 0;    ///< the paper's N
  PredicateSequence preds;   ///< the abstraction output (vocabulary + P)
  /// The schema `preds` was interned against. Callers of the trace/sequence
  /// entry points already hold it; the streaming and ftrace paths build it
  /// internally, and reporting needs it back (tools/t2m --ftrace).
  Schema schema;
  LearnStats stats;
};

/// The paper's model-learning algorithm end to end: trace abstraction,
/// segmentation, iterative SAT search for the smallest N-state automaton,
/// and the compliance-driven refinement loop.
class ModelLearner {
public:
  explicit ModelLearner(LearnerConfig config = {});

  /// Learns from a concrete trace (abstraction mode selected automatically
  /// unless `mode` says otherwise).
  LearnResult learn(const Trace& trace, AbstractionMode mode = AbstractionMode::Auto) const;

  /// Learns from a pre-abstracted predicate sequence.
  LearnResult learn_from_sequence(PredicateSequence preds, const Schema& schema) const;

  /// Streaming path for traces too long to materialise: one pass over
  /// `stream` feeds the unique-window segmenter and the compliance window
  /// builder directly, so peak memory is O(window + dedup set) instead of
  /// O(trace). The compact id sequence is additionally retained only when
  /// the configuration needs it (trace acceptance on, or non-segmented
  /// encoding). The CEGIS search then runs on byte-identical artefacts to
  /// the in-memory path, so both produce the same model
  /// (differential-tested in tests/test_stream_pipeline.cpp).
  LearnResult learn_from_stream(PredStream& stream) const;

  /// Learns from an on-disk ftrace log. threads <= 1 runs the streaming
  /// one-pass pipeline; threads > 1 runs the sharded parallel ingest
  /// (src/parallel/sharded_ingest.h), which produces byte-identical
  /// artefacts and therefore the same model — differential-tested in
  /// tests/test_sharded_ingest.cpp.
  LearnResult learn_from_ftrace(const std::string& path,
                                const std::string& task_filter = "") const;

  const LearnerConfig& config() const { return config_; }

private:
  /// The iterative SAT search + compliance refinement shared by the
  /// in-memory and streaming entry points: dispatches to the portfolio
  /// driver when config().portfolio > 1, else runs one configuration.
  /// `sequence_length` is |P|; preds.seq may be empty in streaming mode
  /// (acceptance is then skipped).
  LearnResult run_search(PredicateSequence preds, std::size_t sequence_length,
                         std::vector<Segment> segments,
                         const ComplianceChecker& compliance_checker,
                         const Schema& schema, const Deadline& deadline,
                         const Stopwatch& total) const;

  /// One configuration's CEGIS loop (the pre-portfolio run_search body).
  /// `segments` is shared read-only — portfolio lanes all encode from the
  /// same list; `preds` is consumed into the result.
  LearnResult run_search_single(PredicateSequence preds, std::size_t sequence_length,
                                const std::vector<Segment>& segments,
                                const ComplianceChecker& compliance_checker,
                                const Schema& schema, const Deadline& deadline,
                                const Stopwatch& total) const;

  /// Races portfolio_configs(config, portfolio) over the shared artefacts:
  /// first finished verdict wins, the rest are cancelled through an atomic
  /// stop flag threaded into every worker's solver.
  LearnResult run_portfolio(const PredicateSequence& preds, std::size_t sequence_length,
                            const std::vector<Segment>& segments,
                            const ComplianceChecker& compliance_checker,
                            const Schema& schema, const Deadline& deadline,
                            const Stopwatch& total) const;

  LearnerConfig config_;
};

}  // namespace t2m

#endif  // T2M_CORE_LEARNER_H
