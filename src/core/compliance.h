#ifndef T2M_CORE_COMPLIANCE_H
#define T2M_CORE_COMPLIANCE_H

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/util/hash.h"

namespace t2m {

/// Result of the compliance check (Algorithm 1, lines 38-48): the candidate
/// model's transition sequences of length l must all occur as contiguous
/// subsequences of the predicate sequence P. Sequences in S_l \ P_l are
/// invalid and feed the refinement loop as forbidden-sequence constraints.
struct ComplianceResult {
  bool compliant = false;
  std::set<std::vector<PredId>> invalid_sequences;
  std::size_t model_sequences = 0;
  std::size_t trace_sequences = 0;
};

/// One-pass compliance engine. The trace window set P_l is invariant across
/// all refinement iterations of a learn run, so it is computed once at
/// construction — with a rolling packed-key hash when the windows fit in 64
/// bits, a hashed vector set otherwise — and every check() then streams the
/// candidate model's length-l paths by DFS, emitting only the missing words
/// instead of materialising the full S_l set and running set_difference.
/// Produces results identical to the original
/// transition_sequences/subsequences/set_difference pipeline.
class ComplianceChecker {
public:
  ComplianceChecker(const std::vector<PredId>& seq, std::size_t l);

  ComplianceResult check(const Nfa& model) const;

  std::size_t window_length() const { return l_; }
  /// |P_l|: number of distinct trace windows.
  std::size_t trace_sequences() const { return trace_windows_; }

private:
  bool packed_usable(const Nfa& model) const;

  std::size_t l_;
  std::size_t trace_windows_ = 0;
  /// Packed representation: each window folds into one 64-bit key, built by
  /// a rolling shift over the sequence. Valid when l_ * bits_ <= 64.
  bool packed_ = false;
  std::uint32_t bits_ = 0;   ///< bits per predicate id
  std::uint64_t mask_ = 0;   ///< low l_*bits_ bits
  std::unordered_set<std::uint64_t> packed_windows_;
  /// Fallback for windows too wide to pack.
  std::unordered_set<std::vector<PredId>, VectorHash> vec_windows_;
};

/// Convenience single-shot wrapper around ComplianceChecker; the learner
/// keeps a persistent checker instead, so P_l is computed once per run.
ComplianceResult check_compliance(const Nfa& model, const std::vector<PredId>& seq,
                                  std::size_t l);

}  // namespace t2m

#endif  // T2M_CORE_COMPLIANCE_H
