#ifndef T2M_CORE_COMPLIANCE_H
#define T2M_CORE_COMPLIANCE_H

#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/automaton/nfa.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/window_dedup.h"

namespace t2m {

/// Result of the compliance check (Algorithm 1, lines 38-48): the candidate
/// model's transition sequences of length l must all occur as contiguous
/// subsequences of the predicate sequence P. Sequences in S_l \ P_l are
/// invalid and feed the refinement loop as forbidden-sequence constraints.
struct ComplianceResult {
  bool compliant = false;
  std::set<std::vector<PredId>> invalid_sequences;
  std::size_t model_sequences = 0;
  std::size_t trace_sequences = 0;
};

/// One-pass compliance engine. The trace window set P_l is invariant across
/// all refinement iterations of a learn run, so it is computed once at
/// construction — with a rolling packed-key hash when the windows fit in 64
/// bits, a hashed vector set otherwise — and every check() then streams the
/// candidate model's length-l paths by DFS, emitting only the missing words
/// instead of materialising the full S_l set and running set_difference.
/// Produces results identical to the original
/// transition_sequences/subsequences/set_difference pipeline.
class ComplianceChecker {
public:
  ComplianceChecker(const std::vector<PredId>& seq, std::size_t l);

  /// Builds a checker from an already-deduplicated window multiset, as the
  /// sharded-ingest merge produces: `pushed` is the underlying stream length
  /// (so the short-stream edge cases match the builder), `max_pred` the
  /// stream's maximum predicate id (the packed-representation decision).
  /// Byte-identical to pushing the stream through ComplianceWindowBuilder.
  static ComplianceChecker from_windows(std::size_t l, std::size_t pushed,
                                        std::vector<std::vector<PredId>> windows,
                                        PredId max_pred);

  ComplianceResult check(const Nfa& model) const;

  /// Partitions check()'s DFS by start state across this many workers
  /// (1 = sequential). Per-chunk missing-word sets merge in state order, so
  /// the result — including counterexample selection downstream — is
  /// identical to the sequential check by set semantics.
  void set_threads(std::size_t threads) { threads_ = threads; }

  /// Cooperative wall-clock bound on check(): the DFS polls it every few
  /// thousand leaf words and throws StatusError(deadline_exceeded) when it
  /// expires. On the parallel path the throw cancels the chunk and
  /// TaskGroup::wait() rethrows it from check(). Defaults to never expiring.
  void set_deadline(const Deadline& deadline) { deadline_ = deadline; }

  std::size_t window_length() const { return l_; }
  /// |P_l|: number of distinct trace windows.
  std::size_t trace_sequences() const { return trace_windows_; }

private:
  friend class ComplianceWindowBuilder;
  explicit ComplianceChecker(std::size_t l) : l_(l) {}

  /// Decides the window representation from the largest predicate id seen:
  /// sets bits_, packed_ and mask_. One definition shared by the batch
  /// constructor and ComplianceWindowBuilder::finish(), so the two
  /// construction paths cannot drift apart.
  void init_packing(PredId max_pred);
  /// Folds a window into its packed 64-bit key (requires packed_).
  std::uint64_t pack_word(const std::vector<PredId>& word) const;

  bool packed_usable(const Nfa& model) const;

  /// DFS over the model's length-l paths from start states [lo, hi),
  /// collecting the distinct words into `seen` and the words absent from
  /// P_l into `invalid`. One call per worker chunk; the sequential path is
  /// the single full-range call.
  void check_packed_range(
      const std::vector<std::vector<std::pair<PredId, StateId>>>& adj, StateId lo,
      StateId hi, std::unordered_set<std::uint64_t>& seen,
      std::set<std::vector<PredId>>& invalid) const;
  void check_vec_range(const std::vector<std::vector<std::pair<PredId, StateId>>>& adj,
                       StateId lo, StateId hi,
                       std::unordered_set<std::vector<PredId>, VectorHash>& seen,
                       std::set<std::vector<PredId>>& invalid) const;

  std::size_t l_;
  std::size_t threads_ = 1;
  Deadline deadline_;
  std::size_t trace_windows_ = 0;
  /// Packed representation: each window folds into one 64-bit key, built by
  /// a rolling shift over the sequence. Valid when l_ * bits_ <= 64.
  bool packed_ = false;
  std::uint32_t bits_ = 0;   ///< bits per predicate id
  std::uint64_t mask_ = 0;   ///< low l_*bits_ bits
  std::unordered_set<std::uint64_t> packed_windows_;
  /// Fallback for windows too wide to pack.
  std::unordered_set<std::vector<PredId>, VectorHash> vec_windows_;
};

/// Streaming construction of the trace window set P_l: push one PredId per
/// step and finish() yields a ComplianceChecker identical to constructing
/// one from the materialised sequence. Windows are collected by the same
/// StreamingWindowDedup mechanism the segmenter uses (O(1) rolling-hash
/// updates, in-ring compares, allocation-free duplicates — see
/// src/util/window_dedup.h). The packed/hashed representation decision
/// needs the stream's maximum predicate id, which is only known at the end,
/// so the distinct windows (O(distinct) memory) are re-packed into 64-bit
/// keys at finish() when they fit.
class ComplianceWindowBuilder {
public:
  explicit ComplianceWindowBuilder(std::size_t l);

  void push(PredId p);

  /// Finalises and surrenders the checker. The builder is spent afterwards.
  ComplianceChecker finish();

private:
  std::size_t l_;
  PredId max_pred_ = 0;
  StreamingWindowDedup<PredId> dedup_;  ///< unused shell when l == 0
};

/// Convenience single-shot wrapper around ComplianceChecker; the learner
/// keeps a persistent checker instead, so P_l is computed once per run.
ComplianceResult check_compliance(const Nfa& model, const std::vector<PredId>& seq,
                                  std::size_t l);

}  // namespace t2m

#endif  // T2M_CORE_COMPLIANCE_H
